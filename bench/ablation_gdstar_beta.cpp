// Ablation: GD*'s online beta estimation versus fixed exponents.
//
// The paper's "novel feature of GD* is that f(p) and beta can be calculated
// in an on-line fashion, which makes the algorithm adaptive to these
// workload characteristics." This bench quantifies what the adaptivity is
// worth: GD*(1) with the online estimator against fixed beta in
// {0.25, 0.5, 1.0 (== GDSF), 2.0} on both traces at a mid-ladder cache
// size.
#include <iostream>

#include "cache/factory.hpp"
#include "common.hpp"
#include "util/format.hpp"

int main(int argc, char** argv) {
  using namespace webcache;
  const auto ctx = bench::BenchContext::from_args(argc, argv);
  const util::Args args(argc, argv);
  const double cache_fraction = args.get_double("cache-fraction", 0.04);

  std::cout << "=== Ablation: GD* online beta vs fixed beta (scale="
            << ctx.scale << ", cache " << cache_fraction * 100
            << "% of trace) ===\n\n";

  for (const auto& profile :
       {synth::WorkloadProfile::DFN(), synth::WorkloadProfile::RTP()}) {
    const trace::Trace t = ctx.make_trace(profile);
    const auto capacity = static_cast<std::uint64_t>(
        static_cast<double>(t.overall_size_bytes()) * cache_fraction);

    util::Table table(profile.name + ": GD*(1) beta variants");
    table.set_header({"Variant", "Hit rate", "Byte hit rate"});

    std::vector<cache::PolicySpec> variants;
    {
      cache::PolicySpec online;
      online.kind = cache::PolicyKind::kGdStar;
      variants.push_back(online);
      for (const double beta : {0.25, 0.5, 1.0, 2.0}) {
        cache::PolicySpec fixed = online;
        fixed.fixed_beta = beta;
        variants.push_back(fixed);
      }
      cache::PolicySpec gdsf;
      gdsf.kind = cache::PolicyKind::kGdsf;
      variants.push_back(gdsf);
    }

    for (const auto& spec : variants) {
      const sim::SimResult r =
          sim::simulate(t, capacity, spec, ctx.simulator_options());
      table.add_row({r.policy_name, util::fmt_fixed(r.overall.hit_rate(), 4),
                     util::fmt_fixed(r.overall.byte_hit_rate(), 4)});
    }
    ctx.emit(table, "ablation_beta_" + profile.name);
  }
  std::cout << "Note: GD*(1) [beta=1] must match GDSF(1) exactly — same "
               "formula; any divergence is a bug (also enforced by tests).\n";
  return 0;
}
