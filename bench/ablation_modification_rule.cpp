// Ablation: the document-modification rule.
//
// Section 4.1 (and the paper's explanation for its one inconsistency with
// Jin & Bestavros): this paper counts a size change < 5% as a modification
// and a larger change as an interrupted transfer; [7], [8] treat *every*
// size change as a modification, which "results in higher modification
// rates especially for large multi media and application documents". This
// bench runs GDS(1) and GD*(1) under all three rules (threshold, any-change,
// never) and reports the byte-hit-rate impact per document type.
#include <iostream>

#include "cache/factory.hpp"
#include "common.hpp"
#include "util/format.hpp"

int main(int argc, char** argv) {
  using namespace webcache;
  const auto ctx = bench::BenchContext::from_args(argc, argv);
  const util::Args args(argc, argv);
  const double cache_fraction = args.get_double("cache-fraction", 0.04);

  std::cout << "=== Ablation: modification rule (DFN, scale=" << ctx.scale
            << ", cache " << cache_fraction * 100 << "% of trace) ===\n\n";

  const trace::Trace t = ctx.make_trace(synth::WorkloadProfile::DFN());
  const auto capacity = static_cast<std::uint64_t>(
      static_cast<double>(t.overall_size_bytes()) * cache_fraction);

  const std::array<std::pair<sim::ModificationRule, const char*>, 3> rules = {
      std::pair{sim::ModificationRule::kThreshold, "<5% = modified (paper)"},
      std::pair{sim::ModificationRule::kAnyChange, "any change = modified [7,8]"},
      std::pair{sim::ModificationRule::kNever, "never modified (bound)"},
  };

  for (const char* policy_name : {"GDS(1)", "GD*(1)", "LRU"}) {
    util::Table table(std::string(policy_name) +
                      ": byte hit rate per modification rule");
    table.set_header({"Rule", "Overall HR", "Overall BHR", "MM BHR",
                      "App BHR", "Mod. misses"});
    for (const auto& [rule, label] : rules) {
      sim::SimulatorOptions opts = ctx.simulator_options();
      opts.modification_rule = rule;
      const sim::SimResult r = sim::simulate(
          t, capacity, cache::policy_spec_from_name(policy_name), opts);
      table.add_row(
          {label, util::fmt_fixed(r.overall.hit_rate(), 4),
           util::fmt_fixed(r.overall.byte_hit_rate(), 4),
           util::fmt_fixed(
               r.of(trace::DocumentClass::kMultiMedia).byte_hit_rate(), 4),
           util::fmt_fixed(
               r.of(trace::DocumentClass::kApplication).byte_hit_rate(), 4),
           util::fmt_count(r.modification_misses)});
    }
    ctx.emit(table, std::string("ablation_mod_") + policy_name);
  }
  std::cout << "Expected: the any-change rule depresses hit and byte hit "
               "rates (interrupted multi-media transfers masquerade as "
               "modifications), which explains why [8] saw GDS(1) stay "
               "competitive in byte hit rate while this paper does not.\n";
  return 0;
}
