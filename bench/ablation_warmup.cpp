// Ablation: the warm-up fraction. The paper fills the cache with the first
// 10% of requests and excludes them from statistics ("to avoid cold start
// misses"). This bench quantifies how sensitive the reported rates are to
// that methodological choice — and adds the Mattson stack-distance view,
// which separates cold (compulsory) misses from capacity misses without
// any warm-up convention at all.
#include <iostream>

#include "cache/factory.hpp"
#include "common.hpp"
#include "util/format.hpp"
#include "workload/stack_distance.hpp"

int main(int argc, char** argv) {
  using namespace webcache;
  const auto ctx = bench::BenchContext::from_args(argc, argv);
  const util::Args args(argc, argv);
  const double cache_fraction = args.get_double("cache-fraction", 0.04);

  std::cout << "=== Ablation: warm-up fraction (DFN, scale=" << ctx.scale
            << ", cache " << cache_fraction * 100 << "% of trace) ===\n\n";

  const trace::Trace t = ctx.make_trace(synth::WorkloadProfile::DFN());
  const auto capacity = static_cast<std::uint64_t>(
      static_cast<double>(t.overall_size_bytes()) * cache_fraction);

  for (const char* policy : {"LRU", "GD*(1)"}) {
    util::Table table(std::string(policy) + ": rates vs warm-up fraction");
    table.set_header({"Warm-up", "Hit rate", "Byte hit rate",
                      "Measured requests"});
    for (const double warmup : {0.0, 0.05, 0.10, 0.20}) {
      sim::SimulatorOptions opts;
      opts.warmup_fraction = warmup;
      const sim::SimResult r = sim::simulate(
          t, capacity, cache::policy_spec_from_name(policy), opts);
      table.add_row({util::fmt_percent(warmup, 0) + "%",
                     util::fmt_fixed(r.overall.hit_rate(), 4),
                     util::fmt_fixed(r.overall.byte_hit_rate(), 4),
                     util::fmt_count(r.measured_requests)});
    }
    ctx.emit(table, std::string("ablation_warmup_") + policy);
  }

  // The warm-up-free decomposition: cold misses are a property of the
  // trace, not of the policy or the measurement convention.
  const workload::StackDistanceProfile profile =
      workload::compute_stack_distances(t);
  util::Table mattson("Mattson decomposition (document granularity)");
  mattson.set_header({"Quantity", "Value"});
  mattson.add_row({"References", util::fmt_count(profile.total_references)});
  mattson.add_row({"Cold (compulsory) misses",
                   util::fmt_count(profile.cold_misses)});
  mattson.add_row(
      {"Cold-miss floor on miss rate",
       util::fmt_percent(static_cast<double>(profile.cold_misses) /
                             static_cast<double>(profile.total_references),
                         1) +
           "%"});
  mattson.add_row({"LRU hit rate @ 10k docs",
                   util::fmt_fixed(profile.hit_rate_at(10000), 4)});
  mattson.add_row({"LRU hit rate @ infinite cache",
                   util::fmt_fixed(profile.hit_rate_at(~0ULL), 4)});
  ctx.emit(mattson, "ablation_warmup_mattson");
  return 0;
}
