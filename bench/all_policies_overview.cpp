// Full-spectrum comparison (ours, in the spirit of Arlitt, Friedrich &
// Jin's six-policy study): every implemented replacement scheme on both
// workloads at one mid-ladder cache size, plus the clairvoyant OPT
// reference. A one-stop table for placing a new policy among the classics.
#include <iostream>

#include "cache/factory.hpp"
#include "cache/opt.hpp"
#include "common.hpp"
#include "util/format.hpp"

int main(int argc, char** argv) {
  using namespace webcache;
  const auto ctx = bench::BenchContext::from_args(argc, argv);
  const util::Args args(argc, argv);
  const double cache_fraction = args.get_double("cache-fraction", 0.04);

  std::cout << "=== All policies overview (scale=" << ctx.scale << ", cache "
            << cache_fraction * 100 << "% of trace) ===\n\n";

  for (const auto& profile :
       {synth::WorkloadProfile::DFN(), synth::WorkloadProfile::RTP()}) {
    const trace::Trace t = ctx.make_trace(profile);
    const auto capacity = static_cast<std::uint64_t>(
        static_cast<double>(t.overall_size_bytes()) * cache_fraction);

    util::Table table(profile.name + " @ " +
                      util::fmt_bytes(static_cast<double>(capacity)));
    table.set_header({"Policy", "HR", "BHR", "Latency saved", "Evictions"});

    auto add = [&](const sim::SimResult& r) {
      table.add_row({r.policy_name, util::fmt_fixed(r.overall.hit_rate(), 4),
                     util::fmt_fixed(r.overall.byte_hit_rate(), 4),
                     util::fmt_percent(r.latency_savings(), 1) + "%",
                     util::fmt_count(r.evictions)});
    };

    add(sim::simulate(t, capacity,
                      std::make_unique<cache::OptPolicy>(t.requests),
                      ctx.simulator_options()));
    for (const char* name :
         {"GD*(1)", "GD*(packet)", "GD*(latency)", "GD*C(1)",
          "GD*C(packet)", "GDSF(1)", "GDS(1)",
          "GDS(packet)", "GDS(latency)", "LFU-DA", "LRU-2", "LRU-MIN",
          "SIZE", "LFU", "LRU", "LRU-THOLD(524288)", "FIFO",
          "DELAY-CLOCK:k=8", "CLOCK", "DELAY-LRU:k=16",
          "BATCH-LRU:batch=64", "PROB-LRU:p=0.1", "RANDOM"}) {
      add(sim::simulate(t, capacity, cache::policy_spec_from_name(name),
                        ctx.simulator_options()));
    }
    ctx.emit(table, "overview_" + profile.name);
    std::cout << '\n';
  }
  return 0;
}
