#include "common.hpp"

#include <fstream>
#include <iostream>
#include <stdexcept>

namespace webcache::bench {

BenchContext BenchContext::from_args(int argc, char** argv) {
  const util::Args args(argc, argv);
  BenchContext ctx;
  ctx.scale = args.get_double("scale", ctx.scale);
  ctx.seed = args.get_uint("seed", ctx.seed);
  ctx.warmup_fraction = args.get_double("warmup", ctx.warmup_fraction);
  ctx.csv_dir = args.get("csv", "");
  ctx.threads = static_cast<std::uint32_t>(args.get_uint("threads", 0));
  if (ctx.scale <= 0.0 || ctx.scale > 1.0) {
    throw std::invalid_argument("--scale must be in (0, 1]");
  }
  return ctx;
}

trace::Trace BenchContext::make_trace(
    const synth::WorkloadProfile& profile) const {
  synth::GeneratorOptions opts;
  opts.seed = seed;
  return synth::TraceGenerator(profile.scaled(scale), opts).generate();
}

sim::SimulatorOptions BenchContext::simulator_options() const {
  sim::SimulatorOptions opts;
  opts.warmup_fraction = warmup_fraction;
  return opts;
}

void BenchContext::emit(const util::Table& table,
                        const std::string& slug) const {
  table.print(std::cout);
  if (!csv_dir.empty()) {
    const std::string path = csv_dir + "/" + slug + ".csv";
    std::ofstream out(path);
    if (!out) {
      std::cerr << "warning: cannot write " << path << "\n";
      return;
    }
    out << table.to_csv();
  }
}

const std::vector<double>& paper_cache_fractions() {
  static const std::vector<double> fractions = {0.005, 0.01, 0.02, 0.04,
                                                0.08,  0.16, 0.40};
  return fractions;
}

}  // namespace webcache::bench
