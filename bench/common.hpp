// Shared infrastructure for the benchmark binaries.
//
// Every bench accepts:
//   --scale=<f>    trace scale relative to the paper's full trace sizes
//                  (default 0.02: ~134k requests for DFN, regenerates every
//                  figure in seconds; 1.0 = the paper's full 6.7M requests)
//   --seed=<n>     RNG seed (default 42)
//   --csv=<dir>    also write each table as CSV into the directory
//   --warmup=<f>   warm-up fraction (default 0.10, as in the paper)
#pragma once

#include <string>

#include "sim/simulator.hpp"
#include "synth/generator.hpp"
#include "synth/profile.hpp"
#include "trace/request.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

namespace webcache::bench {

struct BenchContext {
  double scale = 0.02;
  std::uint64_t seed = 42;
  double warmup_fraction = 0.10;
  std::string csv_dir;  // empty = no CSV output
  /// Threads for sweep grids (0 = all cores); results are thread-count
  /// independent.
  std::uint32_t threads = 0;

  static BenchContext from_args(int argc, char** argv);

  /// Generates the named profile ("DFN" or "RTP") at the configured scale.
  trace::Trace make_trace(const synth::WorkloadProfile& profile) const;

  sim::SimulatorOptions simulator_options() const;

  /// Prints the table to stdout and, when --csv is set, writes
  /// <csv_dir>/<slug>.csv.
  void emit(const util::Table& table, const std::string& slug) const;
};

/// The paper's cache-size ladder: ~0.5% to ~40% of overall trace size.
const std::vector<double>& paper_cache_fractions();

}  // namespace webcache::bench
