// Dispatch-overhead harness for the monomorphized replay kernels.
//
// The PolicySpec-taking simulate() entry points consult the kernel
// registry (sim/kernel.hpp): policies with a registered kernel replay
// through a statically-dispatched BasicCache<PolicyValue<P>> instantiation
// where the container and policy calls inline into the replay loop; every
// other spec falls back to the virtual CacheFrontend path. This harness
// prices exactly that choice: each cell replays the same trace through the
// same policy twice — SimulatorOptions::kernel = kOff (forced virtual) vs
// kOn (forced monomorphized) — interleaved ABBA and best-of-n like
// bench/obs_overhead, on both the map-backed and the dense-id path.
//
// Correctness cross-check per cell (any failure exits 1): the kernel
// SimResult must be bit-identical to the virtual one — a speedup from a
// kernel that changed eviction order would be meaningless. The speedup
// itself is reported, not gated here; scripts/trend_throughput.py tracks
// the kernel cells across runs under the WEBCACHE_GATE_PCT gate.
//
// Output: a table on stdout plus machine-readable
// BENCH_dispatch_overhead.json (override with --json=<path>).
//
// Extra flags on top of the common bench set:
//   --reps=<n>       timed repetitions per cell, best-of-n (default 3)
//   --fraction=<f>   cache size as a fraction of overall trace size
//                    (default 0.04 — eviction-heavy, mid-ladder)
//   --json=<path>    where to write the JSON report
#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cache/factory.hpp"
#include "common.hpp"
#include "sim/kernel.hpp"
#include "sim/simulator.hpp"
#include "trace/dense_trace.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using namespace webcache;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

template <typename Run>
double timed(Run&& run) {
  const auto start = std::chrono::steady_clock::now();
  run();
  return seconds_since(start);
}

bool counters_equal(const sim::HitCounters& a, const sim::HitCounters& b) {
  return a.requests == b.requests && a.hits == b.hits &&
         a.requested_bytes == b.requested_bytes && a.hit_bytes == b.hit_bytes;
}

bool results_identical(const sim::SimResult& a, const sim::SimResult& b) {
  if (!counters_equal(a.overall, b.overall)) return false;
  for (std::size_t c = 0; c < a.per_class.size(); ++c) {
    if (!counters_equal(a.per_class[c], b.per_class[c])) return false;
  }
  return a.evictions == b.evictions && a.bypasses == b.bypasses &&
         a.modification_misses == b.modification_misses &&
         a.interrupted_transfers == b.interrupted_transfers;
}

struct DispatchCell {
  std::string policy;
  std::string path;  // "sparse" | "dense"
  double virtual_seconds = 0.0;
  double kernel_seconds = 0.0;
  double virtual_rps = 0.0;
  double kernel_rps = 0.0;
  double speedup = 0.0;  // virtual_seconds / kernel_seconds
  bool identical = false;
  bool engines_honest = false;  // replay_kernel tags match the forced modes
};

template <typename TraceT>
DispatchCell run_cell(const TraceT& trace, std::uint64_t capacity,
                      const cache::PolicySpec& spec,
                      const sim::SimulatorOptions& base_options, int reps,
                      double requests, const std::string& path) {
  sim::SimulatorOptions virtual_options = base_options;
  virtual_options.kernel = sim::KernelMode::kOff;
  sim::SimulatorOptions kernel_options = base_options;
  kernel_options.kernel = sim::KernelMode::kOn;

  // Interleave the two engines ABBA and keep the best repetition of each,
  // so clock-speed drift between phases cannot masquerade as dispatch
  // overhead. One untimed warm-up run primes the caches.
  sim::SimResult virtual_result =
      sim::simulate(trace, capacity, spec, virtual_options);
  sim::SimResult kernel_result =
      sim::simulate(trace, capacity, spec, kernel_options);
  double virtual_best = 0.0;
  double kernel_best = 0.0;
  for (int i = 0; i < reps; ++i) {
    double v = 0.0;
    double k = 0.0;
    const auto run_virtual = [&] {
      v = timed([&] {
        virtual_result = sim::simulate(trace, capacity, spec, virtual_options);
      });
    };
    const auto run_kernel = [&] {
      k = timed([&] {
        kernel_result = sim::simulate(trace, capacity, spec, kernel_options);
      });
    };
    if (i % 2 == 0) {
      run_virtual();
      run_kernel();
    } else {
      run_kernel();
      run_virtual();
    }
    if (i == 0 || v < virtual_best) virtual_best = v;
    if (i == 0 || k < kernel_best) kernel_best = k;
  }

  DispatchCell cell;
  cell.policy = kernel_result.policy_name;
  cell.path = path;
  cell.virtual_seconds = virtual_best;
  cell.kernel_seconds = kernel_best;
  cell.virtual_rps = requests / virtual_best;
  cell.kernel_rps = requests / kernel_best;
  cell.speedup = virtual_best / kernel_best;
  cell.identical = results_identical(virtual_result, kernel_result);
  cell.engines_honest = virtual_result.replay_kernel == "virtual" &&
                        kernel_result.replay_kernel == "monomorphized";
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const auto ctx = bench::BenchContext::from_args(argc, argv);
  const util::Args args(argc, argv);
  const int reps = std::max(1, static_cast<int>(args.get_uint("reps", 3)));
  const double fraction = args.get_double("fraction", 0.04);
  const std::string json_path =
      args.get("json", "BENCH_dispatch_overhead.json");

  std::cout << "=== Monomorphized kernel vs virtual dispatch (scale="
            << ctx.scale << ", fraction=" << fraction << ", reps=" << reps
            << ") ===\n\n";

  const sim::SimulatorOptions options = ctx.simulator_options();
  const trace::Trace trace = ctx.make_trace(synth::WorkloadProfile::DFN());
  const trace::DenseTrace dense = trace::densify(trace);
  const auto capacity = static_cast<std::uint64_t>(
      static_cast<double>(trace.overall_size_bytes()) * fraction);
  const double requests = static_cast<double>(trace.requests.size());

  // One representative per registered kernel family plus the full paper
  // set: the LRU-order policies, the heap-backed GreedyDual family, and
  // the lazy-promotion members with nontrivial hit paths.
  const std::vector<std::string> names = {
      "LRU",    "FIFO",        "SIZE",        "LFU-DA",
      "GDS(1)", "GDSF(1)",     "GD*(packet)", "CLOCK",
      "RANDOM", "BATCH-LRU:batch=64",
  };

  std::vector<DispatchCell> cells;
  for (const std::string& name : names) {
    const cache::PolicySpec spec = cache::policy_spec_from_name(name);
    if (!sim::kernel_available(spec)) {
      std::cerr << "error: no registered kernel for " << name << "\n";
      return 1;
    }
    cells.push_back(
        run_cell(trace, capacity, spec, options, reps, requests, "sparse"));
    cells.push_back(
        run_cell(dense, capacity, spec, options, reps, requests, "dense"));
  }

  bool all_ok = true;
  double dense_lru_speedup = 0.0;
  double log_ratio_sum = 0.0;
  util::Table table("kernel vs virtual dispatch (" +
                    std::to_string(trace.requests.size()) + " requests)");
  table.set_header({"policy", "path", "virtual req/s", "kernel req/s",
                    "speedup", "identical"});
  for (const DispatchCell& c : cells) {
    table.add_row({c.policy, c.path,
                   util::fmt_count(static_cast<std::uint64_t>(c.virtual_rps)),
                   util::fmt_count(static_cast<std::uint64_t>(c.kernel_rps)),
                   util::fmt_fixed(c.speedup, 2),
                   c.identical && c.engines_honest ? "yes" : "NO"});
    all_ok = all_ok && c.identical && c.engines_honest;
    log_ratio_sum += std::log(c.speedup);
    if (c.policy == "LRU" && c.path == "dense") dense_lru_speedup = c.speedup;
  }
  const double geomean_speedup =
      std::exp(log_ratio_sum / static_cast<double>(cells.size()));
  ctx.emit(table, "dispatch_overhead");
  std::cout << "\ngeomean speedup: " << util::fmt_fixed(geomean_speedup, 2)
            << "x, dense LRU: " << util::fmt_fixed(dense_lru_speedup, 2)
            << "x (every cell cross-checked bit-identical)\n";

  std::ostringstream json;
  json << "{\n"
       << "  \"scale\": " << ctx.scale << ",\n"
       << "  \"seed\": " << ctx.seed << ",\n"
       << "  \"cache_fraction\": " << fraction << ",\n"
       << "  \"reps\": " << reps << ",\n"
       << "  \"requests\": " << trace.requests.size() << ",\n"
       << "  \"geomean_speedup\": " << geomean_speedup << ",\n"
       << "  \"dense_lru_speedup\": " << dense_lru_speedup << ",\n"
       << "  \"all_identical\": " << (all_ok ? "true" : "false") << ",\n"
       << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const DispatchCell& c = cells[i];
    json << "    {\"policy\": \"" << c.policy << "\", \"path\": \"" << c.path
         << "\", "
         << "\"virtual_seconds\": " << c.virtual_seconds << ", "
         << "\"kernel_seconds\": " << c.kernel_seconds << ", "
         << "\"virtual_requests_per_sec\": " << c.virtual_rps << ", "
         << "\"kernel_requests_per_sec\": " << c.kernel_rps << ", "
         << "\"speedup\": " << c.speedup << ", "
         << "\"identical\": " << (c.identical ? "true" : "false") << "}"
         << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";

  std::ofstream out(json_path);
  if (!out) {
    std::cerr << "error: cannot write " << json_path << "\n";
    return 1;
  }
  out << json.str();
  std::cout << "wrote " << json_path << "\n";

  if (!all_ok) {
    std::cerr << "error: kernel replay diverged from the virtual path\n";
    return 1;
  }
  return 0;
}
