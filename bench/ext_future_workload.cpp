// Extension benchmark: the paper's opening conjecture, tested.
//
// "We conjecture that in future workloads the percentage of requests to
//  [multi media and application] documents will be substantially larger
//  than in current request streams ... Thus, it is important to investigate
//  the impact of web document types on the performance of web cache
//  replacement schemes." (Section 1)
//
// This bench constructs those future workloads by scaling the DFN profile's
// multi-media + application shares by 1x (today), 2x, 5x and 10x, and
// re-runs the paper's four schemes under both cost models. Watch the
// GD*(1)/GDS(1) byte-hit-rate penalty grow with the multimedia share and
// the packet-cost variants take over — quantifying exactly why the paper
// says the document-type breakdown matters for future cache design.
#include <iostream>

#include "cache/factory.hpp"
#include "common.hpp"
#include "synth/mix_shift.hpp"
#include "util/format.hpp"

int main(int argc, char** argv) {
  using namespace webcache;
  const auto ctx = bench::BenchContext::from_args(argc, argv);
  const util::Args args(argc, argv);
  const double cache_fraction = args.get_double("cache-fraction", 0.08);

  std::cout << "=== Extension: future workloads (DFN base, mm/app shares "
               "scaled; scale="
            << ctx.scale << ", cache " << cache_fraction * 100
            << "% of trace) ===\n\n";

  for (const double growth : {1.0, 2.0, 5.0, 10.0}) {
    const synth::WorkloadProfile profile =
        growth == 1.0 ? synth::WorkloadProfile::DFN()
                      : synth::future_workload(synth::WorkloadProfile::DFN(),
                                               growth);
    const trace::Trace t = ctx.make_trace(profile);
    const auto capacity = static_cast<std::uint64_t>(
        static_cast<double>(t.overall_size_bytes()) * cache_fraction);

    const auto mm_share =
        [&] {
          std::uint64_t mm = 0, total = 0;
          for (const auto& r : t.requests) {
            total += r.transfer_size;
            if (r.doc_class == trace::DocumentClass::kMultiMedia ||
                r.doc_class == trace::DocumentClass::kApplication) {
              mm += r.transfer_size;
            }
          }
          return static_cast<double>(mm) / static_cast<double>(total);
        }();

    util::Table table("mm/app growth x" + util::fmt_fixed(growth, 0) +
                      "  (mm+app = " + util::fmt_percent(mm_share, 1) +
                      "% of requested bytes)");
    table.set_header({"Policy", "HR", "BHR", "MM HR", "MM BHR"});
    for (const char* name : {"LRU", "LFU-DA", "GDS(1)", "GD*(1)",
                             "GDS(packet)", "GD*(packet)"}) {
      const sim::SimResult r = sim::simulate(
          t, capacity, cache::policy_spec_from_name(name),
          ctx.simulator_options());
      const auto& mm = r.of(trace::DocumentClass::kMultiMedia);
      table.add_row({r.policy_name, util::fmt_fixed(r.overall.hit_rate(), 4),
                     util::fmt_fixed(r.overall.byte_hit_rate(), 4),
                     util::fmt_fixed(mm.hit_rate(), 4),
                     util::fmt_fixed(mm.byte_hit_rate(), 4)});
    }
    ctx.emit(table, "ext_future_x" + util::fmt_fixed(growth, 0));
    std::cout << '\n';
  }
  return 0;
}
