// Extension benchmark: institutional edges + backbone root as one system.
//
// The paper assigns the constant cost model to institutional proxies and
// the packet cost model to backbone proxies, but evaluates each level on
// the same raw trace. Here N institutional GD*(1) edges filter the stream
// before a backbone root — so the root policies compete on the miss stream
// a real upper-level proxy would see. Reported per root policy: root hit
// rate (on forwarded requests), combined system rates, and origin traffic.
#include <iostream>

#include "common.hpp"
#include "sim/hierarchy.hpp"
#include "util/format.hpp"

int main(int argc, char** argv) {
  using namespace webcache;
  const auto ctx = bench::BenchContext::from_args(argc, argv);
  const util::Args args(argc, argv);
  const auto edges = static_cast<std::uint32_t>(args.get_uint("edges", 4));
  const double edge_fraction = args.get_double("edge-fraction", 0.005);
  const double root_fraction = args.get_double("root-fraction", 0.08);

  std::cout << "=== Extension: two-level hierarchy (DFN, scale=" << ctx.scale
            << ", " << edges << " edges x " << edge_fraction * 100
            << "% + root " << root_fraction * 100 << "%) ===\n\n";

  const trace::Trace t = ctx.make_trace(synth::WorkloadProfile::DFN());
  const std::uint64_t overall = t.overall_size_bytes();

  util::Table table("Root policy comparison behind GD*(1) edges");
  table.set_header({"Root policy", "Edge HR", "Root HR", "Combined HR",
                    "Combined BHR", "Origin traffic"});
  for (const char* root_policy :
       {"GD*(packet)", "GDS(packet)", "LFU-DA", "LRU", "GD*(1)"}) {
    sim::HierarchyConfig config;
    config.edge_count = edges;
    config.edge_capacity_bytes = static_cast<std::uint64_t>(
        static_cast<double>(overall) * edge_fraction);
    config.edge_policy = cache::policy_spec_from_name("GD*(1)");
    config.root_capacity_bytes = static_cast<std::uint64_t>(
        static_cast<double>(overall) * root_fraction);
    config.root_policy = cache::policy_spec_from_name(root_policy);
    config.simulator = ctx.simulator_options();

    const sim::HierarchyResult r = sim::simulate_hierarchy(t, config);
    table.add_row({root_policy, util::fmt_fixed(r.edge_hit_rate(), 4),
                   util::fmt_fixed(r.root_hit_rate(), 4),
                   util::fmt_fixed(r.combined_hit_rate(), 4),
                   util::fmt_fixed(r.combined_byte_hit_rate(), 4),
                   util::fmt_percent(r.origin_traffic_fraction(), 1) + "%"});
  }
  ctx.emit(table, "ext_hierarchy");

  // Second experiment: strict hierarchy vs the DFN-style sibling mesh.
  util::Table mesh_table(
      "Strict hierarchy vs ICP sibling mesh (GD*(packet) root)");
  mesh_table.set_header({"Topology", "Edge-level HR", "Sibling hits",
                         "Root requests", "Combined HR", "Origin traffic"});
  for (const bool mesh : {false, true}) {
    sim::HierarchyConfig config;
    config.edge_count = edges;
    config.edge_capacity_bytes = static_cast<std::uint64_t>(
        static_cast<double>(overall) * edge_fraction);
    config.edge_policy = cache::policy_spec_from_name("GD*(1)");
    config.root_capacity_bytes = static_cast<std::uint64_t>(
        static_cast<double>(overall) * root_fraction);
    config.root_policy = cache::policy_spec_from_name("GD*(packet)");
    config.simulator = ctx.simulator_options();
    config.sibling_cooperation = mesh;

    const sim::HierarchyResult r = sim::simulate_hierarchy(t, config);
    mesh_table.add_row(
        {mesh ? "Sibling mesh (ICP)" : "Strict hierarchy",
         util::fmt_fixed(r.edge_hit_rate(), 4),
         util::fmt_count(r.sibling_hits.hits),
         util::fmt_count(r.root_requests),
         util::fmt_fixed(r.combined_hit_rate(), 4),
         util::fmt_percent(r.origin_traffic_fraction(), 1) + "%"});
  }
  ctx.emit(mesh_table, "ext_hierarchy_mesh");

  std::cout
      << "Reading: the edges strip short-gap re-references, so the root's\n"
         "hit rate sits well below the single-cache figures of Figure 2/3;\n"
         "byte-oriented root policies (packet cost) minimize origin\n"
         "traffic, matching the paper's institutional-vs-backbone framing.\n"
         "Sibling cooperation (the DFN cache-mesh topology the trace comes\n"
         "from) offloads the root without extra capacity.\n";
  return 0;
}
