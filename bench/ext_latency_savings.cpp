// Extension benchmark: end-user latency, the institutional objective made
// explicit. Cao & Irani's original GreedyDual-Size paper proposed a third
// cost function — estimated download latency — for proxies whose goal is
// response time rather than hit rate or bandwidth. This bench evaluates
// all three GDS/GD* cost variants (and the classical schemes) under a
// latency accounting model (setup + transfer time at fixed bandwidth) on
// the DFN workload.
//
// Expected shape: GDS(latency)/GD*(latency) sit between the constant-cost
// variants (which maximize hit rate, hence setup-time savings) and the
// packet-cost variants (which maximize byte savings, hence transfer-time
// savings), and win once the two latency terms are balanced.
#include <iostream>

#include "cache/factory.hpp"
#include "common.hpp"
#include "util/format.hpp"

int main(int argc, char** argv) {
  using namespace webcache;
  const auto ctx = bench::BenchContext::from_args(argc, argv);
  const util::Args args(argc, argv);
  const double cache_fraction = args.get_double("cache-fraction", 0.04);

  std::cout << "=== Extension: latency savings (DFN, scale=" << ctx.scale
            << ", cache " << cache_fraction * 100
            << "% of trace; origin = 150 ms setup + 400 KB/s) ===\n\n";

  const trace::Trace t = ctx.make_trace(synth::WorkloadProfile::DFN());
  const auto capacity = static_cast<std::uint64_t>(
      static_cast<double>(t.overall_size_bytes()) * cache_fraction);

  util::Table table("Mean response latency per request");
  table.set_header({"Policy", "HR", "BHR", "Mean latency (ms)",
                    "Latency savings"});
  for (const char* name :
       {"LRU", "LFU-DA", "GDS(1)", "GD*(1)", "GDS(packet)", "GD*(packet)",
        "GDS(latency)", "GD*(latency)"}) {
    const sim::SimResult r = sim::simulate(
        t, capacity, cache::policy_spec_from_name(name),
        ctx.simulator_options());
    table.add_row({r.policy_name, util::fmt_fixed(r.overall.hit_rate(), 4),
                   util::fmt_fixed(r.overall.byte_hit_rate(), 4),
                   util::fmt_fixed(r.mean_latency_ms(), 1),
                   util::fmt_percent(r.latency_savings(), 1) + "%"});
  }
  ctx.emit(table, "ext_latency");
  return 0;
}
