// Extension benchmark: the lazy-promotion / RANDOM eviction family through
// the paper's per-document-type lens.
//
// The paper evaluates every scheme per document class because the classes'
// request/byte mixes differ so much that an aggregate hit rate hides the
// interesting behaviour. This benchmark applies the same methodology to
// the stateless-or-cheap family: RANDOM (the paper's classical baseline
// set includes it by reference), CLOCK / DELAY-CLOCK (second-chance
// approximations of LRU with a read-mostly hit path), and the lazy-LRU
// variants PROB-LRU / DELAY-LRU / BATCH-LRU that skip or defer list
// promotion on hits.
//
// The question the table answers: how much of LRU's per-class hit rate do
// the approximations retain, and where does recency actually matter? The
// expectation — borne out on both synthetic workloads — is that the
// second-chance and lazy variants land within a couple of points of LRU on
// every class while RANDOM gives up the most on the recency-heavy HTML
// class, mirroring the classical LRU-vs-RANDOM gap under temporal
// correlation. A second table sweeps PROB-LRU's promotion probability so
// the LRU -> RANDOM-ish degradation is visible as a dial.
#include <iostream>

#include "cache/factory.hpp"
#include "common.hpp"
#include "util/format.hpp"

int main(int argc, char** argv) {
  using namespace webcache;
  const auto ctx = bench::BenchContext::from_args(argc, argv);
  const util::Args args(argc, argv);
  const double cache_fraction = args.get_double("cache-fraction", 0.04);

  std::cout << "=== Extension: lazy-promotion / RANDOM family by document "
               "type (scale="
            << ctx.scale << ", cache " << cache_fraction * 100
            << "% of trace) ===\n\n";

  for (const auto& profile :
       {synth::WorkloadProfile::DFN(), synth::WorkloadProfile::RTP()}) {
    const trace::Trace t = ctx.make_trace(profile);
    const auto capacity = static_cast<std::uint64_t>(
        static_cast<double>(t.overall_size_bytes()) * cache_fraction);

    const auto row_for = [&](const char* name) {
      const sim::SimResult r =
          sim::simulate(t, capacity, cache::policy_spec_from_name(name),
                        ctx.simulator_options());
      return std::vector<std::string>{
          std::string(r.policy_name),
          util::fmt_fixed(r.overall.hit_rate(), 4),
          util::fmt_fixed(r.overall.byte_hit_rate(), 4),
          util::fmt_fixed(r.of(trace::DocumentClass::kImage).hit_rate(), 4),
          util::fmt_fixed(r.of(trace::DocumentClass::kHtml).hit_rate(), 4),
          util::fmt_fixed(
              r.of(trace::DocumentClass::kMultiMedia).byte_hit_rate(), 4),
          util::fmt_fixed(
              r.of(trace::DocumentClass::kApplication).byte_hit_rate(), 4)};
    };

    util::Table table(profile.name +
                      ": LRU vs its lazy/second-chance/random approximations");
    table.set_header({"Policy", "HR", "BHR", "Img HR", "HTML HR", "MM BHR",
                      "App BHR"});
    for (const char* name :
         {"LRU", "CLOCK", "DELAY-CLOCK:k=8", "DELAY-LRU:k=16",
          "BATCH-LRU:batch=64", "PROB-LRU:p=0.1", "RANDOM", "FIFO"}) {
      table.add_row(row_for(name));
    }
    ctx.emit(table, "ext_lazy_promotion_" + profile.name);
    std::cout << '\n';

    util::Table dial(profile.name +
                     ": PROB-LRU promotion-probability dial (p=1 is LRU)");
    dial.set_header({"Policy", "HR", "BHR", "Img HR", "HTML HR", "MM BHR",
                     "App BHR"});
    for (const char* name :
         {"PROB-LRU:p=1", "PROB-LRU:p=0.5", "PROB-LRU:p=0.1",
          "PROB-LRU:p=0.01", "RANDOM"}) {
      dial.add_row(row_for(name));
    }
    ctx.emit(dial, "ext_lazy_promotion_dial_" + profile.name);
    std::cout << '\n';
  }
  return 0;
}
