// Extension benchmark: class-partitioned caches vs the unified schemes.
//
// The paper's conclusion calls for understanding document types "for the
// effective design of web cache replacement schemes under changing workload
// characteristics". The simplest type-aware design is a static partition:
// give each document class its own slice of the cache. This bench compares
//   * the paper's unified GD*(1) / LRU,
//   * partitions sized by the request mix (hit-rate oriented),
//   * partitions sized by the byte mix (byte-hit oriented),
// reporting the per-class trade the partitioning buys (notably: a protected
// multi-media budget recovers byte hit rate that unified GD*(1) sacrifices).
#include <iostream>

#include "cache/partitioned.hpp"
#include "common.hpp"
#include "util/format.hpp"
#include "workload/breakdown.hpp"

int main(int argc, char** argv) {
  using namespace webcache;
  const auto ctx = bench::BenchContext::from_args(argc, argv);
  const util::Args args(argc, argv);
  const double cache_fraction = args.get_double("cache-fraction", 0.08);

  std::cout << "=== Extension: class-partitioned caches (DFN, scale="
            << ctx.scale << ", cache " << cache_fraction * 100
            << "% of trace) ===\n\n";

  const trace::Trace t = ctx.make_trace(synth::WorkloadProfile::DFN());
  const auto capacity = static_cast<std::uint64_t>(
      static_cast<double>(t.overall_size_bytes()) * cache_fraction);
  const workload::Breakdown bd = workload::compute_breakdown(t);

  std::array<double, trace::kDocumentClassCount> request_mix{};
  std::array<double, trace::kDocumentClassCount> byte_mix{};
  for (const auto cls : trace::kAllDocumentClasses) {
    request_mix[static_cast<std::size_t>(cls)] = bd.request_fraction(cls);
    byte_mix[static_cast<std::size_t>(cls)] =
        bd.requested_bytes_fraction(cls);
  }

  struct Variant {
    std::string label;
    sim::SimResult result;
  };
  std::vector<Variant> variants;

  for (const char* name : {"GD*(1)", "LRU"}) {
    variants.push_back(
        {std::string("Unified ") + name,
         sim::simulate(t, capacity, cache::policy_spec_from_name(name),
                       ctx.simulator_options())});
  }
  {
    cache::PartitionedCache request_part(
        cache::PartitionedCacheConfig::uniform_policy(
            capacity, cache::policy_spec_from_name("GD*(1)"), request_mix));
    variants.push_back({"Partitioned GD*(1), request-mix shares",
                        sim::simulate(t, request_part, ctx.simulator_options())});
  }
  {
    cache::PartitionedCache byte_part(
        cache::PartitionedCacheConfig::uniform_policy(
            capacity, cache::policy_spec_from_name("GD*(1)"), byte_mix));
    variants.push_back({"Partitioned GD*(1), byte-mix shares",
                        sim::simulate(t, byte_part, ctx.simulator_options())});
  }

  util::Table table("Unified vs partitioned at " +
                    util::fmt_bytes(static_cast<double>(capacity)));
  table.set_header({"Configuration", "HR", "BHR", "MM HR", "MM BHR",
                    "Images HR"});
  for (const Variant& v : variants) {
    const auto& mm = v.result.of(trace::DocumentClass::kMultiMedia);
    const auto& img = v.result.of(trace::DocumentClass::kImage);
    table.add_row({v.label, util::fmt_fixed(v.result.overall.hit_rate(), 4),
                   util::fmt_fixed(v.result.overall.byte_hit_rate(), 4),
                   util::fmt_fixed(mm.hit_rate(), 4),
                   util::fmt_fixed(mm.byte_hit_rate(), 4),
                   util::fmt_fixed(img.hit_rate(), 4)});
  }
  ctx.emit(table, "ext_partitioned");

  std::cout
      << "Reading: request-mix shares track unified GD*(1) (images/HTML\n"
         "dominate both); byte-mix shares guarantee multi media and\n"
         "application partitions, trading a little overall hit rate for\n"
         "their byte hit rate — the dial the paper's per-type analysis\n"
         "exposes.\n";
  return 0;
}
