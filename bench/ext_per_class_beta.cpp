// Extension benchmark: per-class beta estimation — testing the paper's own
// diagnosis.
//
// Section 4.4 attributes GD*(packet)'s weaker RTP results to the overall
// temporal-correlation slope being "dominated by the slope of image
// documents", mis-aging HTML, multi media and application documents whose
// per-type betas are much larger. GD*C replaces the single online beta
// with one estimator per document class (cache/gdstar_class.hpp).
//
// If the diagnosis is right, GD*C(packet) should recover byte hit rate on
// the RTP-like workload relative to GD*(packet), with little or no cost on
// the DFN-like workload where one class dominates anyway.
#include <iostream>

#include "cache/factory.hpp"
#include "cache/gdstar_class.hpp"
#include "common.hpp"
#include "util/format.hpp"

int main(int argc, char** argv) {
  using namespace webcache;
  const auto ctx = bench::BenchContext::from_args(argc, argv);
  const util::Args args(argc, argv);
  const double cache_fraction = args.get_double("cache-fraction", 0.04);

  std::cout << "=== Extension: global vs per-class beta for GD* (scale="
            << ctx.scale << ", cache " << cache_fraction * 100
            << "% of trace) ===\n\n";

  for (const auto& profile :
       {synth::WorkloadProfile::DFN(), synth::WorkloadProfile::RTP()}) {
    const trace::Trace t = ctx.make_trace(profile);
    const auto capacity = static_cast<std::uint64_t>(
        static_cast<double>(t.overall_size_bytes()) * cache_fraction);

    util::Table table(profile.name + ": one beta vs beta per class");
    table.set_header({"Policy", "HR", "BHR", "HTML BHR", "MM BHR",
                      "App BHR"});
    for (const char* name : {"GDS(packet)", "GD*(packet)", "GD*C(packet)",
                             "GD*(1)", "GD*C(1)"}) {
      const sim::SimResult r = sim::simulate(
          t, capacity, cache::policy_spec_from_name(name),
          ctx.simulator_options());
      table.add_row(
          {r.policy_name, util::fmt_fixed(r.overall.hit_rate(), 4),
           util::fmt_fixed(r.overall.byte_hit_rate(), 4),
           util::fmt_fixed(r.of(trace::DocumentClass::kHtml).byte_hit_rate(),
                           4),
           util::fmt_fixed(
               r.of(trace::DocumentClass::kMultiMedia).byte_hit_rate(), 4),
           util::fmt_fixed(
               r.of(trace::DocumentClass::kApplication).byte_hit_rate(), 4)});
    }
    ctx.emit(table, "ext_per_class_beta_" + profile.name);

    // The learned per-class exponents, for the record. The frontend owns
    // the policy, so it must outlive the beta readout below.
    auto policy = std::make_unique<cache::GdStarPerClassPolicy>(
        cache::CostModelKind::kPacket);
    const cache::GdStarPerClassPolicy* probe = policy.get();
    cache::SingleCacheFrontend frontend(capacity, std::move(policy));
    sim::simulate(t, frontend, ctx.simulator_options());
    util::Table betas(profile.name + ": learned per-class beta (GD*C)");
    std::vector<std::string> header = {""};
    std::vector<std::string> row = {"beta"};
    for (const auto cls : trace::kAllDocumentClasses) {
      header.emplace_back(trace::to_string(cls));
      row.push_back(util::fmt_fixed(probe->beta(cls), 2));
    }
    betas.set_header(header);
    betas.add_row(row);
    ctx.emit(betas, "ext_per_class_beta_learned_" + profile.name);
    std::cout << '\n';
  }
  return 0;
}
