// Fault-layer overhead harness.
//
// The hierarchy and partitioned replay loops are templated on a fault
// policy: the plain entry points instantiate them with sim::NoFaults, whose
// predicates are constexpr and compile away — that instantiation *is* the
// pre-fault code path, so the no-faults build is structurally zero-cost and
// bit-identical by construction. What needs measuring is the FaultRun
// instantiation: the per-request schedule advance and node-state checks
// that every request pays once a schedule object is passed, even an empty
// one. This harness replays a synthetic DFN workload through the 3-edge
// sibling mesh, sparse and dense, and times three variants per cell:
//
//   plain      simulate_hierarchy(trace, config)               — NoFaults
//   empty      simulate_hierarchy(trace, config, {})           — FaultRun,
//              no events: the steady-state cost of the fault machinery
//   faulted    a crash/outage/recovery scenario actually firing
//
// Correctness cross-checks per cell (any failure exits 1):
//   * the empty-schedule result must be bit-identical to the plain one;
//   * the faulted run must conserve the stream
//     (hits + lost <= offered requests).
// Overhead is reported, not gated — wall-clock noise on shared CI runners
// would make a hard threshold flaky.
//
// Output: a table on stdout plus machine-readable BENCH_fault_overhead.json
// (override with --json=<path>).
//
// Extra flags on top of the common bench set:
//   --reps=<n>   timed repetitions per cell, best-of-n (default 3)
//   --json=<path>  where to write the JSON report
#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cache/factory.hpp"
#include "common.hpp"
#include "sim/faults.hpp"
#include "sim/hierarchy.hpp"
#include "trace/dense_trace.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using namespace webcache;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

template <typename Run>
double timed(Run&& run) {
  const auto start = std::chrono::steady_clock::now();
  run();
  return seconds_since(start);
}

bool counters_equal(const sim::HitCounters& a, const sim::HitCounters& b) {
  return a.requests == b.requests && a.hits == b.hits &&
         a.requested_bytes == b.requested_bytes && a.hit_bytes == b.hit_bytes;
}

bool results_identical(const sim::HierarchyResult& a,
                       const sim::HierarchyResult& b) {
  if (!counters_equal(a.offered, b.offered) ||
      !counters_equal(a.edge_hits, b.edge_hits) ||
      !counters_equal(a.sibling_hits, b.sibling_hits) ||
      !counters_equal(a.root_hits, b.root_hits)) {
    return false;
  }
  for (std::size_t c = 0; c < a.edge_per_class.size(); ++c) {
    if (!counters_equal(a.edge_per_class[c], b.edge_per_class[c]) ||
        !counters_equal(a.root_per_class[c], b.root_per_class[c])) {
      return false;
    }
  }
  return a.root_requests == b.root_requests &&
         a.edge_evictions == b.edge_evictions &&
         a.root_evictions == b.root_evictions;
}

struct OverheadCell {
  std::string policy;
  std::string path;  // "sparse" | "dense"
  double plain_seconds = 0.0;
  double empty_seconds = 0.0;
  double faulted_seconds = 0.0;
  double empty_overhead_pct = 0.0;
  double faulted_overhead_pct = 0.0;
  bool identical = false;
  bool conserved = false;
};

/// A scenario that keeps the fault machinery busy without dominating the
/// replay: an edge crash + recovery, a root outage, and a degraded probe
/// window, spread across the middle of the trace.
sim::FaultSchedule busy_schedule(std::uint64_t total_requests) {
  sim::FaultSchedule s;
  const std::uint64_t step = std::max<std::uint64_t>(1, total_requests / 10);
  s.events.push_back({2 * step, sim::FaultKind::kEdgeCrash, 0});
  s.events.push_back({4 * step, sim::FaultKind::kEdgeRecover, 0});
  s.events.push_back({5 * step, sim::FaultKind::kProbeDegrade, 1});
  s.events.push_back({6 * step, sim::FaultKind::kProbeRestore, 1});
  s.events.push_back({6 * step, sim::FaultKind::kRootOutage, 0});
  s.events.push_back({8 * step, sim::FaultKind::kRootRecover, 0});
  s.probe_timeout_rate = 0.5;
  return s;
}

template <typename TraceT>
OverheadCell run_cell(const TraceT& trace, const sim::HierarchyConfig& config,
                      const sim::FaultSchedule& scenario,
                      const std::string& policy, int reps,
                      const std::string& path) {
  const sim::FaultSchedule empty;
  sim::HierarchyResult plain_result;
  sim::HierarchyResult empty_result;
  sim::HierarchyResult faulted_result;
  plain_result = sim::simulate_hierarchy(trace, config);  // untimed warm-up

  double plain = 0.0;
  double empty_s = 0.0;
  double faulted = 0.0;
  for (int i = 0; i < reps; ++i) {
    // Rotate the order so clock drift cancels instead of consistently
    // penalizing the later legs.
    double a = 0.0, b = 0.0, c = 0.0;
    const auto run_plain = [&] {
      a = timed([&] { plain_result = sim::simulate_hierarchy(trace, config); });
    };
    const auto run_empty = [&] {
      b = timed([&] {
        empty_result = sim::simulate_hierarchy(trace, config, empty);
      });
    };
    const auto run_faulted = [&] {
      c = timed([&] {
        faulted_result = sim::simulate_hierarchy(trace, config, scenario);
      });
    };
    switch (i % 3) {
      case 0: run_plain(); run_empty(); run_faulted(); break;
      case 1: run_empty(); run_faulted(); run_plain(); break;
      default: run_faulted(); run_plain(); run_empty(); break;
    }
    if (i == 0 || a < plain) plain = a;
    if (i == 0 || b < empty_s) empty_s = b;
    if (i == 0 || c < faulted) faulted = c;
  }

  OverheadCell cell;
  cell.policy = policy;
  cell.path = path;
  cell.plain_seconds = plain;
  cell.empty_seconds = empty_s;
  cell.faulted_seconds = faulted;
  cell.empty_overhead_pct = (empty_s / plain - 1.0) * 100.0;
  cell.faulted_overhead_pct = (faulted / plain - 1.0) * 100.0;
  cell.identical = results_identical(plain_result, empty_result);
  cell.conserved =
      faulted_result.offered.hits + faulted_result.faults.lost_requests <=
      faulted_result.offered.requests;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const auto ctx = bench::BenchContext::from_args(argc, argv);
  const util::Args args(argc, argv);
  const int reps = std::max(1, static_cast<int>(args.get_uint("reps", 3)));
  const std::string json_path = args.get("json", "BENCH_fault_overhead.json");

  std::cout << "=== Fault-layer overhead vs plain hierarchy replay (scale="
            << ctx.scale << ", reps=" << reps << ") ===\n\n";

  const trace::Trace trace = ctx.make_trace(synth::WorkloadProfile::DFN());
  const trace::DenseTrace dense = trace::densify(trace);
  const sim::FaultSchedule scenario = busy_schedule(trace.total_requests());

  std::vector<OverheadCell> cells;
  for (const std::string& policy : {"LRU", "GD*(1)"}) {
    sim::HierarchyConfig config;
    config.edge_count = 3;
    config.edge_capacity_bytes = trace.overall_size_bytes() / 150;
    config.edge_policy = cache::policy_spec_from_name(policy);
    config.root_capacity_bytes = trace.overall_size_bytes() / 12;
    config.root_policy = cache::policy_spec_from_name(policy);
    config.sibling_cooperation = true;
    config.simulator = ctx.simulator_options();
    cells.push_back(
        run_cell(trace, config, scenario, policy, reps, "sparse"));
    cells.push_back(run_cell(dense, config, scenario, policy, reps, "dense"));
  }

  bool all_ok = true;
  double worst_empty = 0.0;
  double log_ratio_sum = 0.0;
  util::Table table("Fault-layer overhead (" +
                    std::to_string(trace.requests.size()) + " requests, "
                    "3-edge mesh)");
  table.set_header({"policy", "path", "plain s", "empty-faults s",
                    "faulted s", "empty %", "faulted %", "identical",
                    "conserved"});
  for (const OverheadCell& c : cells) {
    table.add_row({c.policy, c.path, util::fmt_fixed(c.plain_seconds, 4),
                   util::fmt_fixed(c.empty_seconds, 4),
                   util::fmt_fixed(c.faulted_seconds, 4),
                   util::fmt_fixed(c.empty_overhead_pct, 2),
                   util::fmt_fixed(c.faulted_overhead_pct, 2),
                   c.identical ? "yes" : "NO", c.conserved ? "yes" : "NO"});
    all_ok = all_ok && c.identical && c.conserved;
    worst_empty = std::max(worst_empty, c.empty_overhead_pct);
    log_ratio_sum += std::log(c.empty_seconds / c.plain_seconds);
  }
  const double geomean_empty =
      (std::exp(log_ratio_sum / static_cast<double>(cells.size())) - 1.0) *
      100.0;
  ctx.emit(table, "fault_overhead");
  std::cout << "\ngeomean empty-schedule overhead: "
            << util::fmt_fixed(geomean_empty, 2) << "%, worst cell: "
            << util::fmt_fixed(worst_empty, 2)
            << "% (NoFaults is the plain instantiation: 0% by construction)\n";

  std::ostringstream json;
  json << "{\n"
       << "  \"scale\": " << ctx.scale << ",\n"
       << "  \"seed\": " << ctx.seed << ",\n"
       << "  \"reps\": " << reps << ",\n"
       << "  \"requests\": " << trace.requests.size() << ",\n"
       << "  \"geomean_empty_overhead_pct\": " << geomean_empty << ",\n"
       << "  \"worst_empty_overhead_pct\": " << worst_empty << ",\n"
       << "  \"all_identical\": " << (all_ok ? "true" : "false") << ",\n"
       << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const OverheadCell& c = cells[i];
    json << "    {\"policy\": \"" << c.policy << "\", \"path\": \"" << c.path
         << "\", \"plain_seconds\": " << c.plain_seconds
         << ", \"empty_seconds\": " << c.empty_seconds
         << ", \"faulted_seconds\": " << c.faulted_seconds
         << ", \"empty_overhead_pct\": " << c.empty_overhead_pct
         << ", \"faulted_overhead_pct\": " << c.faulted_overhead_pct
         << ", \"identical\": " << (c.identical ? "true" : "false")
         << ", \"conserved\": " << (c.conserved ? "true" : "false") << "}"
         << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";

  std::ofstream out(json_path);
  if (!out) {
    std::cerr << "error: cannot write " << json_path << "\n";
    return 1;
  }
  out << json.str();
  std::cout << "wrote " << json_path << "\n";

  if (!all_ok) {
    std::cerr << "error: the fault-aware replay diverged from the baseline\n";
    return 1;
  }
  return 0;
}
