// Regenerates Figure 1: adaptability of GD* — occupation of the web cache
// by the different document types under GD*(1) and GD*(packet) on the DFN
// trace, as a function of processed requests. Left panels in the paper plot
// the fraction of cached documents, right panels the fraction of cached
// bytes.
//
// The paper uses a 1 GB cache against the full trace; we use the same
// fraction of the (scaled) overall trace size via --cache-fraction
// (default 0.0175, roughly what 1 GB was of the DFN trace's overall size).
//
// Expected shape (Section 4.2): GD*(1)'s cached-byte fractions are nearly
// constant and close to the per-class request/document shares, with multi
// media pinned near zero — it "does not waste space of the web cache by
// keeping large multi media and application documents that will not be
// requested again in the near future", which is why it wins hit rate.
// GD*(packet) keeps the *count* of cached documents per class close to the
// request mix; its cached-byte fractions are therefore highly variable and
// skewed toward the large classes (images well below 76%, application
// substantially above 15%) — it "is able to deliver even large documents,
// achieving high byte hit rates on the cost of lower hit rates".
#include <iostream>

#include "cache/factory.hpp"
#include "common.hpp"
#include "sim/reporter.hpp"
#include "util/format.hpp"

int main(int argc, char** argv) {
  using namespace webcache;
  const auto ctx = bench::BenchContext::from_args(argc, argv);
  const util::Args args(argc, argv);
  const double cache_fraction = args.get_double("cache-fraction", 0.0175);
  const auto samples =
      static_cast<std::uint32_t>(args.get_uint("samples", 20));

  std::cout << "=== Figure 1: occupation of the cache by document type "
               "(DFN, scale="
            << ctx.scale << ", cache " << cache_fraction * 100 << "% of trace) ===\n\n";

  const trace::Trace t = ctx.make_trace(synth::WorkloadProfile::DFN());
  const auto capacity = static_cast<std::uint64_t>(
      static_cast<double>(t.overall_size_bytes()) * cache_fraction);

  sim::SimulatorOptions opts = ctx.simulator_options();
  opts.occupancy_samples = samples;

  const std::array<std::pair<const char*, const char*>, 2> schemes = {
      std::pair{"GD*(1)", "gdstar_constant"},
      std::pair{"GD*(packet)", "gdstar_packet"}};
  for (const auto& [policy_name, slug] : schemes) {
    const cache::PolicySpec spec = cache::policy_spec_from_name(policy_name);
    const sim::SimResult result = sim::simulate(t, capacity, spec, opts);
    const std::string tag(policy_name);
    ctx.emit(sim::render_occupancy_series(
                 result, /*bytes=*/false,
                 tag + ": fraction of cached documents (%)"),
             std::string("fig1_docs_") + slug);
    ctx.emit(sim::render_occupancy_series(result, /*bytes=*/true,
                                          tag + ": fraction of cached bytes (%)"),
             std::string("fig1_bytes_") + slug);
  }

  // Reference: the request mix the occupancy should track under GD*(1).
  const synth::WorkloadProfile profile = synth::WorkloadProfile::DFN();
  util::Table mix("Reference: share of requests per document type (%)");
  std::vector<std::string> header = {""};
  std::vector<std::string> row = {"% of requests"};
  for (const auto cls : trace::kAllDocumentClasses) {
    header.emplace_back(trace::to_string(cls));
    row.push_back(util::fmt_percent(profile.of(cls).request_fraction, 2));
  }
  mix.set_header(header);
  mix.add_row(row);
  ctx.emit(mix, "fig1_request_mix");
  return 0;
}
