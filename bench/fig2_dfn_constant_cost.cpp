// Regenerates Figure 2: DFN trace, constant cost model — hit rate (left)
// and byte hit rate (right) for LRU, LFU-DA, GDS(1) and GD*(1) over cache
// sizes from ~0.5% to ~40% of overall trace size, broken down into images,
// HTML, multi media and application documents.
//
// Expected shape (Section 4.3):
//  * frequency-based beats recency-based in hit rate: GD*(1) > GDS(1) and
//    LFU-DA > LRU, most visibly for images and application documents;
//  * for multi media documents LRU achieves the best hit rates closely
//    followed by LFU-DA, and GD*(1) performs worse than GDS(1);
//  * LRU/LFU-DA trail badly in hit rate for images and HTML (no size
//    awareness);
//  * for multi media, GDS(1)/GD*(1) byte hit rates collapse, dragging their
//    overall byte hit rate below LRU/LFU-DA.
#include <iostream>

#include "cache/factory.hpp"
#include "common.hpp"
#include "sim/reporter.hpp"
#include "sim/sweep.hpp"

int main(int argc, char** argv) {
  using namespace webcache;
  const auto ctx = bench::BenchContext::from_args(argc, argv);
  std::cout << "=== Figure 2: DFN, constant cost model (scale=" << ctx.scale
            << ") ===\n\n";

  const trace::Trace t = ctx.make_trace(synth::WorkloadProfile::DFN());

  sim::SweepConfig config;
  config.cache_fractions = bench::paper_cache_fractions();
  config.policies = cache::paper_policy_set(cache::CostModelKind::kConstant);
  config.simulator = ctx.simulator_options();
  config.threads = ctx.threads;
  const sim::SweepResult sweep = sim::run_sweep(t, config);

  const std::array<trace::DocumentClass, 4> figure_classes = {
      trace::DocumentClass::kImage, trace::DocumentClass::kHtml,
      trace::DocumentClass::kMultiMedia, trace::DocumentClass::kApplication};

  for (const auto cls : figure_classes) {
    const std::string name(trace::to_string(cls));
    ctx.emit(sim::render_sweep_panel(sweep, cls, sim::Metric::kHitRate,
                                     name + ": hit rate"),
             "fig2_hr_" + name);
    ctx.emit(sim::render_sweep_panel(sweep, cls, sim::Metric::kByteHitRate,
                                     name + ": byte hit rate"),
             "fig2_bhr_" + name);
  }
  ctx.emit(sim::render_sweep_overall(sweep, sim::Metric::kHitRate,
                                     "Overall: hit rate"),
           "fig2_hr_overall");
  ctx.emit(sim::render_sweep_overall(sweep, sim::Metric::kByteHitRate,
                                     "Overall: byte hit rate"),
           "fig2_bhr_overall");
  return 0;
}
