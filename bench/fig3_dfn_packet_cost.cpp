// Regenerates Figure 3: DFN trace, packet cost model — hit rate (left) and
// byte hit rate (right) for LRU, LFU-DA, GDS(packet) and GD*(packet).
//
// Expected shape (Section 4.3, third experiment):
//  * GD*(packet) outperforms LRU, LFU-DA and GDS(packet) in both hit rate
//    and byte hit rate;
//  * clear hit-rate advantage for images, HTML and application documents;
//  * significantly higher byte hit rates for images, HTML and multi media;
//  * compared with GD*(1) (Figure 2): lower hit rates for images and
//    application documents, but considerably higher byte hit rates for
//    HTML, multi media and application documents.
#include <iostream>

#include "cache/factory.hpp"
#include "common.hpp"
#include "sim/reporter.hpp"
#include "sim/sweep.hpp"

int main(int argc, char** argv) {
  using namespace webcache;
  const auto ctx = bench::BenchContext::from_args(argc, argv);
  std::cout << "=== Figure 3: DFN, packet cost model (scale=" << ctx.scale
            << ") ===\n\n";

  const trace::Trace t = ctx.make_trace(synth::WorkloadProfile::DFN());

  sim::SweepConfig config;
  config.cache_fractions = bench::paper_cache_fractions();
  config.policies = cache::paper_policy_set(cache::CostModelKind::kPacket);
  config.simulator = ctx.simulator_options();
  config.threads = ctx.threads;
  const sim::SweepResult sweep = sim::run_sweep(t, config);

  const std::array<trace::DocumentClass, 4> figure_classes = {
      trace::DocumentClass::kImage, trace::DocumentClass::kHtml,
      trace::DocumentClass::kMultiMedia, trace::DocumentClass::kApplication};

  for (const auto cls : figure_classes) {
    const std::string name(trace::to_string(cls));
    ctx.emit(sim::render_sweep_panel(sweep, cls, sim::Metric::kHitRate,
                                     name + ": hit rate"),
             "fig3_hr_" + name);
    ctx.emit(sim::render_sweep_panel(sweep, cls, sim::Metric::kByteHitRate,
                                     name + ": byte hit rate"),
             "fig3_bhr_" + name);
  }
  ctx.emit(sim::render_sweep_overall(sweep, sim::Metric::kHitRate,
                                     "Overall: hit rate"),
           "fig3_hr_overall");
  ctx.emit(sim::render_sweep_overall(sweep, sim::Metric::kByteHitRate,
                                     "Overall: byte hit rate"),
           "fig3_bhr_overall");
  return 0;
}
