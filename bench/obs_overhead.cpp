// Instrumentation overhead harness for the obs layer.
//
// The replay loops are templated on a StatsSink. The uninstrumented
// simulate() entry points instantiate the loop with obs::NullSink, whose
// hooks are empty inline functions — that instantiation *is* the pre-obs
// code path, so the NullSink build is structurally zero-cost and
// bit-identical by construction. What needs measuring is the RecordingSink
// instantiation: this harness replays a synthetic DFN workload through the
// four paper policies under both cost models, over both the map-backed and
// the dense-id paths, once uninstrumented and once with a RecordingSink
// attached, and reports the relative overhead per cell.
//
// Correctness cross-checks per cell (any failure exits 1):
//   * the instrumented SimResult must be bit-identical to the baseline;
//   * the sink's windowed series must sum back to the aggregate exactly
//     (measured requests/hits/bytes, whole-run evictions, bypasses).
// Overhead itself is reported, not gated — wall-clock noise on shared CI
// runners would make a hard threshold flaky; scripts/trend_throughput.py
// tracks regressions across runs instead.
//
// Output: a table on stdout plus machine-readable BENCH_obs_overhead.json
// (override with --json=<path>).
//
// Extra flags on top of the common bench set:
//   --reps=<n>       timed repetitions per cell, best-of-n (default 3)
//   --fraction=<f>   cache size as a fraction of overall trace size
//                    (default 0.04 — eviction-heavy, mid-ladder)
//   --window=<n>     sink window length in requests (default 10000)
//   --json=<path>    where to write the JSON report
#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cache/factory.hpp"
#include "common.hpp"
#include "obs/stats_sink.hpp"
#include "sim/simulator.hpp"
#include "trace/dense_trace.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using namespace webcache;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

template <typename Run>
double timed(Run&& run) {
  const auto start = std::chrono::steady_clock::now();
  run();
  return seconds_since(start);
}

bool counters_equal(const sim::HitCounters& a, const sim::HitCounters& b) {
  return a.requests == b.requests && a.hits == b.hits &&
         a.requested_bytes == b.requested_bytes && a.hit_bytes == b.hit_bytes;
}

bool results_identical(const sim::SimResult& a, const sim::SimResult& b) {
  if (!counters_equal(a.overall, b.overall)) return false;
  for (std::size_t c = 0; c < a.per_class.size(); ++c) {
    if (!counters_equal(a.per_class[c], b.per_class[c])) return false;
  }
  return a.evictions == b.evictions && a.bypasses == b.bypasses &&
         a.modification_misses == b.modification_misses &&
         a.interrupted_transfers == b.interrupted_transfers;
}

/// The windowed series must roll up to the aggregate exactly: request-side
/// counters over measured traffic, evictions over the whole run.
bool series_sums_back(const obs::MetricsSeries& series,
                      const sim::SimResult& result) {
  const obs::WindowCounters totals = series.totals();
  if (totals.requests != result.overall.requests ||
      totals.hits != result.overall.hits ||
      totals.requested_bytes != result.overall.requested_bytes ||
      totals.hit_bytes != result.overall.hit_bytes ||
      totals.evictions != result.evictions ||
      series.total_bypasses() != result.bypasses) {
    return false;
  }
  const auto per_class = series.class_totals();
  for (const auto cls : trace::kAllDocumentClasses) {
    const auto i = static_cast<std::size_t>(cls);
    const sim::HitCounters& agg = result.per_class[i];
    if (per_class[i].requests != agg.requests ||
        per_class[i].hits != agg.hits ||
        per_class[i].requested_bytes != agg.requested_bytes ||
        per_class[i].hit_bytes != agg.hit_bytes) {
      return false;
    }
  }
  return true;
}

struct OverheadCell {
  std::string policy;
  std::string cost_model;
  std::string path;  // "sparse" | "dense"
  double baseline_seconds = 0.0;
  double recording_seconds = 0.0;
  double overhead_pct = 0.0;
  std::uint64_t windows = 0;
  bool identical = false;
  bool sums_back = false;
};

std::string_view cost_model_name(cache::CostModelKind kind) {
  switch (kind) {
    case cache::CostModelKind::kConstant:
      return "constant";
    case cache::CostModelKind::kPacket:
      return "packet";
    case cache::CostModelKind::kLatency:
      return "latency";
  }
  return "?";
}

template <typename TraceT>
OverheadCell run_cell(const TraceT& trace, std::uint64_t capacity,
                      const cache::PolicySpec& spec,
                      const sim::SimulatorOptions& options, int reps,
                      std::uint64_t window, const std::string& path) {
  // Interleave the two variants (ABAB...) and keep the best repetition of
  // each: clock-speed drift between phases would otherwise masquerade as
  // instrumentation overhead. One untimed warm-up run primes the caches.
  sim::SimResult baseline_result;
  sim::SimResult recording_result;
  obs::RecordingSink sink(window);
  baseline_result = sim::simulate(trace, capacity, spec, options);
  double baseline = 0.0;
  double recording = 0.0;
  for (int i = 0; i < reps; ++i) {
    // ABBA ordering: alternate which variant goes first so short-term
    // drift cancels instead of consistently penalizing the second leg.
    double b = 0.0;
    double r = 0.0;
    const auto run_baseline = [&] {
      b = timed([&] {
        baseline_result = sim::simulate(trace, capacity, spec, options);
      });
    };
    const auto run_recording = [&] {
      r = timed([&] {
        recording_result =
            sim::simulate(trace, capacity, spec, options, sink);
      });
    };
    if (i % 2 == 0) {
      run_baseline();
      run_recording();
    } else {
      run_recording();
      run_baseline();
    }
    if (i == 0 || b < baseline) baseline = b;
    if (i == 0 || r < recording) recording = r;
  }

  OverheadCell cell;
  cell.policy = recording_result.policy_name;
  cell.cost_model = std::string(cost_model_name(spec.cost_model));
  cell.path = path;
  cell.baseline_seconds = baseline;
  cell.recording_seconds = recording;
  cell.overhead_pct = (recording / baseline - 1.0) * 100.0;
  cell.windows = sink.series().windows.size();
  cell.identical = results_identical(baseline_result, recording_result);
  cell.sums_back = series_sums_back(sink.series(), recording_result);
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const auto ctx = bench::BenchContext::from_args(argc, argv);
  const util::Args args(argc, argv);
  const int reps = std::max(1, static_cast<int>(args.get_uint("reps", 3)));
  const double fraction = args.get_double("fraction", 0.04);
  const std::uint64_t window = args.get_uint("window", 10000);
  const std::string json_path = args.get("json", "BENCH_obs_overhead.json");

  std::cout << "=== RecordingSink overhead vs uninstrumented replay (scale="
            << ctx.scale << ", fraction=" << fraction << ", window=" << window
            << ", reps=" << reps << ") ===\n\n";

  const sim::SimulatorOptions options = ctx.simulator_options();
  const trace::Trace trace = ctx.make_trace(synth::WorkloadProfile::DFN());
  const trace::DenseTrace dense = trace::densify(trace);
  const auto capacity = static_cast<std::uint64_t>(
      static_cast<double>(trace.overall_size_bytes()) * fraction);

  std::vector<cache::PolicySpec> specs =
      cache::paper_policy_set(cache::CostModelKind::kConstant);
  for (const cache::PolicySpec& spec :
       cache::paper_policy_set(cache::CostModelKind::kPacket)) {
    specs.push_back(spec);
  }

  std::vector<OverheadCell> cells;
  for (const cache::PolicySpec& spec : specs) {
    cells.push_back(
        run_cell(trace, capacity, spec, options, reps, window, "sparse"));
    cells.push_back(
        run_cell(dense, capacity, spec, options, reps, window, "dense"));
  }

  bool all_ok = true;
  double worst_overhead = 0.0;
  double log_ratio_sum = 0.0;
  util::Table table("RecordingSink overhead (" +
                    std::to_string(trace.requests.size()) + " requests)");
  table.set_header({"policy", "cost", "path", "baseline s", "recording s",
                    "overhead %", "identical", "sums back"});
  for (const OverheadCell& c : cells) {
    table.add_row({c.policy, c.cost_model, c.path,
                   util::fmt_fixed(c.baseline_seconds, 4),
                   util::fmt_fixed(c.recording_seconds, 4),
                   util::fmt_fixed(c.overhead_pct, 2),
                   c.identical ? "yes" : "NO", c.sums_back ? "yes" : "NO"});
    all_ok = all_ok && c.identical && c.sums_back;
    worst_overhead = std::max(worst_overhead, c.overhead_pct);
    log_ratio_sum += std::log(c.recording_seconds / c.baseline_seconds);
  }
  const double geomean_overhead =
      (std::exp(log_ratio_sum / static_cast<double>(cells.size())) - 1.0) *
      100.0;
  ctx.emit(table, "obs_overhead");
  std::cout << "\ngeomean overhead: " << util::fmt_fixed(geomean_overhead, 2)
            << "%, worst cell: " << util::fmt_fixed(worst_overhead, 2)
            << "% (NullSink is the uninstrumented instantiation: 0% by "
               "construction)\n";

  std::ostringstream json;
  json << "{\n"
       << "  \"scale\": " << ctx.scale << ",\n"
       << "  \"seed\": " << ctx.seed << ",\n"
       << "  \"cache_fraction\": " << fraction << ",\n"
       << "  \"window_requests\": " << window << ",\n"
       << "  \"reps\": " << reps << ",\n"
       << "  \"requests\": " << trace.requests.size() << ",\n"
       << "  \"null_sink_overhead_pct\": 0,\n"
       << "  \"geomean_overhead_pct\": " << geomean_overhead << ",\n"
       << "  \"worst_overhead_pct\": " << worst_overhead << ",\n"
       << "  \"all_identical\": " << (all_ok ? "true" : "false") << ",\n"
       << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const OverheadCell& c = cells[i];
    json << "    {\"policy\": \"" << c.policy << "\", \"cost_model\": \""
         << c.cost_model << "\", \"path\": \"" << c.path << "\", "
         << "\"baseline_seconds\": " << c.baseline_seconds << ", "
         << "\"recording_seconds\": " << c.recording_seconds << ", "
         << "\"overhead_pct\": " << c.overhead_pct << ", "
         << "\"windows\": " << c.windows << ", "
         << "\"identical\": " << (c.identical ? "true" : "false") << ", "
         << "\"sums_back\": " << (c.sums_back ? "true" : "false") << "}"
         << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";

  std::ofstream out(json_path);
  if (!out) {
    std::cerr << "error: cannot write " << json_path << "\n";
    return 1;
  }
  out << json.str();
  std::cout << "wrote " << json_path << "\n";

  if (!all_ok) {
    std::cerr << "error: instrumented replay diverged from the baseline\n";
    return 1;
  }
  return 0;
}
