// Headroom analysis (ours): how far are the paper's four schemes from the
// clairvoyant bound? OPT (furthest-next-reference greedy, Belady's MIN for
// unit sizes) is simulated alongside LRU, LFU-DA, GDS(1), GD*(1) and the
// pre-GreedyDual baselines on the DFN workload.
//
// Reading: the gap between GD*(1) and OPT at small caches is the remaining
// algorithmic opportunity; the gap between LRU and OPT is what the
// GreedyDual line of work has been closing.
#include <iostream>

#include "cache/factory.hpp"
#include "cache/opt.hpp"
#include "common.hpp"
#include "util/format.hpp"

int main(int argc, char** argv) {
  using namespace webcache;
  const auto ctx = bench::BenchContext::from_args(argc, argv);
  std::cout << "=== Headroom vs clairvoyant OPT (DFN, scale=" << ctx.scale
            << ") ===\n\n";

  const trace::Trace t = ctx.make_trace(synth::WorkloadProfile::DFN());
  const std::uint64_t overall = t.overall_size_bytes();

  for (const double fraction : {0.01, 0.04, 0.16}) {
    const auto capacity = static_cast<std::uint64_t>(
        static_cast<double>(overall) * fraction);

    util::Table table("Cache = " + util::fmt_fixed(fraction * 100, 1) +
                      "% of trace (" +
                      util::fmt_bytes(static_cast<double>(capacity)) + ")");
    table.set_header({"Policy", "Hit rate", "% of OPT", "Byte hit rate"});

    const sim::SimResult opt =
        sim::simulate(t, capacity, std::make_unique<cache::OptPolicy>(t.requests),
                      ctx.simulator_options());
    table.add_row({"OPT (clairvoyant)",
                   util::fmt_fixed(opt.overall.hit_rate(), 4), "100.0",
                   util::fmt_fixed(opt.overall.byte_hit_rate(), 4)});

    for (const char* name : {"GD*(1)", "GDS(1)", "GDSF(1)", "LFU-DA",
                             "LRU-MIN", "LRU", "SIZE", "FIFO"}) {
      const sim::SimResult r = sim::simulate(
          t, capacity, cache::policy_spec_from_name(name),
          ctx.simulator_options());
      table.add_row(
          {r.policy_name, util::fmt_fixed(r.overall.hit_rate(), 4),
           util::fmt_fixed(
               100.0 * r.overall.hit_rate() /
                   std::max(1e-12, opt.overall.hit_rate()), 1),
           util::fmt_fixed(r.overall.byte_hit_rate(), 4)});
    }
    ctx.emit(table, "opt_headroom_" + util::fmt_fixed(fraction * 100, 0));
    std::cout << '\n';
  }
  std::cout
      << "Note: with variable document sizes the furthest-next-reference\n"
         "greedy is a reference point, not a true optimum — size-aware\n"
         "online policies (GD*, GDSF) can exceed its object hit rate by\n"
         "packing many small documents. For unit sizes it is Belady's MIN\n"
         "and provably dominates every policy (see tests/cache/opt_test).\n";
  return 0;
}
