// Micro-benchmarks (google-benchmark): per-access cost of each replacement
// policy at several resident populations, plus the synthetic generator's
// throughput. These are ours (not a paper table); they document that the
// simulator's O(log n) policy implementations replay multi-million-request
// traces in seconds.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "cache/cache.hpp"
#include "cache/factory.hpp"
#include "synth/generator.hpp"
#include "util/rng.hpp"

namespace {

using namespace webcache;

// Pre-generates a mixed access pattern: Zipf-ish popularity over
// `population` ids with varying sizes.
std::vector<std::pair<cache::ObjectId, std::uint64_t>> make_pattern(
    std::size_t population, std::size_t length) {
  util::Rng rng(7);
  std::vector<std::pair<cache::ObjectId, std::uint64_t>> pattern;
  pattern.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    const cache::ObjectId id = rng.below(1 + rng.below(population));
    const std::uint64_t size = 64 + (id * 131) % 8192;
    pattern.emplace_back(id, size);
  }
  return pattern;
}

void bench_policy(benchmark::State& state, const char* policy_name) {
  const auto population = static_cast<std::size_t>(state.range(0));
  const auto pattern = make_pattern(population, 1 << 16);
  // Capacity ~25% of the working set's bytes keeps the eviction path hot.
  std::uint64_t total_bytes = 0;
  for (const auto& [id, size] : pattern) total_bytes += size;
  const std::uint64_t capacity = total_bytes / pattern.size() * population / 4;

  cache::Cache cache(capacity, cache::make_policy(policy_name));
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [id, size] = pattern[i];
    benchmark::DoNotOptimize(
        cache.access(id, size, trace::DocumentClass::kOther));
    i = (i + 1) & (pattern.size() - 1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void register_policy_benches() {
  for (const char* name : {"LRU", "FIFO", "SIZE", "LFU", "LFU-DA", "GDS(1)",
                           "GDS(packet)", "GDSF(1)", "GD*(1)", "GD*(packet)",
                           "GD*C(1)", "LRU-2", "LRU-MIN"}) {
    benchmark::RegisterBenchmark(
        (std::string("Access/") + name).c_str(),
        [name](benchmark::State& s) { bench_policy(s, name); })
        ->Arg(1 << 10)
        ->Arg(1 << 14);
  }
}

void BM_TraceGeneration(benchmark::State& state) {
  const double scale = 1e-3;
  std::uint64_t requests = 0;
  for (auto _ : state) {
    synth::GeneratorOptions opts;
    opts.seed = 42;
    const trace::Trace t =
        synth::TraceGenerator(synth::WorkloadProfile::DFN().scaled(scale),
                              opts)
            .generate();
    requests += t.total_requests();
    benchmark::DoNotOptimize(t.requests.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(requests));
}
BENCHMARK(BM_TraceGeneration)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  register_policy_benches();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
