// Statistical confidence for the headline comparison (ours): replicates
// the Figure 2/3 key orderings over several independently seeded traces
// and reports mean ± 95% CI per policy, marking which pairwise differences
// survive seed noise. Guards the single-seed figures against lucky draws.
//
// Flags: --seeds=N (default 5), --cache-fraction (default 0.04).
#include <iostream>

#include "cache/factory.hpp"
#include "common.hpp"
#include "sim/replication.hpp"
#include "util/format.hpp"

int main(int argc, char** argv) {
  using namespace webcache;
  const auto ctx = bench::BenchContext::from_args(argc, argv);
  const util::Args args(argc, argv);

  sim::ReplicationConfig config;
  config.replications =
      static_cast<std::uint32_t>(args.get_uint("seeds", 5));
  config.base_seed = ctx.seed;
  config.cache_fraction = args.get_double("cache-fraction", 0.04);
  config.simulator = ctx.simulator_options();

  std::cout << "=== Seed-noise check: " << config.replications
            << " replicas, cache " << config.cache_fraction * 100
            << "% of trace, scale=" << ctx.scale << " ===\n\n";

  for (const auto& base_profile :
       {synth::WorkloadProfile::DFN(), synth::WorkloadProfile::RTP()}) {
    const synth::WorkloadProfile profile = base_profile.scaled(ctx.scale);

    for (const auto cost : {cache::CostModelKind::kConstant,
                            cache::CostModelKind::kPacket}) {
      const auto policies = cache::paper_policy_set(cost);
      const auto results = sim::run_replicated(profile, policies, config);

      util::Table table(base_profile.name + " / " +
                        std::string(cache::cost_model_suffix(cost)) +
                        " cost: mean ± 95% CI over " +
                        std::to_string(config.replications) + " seeds");
      table.set_header({"Policy", "HR mean", "HR ±", "BHR mean", "BHR ±"});
      for (const auto& r : results) {
        table.add_row({r.policy_name, util::fmt_fixed(r.hit_rate.mean(), 4),
                       util::fmt_fixed(r.hit_rate.ci95_half_width(), 4),
                       util::fmt_fixed(r.byte_hit_rate.mean(), 4),
                       util::fmt_fixed(r.byte_hit_rate.ci95_half_width(), 4)});
      }
      ctx.emit(table, "replication_" + base_profile.name + "_" +
                          std::string(cache::cost_model_suffix(cost)));

      // Pairwise separation verdicts for the headline ordering.
      auto verdict = [&](std::size_t a, std::size_t b) {
        const bool separated =
            sim::clearly_separated(results[a].hit_rate, results[b].hit_rate);
        std::cout << "  " << results[a].policy_name << " vs "
                  << results[b].policy_name << " (hit rate): "
                  << (separated ? "separated beyond seed noise"
                                : "NOT separated")
                  << " (" << util::fmt_fixed(results[a].hit_rate.mean(), 4)
                  << " vs " << util::fmt_fixed(results[b].hit_rate.mean(), 4)
                  << ")\n";
      };
      verdict(3, 2);  // GD* vs GDS
      verdict(3, 0);  // GD* vs LRU
      verdict(1, 0);  // LFU-DA vs LRU
      std::cout << '\n';
    }
  }
  return 0;
}
