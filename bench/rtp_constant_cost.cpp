// Regenerates the Section 4.4 experiment: RTP trace under the constant
// cost model (the paper reports this as a textual summary; we print the
// full Figure-2-style panels).
//
// Expected shape: the same qualitative ranking as the DFN trace (GD*(1)
// closely followed by GDS(1) beats LRU/LFU-DA in hit rate for images, HTML
// and application; LRU/LFU-DA clearly better for multi media in both
// metrics) but with a different y-axis scale: hit rates up to ~0.5 for
// image and application documents, byte hit rates up to ~0.3.
#include <iostream>

#include "cache/factory.hpp"
#include "common.hpp"
#include "sim/reporter.hpp"
#include "sim/sweep.hpp"

int main(int argc, char** argv) {
  using namespace webcache;
  const auto ctx = bench::BenchContext::from_args(argc, argv);
  std::cout << "=== Section 4.4: RTP, constant cost model (scale=" << ctx.scale
            << ") ===\n\n";

  const trace::Trace t = ctx.make_trace(synth::WorkloadProfile::RTP());

  sim::SweepConfig config;
  config.cache_fractions = bench::paper_cache_fractions();
  config.policies = cache::paper_policy_set(cache::CostModelKind::kConstant);
  config.simulator = ctx.simulator_options();
  config.threads = ctx.threads;
  const sim::SweepResult sweep = sim::run_sweep(t, config);

  const std::array<trace::DocumentClass, 4> figure_classes = {
      trace::DocumentClass::kImage, trace::DocumentClass::kHtml,
      trace::DocumentClass::kMultiMedia, trace::DocumentClass::kApplication};

  for (const auto cls : figure_classes) {
    const std::string name(trace::to_string(cls));
    ctx.emit(sim::render_sweep_panel(sweep, cls, sim::Metric::kHitRate,
                                     name + ": hit rate"),
             "rtp_cc_hr_" + name);
    ctx.emit(sim::render_sweep_panel(sweep, cls, sim::Metric::kByteHitRate,
                                     name + ": byte hit rate"),
             "rtp_cc_bhr_" + name);
  }
  ctx.emit(sim::render_sweep_overall(sweep, sim::Metric::kHitRate,
                                     "Overall: hit rate"),
           "rtp_cc_hr_overall");
  ctx.emit(sim::render_sweep_overall(sweep, sim::Metric::kByteHitRate,
                                     "Overall: byte hit rate"),
           "rtp_cc_bhr_overall");
  return 0;
}
