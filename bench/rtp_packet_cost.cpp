// Regenerates the Section 4.4 experiment: RTP trace under the packet cost
// model.
//
// Expected shape: GD*(packet)'s advantages diminish relative to the DFN
// trace — its hit-rate lead over the other schemes shrinks for images,
// HTML and application documents, it no longer wins the multimedia hit
// rate, and GDS(packet) matches or beats it in byte hit rate for HTML,
// multi media and application documents. Hit rates reach ~0.5 and byte hit
// rates ~0.4. The cause (Section 4.4): the RTP trace's smaller popularity
// slope alpha (many equally popular documents -> false frequency
// decisions) and larger per-type betas for HTML/multimedia/application.
#include <iostream>

#include "cache/factory.hpp"
#include "common.hpp"
#include "sim/reporter.hpp"
#include "sim/sweep.hpp"

int main(int argc, char** argv) {
  using namespace webcache;
  const auto ctx = bench::BenchContext::from_args(argc, argv);
  std::cout << "=== Section 4.4: RTP, packet cost model (scale=" << ctx.scale
            << ") ===\n\n";

  const trace::Trace t = ctx.make_trace(synth::WorkloadProfile::RTP());

  sim::SweepConfig config;
  config.cache_fractions = bench::paper_cache_fractions();
  config.policies = cache::paper_policy_set(cache::CostModelKind::kPacket);
  config.simulator = ctx.simulator_options();
  config.threads = ctx.threads;
  const sim::SweepResult sweep = sim::run_sweep(t, config);

  const std::array<trace::DocumentClass, 4> figure_classes = {
      trace::DocumentClass::kImage, trace::DocumentClass::kHtml,
      trace::DocumentClass::kMultiMedia, trace::DocumentClass::kApplication};

  for (const auto cls : figure_classes) {
    const std::string name(trace::to_string(cls));
    ctx.emit(sim::render_sweep_panel(sweep, cls, sim::Metric::kHitRate,
                                     name + ": hit rate"),
             "rtp_pc_hr_" + name);
    ctx.emit(sim::render_sweep_panel(sweep, cls, sim::Metric::kByteHitRate,
                                     name + ": byte hit rate"),
             "rtp_pc_bhr_" + name);
  }
  ctx.emit(sim::render_sweep_overall(sweep, sim::Metric::kHitRate,
                                     "Overall: hit rate"),
           "rtp_pc_hr_overall");
  ctx.emit(sim::render_sweep_overall(sweep, sim::Metric::kByteHitRate,
                                     "Overall: byte hit rate"),
           "rtp_pc_bhr_overall");
  return 0;
}
