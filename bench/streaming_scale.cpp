// Bounded-memory acceptance harness for the streaming + sampled-sweep
// stack: generates a workload through TraceGenerator::stream() — no
// materialized Trace anywhere — and feeds it straight into the
// SHARDS-sampled LRU sweep, then reports wall clock, throughput, the
// process peak RSS, and the estimated footprint a materialized run of the
// same workload would have needed (trace vector + the exact one-pass
// engine's ~40 bytes/request). The headline number is the memory ratio:
// at the 10^8-request acceptance scale the streamed run must hold a
// >= 50x advantage over the materialized estimate.
//
// The default size is CI-safe (2M requests, a couple of seconds). The
// acceptance-scale run is
//
//   streaming_scale --requests=100000000 --docs=1000000 --rate=0.01
//
// `--docs` caps the distinct-document population: the generator's state is
// inherently O(documents) (per-document reference budgets are the workload
// model), so the request count and the population size scale separately.
//
// Flags:
//   --requests=<n>   total requests to stream (default 2000000)
//   --docs=<n>       distinct documents (default requests/50)
//   --rate=<f>       SHARDS sampling rate (default 0.01)
//   --chunk=<n>      stream chunk size in records (default 65536)
//   --seed=<n>       generator seed (default 42)
//   --json=<path>    machine-readable report (default
//                    BENCH_streaming_scale.json)
#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/sampled_sweep.hpp"
#include "synth/generator.hpp"
#include "synth/profile.hpp"
#include "trace/request.hpp"
#include "util/args.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using namespace webcache;

long peak_rss_kb() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;  // kilobytes on Linux
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const std::uint64_t requests = args.get_uint("requests", 2000000);
  const std::uint64_t docs =
      args.get_uint("docs", std::max<std::uint64_t>(1000, requests / 50));
  const double rate = args.get_double("rate", 0.01);
  const std::size_t chunk =
      static_cast<std::size_t>(args.get_uint("chunk", 1 << 16));
  const std::uint64_t seed = args.get_uint("seed", 42);
  const std::string json_path =
      args.get("json", "BENCH_streaming_scale.json");

  // DFN class mix at an explicitly decoupled size: the request volume and
  // the document population are independent knobs here.
  synth::WorkloadProfile profile = synth::WorkloadProfile::DFN();
  profile.total_requests = requests;
  profile.distinct_documents = docs;
  profile.validate();

  // Capacity ladder from the profile's expected byte volume (there is no
  // materialized trace to measure): requested bytes ~= sum over classes of
  // request share * mean size.
  double est_bytes = 0.0;
  for (const auto cls : trace::kAllDocumentClasses) {
    const synth::ClassProfile& c = profile.of(cls);
    est_bytes += c.request_fraction * static_cast<double>(requests) *
                 c.size_mean_bytes;
  }
  sim::SampledSweepConfig config;
  for (const std::uint64_t div : {200, 50, 12, 3}) {
    config.capacities.push_back(
        static_cast<std::uint64_t>(est_bytes / static_cast<double>(div)));
  }
  config.sample_rate = rate;

  synth::GeneratorOptions options;
  options.seed = seed;
  const synth::TraceGenerator generator(profile, options);

  std::cout << "=== Streaming scale: " << util::fmt_count(requests)
            << " requests over " << util::fmt_count(docs)
            << " documents, SHARDS rate " << rate << " ===\n\n";

  const auto start = std::chrono::steady_clock::now();
  const auto stream = generator.stream(chunk);
  const sim::SampledCurve curve = sim::SampledSweep(config).run(*stream);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const long rss_kb = peak_rss_kb();
  const double streamed_bytes = static_cast<double>(rss_kb) * 1024.0;
  // What the same sweep costs materialized: the Trace vector itself plus
  // the exact one-pass engine's per-request slot bookkeeping.
  const double trace_bytes =
      static_cast<double>(requests) * sizeof(trace::Request);
  const double exact_engine_bytes = static_cast<double>(
      sim::SampledSweep::estimated_exact_footprint_bytes(requests));
  const double materialized_bytes = trace_bytes + exact_engine_bytes;
  const double ratio = materialized_bytes / streamed_bytes;

  util::Table table("sampled miss-ratio curve (streamed, rate " +
                    util::fmt_fixed(rate, 3) + ")");
  table.set_header({"capacity", "hit rate", "+/-", "byte hit rate", "+/-"});
  for (const sim::SampledPoint& p : curve.points) {
    table.add_row({util::fmt_bytes(p.capacity_bytes),
                   util::fmt_fixed(p.hit_rate, 4),
                   util::fmt_fixed(p.hit_rate_error, 4),
                   util::fmt_fixed(p.byte_hit_rate, 4),
                   util::fmt_fixed(p.byte_hit_rate_error, 4)});
  }
  table.print(std::cout);
  std::cout << "\n"
            << "streamed " << util::fmt_count(curve.total_requests)
            << " requests in " << util::fmt_fixed(seconds, 2) << " s ("
            << util::fmt_count(static_cast<std::uint64_t>(
                   static_cast<double>(curve.total_requests) / seconds))
            << " req/s)\n"
            << "sampled " << util::fmt_count(curve.sampled_requests)
            << " requests / " << util::fmt_count(curve.sampled_documents)
            << " tracked documents (effective rate "
            << curve.effective_rate << ")\n"
            << "peak RSS: " << rss_kb << " KB\n"
            << "materialized estimate: "
            << util::fmt_bytes(static_cast<std::uint64_t>(materialized_bytes))
            << " (trace "
            << util::fmt_bytes(static_cast<std::uint64_t>(trace_bytes))
            << " + exact engine "
            << util::fmt_bytes(
                   static_cast<std::uint64_t>(exact_engine_bytes))
            << ")\n"
            << "memory advantage: " << util::fmt_fixed(ratio, 1) << "x\n";

  std::ostringstream json;
  json << "{\n"
       << "  \"requests\": " << requests << ",\n"
       << "  \"documents\": " << docs << ",\n"
       << "  \"sample_rate\": " << rate << ",\n"
       << "  \"effective_rate\": " << curve.effective_rate << ",\n"
       << "  \"seed\": " << seed << ",\n"
       << "  \"chunk_records\": " << chunk << ",\n"
       << "  \"seconds\": " << seconds << ",\n"
       << "  \"requests_per_sec\": "
       << static_cast<double>(curve.total_requests) / seconds << ",\n"
       << "  \"sampled_requests\": " << curve.sampled_requests << ",\n"
       << "  \"sampled_documents\": " << curve.sampled_documents << ",\n"
       << "  \"peak_rss_kb\": " << rss_kb << ",\n"
       << "  \"materialized_estimate_bytes\": " << materialized_bytes
       << ",\n"
       << "  \"memory_advantage\": " << ratio << ",\n"
       << "  \"points\": [\n";
  for (std::size_t i = 0; i < curve.points.size(); ++i) {
    const sim::SampledPoint& p = curve.points[i];
    json << "    {\"capacity_bytes\": " << p.capacity_bytes << ", "
         << "\"hit_rate\": " << p.hit_rate << ", "
         << "\"hit_rate_error\": " << p.hit_rate_error << ", "
         << "\"byte_hit_rate\": " << p.byte_hit_rate << ", "
         << "\"byte_hit_rate_error\": " << p.byte_hit_rate_error << "}"
         << (i + 1 < curve.points.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";

  std::ofstream out(json_path);
  if (!out) {
    std::cerr << "error: cannot write " << json_path << "\n";
    return 1;
  }
  out << json.str();
  std::cout << "wrote " << json_path << "\n";
  return 0;
}
