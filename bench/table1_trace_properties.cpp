// Regenerates Table 1: properties of the DFN and RTP traces after
// preprocessing (distinct documents, overall size, total requests,
// requested data).
//
// Paper values (full scale): DFN 2,987,565 docs / 6,718,210 requests;
// RTP 2,227,339 docs / ~4,144,900 requests. At --scale=s every count is
// s times the paper's value by construction; the byte figures emerge from
// the calibrated size distributions.
#include <iostream>

#include "common.hpp"
#include "workload/breakdown.hpp"
#include "workload/report.hpp"

int main(int argc, char** argv) {
  using namespace webcache;
  const auto ctx = bench::BenchContext::from_args(argc, argv);
  std::cout << "=== Table 1: trace properties (scale=" << ctx.scale
            << ") ===\n\n";

  const trace::Trace dfn = ctx.make_trace(synth::WorkloadProfile::DFN());
  const trace::Trace rtp = ctx.make_trace(synth::WorkloadProfile::RTP());

  const workload::Breakdown dfn_bd = workload::compute_breakdown(dfn);
  const workload::Breakdown rtp_bd = workload::compute_breakdown(rtp);

  ctx.emit(workload::render_trace_properties({{"DFN", dfn_bd}, {"RTP", rtp_bd}}),
           "table1");
  std::cout << "Paper (full scale): DFN 2,987,565 distinct / 6,718,210 "
               "requests; RTP 2,227,339 distinct / 4,144,900 requests.\n"
            << "Counts above are the paper's values scaled by " << ctx.scale
            << ".\n";
  return 0;
}
