// Regenerates Table 2: DFN workload characteristics broken down into
// document types (% of distinct documents / overall size / total requests /
// requested data).
//
// Paper constraints the output must reproduce: images + HTML ~95% of
// distinct documents and requests; multimedia 0.23% of documents and 0.14%
// of requests; HTML 21.2% of requests; requested-data shares images ~30.8%
// and application ~34.8%; multimedia + application > 40% of bytes.
#include <iostream>

#include "common.hpp"
#include "workload/breakdown.hpp"
#include "workload/report.hpp"

int main(int argc, char** argv) {
  using namespace webcache;
  const auto ctx = bench::BenchContext::from_args(argc, argv);
  std::cout << "=== Table 2: DFN breakdown by document type (scale="
            << ctx.scale << ") ===\n\n";

  const trace::Trace t = ctx.make_trace(synth::WorkloadProfile::DFN());
  const workload::Breakdown bd = workload::compute_breakdown(t);
  ctx.emit(workload::render_class_breakdown("DFN", bd), "table2_dfn");

  std::cout << "Paper targets: HTML+images ~95% of docs & requests; "
               "multimedia 0.23% docs / 0.14% requests; HTML 21.2% of "
               "requests; requested data images 30.8% / application 34.8%.\n";
  return 0;
}
