// Regenerates Table 3: RTP workload characteristics broken down into
// document types.
//
// Paper constraints: multimedia 0.41% of distinct documents and 0.33% of
// requests (vs DFN 0.23%/0.14%); HTML 44.2% of requests; requested data
// images 19.7% and application 21.9%.
#include <iostream>

#include "common.hpp"
#include "workload/breakdown.hpp"
#include "workload/report.hpp"

int main(int argc, char** argv) {
  using namespace webcache;
  const auto ctx = bench::BenchContext::from_args(argc, argv);
  std::cout << "=== Table 3: RTP breakdown by document type (scale="
            << ctx.scale << ") ===\n\n";

  const trace::Trace t = ctx.make_trace(synth::WorkloadProfile::RTP());
  const workload::Breakdown bd = workload::compute_breakdown(t);
  ctx.emit(workload::render_class_breakdown("RTP", bd), "table3_rtp");

  std::cout << "Paper targets: multimedia 0.41% docs / 0.33% requests; HTML "
               "44.2% of requests; requested data images 19.7% / application "
               "21.9%.\n";
  return 0;
}
