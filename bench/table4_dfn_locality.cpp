// Regenerates Table 4: DFN breakdown of document sizes and temporal
// locality (mean/median/CoV of document and transfer sizes; popularity
// slope alpha; temporal-correlation slope beta, per document type).
//
// Paper constraints the output must reproduce: multimedia has the largest
// mean and median transfer sizes; application documents have large means
// but very small medians; alpha is largest for images and smallest for
// multimedia/application; beta shows the inverse trend (images nearly
// uncorrelated, multimedia/application strongly correlated).
#include <iostream>

#include "common.hpp"
#include "util/format.hpp"
#include "workload/locality.hpp"
#include "workload/report.hpp"
#include "workload/size_stats.hpp"

int main(int argc, char** argv) {
  using namespace webcache;
  const auto ctx = bench::BenchContext::from_args(argc, argv);
  std::cout << "=== Table 4: DFN sizes and temporal locality (scale="
            << ctx.scale << ") ===\n\n";

  const trace::Trace t = ctx.make_trace(synth::WorkloadProfile::DFN());
  const workload::SizeStats sizes = workload::compute_size_stats(t);
  const workload::LocalityStats locality = workload::compute_locality(t);
  ctx.emit(workload::render_size_and_locality("DFN", sizes, locality),
           "table4_dfn");

  const synth::WorkloadProfile profile = synth::WorkloadProfile::DFN();
  util::Table targets("Generator profile targets (alpha / beta)");
  targets.set_header({"", "Images", "HTML", "Multi Media", "Application",
                      "Other"});
  std::vector<std::string> alpha_row = {"alpha (profile)"};
  std::vector<std::string> beta_row = {"beta (profile)"};
  for (const auto cls : trace::kAllDocumentClasses) {
    alpha_row.push_back(util::fmt_fixed(profile.of(cls).alpha, 2));
    beta_row.push_back(util::fmt_fixed(profile.of(cls).beta, 2));
  }
  targets.add_row(alpha_row);
  targets.add_row(beta_row);
  ctx.emit(targets, "table4_dfn_targets");
  return 0;
}
