// Regenerates Table 5: RTP breakdown of document sizes and temporal
// locality. Relative to Table 4 (DFN), the paper highlights smaller alphas
// throughout ("GD* suffers from the small slope alpha") and larger per-type
// betas for HTML, multimedia and application documents.
#include <iostream>

#include "common.hpp"
#include "util/format.hpp"
#include "workload/locality.hpp"
#include "workload/report.hpp"
#include "workload/size_stats.hpp"

int main(int argc, char** argv) {
  using namespace webcache;
  const auto ctx = bench::BenchContext::from_args(argc, argv);
  std::cout << "=== Table 5: RTP sizes and temporal locality (scale="
            << ctx.scale << ") ===\n\n";

  const trace::Trace t = ctx.make_trace(synth::WorkloadProfile::RTP());
  const workload::SizeStats sizes = workload::compute_size_stats(t);
  const workload::LocalityStats locality = workload::compute_locality(t);
  ctx.emit(workload::render_size_and_locality("RTP", sizes, locality),
           "table5_rtp");

  const synth::WorkloadProfile profile = synth::WorkloadProfile::RTP();
  util::Table targets("Generator profile targets (alpha / beta)");
  targets.set_header({"", "Images", "HTML", "Multi Media", "Application",
                      "Other"});
  std::vector<std::string> alpha_row = {"alpha (profile)"};
  std::vector<std::string> beta_row = {"beta (profile)"};
  for (const auto cls : trace::kAllDocumentClasses) {
    alpha_row.push_back(util::fmt_fixed(profile.of(cls).alpha, 2));
    beta_row.push_back(util::fmt_fixed(profile.of(cls).beta, 2));
  }
  targets.add_row(alpha_row);
  targets.add_row(beta_row);
  ctx.emit(targets, "table5_rtp_targets");
  return 0;
}
