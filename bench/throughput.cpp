// Replay-throughput harness for the dense-id hot path.
//
// Replays two traces — a synthetic DFN workload and the same workload
// round-tripped through the native Squid log format (writer -> parser ->
// preprocessor, i.e. the exact pipeline a real access.log takes) — through
// the four paper policies under both cost models, once over the map-backed
// simulate() and once over the dense-id simulate(), and reports replay
// throughput for both. Two further sections cover the multi-cache
// subsystems: the edge/backbone hierarchy (simulate_hierarchy) and the
// class-partitioned composite cache (PartitionedCache through the frontend
// simulate overloads). Two more sections time the one-pass machinery: a
// `stack_sweep` section races the byte-weighted stack-analysis engine
// (sim/stack_sweep.hpp, one replay for every capacity) against the serial
// per-cell grid on an 8-fraction LRU ladder, and a `trace_load` section
// times the mmap binary-trace loader against the per-record stream decoder
// on a freshly written trace file. A `sharded` section runs the exact
// sharded replay engine (sim/sharded_replay.hpp) over a 1/2/4/8 worker
// ladder against the serial baseline, reporting requests_per_sec_per_core
// and the --threads=1 delegation overhead alongside the raw speedups.
// A `lazy_promotion` section replays the lazy-promotion / RANDOM family
// (RANDOM, CLOCK, DELAY-CLOCK, PROB-LRU, DELAY-LRU, BATCH-LRU) against an
// LRU baseline on the dense path, reporting each member's requests/sec
// relative to LRU next to its hit rate — the cost/accuracy trade the
// family exists for. A `streaming` section races the bounded-memory paths
// (file-streamed replay via StreamingTraceReader, its online-densified
// variant, and the SHARDS-sampled sweep) against their materialized twins,
// cross-checking bit-identity for the replays and the reported error
// bounds for the sampled sweep. A `checkpoint` section prices the
// crash-safe snapshot machinery: the checkpointed streaming replay against
// the plain streamed run at cadence off / 10^6 / 10^5 (plus a forced-write
// cell), every cadence cross-checked bit-identical to the baseline.
//
// Every cell also cross-checks the two paths: overall and per-class
// hit/byte-hit counters, evictions and bypasses must be bit-identical, or
// the run fails with exit code 1. A speedup number from a run that changed
// eviction order would be meaningless.
//
// Output: a human-readable table on stdout plus machine-readable
// BENCH_throughput.json (override with --json=<path>) with requests/sec,
// evictions/sec, speedup per cell, and the process peak RSS.
//
// Extra flags on top of the common bench set:
//   --reps=<n>       timed repetitions per cell, best-of-n (default 3)
//   --fraction=<f>   cache size as a fraction of overall trace size
//                    (default 0.04 — eviction-heavy, mid-ladder)
//   --json=<path>    where to write the JSON report
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cache/factory.hpp"
#include "cache/partitioned.hpp"
#include "common.hpp"
#include "obs/stats_sink.hpp"
#include "sim/hierarchy.hpp"
#include "sim/checkpoint.hpp"
#include "sim/sampled_sweep.hpp"
#include "sim/sharded_replay.hpp"
#include "sim/simulator.hpp"
#include "sim/stack_sweep.hpp"
#include "sim/streaming.hpp"
#include "sim/sweep.hpp"
#include "trace/binary_trace.hpp"
#include "trace/dense_trace.hpp"
#include "trace/preprocess.hpp"
#include "trace/squid_log_writer.hpp"
#include "trace/streaming_trace.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using namespace webcache;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

long peak_rss_kb() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;  // kilobytes on Linux
}

template <typename Result>
struct Timing {
  double seconds = 0.0;
  Result result;
};

/// Runs `run` `reps` times and keeps the fastest repetition; the result is
/// deterministic so any repetition's result is the result.
template <typename Run>
auto best_of(int reps, Run&& run) -> Timing<decltype(run())> {
  Timing<decltype(run())> best;
  for (int i = 0; i < reps; ++i) {
    const auto start = std::chrono::steady_clock::now();
    auto result = run();
    const double elapsed = seconds_since(start);
    if (i == 0 || elapsed < best.seconds) {
      best.seconds = elapsed;
      best.result = std::move(result);
    }
  }
  return best;
}

bool counters_equal(const sim::HitCounters& a, const sim::HitCounters& b) {
  return a.requests == b.requests && a.hits == b.hits &&
         a.requested_bytes == b.requested_bytes && a.hit_bytes == b.hit_bytes;
}

bool results_identical(const sim::SimResult& a, const sim::SimResult& b) {
  if (!counters_equal(a.overall, b.overall)) return false;
  for (std::size_t c = 0; c < a.per_class.size(); ++c) {
    if (!counters_equal(a.per_class[c], b.per_class[c])) return false;
  }
  return a.evictions == b.evictions && a.bypasses == b.bypasses &&
         a.modification_misses == b.modification_misses &&
         a.interrupted_transfers == b.interrupted_transfers;
}

struct CellReport {
  std::string policy;
  std::string cost_model;
  double sparse_seconds = 0.0;
  double dense_seconds = 0.0;
  double sparse_rps = 0.0;
  double dense_rps = 0.0;
  double sparse_eps = 0.0;
  double dense_eps = 0.0;
  double speedup = 0.0;
  bool identical = false;
  // Same dense replay with an obs::RecordingSink attached (window 10000):
  // the instrumentation overhead, tracked release-to-release alongside the
  // dense/sparse speedup. Detailed per-path numbers live in
  // bench/obs_overhead.
  double dense_recording_seconds = 0.0;
  double obs_overhead_pct = 0.0;
  bool recording_identical = false;
};

struct TraceReport {
  std::string name;
  std::uint64_t requests = 0;
  std::uint64_t documents = 0;
  std::uint64_t capacity_bytes = 0;
  double densify_seconds = 0.0;
  std::vector<CellReport> cells;
};

std::string_view cost_model_name(cache::CostModelKind kind) {
  switch (kind) {
    case cache::CostModelKind::kConstant:
      return "constant";
    case cache::CostModelKind::kPacket:
      return "packet";
    case cache::CostModelKind::kLatency:
      return "latency";
  }
  return "?";
}

TraceReport run_trace(const std::string& name, const trace::Trace& trace,
                      double fraction, int reps,
                      const sim::SimulatorOptions& options) {
  TraceReport report;
  report.name = name;
  report.requests = trace.requests.size();
  report.capacity_bytes = static_cast<std::uint64_t>(
      static_cast<double>(trace.overall_size_bytes()) * fraction);

  const auto densify_start = std::chrono::steady_clock::now();
  const trace::DenseTrace dense = trace::densify(trace);
  report.densify_seconds = seconds_since(densify_start);
  report.documents = dense.document_count();

  std::vector<cache::PolicySpec> specs =
      cache::paper_policy_set(cache::CostModelKind::kConstant);
  for (const cache::PolicySpec& spec :
       cache::paper_policy_set(cache::CostModelKind::kPacket)) {
    specs.push_back(spec);
  }

  const double requests = static_cast<double>(report.requests);
  for (const cache::PolicySpec& spec : specs) {
    const auto sparse = best_of(reps, [&] {
      return sim::simulate(trace, report.capacity_bytes, spec, options);
    });
    const auto dense_timing = best_of(reps, [&] {
      return sim::simulate(dense, report.capacity_bytes, spec, options);
    });
    obs::RecordingSink sink(10000);
    const auto recording = best_of(reps, [&] {
      return sim::simulate(dense, report.capacity_bytes, spec, options, sink);
    });

    CellReport cell;
    cell.policy = dense_timing.result.policy_name;
    cell.cost_model = std::string(cost_model_name(spec.cost_model));
    cell.sparse_seconds = sparse.seconds;
    cell.dense_seconds = dense_timing.seconds;
    cell.sparse_rps = requests / sparse.seconds;
    cell.dense_rps = requests / dense_timing.seconds;
    cell.sparse_eps =
        static_cast<double>(sparse.result.evictions) / sparse.seconds;
    cell.dense_eps = static_cast<double>(dense_timing.result.evictions) /
                     dense_timing.seconds;
    cell.speedup = sparse.seconds / dense_timing.seconds;
    cell.identical = results_identical(sparse.result, dense_timing.result);
    cell.dense_recording_seconds = recording.seconds;
    cell.obs_overhead_pct =
        (recording.seconds / dense_timing.seconds - 1.0) * 100.0;
    cell.recording_identical =
        results_identical(dense_timing.result, recording.result);
    report.cells.push_back(cell);
  }
  return report;
}

// ---- multi-cache subsystems: hierarchy + partitioned composite ----

/// One dense-vs-sparse cell of a composite subsystem (hierarchy config or
/// partitioned-cache variant).
struct CompositeCell {
  std::string label;
  double sparse_seconds = 0.0;
  double dense_seconds = 0.0;
  double sparse_rps = 0.0;
  double dense_rps = 0.0;
  double sparse_eps = 0.0;
  double dense_eps = 0.0;
  double speedup = 0.0;
  bool identical = false;
};

CompositeCell make_composite_cell(std::string label, double requests,
                                  double sparse_seconds,
                                  std::uint64_t sparse_evictions,
                                  double dense_seconds,
                                  std::uint64_t dense_evictions,
                                  bool identical) {
  CompositeCell cell;
  cell.label = std::move(label);
  cell.sparse_seconds = sparse_seconds;
  cell.dense_seconds = dense_seconds;
  cell.sparse_rps = requests / sparse_seconds;
  cell.dense_rps = requests / dense_seconds;
  cell.sparse_eps = static_cast<double>(sparse_evictions) / sparse_seconds;
  cell.dense_eps = static_cast<double>(dense_evictions) / dense_seconds;
  cell.speedup = sparse_seconds / dense_seconds;
  cell.identical = identical;
  return cell;
}

bool hierarchy_identical(const sim::HierarchyResult& a,
                         const sim::HierarchyResult& b) {
  if (!counters_equal(a.offered, b.offered) ||
      !counters_equal(a.edge_hits, b.edge_hits) ||
      !counters_equal(a.sibling_hits, b.sibling_hits) ||
      !counters_equal(a.root_hits, b.root_hits)) {
    return false;
  }
  for (std::size_t c = 0; c < a.edge_per_class.size(); ++c) {
    if (!counters_equal(a.edge_per_class[c], b.edge_per_class[c]) ||
        !counters_equal(a.root_per_class[c], b.root_per_class[c])) {
      return false;
    }
  }
  return a.root_requests == b.root_requests &&
         a.edge_evictions == b.edge_evictions &&
         a.root_evictions == b.root_evictions;
}

std::vector<CompositeCell> run_hierarchy_cells(
    const trace::Trace& trace, const trace::DenseTrace& dense, double fraction,
    int reps, const sim::SimulatorOptions& options) {
  struct Variant {
    std::string edge_policy;
    std::string root_policy;
    std::uint32_t edges;
    bool sibling;
  };
  const std::vector<Variant> variants = {
      {"LRU", "LRU", 4, false},
      {"GD*(1)", "GD*(packet)", 4, false},
      {"GD*(1)", "GD*(packet)", 4, true},
      {"LFU-DA", "GD*(packet)", 8, false},
  };

  const double requests = static_cast<double>(trace.requests.size());
  std::vector<CompositeCell> cells;
  for (const Variant& v : variants) {
    sim::HierarchyConfig config;
    config.edge_count = v.edges;
    config.edge_policy = cache::policy_spec_from_name(v.edge_policy);
    config.root_policy = cache::policy_spec_from_name(v.root_policy);
    config.root_capacity_bytes = static_cast<std::uint64_t>(
        static_cast<double>(trace.overall_size_bytes()) * fraction);
    config.edge_capacity_bytes =
        std::max<std::uint64_t>(1, config.root_capacity_bytes / v.edges);
    config.simulator = options;
    config.sibling_cooperation = v.sibling;

    const auto sparse =
        best_of(reps, [&] { return sim::simulate_hierarchy(trace, config); });
    const auto dense_timing =
        best_of(reps, [&] { return sim::simulate_hierarchy(dense, config); });

    cells.push_back(make_composite_cell(
        "edges=" + std::to_string(v.edges) + " " + v.edge_policy + "/" +
            v.root_policy + (v.sibling ? " +sibling" : ""),
        requests, sparse.seconds,
        sparse.result.edge_evictions + sparse.result.root_evictions,
        dense_timing.seconds,
        dense_timing.result.edge_evictions + dense_timing.result.root_evictions,
        hierarchy_identical(sparse.result, dense_timing.result)));
  }
  return cells;
}

std::vector<CompositeCell> run_partitioned_cells(
    const trace::Trace& trace, const trace::DenseTrace& dense, double fraction,
    int reps, const sim::SimulatorOptions& options) {
  // Shares proportional to the DFN request mix — the hit-rate-oriented
  // configuration from the partitioned-cache extension benchmark.
  const synth::WorkloadProfile profile = synth::WorkloadProfile::DFN();
  std::array<double, trace::kDocumentClassCount> weights{};
  for (const auto cls : trace::kAllDocumentClasses) {
    weights[static_cast<std::size_t>(cls)] = profile.of(cls).request_fraction;
  }
  const auto capacity = static_cast<std::uint64_t>(
      static_cast<double>(trace.overall_size_bytes()) * fraction);

  const double requests = static_cast<double>(trace.requests.size());
  std::vector<CompositeCell> cells;
  for (const cache::PolicySpec& spec :
       cache::paper_policy_set(cache::CostModelKind::kConstant)) {
    const auto config =
        cache::PartitionedCacheConfig::uniform_policy(capacity, spec, weights);
    // Frontends are stateful: each repetition replays against a cold cache.
    const auto sparse = best_of(reps, [&] {
      cache::PartitionedCache cache(config);
      return sim::simulate(trace, cache, options);
    });
    const auto dense_timing = best_of(reps, [&] {
      cache::PartitionedCache cache(config);
      return sim::simulate(dense, cache, options);
    });

    cells.push_back(make_composite_cell(
        "Partitioned " + std::string(cache::make_policy(spec)->name()) +
            " request-mix",
        requests, sparse.seconds, sparse.result.evictions, dense_timing.seconds,
        dense_timing.result.evictions,
        results_identical(sparse.result, dense_timing.result)));
  }
  return cells;
}

// ---- one-pass machinery: stack-analysis sweeps + the mmap trace loader ----

bool sweeps_identical(const sim::SweepResult& a, const sim::SweepResult& b) {
  if (a.points.size() != b.points.size()) return false;
  for (std::size_t p = 0; p < a.points.size(); ++p) {
    if (a.points[p].capacity_bytes != b.points[p].capacity_bytes ||
        a.points[p].results.size() != b.points[p].results.size()) {
      return false;
    }
    for (std::size_t i = 0; i < a.points[p].results.size(); ++i) {
      if (!results_identical(a.points[p].results[i], b.points[p].results[i])) {
        return false;
      }
    }
  }
  return true;
}

std::uint64_t sweep_evictions(const sim::SweepResult& sweep) {
  std::uint64_t total = 0;
  for (const sim::SweepPoint& point : sweep.points) {
    for (const sim::SimResult& r : point.results) total += r.evictions;
  }
  return total;
}

/// Races the one-pass stack-analysis engine against the serial per-cell
/// grid on an 8-fraction LRU ladder (the sweep the paper's figures take
/// per policy). The ladder is clamped so every capacity is stack-eligible
/// (>= the largest transfer), keeping the comparison engine vs grid rather
/// than fallback vs grid.
std::vector<CompositeCell> run_stack_sweep_cells(
    const trace::Trace& trace, const trace::DenseTrace& dense, int reps,
    const sim::SimulatorOptions& options) {
  const double overall = static_cast<double>(trace.overall_size_bytes());
  const double lo = std::max(
      0.005,
      static_cast<double>(sim::StackSweep::max_transfer_size(trace)) /
          overall);
  const double hi = std::max(0.40, lo * 2.0);
  sim::SweepConfig config;
  config.cache_fractions.clear();
  for (int i = 0; i < 8; ++i) {
    config.cache_fractions.push_back(lo * std::pow(hi / lo, i / 7.0));
  }
  config.policies = {cache::policy_spec_from_name("LRU")};
  config.simulator = options;
  config.threads = 1;  // the baseline is the *serial* per-cell grid

  const double requests = static_cast<double>(trace.requests.size());
  std::vector<CompositeCell> cells;
  const auto race = [&](const auto& t, const std::string& label) {
    config.one_pass = sim::OnePassMode::kOff;
    const auto grid = best_of(reps, [&] { return sim::run_sweep(t, config); });
    config.one_pass = sim::OnePassMode::kOn;
    const auto one_pass =
        best_of(reps, [&] { return sim::run_sweep(t, config); });
    cells.push_back(make_composite_cell(
        label, requests, grid.seconds, sweep_evictions(grid.result),
        one_pass.seconds, sweep_evictions(one_pass.result),
        sweeps_identical(grid.result, one_pass.result)));
  };
  race(trace, "one-pass LRU x8 ladder (sparse)");
  race(dense, "one-pass LRU x8 ladder (dense)");
  return cells;
}

// ---- monomorphized replay kernels: virtual vs static dispatch ----

/// Virtual vs kernel replay for the hot policies on both trace paths. The
/// composite-cell shape reuses the existing JSON/table plumbing: the
/// "sparse" columns hold the forced-virtual run (KernelMode::kOff), the
/// "dense" columns the forced-kernel run (kOn), on the same trace. Cells
/// are bit-identity cross-checked AND engine-honesty checked: the two runs
/// must report replay_kernel == "virtual" / "monomorphized" respectively.
/// The detailed ABBA-interleaved per-policy grid lives in
/// bench/dispatch_overhead; this section feeds the release-to-release
/// trend (scripts/trend_throughput.py, WEBCACHE_GATE_PCT).
std::vector<CompositeCell> run_kernel_cells(
    const trace::Trace& trace, const trace::DenseTrace& dense,
    std::uint64_t capacity, int reps, const sim::SimulatorOptions& options) {
  sim::SimulatorOptions virtual_options = options;
  virtual_options.kernel = sim::KernelMode::kOff;
  sim::SimulatorOptions kernel_options = options;
  kernel_options.kernel = sim::KernelMode::kOn;
  const double requests = static_cast<double>(trace.requests.size());

  std::vector<CompositeCell> cells;
  for (const char* name : {"LRU", "GDSF(1)", "CLOCK"}) {
    const cache::PolicySpec spec = cache::policy_spec_from_name(name);
    const auto race = [&](const auto& t, const std::string& path) {
      const auto virt = best_of(reps, [&] {
        return sim::simulate(t, capacity, spec, virtual_options);
      });
      const auto kern = best_of(reps, [&] {
        return sim::simulate(t, capacity, spec, kernel_options);
      });
      const bool honest = virt.result.replay_kernel == "virtual" &&
                          kern.result.replay_kernel == "monomorphized";
      cells.push_back(make_composite_cell(
          "kernel " + std::string(name) + " (" + path + ")", requests,
          virt.seconds, virt.result.evictions, kern.seconds,
          kern.result.evictions,
          results_identical(virt.result, kern.result) && honest));
    };
    race(trace, "sparse");
    race(dense, "dense");
  }
  return cells;
}

// ---- sharded replay engine: thread-scaling ladder ----

/// One thread count of the sharded scaling ladder, measured against the
/// plain serial simulate() baseline on the same dense trace.
struct ShardedCell {
  std::string label;
  std::uint32_t threads = 1;
  double seconds = 0.0;
  double rps = 0.0;
  double rps_per_core = 0.0;  // requests_per_sec / worker threads
  double speedup_vs_serial = 0.0;
  bool identical = false;
  std::string engine;  // SimResult::replay_kernel of the cell's run
};

struct ShardedReport {
  std::string policy;
  double serial_seconds = 0.0;
  double serial_rps = 0.0;
  // threads=1 shares the serial code path by construction; this is the
  // dispatch overhead of spelling the same run `--threads=1`.
  double delegation_overhead_pct = 0.0;
  // The threads=1 cell must delegate to the *same* serial engine the
  // baseline used (kernel or virtual) — the degenerate case routes through
  // sim::simulate, not the queue-carve pipeline.
  bool delegation_same_engine = false;
  std::vector<ShardedCell> cells;
};

/// Replays LRU through the exact sharded engine at 1/2/4/8 worker threads
/// (plus a forced single-thread pipeline cell, so the pipeline cost is
/// visible even on a 1-core runner) and cross-checks every cell against
/// the serial result. The per-core column keeps the numbers honest when
/// hardware_concurrency is low: on a 1-core box the thread ladder cannot
/// speed up, and the JSON records exactly that.
ShardedReport run_sharded_cells(const trace::DenseTrace& dense,
                                std::uint64_t capacity, int reps,
                                const sim::SimulatorOptions& options) {
  const cache::PolicySpec lru = cache::policy_spec_from_name("LRU");
  const double requests = static_cast<double>(dense.trace.requests.size());

  ShardedReport report;
  report.policy = "LRU";
  const auto serial = best_of(
      reps, [&] { return sim::simulate(dense, capacity, lru, options); });
  report.serial_seconds = serial.seconds;
  report.serial_rps = requests / serial.seconds;

  struct Variant {
    std::string label;
    sim::ShardedConfig config;
  };
  std::vector<Variant> variants;
  for (const std::uint32_t threads : {1u, 2u, 4u, 8u}) {
    Variant v;
    v.label = "threads=" + std::to_string(threads) +
              (threads == 1 ? " (delegated serial)" : "");
    v.config.threads = threads;
    variants.push_back(v);
  }
  {
    // Same engine, pipeline forced on one thread: isolates the carve/
    // annotate/merge cost from any actual parallelism.
    Variant v;
    v.label = "threads=1 shards=4 (forced pipeline)";
    v.config.threads = 1;
    v.config.shards = 4;
    variants.push_back(v);
  }

  for (const Variant& v : variants) {
    const auto timing = best_of(reps, [&] {
      return sim::simulate_sharded(dense, capacity, lru, options, v.config);
    });
    ShardedCell cell;
    cell.label = v.label;
    cell.threads = v.config.threads;
    cell.seconds = timing.seconds;
    cell.rps = requests / timing.seconds;
    cell.rps_per_core = cell.rps / static_cast<double>(v.config.threads);
    cell.speedup_vs_serial = serial.seconds / timing.seconds;
    cell.identical = results_identical(serial.result, timing.result);
    cell.engine = timing.result.replay_kernel;
    report.cells.push_back(cell);
  }
  report.delegation_overhead_pct =
      (report.cells[0].seconds / serial.seconds - 1.0) * 100.0;
  report.delegation_same_engine =
      report.cells[0].engine == serial.result.replay_kernel;
  return report;
}

void append_sharded_json(std::ostringstream& out,
                         const ShardedReport& report) {
  out << "  \"sharded\": {\n"
      << "    \"policy\": \"" << report.policy << "\",\n"
      << "    \"serial_seconds\": " << report.serial_seconds << ",\n"
      << "    \"serial_requests_per_sec\": " << report.serial_rps << ",\n"
      << "    \"delegation_overhead_pct\": " << report.delegation_overhead_pct
      << ",\n"
      << "    \"delegation_same_engine\": "
      << (report.delegation_same_engine ? "true" : "false") << ",\n"
      << "    \"cells\": [\n";
  for (std::size_t i = 0; i < report.cells.size(); ++i) {
    const ShardedCell& c = report.cells[i];
    out << "      {\"label\": \"" << c.label << "\", "
        << "\"threads\": " << c.threads << ", "
        << "\"seconds\": " << c.seconds << ", "
        << "\"requests_per_sec\": " << c.rps << ", "
        << "\"requests_per_sec_per_core\": " << c.rps_per_core << ", "
        << "\"speedup_vs_serial\": " << c.speedup_vs_serial << ", "
        << "\"engine\": \"" << c.engine << "\", "
        << "\"identical\": " << (c.identical ? "true" : "false") << "}"
        << (i + 1 < report.cells.size() ? "," : "") << "\n";
  }
  out << "    ]\n  },\n";
}

// ---- lazy-promotion / RANDOM family: hit-path cost vs LRU ----

/// One member of the lazy-promotion family, replayed on the dense path and
/// compared against the LRU baseline from the same trace. The point of the
/// family is a cheaper (read-mostly or deferred) hit path, so the headline
/// number is dense requests/sec relative to LRU; the hit rate is reported
/// alongside so the speed is never read without its accuracy cost, and the
/// sparse/dense cross-check keeps the cell honest like every other section.
struct LazyCell {
  std::string policy;
  double dense_seconds = 0.0;
  double dense_rps = 0.0;
  double rps_vs_lru = 0.0;  // dense requests/sec relative to the LRU cell
  double hit_rate = 0.0;
  bool identical = false;  // sparse replay == dense replay
};

std::vector<LazyCell> run_lazy_promotion_cells(
    const trace::Trace& trace, const trace::DenseTrace& dense,
    std::uint64_t capacity, int reps, const sim::SimulatorOptions& options) {
  const double requests = static_cast<double>(trace.requests.size());
  std::vector<LazyCell> cells;
  for (const char* name :
       {"LRU", "RANDOM", "CLOCK", "DELAY-CLOCK:k=8", "PROB-LRU:p=0.1",
        "DELAY-LRU:k=16", "BATCH-LRU:batch=64"}) {
    const cache::PolicySpec spec = cache::policy_spec_from_name(name);
    const auto sparse = best_of(
        reps, [&] { return sim::simulate(trace, capacity, spec, options); });
    const auto dense_timing = best_of(
        reps, [&] { return sim::simulate(dense, capacity, spec, options); });

    LazyCell cell;
    cell.policy = dense_timing.result.policy_name;
    cell.dense_seconds = dense_timing.seconds;
    cell.dense_rps = requests / dense_timing.seconds;
    cell.hit_rate = dense_timing.result.overall.hit_rate();
    cell.identical = results_identical(sparse.result, dense_timing.result);
    cells.push_back(cell);
  }
  const double lru_rps = cells.front().dense_rps;
  for (LazyCell& cell : cells) cell.rps_vs_lru = cell.dense_rps / lru_rps;
  return cells;
}

void append_lazy_json(std::ostringstream& out,
                      const std::vector<LazyCell>& cells) {
  out << "  \"lazy_promotion\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const LazyCell& c = cells[i];
    out << "    {\"policy\": \"" << c.policy << "\", "
        << "\"dense_seconds\": " << c.dense_seconds << ", "
        << "\"dense_requests_per_sec\": " << c.dense_rps << ", "
        << "\"rps_vs_lru\": " << c.rps_vs_lru << ", "
        << "\"hit_rate\": " << c.hit_rate << ", "
        << "\"identical\": " << (c.identical ? "true" : "false") << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
}

bool traces_equal(const trace::Trace& a, const trace::Trace& b) {
  if (a.requests.size() != b.requests.size()) return false;
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    const trace::Request& x = a.requests[i];
    const trace::Request& y = b.requests[i];
    if (x.timestamp_ms != y.timestamp_ms || x.document != y.document ||
        x.client != y.client || x.doc_class != y.doc_class ||
        x.status != y.status || x.document_size != y.document_size ||
        x.transfer_size != y.transfer_size) {
      return false;
    }
  }
  return true;
}

/// Times the binary-trace loaders on a freshly written file: the
/// per-record stream decoder (the non-seekable baseline) vs the one-shot
/// mmap image decoder behind read_binary_trace_file.
std::vector<CompositeCell> run_trace_load_cells(const trace::Trace& trace,
                                                int reps) {
  namespace fs = std::filesystem;
  const fs::path path =
      fs::temp_directory_path() / "webcache_bench_trace_load.wct";
  trace::write_binary_trace_file(path.string(), trace);

  const auto stream = best_of(reps, [&] {
    std::ifstream in(path, std::ios::binary);
    return trace::read_binary_trace(in);
  });
  const auto mapped = best_of(
      reps, [&] { return trace::read_binary_trace_file(path.string()); });
  std::error_code ec;
  fs::remove(path, ec);

  const bool identical = traces_equal(stream.result, trace) &&
                         traces_equal(mapped.result, trace);
  return {make_composite_cell("binary trace load (stream vs mmap)",
                              static_cast<double>(trace.requests.size()),
                              stream.seconds, 0, mapped.seconds, 0,
                              identical)};
}

// ---- streaming replay & sampled sweep: the bounded-memory paths ----

/// Races the bounded-memory paths against their materialized twins on a
/// freshly written trace file: the file-streamed replay (and its
/// online-densified variant) against load-then-simulate, and the
/// SHARDS-sampled LRU sweep against the exact one-pass ladder. Replay
/// cells must be bit-identical; the sampled cell's "identical" flag means
/// every point landed within its own reported error bound — the same
/// contract the test suite pins, checked here on every bench run.
std::vector<CompositeCell> run_streaming_cells(
    const trace::Trace& trace, std::uint64_t capacity, int reps,
    const sim::SimulatorOptions& options) {
  namespace fs = std::filesystem;
  const fs::path path =
      fs::temp_directory_path() / "webcache_bench_streaming.wct";
  trace::write_binary_trace_file(path.string(), trace);
  const double requests = static_cast<double>(trace.requests.size());
  const cache::PolicySpec lru = cache::policy_spec_from_name("LRU");

  std::vector<CompositeCell> cells;

  // Baseline: load the whole file, then replay. The streamed runs re-read
  // the same file chunk by chunk through the identical per-request core.
  const auto materialized = best_of(reps, [&] {
    const trace::Trace loaded = trace::read_binary_trace_file(path.string());
    return sim::simulate(loaded, capacity, lru, options);
  });
  const auto streamed = best_of(reps, [&] {
    trace::StreamingTraceReader reader(path.string());
    return sim::simulate_stream(reader, capacity, lru, options);
  });
  cells.push_back(make_composite_cell(
      "file-streamed LRU replay", requests, materialized.seconds,
      materialized.result.evictions, streamed.seconds,
      streamed.result.evictions,
      results_identical(materialized.result, streamed.result)));

  const auto densified = best_of(reps, [&] {
    trace::StreamingTraceReader reader(path.string());
    cache::SingleCacheFrontend frontend(capacity, cache::make_policy(lru));
    return sim::simulate_stream_densified(reader, frontend, options);
  });
  cells.push_back(make_composite_cell(
      "file-streamed LRU replay (online densify)", requests,
      materialized.seconds, materialized.result.evictions, densified.seconds,
      densified.result.evictions,
      results_identical(materialized.result, densified.result)));

  // Sampled sweep vs exact one-pass on a 4-capacity LRU ladder. The floor
  // keeps every capacity stack-eligible for the exact engine.
  const std::uint64_t floor_bytes = sim::StackSweep::max_transfer_size(trace);
  sim::SampledSweepConfig sampled_config;
  for (const std::uint64_t div : {200, 50, 12, 3}) {
    sampled_config.capacities.push_back(
        std::max(floor_bytes, trace.overall_size_bytes() / div));
  }
  sampled_config.simulator = options;
  const auto exact = best_of(reps, [&] {
    return sim::StackSweep(sampled_config.capacities, options).run(trace);
  });
  sampled_config.sample_rate = 0.1;
  const auto sampled = best_of(reps, [&] {
    trace::StreamingTraceReader reader(path.string());
    return sim::SampledSweep(sampled_config).run(reader);
  });
  bool within_bounds = true;
  for (std::size_t i = 0; i < sampled_config.capacities.size(); ++i) {
    const sim::SampledPoint& p = sampled.result.points[i];
    within_bounds = within_bounds &&
                    std::abs(p.hit_rate - exact.result[i].overall.hit_rate()) <=
                        p.hit_rate_error;
  }
  cells.push_back(make_composite_cell(
      "SHARDS-sampled LRU sweep rate=0.1 (within bound)", requests,
      exact.seconds, 0, sampled.seconds, 0, within_bounds));

  std::error_code ec;
  fs::remove(path, ec);
  return cells;
}

// ---- checkpointed streaming replay: snapshot cost per cadence ----

/// Races the checkpointed streaming replay against the plain streamed
/// baseline at three cadences: off (the machinery engaged but no snapshot
/// ever written — must cost nothing), every 10^6 and every 10^5 requests
/// (the serialization + atomic-write cost amortized over the cadence), plus
/// a requests/8 cell so snapshot writes are exercised at any --scale. Every
/// cell cross-checks bit-identity with the uncheckpointed run: snapshot
/// writes observe the replay, they must never perturb it.
std::vector<CompositeCell> run_checkpoint_cells(
    const trace::Trace& trace, std::uint64_t capacity, int reps,
    const sim::SimulatorOptions& options) {
  namespace fs = std::filesystem;
  const fs::path path =
      fs::temp_directory_path() / "webcache_bench_checkpoint.wct";
  trace::write_binary_trace_file(path.string(), trace);
  const fs::path ring =
      fs::temp_directory_path() / "webcache_bench_checkpoint.ring";
  const double requests = static_cast<double>(trace.requests.size());
  const cache::PolicySpec lru = cache::policy_spec_from_name("LRU");

  const auto plain = best_of(reps, [&] {
    trace::StreamingTraceReader reader(path.string());
    return sim::simulate_stream(reader, capacity, lru, options);
  });

  struct Cadence {
    std::string label;
    std::uint64_t every;
  };
  const std::vector<Cadence> cadences = {
      {"checkpointed LRU replay (cadence off)", 0},
      {"checkpointed LRU replay (every 10^6)", 1'000'000},
      {"checkpointed LRU replay (every 10^5)", 100'000},
      {"checkpointed LRU replay (every requests/8)",
       std::max<std::uint64_t>(1, trace.requests.size() / 8)},
  };

  std::vector<CompositeCell> cells;
  for (const Cadence& cadence : cadences) {
    const auto timing = best_of(reps, [&] {
      // Every repetition starts cold with an empty ring: retention pruning
      // and the atomic write path are part of what is being timed.
      std::error_code ec;
      fs::remove_all(ring, ec);
      trace::StreamingTraceReader reader(path.string());
      cache::SingleCacheFrontend frontend(capacity, cache::make_policy(lru));
      sim::StreamCheckpointJob job;
      job.options = options;
      job.checkpoint.dir = ring.string();
      job.checkpoint.every = cadence.every;
      job.checkpoint.trace_source = path.string();
      return sim::simulate_stream_checkpointed(reader, frontend, job).result;
    });
    cells.push_back(make_composite_cell(
        cadence.label, requests, plain.seconds, plain.result.evictions,
        timing.seconds, timing.result.evictions,
        results_identical(plain.result, timing.result)));
  }

  std::error_code ec;
  fs::remove_all(ring, ec);
  fs::remove(path, ec);
  return cells;
}

void append_composite_json(std::ostringstream& out, const std::string& key,
                           const std::vector<CompositeCell>& cells) {
  out << "  \"" << key << "\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CompositeCell& c = cells[i];
    out << "    {\"label\": \"" << c.label << "\", "
        << "\"sparse_seconds\": " << c.sparse_seconds << ", "
        << "\"dense_seconds\": " << c.dense_seconds << ", "
        << "\"sparse_requests_per_sec\": " << c.sparse_rps << ", "
        << "\"dense_requests_per_sec\": " << c.dense_rps << ", "
        << "\"sparse_evictions_per_sec\": " << c.sparse_eps << ", "
        << "\"dense_evictions_per_sec\": " << c.dense_eps << ", "
        << "\"speedup\": " << c.speedup << ", "
        << "\"identical\": " << (c.identical ? "true" : "false") << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
}

void emit_composite_table(const bench::BenchContext& ctx,
                          const std::string& title, const std::string& slug,
                          const std::vector<CompositeCell>& cells,
                          bool& all_identical,
                          const std::string& baseline_col = "map req/s",
                          const std::string& fast_col = "dense req/s") {
  util::Table table(title);
  table.set_header(
      {"configuration", baseline_col, fast_col, "speedup", "identical"});
  for (const CompositeCell& c : cells) {
    table.add_row({c.label,
                   util::fmt_count(static_cast<std::uint64_t>(c.sparse_rps)),
                   util::fmt_count(static_cast<std::uint64_t>(c.dense_rps)),
                   util::fmt_fixed(c.speedup, 2), c.identical ? "yes" : "NO"});
    all_identical = all_identical && c.identical;
  }
  ctx.emit(table, slug);
  std::cout << "\n";
}

void append_json(std::ostringstream& out, const TraceReport& report) {
  out << "    {\n"
      << "      \"trace\": \"" << report.name << "\",\n"
      << "      \"requests\": " << report.requests << ",\n"
      << "      \"documents\": " << report.documents << ",\n"
      << "      \"capacity_bytes\": " << report.capacity_bytes << ",\n"
      << "      \"densify_seconds\": " << report.densify_seconds << ",\n"
      << "      \"cells\": [\n";
  for (std::size_t i = 0; i < report.cells.size(); ++i) {
    const CellReport& c = report.cells[i];
    out << "        {\"policy\": \"" << c.policy << "\", \"cost_model\": \""
        << c.cost_model << "\", "
        << "\"sparse_seconds\": " << c.sparse_seconds << ", "
        << "\"dense_seconds\": " << c.dense_seconds << ", "
        << "\"sparse_requests_per_sec\": " << c.sparse_rps << ", "
        << "\"dense_requests_per_sec\": " << c.dense_rps << ", "
        << "\"sparse_evictions_per_sec\": " << c.sparse_eps << ", "
        << "\"dense_evictions_per_sec\": " << c.dense_eps << ", "
        << "\"speedup\": " << c.speedup << ", "
        << "\"identical\": " << (c.identical ? "true" : "false") << ", "
        << "\"dense_recording_seconds\": " << c.dense_recording_seconds
        << ", "
        << "\"obs_overhead_pct\": " << c.obs_overhead_pct << ", "
        << "\"recording_identical\": "
        << (c.recording_identical ? "true" : "false") << "}"
        << (i + 1 < report.cells.size() ? "," : "") << "\n";
  }
  out << "      ]\n    }";
}

}  // namespace

int main(int argc, char** argv) {
  const auto ctx = bench::BenchContext::from_args(argc, argv);
  const util::Args args(argc, argv);
  const int reps =
      std::max(1, static_cast<int>(args.get_uint("reps", 3)));
  const double fraction = args.get_double("fraction", 0.04);
  const std::string json_path = args.get("json", "BENCH_throughput.json");

  std::cout << "=== Replay throughput: map-backed vs dense-id (scale="
            << ctx.scale << ", fraction=" << fraction << ", reps=" << reps
            << ") ===\n\n";

  const sim::SimulatorOptions options = ctx.simulator_options();

  // Leg 1: the synthetic DFN trace as generated.
  const trace::Trace synthetic = ctx.make_trace(synth::WorkloadProfile::DFN());

  // Leg 2: the same trace round-tripped through the native Squid log
  // format, so the ids are URL hashes produced by the real parser pipeline
  // — the document-id distribution a production access.log would have.
  std::stringstream log;
  trace::write_squid_log(log, synthetic);
  const trace::Trace real_format = trace::preprocess_squid_log(log);

  std::vector<TraceReport> reports;
  reports.push_back(
      run_trace("synthetic-dfn", synthetic, fraction, reps, options));
  reports.push_back(
      run_trace("squid-roundtrip", real_format, fraction, reps, options));

  // The multi-cache subsystems replay the synthetic trace (it carries the
  // client ids the hierarchy's edge attachment needs).
  const trace::DenseTrace dense_synthetic = trace::densify(synthetic);
  const std::vector<CompositeCell> hierarchy_cells =
      run_hierarchy_cells(synthetic, dense_synthetic, fraction, reps, options);
  const std::vector<CompositeCell> partitioned_cells = run_partitioned_cells(
      synthetic, dense_synthetic, fraction, reps, options);
  const std::vector<CompositeCell> stack_sweep_cells =
      run_stack_sweep_cells(synthetic, dense_synthetic, reps, options);
  const std::vector<CompositeCell> trace_load_cells =
      run_trace_load_cells(synthetic, reps);
  const std::uint64_t synthetic_capacity = static_cast<std::uint64_t>(
      static_cast<double>(synthetic.overall_size_bytes()) * fraction);
  const ShardedReport sharded_report =
      run_sharded_cells(dense_synthetic, synthetic_capacity, reps, options);
  const std::vector<LazyCell> lazy_cells = run_lazy_promotion_cells(
      synthetic, dense_synthetic, synthetic_capacity, reps, options);
  const std::vector<CompositeCell> streaming_cells =
      run_streaming_cells(synthetic, synthetic_capacity, reps, options);
  const std::vector<CompositeCell> checkpoint_cells =
      run_checkpoint_cells(synthetic, synthetic_capacity, reps, options);
  const std::vector<CompositeCell> kernel_cells = run_kernel_cells(
      synthetic, dense_synthetic, synthetic_capacity, reps, options);

  bool all_identical = true;
  for (const TraceReport& report : reports) {
    util::Table table("trace " + report.name + " (" +
                      std::to_string(report.requests) + " requests, " +
                      std::to_string(report.documents) + " documents)");
    table.set_header({"policy", "cost", "map req/s", "dense req/s",
                      "speedup", "identical"});
    for (const CellReport& c : report.cells) {
      table.add_row(
          {c.policy, c.cost_model,
           util::fmt_count(static_cast<std::uint64_t>(c.sparse_rps)),
           util::fmt_count(static_cast<std::uint64_t>(c.dense_rps)),
           util::fmt_fixed(c.speedup, 2), c.identical ? "yes" : "NO"});
      all_identical = all_identical && c.identical && c.recording_identical;
    }
    ctx.emit(table, "throughput_" + report.name);
    std::cout << "\n";
  }

  emit_composite_table(ctx,
                       "hierarchy replay (" +
                           std::to_string(synthetic.requests.size()) +
                           " requests)",
                       "throughput_hierarchy", hierarchy_cells, all_identical);
  emit_composite_table(ctx,
                       "partitioned-cache replay (" +
                           std::to_string(synthetic.requests.size()) +
                           " requests)",
                       "throughput_partitioned", partitioned_cells,
                       all_identical);
  emit_composite_table(ctx,
                       "one-pass stack-analysis sweep (8-fraction LRU "
                       "ladder, serial grid baseline)",
                       "throughput_stack_sweep", stack_sweep_cells,
                       all_identical, "grid req/s", "one-pass req/s");
  emit_composite_table(ctx,
                       "binary trace load (" +
                           std::to_string(synthetic.requests.size()) +
                           " records)",
                       "throughput_trace_load", trace_load_cells,
                       all_identical, "stream rec/s", "mmap rec/s");
  emit_composite_table(ctx,
                       "bounded-memory streaming (" +
                           std::to_string(synthetic.requests.size()) +
                           " requests)",
                       "throughput_streaming", streaming_cells, all_identical,
                       "materialized req/s", "streamed req/s");
  emit_composite_table(ctx,
                       "checkpointed streaming replay (" +
                           std::to_string(synthetic.requests.size()) +
                           " requests)",
                       "throughput_checkpoint", checkpoint_cells,
                       all_identical, "plain req/s", "checkpointed req/s");
  emit_composite_table(ctx,
                       "monomorphized replay kernels (" +
                           std::to_string(synthetic.requests.size()) +
                           " requests)",
                       "throughput_kernels", kernel_cells, all_identical,
                       "virtual req/s", "kernel req/s");

  {
    util::Table table("sharded replay scaling (LRU, " +
                      std::to_string(synthetic.requests.size()) +
                      " requests, serial baseline " +
                      util::fmt_count(static_cast<std::uint64_t>(
                          sharded_report.serial_rps)) +
                      " req/s)");
    table.set_header(
        {"configuration", "req/s", "req/s/core", "speedup", "identical"});
    for (const ShardedCell& c : sharded_report.cells) {
      table.add_row({c.label,
                     util::fmt_count(static_cast<std::uint64_t>(c.rps)),
                     util::fmt_count(static_cast<std::uint64_t>(
                         c.rps_per_core)),
                     util::fmt_fixed(c.speedup_vs_serial, 2),
                     c.identical ? "yes" : "NO"});
      all_identical = all_identical && c.identical;
    }
    ctx.emit(table, "throughput_sharded");
    // The degenerate --threads=1 run must have delegated to the same serial
    // engine the baseline used, not the queue-carve pipeline.
    all_identical = all_identical && sharded_report.delegation_same_engine;
    std::cout << "delegated serial engine: " << sharded_report.cells[0].engine
              << (sharded_report.delegation_same_engine ? " (matches serial)"
                                                        : " (MISMATCH)")
              << "\n\n";
  }

  {
    util::Table table("lazy-promotion family hit-path cost (dense replay, "
                      "LRU baseline)");
    table.set_header(
        {"policy", "dense req/s", "vs LRU", "hit rate", "identical"});
    for (const LazyCell& c : lazy_cells) {
      table.add_row({c.policy,
                     util::fmt_count(static_cast<std::uint64_t>(c.dense_rps)),
                     util::fmt_fixed(c.rps_vs_lru, 2),
                     util::fmt_fixed(c.hit_rate, 4),
                     c.identical ? "yes" : "NO"});
      all_identical = all_identical && c.identical;
    }
    ctx.emit(table, "throughput_lazy_promotion");
    std::cout << "\n";
  }

  const long rss_kb = peak_rss_kb();
  std::ostringstream json;
  json << "{\n"
       << "  \"scale\": " << ctx.scale << ",\n"
       << "  \"seed\": " << ctx.seed << ",\n"
       << "  \"cache_fraction\": " << fraction << ",\n"
       << "  \"reps\": " << reps << ",\n"
       << "  \"peak_rss_kb\": " << rss_kb << ",\n"
       << "  \"all_identical\": " << (all_identical ? "true" : "false")
       << ",\n";
  append_composite_json(json, "hierarchy", hierarchy_cells);
  append_composite_json(json, "partitioned", partitioned_cells);
  append_composite_json(json, "stack_sweep", stack_sweep_cells);
  append_composite_json(json, "trace_load", trace_load_cells);
  append_composite_json(json, "streaming", streaming_cells);
  append_composite_json(json, "checkpoint", checkpoint_cells);
  append_composite_json(json, "kernels", kernel_cells);
  append_sharded_json(json, sharded_report);
  append_lazy_json(json, lazy_cells);
  json << "  \"traces\": [\n";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    append_json(json, reports[i]);
    json << (i + 1 < reports.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";

  std::ofstream out(json_path);
  if (!out) {
    std::cerr << "error: cannot write " << json_path << "\n";
    return 1;
  }
  out << json.str();
  std::cout << "peak RSS: " << rss_kb << " KB\nwrote " << json_path << "\n";

  if (!all_identical) {
    std::cerr << "error: dense results diverged from the map-backed path\n";
    return 1;
  }
  return 0;
}
