file(REMOVE_RECURSE
  "CMakeFiles/ablation_gdstar_beta.dir/ablation_gdstar_beta.cpp.o"
  "CMakeFiles/ablation_gdstar_beta.dir/ablation_gdstar_beta.cpp.o.d"
  "ablation_gdstar_beta"
  "ablation_gdstar_beta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gdstar_beta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
