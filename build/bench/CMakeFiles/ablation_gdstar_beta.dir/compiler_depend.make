# Empty compiler generated dependencies file for ablation_gdstar_beta.
# This may be replaced when dependencies are built.
