file(REMOVE_RECURSE
  "CMakeFiles/ablation_modification_rule.dir/ablation_modification_rule.cpp.o"
  "CMakeFiles/ablation_modification_rule.dir/ablation_modification_rule.cpp.o.d"
  "ablation_modification_rule"
  "ablation_modification_rule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_modification_rule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
