# Empty dependencies file for ablation_modification_rule.
# This may be replaced when dependencies are built.
