file(REMOVE_RECURSE
  "CMakeFiles/all_policies_overview.dir/all_policies_overview.cpp.o"
  "CMakeFiles/all_policies_overview.dir/all_policies_overview.cpp.o.d"
  "all_policies_overview"
  "all_policies_overview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/all_policies_overview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
