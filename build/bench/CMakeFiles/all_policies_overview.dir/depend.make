# Empty dependencies file for all_policies_overview.
# This may be replaced when dependencies are built.
