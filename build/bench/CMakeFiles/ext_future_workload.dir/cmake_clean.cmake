file(REMOVE_RECURSE
  "CMakeFiles/ext_future_workload.dir/ext_future_workload.cpp.o"
  "CMakeFiles/ext_future_workload.dir/ext_future_workload.cpp.o.d"
  "ext_future_workload"
  "ext_future_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_future_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
