# Empty dependencies file for ext_future_workload.
# This may be replaced when dependencies are built.
