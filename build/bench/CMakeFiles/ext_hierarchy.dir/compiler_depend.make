# Empty compiler generated dependencies file for ext_hierarchy.
# This may be replaced when dependencies are built.
