file(REMOVE_RECURSE
  "CMakeFiles/ext_latency_savings.dir/ext_latency_savings.cpp.o"
  "CMakeFiles/ext_latency_savings.dir/ext_latency_savings.cpp.o.d"
  "ext_latency_savings"
  "ext_latency_savings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_latency_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
