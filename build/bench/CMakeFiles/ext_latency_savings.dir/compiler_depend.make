# Empty compiler generated dependencies file for ext_latency_savings.
# This may be replaced when dependencies are built.
