file(REMOVE_RECURSE
  "CMakeFiles/ext_partitioned_cache.dir/ext_partitioned_cache.cpp.o"
  "CMakeFiles/ext_partitioned_cache.dir/ext_partitioned_cache.cpp.o.d"
  "ext_partitioned_cache"
  "ext_partitioned_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_partitioned_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
