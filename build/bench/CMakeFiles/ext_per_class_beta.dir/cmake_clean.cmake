file(REMOVE_RECURSE
  "CMakeFiles/ext_per_class_beta.dir/ext_per_class_beta.cpp.o"
  "CMakeFiles/ext_per_class_beta.dir/ext_per_class_beta.cpp.o.d"
  "ext_per_class_beta"
  "ext_per_class_beta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_per_class_beta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
