# Empty dependencies file for ext_per_class_beta.
# This may be replaced when dependencies are built.
