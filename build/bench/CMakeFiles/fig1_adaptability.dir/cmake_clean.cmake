file(REMOVE_RECURSE
  "CMakeFiles/fig1_adaptability.dir/fig1_adaptability.cpp.o"
  "CMakeFiles/fig1_adaptability.dir/fig1_adaptability.cpp.o.d"
  "fig1_adaptability"
  "fig1_adaptability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_adaptability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
