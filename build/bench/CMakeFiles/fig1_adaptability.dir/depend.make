# Empty dependencies file for fig1_adaptability.
# This may be replaced when dependencies are built.
