# Empty compiler generated dependencies file for fig2_dfn_constant_cost.
# This may be replaced when dependencies are built.
