file(REMOVE_RECURSE
  "CMakeFiles/fig3_dfn_packet_cost.dir/fig3_dfn_packet_cost.cpp.o"
  "CMakeFiles/fig3_dfn_packet_cost.dir/fig3_dfn_packet_cost.cpp.o.d"
  "fig3_dfn_packet_cost"
  "fig3_dfn_packet_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_dfn_packet_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
