# Empty dependencies file for fig3_dfn_packet_cost.
# This may be replaced when dependencies are built.
