file(REMOVE_RECURSE
  "CMakeFiles/opt_headroom.dir/opt_headroom.cpp.o"
  "CMakeFiles/opt_headroom.dir/opt_headroom.cpp.o.d"
  "opt_headroom"
  "opt_headroom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opt_headroom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
