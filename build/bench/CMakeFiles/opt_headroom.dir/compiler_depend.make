# Empty compiler generated dependencies file for opt_headroom.
# This may be replaced when dependencies are built.
