file(REMOVE_RECURSE
  "CMakeFiles/policy_micro.dir/policy_micro.cpp.o"
  "CMakeFiles/policy_micro.dir/policy_micro.cpp.o.d"
  "policy_micro"
  "policy_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
