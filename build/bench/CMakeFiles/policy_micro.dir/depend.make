# Empty dependencies file for policy_micro.
# This may be replaced when dependencies are built.
