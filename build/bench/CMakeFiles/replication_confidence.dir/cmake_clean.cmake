file(REMOVE_RECURSE
  "CMakeFiles/replication_confidence.dir/replication_confidence.cpp.o"
  "CMakeFiles/replication_confidence.dir/replication_confidence.cpp.o.d"
  "replication_confidence"
  "replication_confidence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replication_confidence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
