# Empty dependencies file for replication_confidence.
# This may be replaced when dependencies are built.
