file(REMOVE_RECURSE
  "CMakeFiles/rtp_constant_cost.dir/rtp_constant_cost.cpp.o"
  "CMakeFiles/rtp_constant_cost.dir/rtp_constant_cost.cpp.o.d"
  "rtp_constant_cost"
  "rtp_constant_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtp_constant_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
