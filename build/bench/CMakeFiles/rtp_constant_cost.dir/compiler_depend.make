# Empty compiler generated dependencies file for rtp_constant_cost.
# This may be replaced when dependencies are built.
