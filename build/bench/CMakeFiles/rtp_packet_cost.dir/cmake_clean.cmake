file(REMOVE_RECURSE
  "CMakeFiles/rtp_packet_cost.dir/rtp_packet_cost.cpp.o"
  "CMakeFiles/rtp_packet_cost.dir/rtp_packet_cost.cpp.o.d"
  "rtp_packet_cost"
  "rtp_packet_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtp_packet_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
