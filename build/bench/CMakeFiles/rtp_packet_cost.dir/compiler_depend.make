# Empty compiler generated dependencies file for rtp_packet_cost.
# This may be replaced when dependencies are built.
