file(REMOVE_RECURSE
  "CMakeFiles/table2_dfn_breakdown.dir/table2_dfn_breakdown.cpp.o"
  "CMakeFiles/table2_dfn_breakdown.dir/table2_dfn_breakdown.cpp.o.d"
  "table2_dfn_breakdown"
  "table2_dfn_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_dfn_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
