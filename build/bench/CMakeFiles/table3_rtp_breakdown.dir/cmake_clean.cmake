file(REMOVE_RECURSE
  "CMakeFiles/table3_rtp_breakdown.dir/table3_rtp_breakdown.cpp.o"
  "CMakeFiles/table3_rtp_breakdown.dir/table3_rtp_breakdown.cpp.o.d"
  "table3_rtp_breakdown"
  "table3_rtp_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_rtp_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
