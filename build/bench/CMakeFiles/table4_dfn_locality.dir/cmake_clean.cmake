file(REMOVE_RECURSE
  "CMakeFiles/table4_dfn_locality.dir/table4_dfn_locality.cpp.o"
  "CMakeFiles/table4_dfn_locality.dir/table4_dfn_locality.cpp.o.d"
  "table4_dfn_locality"
  "table4_dfn_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_dfn_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
