# Empty compiler generated dependencies file for table4_dfn_locality.
# This may be replaced when dependencies are built.
