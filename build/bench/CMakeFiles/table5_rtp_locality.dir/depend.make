# Empty dependencies file for table5_rtp_locality.
# This may be replaced when dependencies are built.
