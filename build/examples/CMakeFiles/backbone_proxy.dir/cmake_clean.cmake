file(REMOVE_RECURSE
  "CMakeFiles/backbone_proxy.dir/backbone_proxy.cpp.o"
  "CMakeFiles/backbone_proxy.dir/backbone_proxy.cpp.o.d"
  "backbone_proxy"
  "backbone_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backbone_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
