# Empty dependencies file for backbone_proxy.
# This may be replaced when dependencies are built.
