# Empty dependencies file for hierarchy_study.
# This may be replaced when dependencies are built.
