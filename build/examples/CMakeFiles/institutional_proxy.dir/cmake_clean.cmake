file(REMOVE_RECURSE
  "CMakeFiles/institutional_proxy.dir/institutional_proxy.cpp.o"
  "CMakeFiles/institutional_proxy.dir/institutional_proxy.cpp.o.d"
  "institutional_proxy"
  "institutional_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/institutional_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
