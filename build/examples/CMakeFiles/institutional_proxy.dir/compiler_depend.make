# Empty compiler generated dependencies file for institutional_proxy.
# This may be replaced when dependencies are built.
