file(REMOVE_RECURSE
  "CMakeFiles/mattson_study.dir/mattson_study.cpp.o"
  "CMakeFiles/mattson_study.dir/mattson_study.cpp.o.d"
  "mattson_study"
  "mattson_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mattson_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
