# Empty compiler generated dependencies file for mattson_study.
# This may be replaced when dependencies are built.
