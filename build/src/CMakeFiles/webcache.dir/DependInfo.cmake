
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/beta_estimator.cpp" "src/CMakeFiles/webcache.dir/cache/beta_estimator.cpp.o" "gcc" "src/CMakeFiles/webcache.dir/cache/beta_estimator.cpp.o.d"
  "/root/repo/src/cache/cache.cpp" "src/CMakeFiles/webcache.dir/cache/cache.cpp.o" "gcc" "src/CMakeFiles/webcache.dir/cache/cache.cpp.o.d"
  "/root/repo/src/cache/cost_model.cpp" "src/CMakeFiles/webcache.dir/cache/cost_model.cpp.o" "gcc" "src/CMakeFiles/webcache.dir/cache/cost_model.cpp.o.d"
  "/root/repo/src/cache/factory.cpp" "src/CMakeFiles/webcache.dir/cache/factory.cpp.o" "gcc" "src/CMakeFiles/webcache.dir/cache/factory.cpp.o.d"
  "/root/repo/src/cache/fifo.cpp" "src/CMakeFiles/webcache.dir/cache/fifo.cpp.o" "gcc" "src/CMakeFiles/webcache.dir/cache/fifo.cpp.o.d"
  "/root/repo/src/cache/gds.cpp" "src/CMakeFiles/webcache.dir/cache/gds.cpp.o" "gcc" "src/CMakeFiles/webcache.dir/cache/gds.cpp.o.d"
  "/root/repo/src/cache/gdsf.cpp" "src/CMakeFiles/webcache.dir/cache/gdsf.cpp.o" "gcc" "src/CMakeFiles/webcache.dir/cache/gdsf.cpp.o.d"
  "/root/repo/src/cache/gdstar.cpp" "src/CMakeFiles/webcache.dir/cache/gdstar.cpp.o" "gcc" "src/CMakeFiles/webcache.dir/cache/gdstar.cpp.o.d"
  "/root/repo/src/cache/gdstar_class.cpp" "src/CMakeFiles/webcache.dir/cache/gdstar_class.cpp.o" "gcc" "src/CMakeFiles/webcache.dir/cache/gdstar_class.cpp.o.d"
  "/root/repo/src/cache/lfu.cpp" "src/CMakeFiles/webcache.dir/cache/lfu.cpp.o" "gcc" "src/CMakeFiles/webcache.dir/cache/lfu.cpp.o.d"
  "/root/repo/src/cache/lfu_da.cpp" "src/CMakeFiles/webcache.dir/cache/lfu_da.cpp.o" "gcc" "src/CMakeFiles/webcache.dir/cache/lfu_da.cpp.o.d"
  "/root/repo/src/cache/lru.cpp" "src/CMakeFiles/webcache.dir/cache/lru.cpp.o" "gcc" "src/CMakeFiles/webcache.dir/cache/lru.cpp.o.d"
  "/root/repo/src/cache/lru_k.cpp" "src/CMakeFiles/webcache.dir/cache/lru_k.cpp.o" "gcc" "src/CMakeFiles/webcache.dir/cache/lru_k.cpp.o.d"
  "/root/repo/src/cache/lru_variants.cpp" "src/CMakeFiles/webcache.dir/cache/lru_variants.cpp.o" "gcc" "src/CMakeFiles/webcache.dir/cache/lru_variants.cpp.o.d"
  "/root/repo/src/cache/opt.cpp" "src/CMakeFiles/webcache.dir/cache/opt.cpp.o" "gcc" "src/CMakeFiles/webcache.dir/cache/opt.cpp.o.d"
  "/root/repo/src/cache/partitioned.cpp" "src/CMakeFiles/webcache.dir/cache/partitioned.cpp.o" "gcc" "src/CMakeFiles/webcache.dir/cache/partitioned.cpp.o.d"
  "/root/repo/src/cache/size_policy.cpp" "src/CMakeFiles/webcache.dir/cache/size_policy.cpp.o" "gcc" "src/CMakeFiles/webcache.dir/cache/size_policy.cpp.o.d"
  "/root/repo/src/proxy/proxy_cache.cpp" "src/CMakeFiles/webcache.dir/proxy/proxy_cache.cpp.o" "gcc" "src/CMakeFiles/webcache.dir/proxy/proxy_cache.cpp.o.d"
  "/root/repo/src/sim/hierarchy.cpp" "src/CMakeFiles/webcache.dir/sim/hierarchy.cpp.o" "gcc" "src/CMakeFiles/webcache.dir/sim/hierarchy.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "src/CMakeFiles/webcache.dir/sim/metrics.cpp.o" "gcc" "src/CMakeFiles/webcache.dir/sim/metrics.cpp.o.d"
  "/root/repo/src/sim/replication.cpp" "src/CMakeFiles/webcache.dir/sim/replication.cpp.o" "gcc" "src/CMakeFiles/webcache.dir/sim/replication.cpp.o.d"
  "/root/repo/src/sim/reporter.cpp" "src/CMakeFiles/webcache.dir/sim/reporter.cpp.o" "gcc" "src/CMakeFiles/webcache.dir/sim/reporter.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/webcache.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/webcache.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/sweep.cpp" "src/CMakeFiles/webcache.dir/sim/sweep.cpp.o" "gcc" "src/CMakeFiles/webcache.dir/sim/sweep.cpp.o.d"
  "/root/repo/src/synth/generator.cpp" "src/CMakeFiles/webcache.dir/synth/generator.cpp.o" "gcc" "src/CMakeFiles/webcache.dir/synth/generator.cpp.o.d"
  "/root/repo/src/synth/mix_shift.cpp" "src/CMakeFiles/webcache.dir/synth/mix_shift.cpp.o" "gcc" "src/CMakeFiles/webcache.dir/synth/mix_shift.cpp.o.d"
  "/root/repo/src/synth/population.cpp" "src/CMakeFiles/webcache.dir/synth/population.cpp.o" "gcc" "src/CMakeFiles/webcache.dir/synth/population.cpp.o.d"
  "/root/repo/src/synth/profile.cpp" "src/CMakeFiles/webcache.dir/synth/profile.cpp.o" "gcc" "src/CMakeFiles/webcache.dir/synth/profile.cpp.o.d"
  "/root/repo/src/synth/profile_io.cpp" "src/CMakeFiles/webcache.dir/synth/profile_io.cpp.o" "gcc" "src/CMakeFiles/webcache.dir/synth/profile_io.cpp.o.d"
  "/root/repo/src/trace/binary_trace.cpp" "src/CMakeFiles/webcache.dir/trace/binary_trace.cpp.o" "gcc" "src/CMakeFiles/webcache.dir/trace/binary_trace.cpp.o.d"
  "/root/repo/src/trace/cacheability.cpp" "src/CMakeFiles/webcache.dir/trace/cacheability.cpp.o" "gcc" "src/CMakeFiles/webcache.dir/trace/cacheability.cpp.o.d"
  "/root/repo/src/trace/document_class.cpp" "src/CMakeFiles/webcache.dir/trace/document_class.cpp.o" "gcc" "src/CMakeFiles/webcache.dir/trace/document_class.cpp.o.d"
  "/root/repo/src/trace/filters.cpp" "src/CMakeFiles/webcache.dir/trace/filters.cpp.o" "gcc" "src/CMakeFiles/webcache.dir/trace/filters.cpp.o.d"
  "/root/repo/src/trace/preprocess.cpp" "src/CMakeFiles/webcache.dir/trace/preprocess.cpp.o" "gcc" "src/CMakeFiles/webcache.dir/trace/preprocess.cpp.o.d"
  "/root/repo/src/trace/squid_log.cpp" "src/CMakeFiles/webcache.dir/trace/squid_log.cpp.o" "gcc" "src/CMakeFiles/webcache.dir/trace/squid_log.cpp.o.d"
  "/root/repo/src/trace/squid_log_writer.cpp" "src/CMakeFiles/webcache.dir/trace/squid_log_writer.cpp.o" "gcc" "src/CMakeFiles/webcache.dir/trace/squid_log_writer.cpp.o.d"
  "/root/repo/src/util/args.cpp" "src/CMakeFiles/webcache.dir/util/args.cpp.o" "gcc" "src/CMakeFiles/webcache.dir/util/args.cpp.o.d"
  "/root/repo/src/util/distributions.cpp" "src/CMakeFiles/webcache.dir/util/distributions.cpp.o" "gcc" "src/CMakeFiles/webcache.dir/util/distributions.cpp.o.d"
  "/root/repo/src/util/fit.cpp" "src/CMakeFiles/webcache.dir/util/fit.cpp.o" "gcc" "src/CMakeFiles/webcache.dir/util/fit.cpp.o.d"
  "/root/repo/src/util/format.cpp" "src/CMakeFiles/webcache.dir/util/format.cpp.o" "gcc" "src/CMakeFiles/webcache.dir/util/format.cpp.o.d"
  "/root/repo/src/util/histogram.cpp" "src/CMakeFiles/webcache.dir/util/histogram.cpp.o" "gcc" "src/CMakeFiles/webcache.dir/util/histogram.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/webcache.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/webcache.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/webcache.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/webcache.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/webcache.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/webcache.dir/util/table.cpp.o.d"
  "/root/repo/src/workload/breakdown.cpp" "src/CMakeFiles/webcache.dir/workload/breakdown.cpp.o" "gcc" "src/CMakeFiles/webcache.dir/workload/breakdown.cpp.o.d"
  "/root/repo/src/workload/byte_stack.cpp" "src/CMakeFiles/webcache.dir/workload/byte_stack.cpp.o" "gcc" "src/CMakeFiles/webcache.dir/workload/byte_stack.cpp.o.d"
  "/root/repo/src/workload/concentration.cpp" "src/CMakeFiles/webcache.dir/workload/concentration.cpp.o" "gcc" "src/CMakeFiles/webcache.dir/workload/concentration.cpp.o.d"
  "/root/repo/src/workload/drift.cpp" "src/CMakeFiles/webcache.dir/workload/drift.cpp.o" "gcc" "src/CMakeFiles/webcache.dir/workload/drift.cpp.o.d"
  "/root/repo/src/workload/locality.cpp" "src/CMakeFiles/webcache.dir/workload/locality.cpp.o" "gcc" "src/CMakeFiles/webcache.dir/workload/locality.cpp.o.d"
  "/root/repo/src/workload/report.cpp" "src/CMakeFiles/webcache.dir/workload/report.cpp.o" "gcc" "src/CMakeFiles/webcache.dir/workload/report.cpp.o.d"
  "/root/repo/src/workload/size_stats.cpp" "src/CMakeFiles/webcache.dir/workload/size_stats.cpp.o" "gcc" "src/CMakeFiles/webcache.dir/workload/size_stats.cpp.o.d"
  "/root/repo/src/workload/stack_distance.cpp" "src/CMakeFiles/webcache.dir/workload/stack_distance.cpp.o" "gcc" "src/CMakeFiles/webcache.dir/workload/stack_distance.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
