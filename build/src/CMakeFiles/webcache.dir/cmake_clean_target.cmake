file(REMOVE_RECURSE
  "libwebcache.a"
)
