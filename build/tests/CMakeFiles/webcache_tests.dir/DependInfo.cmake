
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cache/beta_estimator_test.cpp" "tests/CMakeFiles/webcache_tests.dir/cache/beta_estimator_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/cache/beta_estimator_test.cpp.o.d"
  "/root/repo/tests/cache/cache_test.cpp" "tests/CMakeFiles/webcache_tests.dir/cache/cache_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/cache/cache_test.cpp.o.d"
  "/root/repo/tests/cache/cost_model_test.cpp" "tests/CMakeFiles/webcache_tests.dir/cache/cost_model_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/cache/cost_model_test.cpp.o.d"
  "/root/repo/tests/cache/factory_test.cpp" "tests/CMakeFiles/webcache_tests.dir/cache/factory_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/cache/factory_test.cpp.o.d"
  "/root/repo/tests/cache/fifo_size_lfu_test.cpp" "tests/CMakeFiles/webcache_tests.dir/cache/fifo_size_lfu_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/cache/fifo_size_lfu_test.cpp.o.d"
  "/root/repo/tests/cache/frontend_test.cpp" "tests/CMakeFiles/webcache_tests.dir/cache/frontend_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/cache/frontend_test.cpp.o.d"
  "/root/repo/tests/cache/gds_reference_test.cpp" "tests/CMakeFiles/webcache_tests.dir/cache/gds_reference_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/cache/gds_reference_test.cpp.o.d"
  "/root/repo/tests/cache/gds_test.cpp" "tests/CMakeFiles/webcache_tests.dir/cache/gds_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/cache/gds_test.cpp.o.d"
  "/root/repo/tests/cache/gdsf_test.cpp" "tests/CMakeFiles/webcache_tests.dir/cache/gdsf_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/cache/gdsf_test.cpp.o.d"
  "/root/repo/tests/cache/gdstar_class_test.cpp" "tests/CMakeFiles/webcache_tests.dir/cache/gdstar_class_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/cache/gdstar_class_test.cpp.o.d"
  "/root/repo/tests/cache/gdstar_test.cpp" "tests/CMakeFiles/webcache_tests.dir/cache/gdstar_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/cache/gdstar_test.cpp.o.d"
  "/root/repo/tests/cache/indexed_heap_test.cpp" "tests/CMakeFiles/webcache_tests.dir/cache/indexed_heap_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/cache/indexed_heap_test.cpp.o.d"
  "/root/repo/tests/cache/lfu_da_test.cpp" "tests/CMakeFiles/webcache_tests.dir/cache/lfu_da_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/cache/lfu_da_test.cpp.o.d"
  "/root/repo/tests/cache/lru_k_test.cpp" "tests/CMakeFiles/webcache_tests.dir/cache/lru_k_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/cache/lru_k_test.cpp.o.d"
  "/root/repo/tests/cache/lru_min_reference_test.cpp" "tests/CMakeFiles/webcache_tests.dir/cache/lru_min_reference_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/cache/lru_min_reference_test.cpp.o.d"
  "/root/repo/tests/cache/lru_test.cpp" "tests/CMakeFiles/webcache_tests.dir/cache/lru_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/cache/lru_test.cpp.o.d"
  "/root/repo/tests/cache/lru_variants_test.cpp" "tests/CMakeFiles/webcache_tests.dir/cache/lru_variants_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/cache/lru_variants_test.cpp.o.d"
  "/root/repo/tests/cache/opt_test.cpp" "tests/CMakeFiles/webcache_tests.dir/cache/opt_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/cache/opt_test.cpp.o.d"
  "/root/repo/tests/cache/partitioned_test.cpp" "tests/CMakeFiles/webcache_tests.dir/cache/partitioned_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/cache/partitioned_test.cpp.o.d"
  "/root/repo/tests/cache/policy_property_test.cpp" "tests/CMakeFiles/webcache_tests.dir/cache/policy_property_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/cache/policy_property_test.cpp.o.d"
  "/root/repo/tests/cache/stack_property_test.cpp" "tests/CMakeFiles/webcache_tests.dir/cache/stack_property_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/cache/stack_property_test.cpp.o.d"
  "/root/repo/tests/integration/end_to_end_test.cpp" "tests/CMakeFiles/webcache_tests.dir/integration/end_to_end_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/integration/end_to_end_test.cpp.o.d"
  "/root/repo/tests/integration/paper_claims_test.cpp" "tests/CMakeFiles/webcache_tests.dir/integration/paper_claims_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/integration/paper_claims_test.cpp.o.d"
  "/root/repo/tests/integration/pipeline_test.cpp" "tests/CMakeFiles/webcache_tests.dir/integration/pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/integration/pipeline_test.cpp.o.d"
  "/root/repo/tests/proxy/proxy_cache_test.cpp" "tests/CMakeFiles/webcache_tests.dir/proxy/proxy_cache_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/proxy/proxy_cache_test.cpp.o.d"
  "/root/repo/tests/sim/hierarchy_test.cpp" "tests/CMakeFiles/webcache_tests.dir/sim/hierarchy_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/sim/hierarchy_test.cpp.o.d"
  "/root/repo/tests/sim/latency_test.cpp" "tests/CMakeFiles/webcache_tests.dir/sim/latency_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/sim/latency_test.cpp.o.d"
  "/root/repo/tests/sim/metrics_test.cpp" "tests/CMakeFiles/webcache_tests.dir/sim/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/sim/metrics_test.cpp.o.d"
  "/root/repo/tests/sim/replication_test.cpp" "tests/CMakeFiles/webcache_tests.dir/sim/replication_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/sim/replication_test.cpp.o.d"
  "/root/repo/tests/sim/reporter_test.cpp" "tests/CMakeFiles/webcache_tests.dir/sim/reporter_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/sim/reporter_test.cpp.o.d"
  "/root/repo/tests/sim/simulator_test.cpp" "tests/CMakeFiles/webcache_tests.dir/sim/simulator_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/sim/simulator_test.cpp.o.d"
  "/root/repo/tests/sim/sweep_parallel_test.cpp" "tests/CMakeFiles/webcache_tests.dir/sim/sweep_parallel_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/sim/sweep_parallel_test.cpp.o.d"
  "/root/repo/tests/sim/sweep_test.cpp" "tests/CMakeFiles/webcache_tests.dir/sim/sweep_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/sim/sweep_test.cpp.o.d"
  "/root/repo/tests/synth/generator_test.cpp" "tests/CMakeFiles/webcache_tests.dir/synth/generator_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/synth/generator_test.cpp.o.d"
  "/root/repo/tests/synth/mix_shift_test.cpp" "tests/CMakeFiles/webcache_tests.dir/synth/mix_shift_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/synth/mix_shift_test.cpp.o.d"
  "/root/repo/tests/synth/population_test.cpp" "tests/CMakeFiles/webcache_tests.dir/synth/population_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/synth/population_test.cpp.o.d"
  "/root/repo/tests/synth/profile_io_test.cpp" "tests/CMakeFiles/webcache_tests.dir/synth/profile_io_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/synth/profile_io_test.cpp.o.d"
  "/root/repo/tests/synth/profile_test.cpp" "tests/CMakeFiles/webcache_tests.dir/synth/profile_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/synth/profile_test.cpp.o.d"
  "/root/repo/tests/trace/binary_trace_test.cpp" "tests/CMakeFiles/webcache_tests.dir/trace/binary_trace_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/trace/binary_trace_test.cpp.o.d"
  "/root/repo/tests/trace/cacheability_test.cpp" "tests/CMakeFiles/webcache_tests.dir/trace/cacheability_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/trace/cacheability_test.cpp.o.d"
  "/root/repo/tests/trace/document_class_test.cpp" "tests/CMakeFiles/webcache_tests.dir/trace/document_class_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/trace/document_class_test.cpp.o.d"
  "/root/repo/tests/trace/filters_test.cpp" "tests/CMakeFiles/webcache_tests.dir/trace/filters_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/trace/filters_test.cpp.o.d"
  "/root/repo/tests/trace/preprocess_test.cpp" "tests/CMakeFiles/webcache_tests.dir/trace/preprocess_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/trace/preprocess_test.cpp.o.d"
  "/root/repo/tests/trace/squid_log_test.cpp" "tests/CMakeFiles/webcache_tests.dir/trace/squid_log_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/trace/squid_log_test.cpp.o.d"
  "/root/repo/tests/trace/squid_log_writer_test.cpp" "tests/CMakeFiles/webcache_tests.dir/trace/squid_log_writer_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/trace/squid_log_writer_test.cpp.o.d"
  "/root/repo/tests/util/args_test.cpp" "tests/CMakeFiles/webcache_tests.dir/util/args_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/util/args_test.cpp.o.d"
  "/root/repo/tests/util/distributions_test.cpp" "tests/CMakeFiles/webcache_tests.dir/util/distributions_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/util/distributions_test.cpp.o.d"
  "/root/repo/tests/util/fenwick_test.cpp" "tests/CMakeFiles/webcache_tests.dir/util/fenwick_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/util/fenwick_test.cpp.o.d"
  "/root/repo/tests/util/fit_test.cpp" "tests/CMakeFiles/webcache_tests.dir/util/fit_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/util/fit_test.cpp.o.d"
  "/root/repo/tests/util/format_test.cpp" "tests/CMakeFiles/webcache_tests.dir/util/format_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/util/format_test.cpp.o.d"
  "/root/repo/tests/util/histogram_test.cpp" "tests/CMakeFiles/webcache_tests.dir/util/histogram_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/util/histogram_test.cpp.o.d"
  "/root/repo/tests/util/rng_test.cpp" "tests/CMakeFiles/webcache_tests.dir/util/rng_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/util/rng_test.cpp.o.d"
  "/root/repo/tests/util/stats_test.cpp" "tests/CMakeFiles/webcache_tests.dir/util/stats_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/util/stats_test.cpp.o.d"
  "/root/repo/tests/util/table_test.cpp" "tests/CMakeFiles/webcache_tests.dir/util/table_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/util/table_test.cpp.o.d"
  "/root/repo/tests/workload/breakdown_test.cpp" "tests/CMakeFiles/webcache_tests.dir/workload/breakdown_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/workload/breakdown_test.cpp.o.d"
  "/root/repo/tests/workload/byte_stack_test.cpp" "tests/CMakeFiles/webcache_tests.dir/workload/byte_stack_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/workload/byte_stack_test.cpp.o.d"
  "/root/repo/tests/workload/concentration_test.cpp" "tests/CMakeFiles/webcache_tests.dir/workload/concentration_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/workload/concentration_test.cpp.o.d"
  "/root/repo/tests/workload/drift_test.cpp" "tests/CMakeFiles/webcache_tests.dir/workload/drift_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/workload/drift_test.cpp.o.d"
  "/root/repo/tests/workload/locality_test.cpp" "tests/CMakeFiles/webcache_tests.dir/workload/locality_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/workload/locality_test.cpp.o.d"
  "/root/repo/tests/workload/report_test.cpp" "tests/CMakeFiles/webcache_tests.dir/workload/report_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/workload/report_test.cpp.o.d"
  "/root/repo/tests/workload/size_stats_test.cpp" "tests/CMakeFiles/webcache_tests.dir/workload/size_stats_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/workload/size_stats_test.cpp.o.d"
  "/root/repo/tests/workload/stack_distance_test.cpp" "tests/CMakeFiles/webcache_tests.dir/workload/stack_distance_test.cpp.o" "gcc" "tests/CMakeFiles/webcache_tests.dir/workload/stack_distance_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/webcache.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
