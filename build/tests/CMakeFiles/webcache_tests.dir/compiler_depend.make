# Empty compiler generated dependencies file for webcache_tests.
# This may be replaced when dependencies are built.
