file(REMOVE_RECURSE
  "CMakeFiles/webcache_cli.dir/webcache_cli.cpp.o"
  "CMakeFiles/webcache_cli.dir/webcache_cli.cpp.o.d"
  "webcache"
  "webcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webcache_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
