# Empty dependencies file for webcache_cli.
# This may be replaced when dependencies are built.
