// Scenario: choosing a replacement scheme for a *backbone* proxy.
//
// "The packet cost model is appropriate for backbone proxy caches aiming at
//  reducing network traffic by optimizing the byte hit rate" (paper,
//  Section 3). This example compares the packet-cost family on both
//  workloads (DFN-like and RTP-like) — demonstrating the paper's headline
//  caveat that GD*(packet)'s advantage depends on workload characteristics
//  and shrinks on the RTP trace.
//
// Usage: ./examples/backbone_proxy [--scale=0.01] [--seed=42]
#include <iostream>

#include "cache/factory.hpp"
#include "sim/reporter.hpp"
#include "sim/sweep.hpp"
#include "synth/generator.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  using namespace webcache;
  const util::Args args(argc, argv);
  const double scale = args.get_double("scale", 0.01);
  const std::uint64_t seed = args.get_uint("seed", 42);

  std::cout << "Backbone proxy study: byte hit rate under packet cost (scale "
            << scale << ")\n\n";

  for (const auto& profile :
       {synth::WorkloadProfile::DFN(), synth::WorkloadProfile::RTP()}) {
    synth::GeneratorOptions gen;
    gen.seed = seed;
    const trace::Trace trace =
        synth::TraceGenerator(profile.scaled(scale), gen).generate();

    sim::SweepConfig config;
    config.cache_fractions = {0.02, 0.08, 0.40};
    config.policies = cache::paper_policy_set(cache::CostModelKind::kPacket);
    const sim::SweepResult sweep = sim::run_sweep(trace, config);

    sim::render_sweep_overall(sweep, sim::Metric::kByteHitRate,
                              profile.name + "-like workload: byte hit rate")
        .print(std::cout);
  }

  std::cout
      << "Reading the two tables together reproduces the paper's\n"
         "conclusion: on the DFN-like workload GD*(packet) is the clear\n"
         "choice for a backbone cache, but on the RTP-like workload (more\n"
         "multimedia, flatter popularity, stronger temporal correlation)\n"
         "its edge diminishes or vanishes.\n";
  return 0;
}
