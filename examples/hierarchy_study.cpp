// Scenario: design a campus-to-backbone caching hierarchy.
//
// Four institutional proxies (constant-cost GD*, per the paper's guidance
// for hit-rate-oriented edges) feed one backbone proxy. The study sweeps
// the split of a fixed total byte budget between the two levels and
// reports where origin traffic is minimized — a question neither level's
// isolated evaluation (the paper's Figures 2/3) can answer.
//
// Usage: ./examples/hierarchy_study [--scale=0.01] [--seed=42] [--edges=4]
#include <iostream>

#include "sim/hierarchy.hpp"
#include "synth/generator.hpp"
#include "util/args.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace webcache;
  const util::Args args(argc, argv);
  const double scale = args.get_double("scale", 0.01);
  const auto edges = static_cast<std::uint32_t>(args.get_uint("edges", 4));

  synth::GeneratorOptions gen;
  gen.seed = args.get_uint("seed", 42);
  const trace::Trace t =
      synth::TraceGenerator(synth::WorkloadProfile::DFN().scaled(scale), gen)
          .generate();
  const double overall = static_cast<double>(t.overall_size_bytes());
  const double total_budget = overall * 0.10;  // 10% of trace bytes, total

  std::cout << "Hierarchy budget study: " << edges
            << " GD*(1) edges + GD*(packet) root, total budget "
            << util::fmt_bytes(total_budget) << " (10% of trace)\n\n";

  util::Table table("Edge share of the total byte budget");
  table.set_header({"Edge share", "Edge HR", "Root HR", "Combined HR",
                    "Combined BHR", "Origin traffic"});
  for (const double edge_share : {0.0, 0.1, 0.2, 0.4, 0.6, 0.8}) {
    sim::HierarchyConfig config;
    config.edge_count = edges;
    config.edge_capacity_bytes = static_cast<std::uint64_t>(
        std::max(1.0, total_budget * edge_share / edges));
    config.edge_policy = cache::policy_spec_from_name("GD*(1)");
    config.root_capacity_bytes = static_cast<std::uint64_t>(
        std::max(1.0, total_budget * (1.0 - edge_share)));
    config.root_policy = cache::policy_spec_from_name("GD*(packet)");

    const sim::HierarchyResult r = sim::simulate_hierarchy(t, config);
    table.add_row({util::fmt_percent(edge_share, 0) + "%",
                   util::fmt_fixed(r.edge_hit_rate(), 4),
                   util::fmt_fixed(r.root_hit_rate(), 4),
                   util::fmt_fixed(r.combined_hit_rate(), 4),
                   util::fmt_fixed(r.combined_byte_hit_rate(), 4),
                   util::fmt_percent(r.origin_traffic_fraction(), 1) + "%"});
  }
  table.print(std::cout);
  std::cout
      << "Edge capacity lowers user latency (edge hit rate) but fragments\n"
         "the byte budget; the origin-traffic column shows what the\n"
         "backbone pays for it.\n";
  return 0;
}
