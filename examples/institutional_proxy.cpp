// Scenario: choosing a replacement scheme for an *institutional* proxy.
//
// "The constant cost model is the model of choice for institutional proxy
//  caches, which mainly aim at reducing end user latency by optimizing the
//  hit rate" (paper, Section 3). This example plays the role of a capacity
//  planner: given a DFN-like workload and a budget of cache sizes, which
//  scheme maximizes hit rate, and what does the per-type breakdown say
//  about *why*?
//
// Usage: ./examples/institutional_proxy [--scale=0.01] [--seed=42]
#include <iostream>

#include "cache/factory.hpp"
#include "sim/reporter.hpp"
#include "sim/sweep.hpp"
#include "synth/generator.hpp"
#include "util/args.hpp"
#include "util/format.hpp"

int main(int argc, char** argv) {
  using namespace webcache;
  const util::Args args(argc, argv);
  const double scale = args.get_double("scale", 0.01);
  const std::uint64_t seed = args.get_uint("seed", 42);

  std::cout << "Institutional proxy sizing study (DFN-like workload, scale "
            << scale << ")\n\n";

  synth::GeneratorOptions gen;
  gen.seed = seed;
  const trace::Trace trace =
      synth::TraceGenerator(synth::WorkloadProfile::DFN().scaled(scale), gen)
          .generate();

  sim::SweepConfig config;
  config.cache_fractions = {0.01, 0.04, 0.16};
  config.policies = cache::paper_policy_set(cache::CostModelKind::kConstant);
  const sim::SweepResult sweep = sim::run_sweep(trace, config);

  sim::render_sweep_overall(sweep, sim::Metric::kHitRate,
                            "Overall hit rate (the institutional objective)")
      .print(std::cout);

  // The decision and its caveat, per the paper's findings.
  const auto& best_point = sweep.points[1];  // 4% of trace size
  std::size_t best = 0;
  for (std::size_t i = 1; i < best_point.results.size(); ++i) {
    if (best_point.results[i].overall.hit_rate() >
        best_point.results[best].overall.hit_rate()) {
      best = i;
    }
  }
  std::cout << "Recommendation at 4% of trace size: "
            << best_point.results[best].policy_name << " (hit rate "
            << util::fmt_fixed(best_point.results[best].overall.hit_rate(), 3)
            << ")\n\n";

  sim::render_sweep_panel(sweep, trace::DocumentClass::kMultiMedia,
                          sim::Metric::kByteHitRate,
                          "The caveat: multi-media byte hit rate")
      .print(std::cout);
  std::cout
      << "Size-aware schemes win the hit rate by discriminating large\n"
         "documents; if your users stream media through this proxy, note\n"
         "how their byte hit rate collapses under GDS(1)/GD*(1) — exactly\n"
         "the paper's Figure 2 (multi media, right column).\n";
  return 0;
}
