// Scenario: size the cache *before* buying it — one pass instead of one
// simulation per candidate size.
//
// Mattson's stack-distance analysis exploits LRU's inclusion property: a
// single traversal of the trace yields the LRU hit rate for EVERY cache
// size at once. This example computes the document-granularity profile and
// the byte-weighted approximation, then cross-checks a few points against
// real simulations — exactly the validation the test suite pins down.
//
// Usage: ./examples/mattson_study [--scale=0.01] [--seed=42]
#include <iostream>

#include "cache/cache.hpp"
#include "cache/factory.hpp"
#include "synth/generator.hpp"
#include "util/args.hpp"
#include "util/format.hpp"
#include "util/table.hpp"
#include "workload/byte_stack.hpp"
#include "workload/stack_distance.hpp"

int main(int argc, char** argv) {
  using namespace webcache;
  const util::Args args(argc, argv);
  const double scale = args.get_double("scale", 0.01);

  synth::GeneratorOptions gen;
  gen.seed = args.get_uint("seed", 42);
  const trace::Trace t =
      synth::TraceGenerator(synth::WorkloadProfile::DFN().scaled(scale), gen)
          .generate();

  std::cout << "Mattson sizing study over " << t.total_requests()
            << " requests\n\n";

  const workload::StackDistanceProfile docs =
      workload::compute_stack_distances(t);
  std::cout << "Cold-miss floor: "
            << util::fmt_percent(static_cast<double>(docs.cold_misses) /
                                     static_cast<double>(docs.total_references),
                                 1)
            << "% of requests can never hit (first references).\n\n";

  const workload::ByteStackProfile bytes = workload::compute_byte_stack(t);

  util::Table table("Predicted (one pass) vs simulated byte-LRU hit rate");
  table.set_header({"Cache size", "Predicted HR", "Simulated HR", "Error"});
  for (const double fraction : {0.01, 0.04, 0.16}) {
    const auto capacity = static_cast<std::uint64_t>(
        static_cast<double>(t.overall_size_bytes()) * fraction);

    cache::Cache cache(capacity, cache::make_policy("LRU"));
    std::uint64_t hits = 0;
    for (const auto& r : t.requests) {
      if (cache.access(r.document, r.transfer_size, r.doc_class).kind ==
          cache::Cache::AccessKind::kHit) {
        ++hits;
      }
    }
    const double simulated =
        static_cast<double>(hits) / static_cast<double>(t.total_requests());
    const double predicted = bytes.hit_rate_at_bytes(capacity);
    table.add_row({util::fmt_bytes(static_cast<double>(capacity)),
                   util::fmt_fixed(predicted, 4),
                   util::fmt_fixed(simulated, 4),
                   util::fmt_fixed(predicted - simulated, 4)});
  }
  table.print(std::cout);
  std::cout
      << "The one-pass curve is exact for unit-size objects (Mattson) and\n"
         "accurate to a few points for byte-capacity caches — enough to\n"
         "pick a size before running the full per-policy sweeps.\n";
  return 0;
}
