// Quickstart: the 60-second tour of the library's public API.
//
//  1. Use ProxyCache — the online, URL-keyed cache a proxy would embed.
//  2. Generate a synthetic workload calibrated to the paper's DFN trace.
//  3. Run the trace-driven simulator and compare two replacement schemes.
//
// Build & run:  ./examples/quickstart
#include <iostream>

#include "proxy/proxy_cache.hpp"
#include "sim/simulator.hpp"
#include "synth/generator.hpp"
#include "util/format.hpp"

int main() {
  using namespace webcache;

  // ---- 1. An online cache with the paper's best backbone policy. --------
  proxy::ProxyCacheConfig config;
  config.capacity_bytes = 64 * 1024;  // toy capacity so evictions happen
  config.policy = "GD*(packet)";
  proxy::ProxyCache cache(config);

  const char* urls[] = {
      "http://example.com/index.html", "http://example.com/logo.gif",
      "http://example.com/talk.mp3", "http://example.com/paper.pdf",
  };
  const std::uint64_t sizes[] = {6 * 1024, 3 * 1024, 48 * 1024, 20 * 1024};

  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 4; ++i) {
      if (cache.lookup(urls[i]) == proxy::Disposition::kMiss) {
        // A real proxy would fetch from the origin here.
        cache.store(urls[i], sizes[i]);
      }
    }
  }
  std::cout << "ProxyCache [" << cache.policy_name() << "] after 3 rounds: "
            << cache.stats().overall.hits << " hits / "
            << cache.stats().overall.requests << " requests, "
            << util::fmt_bytes(static_cast<double>(cache.used_bytes()))
            << " resident\n\n";

  // ---- 2. A synthetic DFN-like trace (0.2% of the paper's size). --------
  synth::GeneratorOptions gen;
  gen.seed = 42;
  const trace::Trace trace =
      synth::TraceGenerator(synth::WorkloadProfile::DFN().scaled(0.002), gen)
          .generate();
  std::cout << "Generated " << trace.total_requests() << " requests to "
            << trace.distinct_documents() << " documents ("
            << util::fmt_bytes(static_cast<double>(trace.requested_bytes()))
            << " requested)\n\n";

  // ---- 3. Simulate LRU vs GD*(1) at 4% of the trace's total bytes. ------
  const std::uint64_t capacity = trace.overall_size_bytes() / 25;
  for (const char* policy : {"LRU", "GD*(1)"}) {
    const sim::SimResult r = sim::simulate(
        trace, capacity, cache::policy_spec_from_name(policy), {});
    std::cout << r.policy_name << ": hit rate "
              << util::fmt_fixed(r.overall.hit_rate(), 3) << ", byte hit rate "
              << util::fmt_fixed(r.overall.byte_hit_rate(), 3) << "\n";
  }
  std::cout << "\nExpected: GD*(1) clearly ahead in hit rate, LRU ahead in "
               "byte hit rate — the paper's central trade-off.\n";
  return 0;
}
