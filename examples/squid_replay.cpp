// Scenario: run the paper's study on YOUR proxy — replay a real Squid
// access.log through the preprocessing pipeline and the simulator.
//
// This is the bridge from the synthetic reproduction back to reality: with
// a Squid-format log the identical analysis (preprocessing heuristics,
// per-type breakdown, policy comparison) runs on measured traffic.
//
// Usage:
//   ./examples/squid_replay <access.log> [--cache-mb=1024] [--policy=all]
//   ./examples/squid_replay --demo          # built-in 10-line sample log
#include <fstream>
#include <iostream>
#include <sstream>

#include "cache/factory.hpp"
#include "sim/simulator.hpp"
#include "trace/preprocess.hpp"
#include "util/args.hpp"
#include "util/format.hpp"
#include "util/table.hpp"
#include "workload/breakdown.hpp"
#include "workload/report.hpp"

namespace {

constexpr const char* kDemoLog =
    "981173030.010 212 10.0.0.1 TCP_MISS/200 6144 GET http://a/index.html - D/x text/html\n"
    "981173031.120 80 10.0.0.2 TCP_MISS/200 3210 GET http://a/logo.gif - D/x image/gif\n"
    "981173032.330 95 10.0.0.1 TCP_HIT/200 3210 GET http://a/logo.gif - D/x image/gif\n"
    "981173033.440 500 10.0.0.3 TCP_MISS/200 482133 GET http://a/talk.mp3 - D/x audio/mpeg\n"
    "981173034.550 75 10.0.0.2 TCP_MISS/200 150000 GET http://a/paper.pdf - D/x application/pdf\n"
    "981173035.660 20 10.0.0.1 TCP_MISS/404 320 GET http://a/missing - D/x text/html\n"
    "981173036.770 33 10.0.0.4 TCP_MISS/200 900 GET http://a/cgi-bin/s - D/x text/html\n"
    "981173037.880 41 10.0.0.4 TCP_MISS/200 512 POST http://a/form - D/x text/html\n"
    "981173038.990 66 10.0.0.2 TCP_HIT/200 6144 GET http://a/index.html - D/x text/html\n"
    "981173040.100 91 10.0.0.3 TCP_MISS/200 3210 GET http://a/logo.gif - D/x image/gif\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace webcache;
  const util::Args args(argc, argv);

  trace::PreprocessStats stats;
  trace::Trace t;
  if (args.get_bool("demo", false) || args.positional().empty()) {
    std::cout << "(no log given: replaying the built-in demo sample; pass a "
                 "Squid access.log path to analyze real traffic)\n\n";
    std::istringstream in(kDemoLog);
    t = trace::preprocess_squid_log(in, &stats);
  } else {
    const std::string path = args.positional().front();
    std::ifstream in(path);
    if (!in) {
      std::cerr << "error: cannot open " << path << "\n";
      return 1;
    }
    t = trace::preprocess_squid_log(in, &stats);
  }

  std::cout << "Preprocessing: " << stats.total_entries << " entries, "
            << stats.accepted << " cacheable ("
            << stats.rejected_method << " non-GET, "
            << stats.rejected_dynamic_url << " dynamic, "
            << stats.rejected_status << " bad status)\n\n";
  if (t.requests.empty()) {
    std::cerr << "error: nothing cacheable in the log\n";
    return 1;
  }

  const workload::Breakdown bd = workload::compute_breakdown(t);
  workload::render_class_breakdown("Your", bd).print(std::cout);

  const std::uint64_t capacity_bytes =
      args.get_uint("cache-mb", 1024) * 1024 * 1024;

  util::Table table("Policy comparison at " +
                    util::fmt_bytes(static_cast<double>(capacity_bytes)));
  table.set_header({"Policy", "Hit rate", "Byte hit rate", "Evictions"});
  for (const char* name :
       {"LRU", "LFU-DA", "GDS(1)", "GD*(1)", "GDS(packet)", "GD*(packet)"}) {
    sim::SimulatorOptions opts;
    // Small logs: skip warmup so the demo shows non-zero rates.
    opts.warmup_fraction = t.requests.size() < 1000 ? 0.0 : 0.10;
    const sim::SimResult r = sim::simulate(
        t, capacity_bytes, cache::policy_spec_from_name(name), opts);
    table.add_row({r.policy_name, util::fmt_fixed(r.overall.hit_rate(), 4),
                   util::fmt_fixed(r.overall.byte_hit_rate(), 4),
                   util::fmt_count(r.evictions)});
  }
  table.print(std::cout);
  return 0;
}
