// Scenario: workload characterization — regenerate the paper's Section 2
// analysis for any workload profile and verify the synthetic traces hit
// their calibration targets.
//
// Usage: ./examples/workload_explorer [--profile=DFN|RTP] [--scale=0.01]
//                                     [--seed=42]
#include <iostream>
#include <stdexcept>

#include "synth/generator.hpp"
#include "util/args.hpp"
#include "util/format.hpp"
#include "workload/breakdown.hpp"
#include "workload/concentration.hpp"
#include "workload/drift.hpp"
#include "workload/locality.hpp"
#include "workload/report.hpp"
#include "workload/size_stats.hpp"
#include "workload/stack_distance.hpp"

int main(int argc, char** argv) {
  using namespace webcache;
  const util::Args args(argc, argv);
  const std::string profile_name = args.get("profile", "DFN");
  const double scale = args.get_double("scale", 0.01);
  const std::uint64_t seed = args.get_uint("seed", 42);

  const synth::WorkloadProfile profile =
      profile_name == "DFN"   ? synth::WorkloadProfile::DFN()
      : profile_name == "RTP" ? synth::WorkloadProfile::RTP()
                              : throw std::invalid_argument(
                                    "--profile must be DFN or RTP");

  std::cout << "Workload explorer: " << profile_name << " at scale " << scale
            << "\n\n";

  synth::GeneratorOptions gen;
  gen.seed = seed;
  const trace::Trace trace =
      synth::TraceGenerator(profile.scaled(scale), gen).generate();

  const workload::Breakdown bd = workload::compute_breakdown(trace);
  workload::render_trace_properties({{profile_name, bd}}).print(std::cout);
  workload::render_class_breakdown(profile_name, bd).print(std::cout);

  const workload::SizeStats sizes = workload::compute_size_stats(trace);
  const workload::LocalityStats locality = workload::compute_locality(trace);
  workload::render_size_and_locality(profile_name, sizes, locality)
      .print(std::cout);

  // Calibration check: measured class mix vs the profile's targets.
  util::Table check("Calibration check: measured vs profile target");
  check.set_header({"Class", "% requests (measured)", "% requests (target)",
                    "alpha (measured)", "alpha (target)", "beta (measured)",
                    "beta (target)"});
  for (const auto cls : trace::kAllDocumentClasses) {
    check.add_row({std::string(trace::to_string(cls)),
                   util::fmt_percent(bd.request_fraction(cls), 2),
                   util::fmt_percent(profile.of(cls).request_fraction, 2),
                   util::fmt_fixed(locality.of(cls).alpha, 2),
                   util::fmt_fixed(profile.of(cls).alpha, 2),
                   util::fmt_fixed(locality.of(cls).beta, 2),
                   util::fmt_fixed(profile.of(cls).beta, 2)});
  }
  check.print(std::cout);
  std::cout << "(alpha is measured over the full rank-count curve including\n"
               "the one-timer plateau, so it reads slightly below the head\n"
               "exponent the profile plants; the cross-class ordering is the\n"
               "paper-relevant signal.)\n\n";

  // Concentration of references (the non-uniformity the paper cites [1]).
  const workload::ConcentrationStats conc = workload::compute_concentration(trace);
  util::Table conc_table("Concentration of references");
  conc_table.set_header({"", "one-timer docs", "requests to top 1%",
                         "requests to top 10%"});
  for (const auto cls : trace::kAllDocumentClasses) {
    conc_table.add_row(
        {std::string(trace::to_string(cls)),
         util::fmt_percent(conc.of(cls).one_timer_document_fraction, 1) + "%",
         util::fmt_percent(conc.of(cls).top1_request_share, 1) + "%",
         util::fmt_percent(conc.of(cls).top10_request_share, 1) + "%"});
  }
  conc_table.add_row(
      {"Overall",
       util::fmt_percent(conc.overall.one_timer_document_fraction, 1) + "%",
       util::fmt_percent(conc.overall.top1_request_share, 1) + "%",
       util::fmt_percent(conc.overall.top10_request_share, 1) + "%"});
  conc_table.print(std::cout);

  // Workload drift over four windows (stationary for synthetic profiles).
  workload::render_drift(workload::compute_drift(trace, 4),
                         "Drift across four equal windows")
      .print(std::cout);

  // Mattson view: the document-level cold-miss floor.
  const workload::StackDistanceProfile stack =
      workload::compute_stack_distances(trace);
  std::cout << "Cold (compulsory) misses: "
            << util::fmt_percent(
                   static_cast<double>(stack.cold_misses) /
                       static_cast<double>(stack.total_references),
                   1)
            << "% of references — the hard floor no replacement scheme can\n"
               "beat, dominated by one-timer documents.\n";
  return 0;
}
