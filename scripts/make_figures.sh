#!/usr/bin/env bash
# Regenerates every figure of the paper as CSV series and (when gnuplot is
# installed) as PNG plots.
#
# Usage: scripts/make_figures.sh [BUILD_DIR] [OUT_DIR] [SCALE]
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-figures}"
SCALE="${3:-0.05}"

mkdir -p "$OUT_DIR"

echo "== running benchmarks (scale=$SCALE) =="
for bench in table1_trace_properties table2_dfn_breakdown table3_rtp_breakdown \
             table4_dfn_locality table5_rtp_locality fig1_adaptability \
             fig2_dfn_constant_cost fig3_dfn_packet_cost \
             rtp_constant_cost rtp_packet_cost \
             ablation_gdstar_beta ablation_modification_rule \
             ablation_warmup opt_headroom ext_partitioned_cache \
             ext_hierarchy ext_future_workload ext_latency_savings \
             ext_per_class_beta replication_confidence \
             all_policies_overview; do
  echo "-- $bench"
  "$BUILD_DIR/bench/$bench" --scale="$SCALE" --csv="$OUT_DIR" \
      > "$OUT_DIR/$bench.txt"
done

if ! command -v gnuplot > /dev/null; then
  echo "gnuplot not found: CSVs and text reports are in $OUT_DIR/"
  exit 0
fi

echo "== plotting =="
for csv in "$OUT_DIR"/fig2_*.csv "$OUT_DIR"/fig3_*.csv \
           "$OUT_DIR"/rtp_cc_*.csv "$OUT_DIR"/rtp_pc_*.csv; do
  [ -e "$csv" ] || continue
  base="$(basename "$csv" .csv)"
  gnuplot -e "csv='$csv'; out='$OUT_DIR/$base.png'; title='$base'" \
      scripts/panel.gnuplot
done
echo "figures in $OUT_DIR/"
