# Generic panel renderer for the benchmark CSVs.
#
# Usage:
#   gnuplot -e "csv='out/fig2_hr_Images.csv'; out='fig2_hr_images.png'; \
#               title='DFN images: hit rate'" scripts/panel.gnuplot
#
# The CSVs have the layout produced by sim::render_sweep_panel:
#   Cache (MB),Cache (%),<policy>,<policy>,...
# The x-axis is the cache size as a percent of trace size (log scale, as in
# the paper's figures); one line per policy, titled from the header row.
if (!exists("csv")) {
    print "error: pass -e \"csv='file.csv'\""
    exit
}
if (!exists("out")) out = csv . ".png"
if (!exists("title")) title = csv

set datafile separator ","
set terminal pngcairo size 800,560 font "sans,11"
set output out

set title title
set xlabel "Cache size (% of overall trace size)"
set ylabel "Rate"
set logscale x
set grid
set key left top autotitle columnhead
set yrange [0:*]

# Count data columns (first two are the cache size).
stats csv skip 1 nooutput
ncols = STATS_columns

plot for [c=3:ncols] csv using 2:c with linespoints lw 2 pt 7 ps 0.8
