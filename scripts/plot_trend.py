#!/usr/bin/env python3
"""Plot BENCH_trend.jsonl as a throughput-over-commits chart.

Reads the JSONL trend log that scripts/trend_throughput.py accumulates and
renders one point per recorded run:

  * geomean dense replay throughput (requests/s) across all trace cells,
    plus a per-trace-profile breakdown;
  * the one-pass sweep speedup (stack_sweep cells) on a second axis when
    present.

Outputs, stdlib only:

    scripts/plot_trend.py                      # BENCH_trend.png via gnuplot
    scripts/plot_trend.py --out=custom.png

A gnuplot script and its data file are always written next to the output
(so the chart can be re-rendered or restyled by hand); when the gnuplot
binary is available it is invoked to produce the PNG, otherwise the script
falls back to emitting a self-contained SVG so CI always uploads a visual
artifact. Exits 1 only when the trend log is missing or empty.
"""
from __future__ import annotations

import argparse
import json
import math
import os
import shutil
import subprocess
import sys


def load_trend(path: str) -> list:
    entries = []
    try:
        with open(path, encoding="utf-8") as fh:
            for raw in fh:
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    entries.append(json.loads(raw))
                except json.JSONDecodeError:
                    continue  # tolerate corrupt lines, like the trend writer
    except OSError as err:
        print(f"error: cannot read {path}: {err}", file=sys.stderr)
        return []
    return entries


def geomean(values: list) -> float | None:
    values = [v for v in values if v and v > 0]
    if not values:
        return None
    return math.exp(sum(math.log(v) for v in values) / len(values))


def trace_rps(entry: dict) -> dict:
    """{trace_name: geomean dense_requests_per_sec} for one trend entry."""
    out = {}
    for trace in entry.get("traces", []):
        rps = geomean([c.get("dense_requests_per_sec")
                       for c in trace.get("cells", [])])
        if rps:
            out[trace.get("trace", "?")] = rps
    return out


def stack_speedup(entry: dict) -> float | None:
    return geomean([c.get("speedup")
                    for c in entry.get("stack_sweep", [])])


def build_rows(entries: list):
    """One row per run: (sha7, overall_geomean, {trace: rps}, stack_x)."""
    rows = []
    for entry in entries:
        per_trace = trace_rps(entry)
        rows.append({
            "sha": str(entry.get("sha", "?"))[:7],
            "overall": geomean(list(per_trace.values())),
            "traces": per_trace,
            "stack": stack_speedup(entry),
        })
    return rows


def write_gnuplot(rows, trace_names, dat_path, gp_path, out_path) -> None:
    with open(dat_path, "w", encoding="utf-8") as fh:
        fh.write("# idx sha overall " + " ".join(trace_names) + " stack\n")
        for i, row in enumerate(rows):
            cols = [str(i), row["sha"], _num(row["overall"])]
            cols += [_num(row["traces"].get(name)) for name in trace_names]
            cols.append(_num(row["stack"]))
            fh.write(" ".join(cols) + "\n")

    has_stack = any(row["stack"] for row in rows)
    lines = [
        f'set terminal pngcairo size 1000,520 font ",10"',
        f'set output "{out_path}"',
        'set title "Replay throughput trend (dense requests/s, geomean)"',
        'set xlabel "commit"',
        'set ylabel "requests/s"',
        'set xtics rotate by -45',
        'set key outside right',
        'set grid ytics',
        'set style data linespoints',
        'set datafile missing "?"',
    ]
    plots = ['"%s" using 1:3:xtic(2) title "overall"' % dat_path]
    for t, name in enumerate(trace_names):
        plots.append('"%s" using 1:%d title "%s"' % (dat_path, 4 + t, name))
    if has_stack:
        lines += ['set y2label "one-pass sweep speedup (x)"',
                  'set y2tics nomirror']
        plots.append('"%s" using 1:%d axes x1y2 title "stack_sweep speedup" '
                     'with linespoints dashtype 2'
                     % (dat_path, 4 + len(trace_names)))
    lines.append("plot " + ", \\\n     ".join(plots))
    with open(gp_path, "w", encoding="utf-8") as fh:
        fh.write("\n".join(lines) + "\n")


def _num(value) -> str:
    return f"{value:.6g}" if value else "?"


def write_svg(rows, out_path) -> None:
    """Minimal fallback chart (overall geomean only), no dependencies."""
    width, height, pad = 960, 480, 60
    points = [(i, row["overall"]) for i, row in enumerate(rows)
              if row["overall"]]
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" style="background:#fff">',
        f'<text x="{width // 2}" y="24" text-anchor="middle" '
        'font-family="sans-serif" font-size="15">Replay throughput trend '
        '(dense requests/s, geomean)</text>',
    ]
    if points:
        lo = min(v for _, v in points)
        hi = max(v for _, v in points)
        span = (hi - lo) or hi or 1.0
        nx = max(len(rows) - 1, 1)

        def sx(i):
            return pad + (width - 2 * pad) * i / nx

        def sy(v):
            return height - pad - (height - 2 * pad) * (v - lo) / span

        path = " ".join(f"{'M' if n == 0 else 'L'}{sx(i):.1f},{sy(v):.1f}"
                        for n, (i, v) in enumerate(points))
        parts.append(f'<path d="{path}" fill="none" stroke="#1f77b4" '
                     'stroke-width="2"/>')
        for i, v in points:
            parts.append(f'<circle cx="{sx(i):.1f}" cy="{sy(v):.1f}" r="3" '
                         'fill="#1f77b4"/>')
        for i, row in enumerate(rows):
            parts.append(f'<text x="{sx(i):.1f}" y="{height - pad + 18}" '
                         'text-anchor="middle" font-family="monospace" '
                         f'font-size="10">{row["sha"]}</text>')
        parts.append(f'<text x="{pad - 8}" y="{sy(hi):.1f}" '
                     'text-anchor="end" font-family="sans-serif" '
                     f'font-size="10">{hi:.3g}</text>')
        parts.append(f'<text x="{pad - 8}" y="{sy(lo):.1f}" '
                     'text-anchor="end" font-family="sans-serif" '
                     f'font-size="10">{lo:.3g}</text>')
    parts.append("</svg>")
    with open(out_path, "w", encoding="utf-8") as fh:
        fh.write("\n".join(parts) + "\n")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trend", default="BENCH_trend.jsonl",
                        help="JSONL trend log to plot")
    parser.add_argument("--out", default="BENCH_trend.png",
                        help="output image (PNG via gnuplot, else .svg)")
    args = parser.parse_args()

    entries = load_trend(args.trend)
    if not entries:
        print(f"error: no trend entries in {args.trend}", file=sys.stderr)
        return 1

    rows = build_rows(entries)
    trace_names = sorted({name for row in rows for name in row["traces"]})

    base = os.path.splitext(args.out)[0]
    dat_path, gp_path = base + ".dat", base + ".gnuplot"
    write_gnuplot(rows, trace_names, dat_path, gp_path, args.out)

    gnuplot = shutil.which("gnuplot")
    if gnuplot:
        try:
            subprocess.run([gnuplot, gp_path], check=True)
            print(f"{args.out}: {len(rows)} run(s) plotted via gnuplot "
                  f"(script: {gp_path})")
            return 0
        except subprocess.CalledProcessError as err:
            print(f"warning: gnuplot failed ({err}); falling back to SVG",
                  file=sys.stderr)
    svg_path = base + ".svg"
    write_svg(rows, svg_path)
    print(f"{svg_path}: {len(rows)} run(s) plotted (no gnuplot; script kept "
          f"at {gp_path})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
