#!/usr/bin/env bash
# Profiles the replay hot path over a generated trace, so hot-path PRs
# start from a measured profile instead of a guess (see docs/PROFILING.md
# for how to read the output and what the current profile looks like).
#
# Usage: scripts/profile_replay.sh [SCALE] [POLICY] [EXTRA_SIM_ARGS...]
#   SCALE   trace scale relative to the paper's full trace (default 0.05)
#   POLICY  policy to replay (default LRU)
# Extra arguments are passed through to `webcache simulate`, e.g.
# --kernel=off (profile the virtual path), --cache-fraction=0.08,
# --stream --chunk=4096.
#
# Profiler selection: `perf record` with DWARF call graphs when perf is
# installed, otherwise gprof via a -pg instrumented build. Either way the
# binary comes from a dedicated build-profile/ tree compiled with
# RelWithDebInfo-style flags (-O2 -g -fno-omit-frame-pointer) so inlining
# resembles the Release hot path while stack frames stay walkable.
# Artifacts (trace, perf.data / gmon.out, rendered report) land in
# profile-out/.
set -euo pipefail

SCALE="${1:-0.05}"
POLICY="${2:-LRU}"
shift $(( $# > 2 ? 2 : $# ))

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build-profile"
OUT="$ROOT/profile-out"
mkdir -p "$OUT"

if command -v perf >/dev/null 2>&1; then
  MODE=perf
  FLAGS="-O2 -g -fno-omit-frame-pointer"
  LDFLAGS=""
elif command -v gprof >/dev/null 2>&1; then
  MODE=gprof
  FLAGS="-O2 -g -pg -fno-omit-frame-pointer"
  LDFLAGS="-pg"
else
  echo "error: neither perf nor gprof found on PATH" >&2
  exit 1
fi
echo "profiler: $MODE"

cmake -B "$BUILD" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=None \
  -DCMAKE_CXX_FLAGS="$FLAGS" \
  -DCMAKE_EXE_LINKER_FLAGS="$LDFLAGS" >/dev/null
cmake --build "$BUILD" -j"$(nproc)" --target webcache_cli >/dev/null
CLI="$BUILD/tools/webcache"

TRACE="$OUT/profile-dfn-$SCALE.wct"
if [ ! -f "$TRACE" ]; then
  "$CLI" generate --profile=DFN --scale="$SCALE" --out="$TRACE"
fi

# Default cache point: the paper's 4% unless the caller picked a size.
SIM_ARGS=(simulate "$TRACE" "--policy=$POLICY")
case " $* " in
  *" --cache-"*|*"--cache-mb"*|*"--cache-fraction"*) ;;
  *) SIM_ARGS+=(--cache-fraction=0.04) ;;
esac
SIM_ARGS+=("$@")

cd "$OUT"
if [ "$MODE" = perf ]; then
  perf record -g --call-graph=dwarf -o perf.data -- "$CLI" "${SIM_ARGS[@]}"
  perf report --stdio -i perf.data --percent-limit=0.5 > report.txt
else
  rm -f gmon.out
  "$CLI" "${SIM_ARGS[@]}"
  gprof --brief "$CLI" gmon.out > report.txt
fi

echo
echo "=== top of $OUT/report.txt ==="
head -n 40 report.txt
echo "full report: $OUT/report.txt"
