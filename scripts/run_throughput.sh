#!/usr/bin/env bash
# Runs the replay-throughput harness (map-backed vs dense-id hot path) and
# leaves the machine-readable report in BENCH_throughput.json.
#
# Usage: scripts/run_throughput.sh [BUILD_DIR] [SCALE] [EXTRA_ARGS...]
#   BUILD_DIR   cmake build tree (default: build)
#   SCALE       trace scale (default: 0.02 — CI-sized, seconds to run;
#               use 0.2+ for stable numbers on a quiet machine)
# Extra arguments are passed through, e.g. --reps=5 --fraction=0.08
# --json=path.
set -euo pipefail

BUILD_DIR="${1:-build}"
SCALE="${2:-0.02}"
shift $(( $# > 2 ? 2 : $# ))

if [ ! -x "$BUILD_DIR/bench/throughput" ]; then
  echo "error: $BUILD_DIR/bench/throughput not built." >&2
  echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j --target throughput" >&2
  exit 1
fi

"$BUILD_DIR/bench/throughput" --scale="$SCALE" "$@"
