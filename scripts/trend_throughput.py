#!/usr/bin/env python3
"""Append the current BENCH_throughput.json run to a BENCH_trend.jsonl log.

Each invocation appends one compact JSON line keyed by the git commit the
report was produced from, so successive CI runs accumulate a trend of replay
throughput (and dense-vs-sparse speedups) over the repository's history:

    scripts/trend_throughput.py                        # defaults
    scripts/trend_throughput.py --report=B.json --trend=trend.jsonl
    scripts/trend_throughput.py --gate=10              # fail on >10% drop

If a line for the same commit already exists it is replaced, so re-running
a job never duplicates a data point.

With --gate=<pct>, the run is additionally compared against the most recent
prior trend entry (a different commit): the geometric mean of
dense_requests_per_sec over the trace cells present in both runs must not
drop by more than <pct> percent, or the script exits 2 — after still
recording the run. The first run on a fresh trend log always passes. CI
enforces the gate as a hard failure with a threshold wide enough to absorb
shared-runner clock noise (see WEBCACHE_GATE_PCT in .github/workflows);
local runs with a pinned CPU can gate much tighter. Stdlib only.
"""
from __future__ import annotations

import argparse
import json
import math
import os
import subprocess
import sys
import time


def git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
        return out or "unknown"
    except (OSError, subprocess.CalledProcessError):
        return os.environ.get("GITHUB_SHA", "unknown")


def cell_speedups(cells):
    """[{label, speedup, dense_requests_per_sec, identical}, ...]"""
    out = []
    for cell in cells:
        label = cell.get("label") or "{} {}".format(
            cell.get("policy", "?"), cell.get("cost_model", ""))
        out.append({
            "label": label.strip(),
            "speedup": cell.get("speedup"),
            "dense_requests_per_sec": cell.get("dense_requests_per_sec"),
            "identical": cell.get("identical"),
        })
    return out


def summarize(report: dict) -> dict:
    entry = {
        "sha": git_sha(),
        "timestamp": int(time.time()),
        "scale": report.get("scale"),
        "seed": report.get("seed"),
        "cache_fraction": report.get("cache_fraction"),
        "reps": report.get("reps"),
        "peak_rss_kb": report.get("peak_rss_kb"),
        "all_identical": report.get("all_identical"),
        "hierarchy": cell_speedups(report.get("hierarchy", [])),
        "partitioned": cell_speedups(report.get("partitioned", [])),
        "stack_sweep": cell_speedups(report.get("stack_sweep", [])),
        "trace_load": cell_speedups(report.get("trace_load", [])),
        # Bounded-memory paths (absent in reports from before the streaming
        # engine landed): file-streamed replay and the SHARDS-sampled sweep
        # against their materialized twins.
        "streaming": cell_speedups(report.get("streaming", [])),
        # Checkpointed streaming replay vs the plain streamed baseline at
        # each snapshot cadence (absent in reports from before the
        # checkpoint layer landed). speedup < 1 here is the snapshot cost.
        "checkpoint": cell_speedups(report.get("checkpoint", [])),
        # Monomorphized replay kernels vs the forced-virtual path (absent in
        # reports from before the kernel layer landed). In these cells the
        # "dense" rate is the kernel engine, so they ride the same gate as
        # the trace cells below.
        "kernels": cell_speedups(report.get("kernels", [])),
    }
    # Sharded replay scaling ladder (absent in reports from before the
    # sharded engine landed). These keys ride along in the trend line; the
    # throughput gate still reads only the `traces` cells.
    sharded = report.get("sharded") or {}
    entry["sharded"] = {
        "policy": sharded.get("policy"),
        "serial_requests_per_sec": sharded.get("serial_requests_per_sec"),
        "delegation_overhead_pct": sharded.get("delegation_overhead_pct"),
        "cells": [
            {
                "label": cell.get("label"),
                "threads": cell.get("threads"),
                "requests_per_sec": cell.get("requests_per_sec"),
                "requests_per_sec_per_core":
                    cell.get("requests_per_sec_per_core"),
                "speedup_vs_serial": cell.get("speedup_vs_serial"),
                "identical": cell.get("identical"),
            }
            for cell in sharded.get("cells", [])
        ],
    }
    traces = []
    for trace in report.get("traces", []):
        traces.append({
            "trace": trace.get("trace"),
            "requests": trace.get("requests"),
            "densify_seconds": trace.get("densify_seconds"),
            "cells": cell_speedups(trace.get("cells", [])),
        })
    entry["traces"] = traces
    return entry


def dense_rps_by_cell(entry: dict) -> dict:
    """{(trace, label): dense_requests_per_sec} for every gated cell: the
    per-trace grid plus the kernel-engine cells (whose "dense" rate is the
    monomorphized run)."""
    out = {}
    for trace in entry.get("traces", []):
        for cell in trace.get("cells", []):
            rps = cell.get("dense_requests_per_sec")
            if rps:
                out[(trace.get("trace"), cell.get("label"))] = rps
    for cell in entry.get("kernels", []):
        rps = cell.get("dense_requests_per_sec")
        if rps:
            out[("kernels", cell.get("label"))] = rps
    return out


def gate_against(prior: dict, entry: dict, pct: float) -> int:
    """Returns 0 if the geometric-mean throughput over the cells common to
    both runs dropped by no more than pct percent, 2 otherwise."""
    current = dense_rps_by_cell(entry)
    baseline = dense_rps_by_cell(prior)
    common = sorted(set(current) & set(baseline))
    if not common:
        print("gate: no comparable cells in the prior entry; passing")
        return 0

    log_ratio = 0.0
    worst = (0.0, None)
    for key in common:
        ratio = current[key] / baseline[key]
        log_ratio += math.log(ratio)
        if worst[1] is None or ratio < worst[0]:
            worst = (ratio, key)
    geomean = math.exp(log_ratio / len(common))

    change = (geomean - 1.0) * 100.0
    print(f"gate: geomean dense throughput {change:+.2f}% vs "
          f"{prior.get('sha', '?')[:12]} over {len(common)} cell(s); "
          f"worst cell {worst[1]} at {(worst[0] - 1.0) * 100.0:+.2f}%")
    if geomean < 1.0 - pct / 100.0:
        print(f"gate: regression exceeds the {pct:g}% budget",
              file=sys.stderr)
        return 2
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--report", default="BENCH_throughput.json",
                        help="throughput report to ingest")
    parser.add_argument("--trend", default="BENCH_trend.jsonl",
                        help="JSONL trend log to append to")
    parser.add_argument("--gate", type=float, default=None, metavar="PCT",
                        help="exit 2 if geomean dense throughput drops more "
                             "than PCT%% vs the previous trend entry")
    args = parser.parse_args()

    try:
        with open(args.report, encoding="utf-8") as fh:
            report = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read {args.report}: {err}", file=sys.stderr)
        return 1

    entry = summarize(report)

    lines = []
    if os.path.exists(args.trend):
        with open(args.trend, encoding="utf-8") as fh:
            for raw in fh:
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    prior = json.loads(raw)
                except json.JSONDecodeError:
                    continue  # drop corrupt lines rather than propagate them
                if prior.get("sha") != entry["sha"]:
                    lines.append(raw)

    gate_status = 0
    if args.gate is not None:
        if lines:
            gate_status = gate_against(json.loads(lines[-1]), entry,
                                       args.gate)
        else:
            print("gate: no prior trend entry; passing")

    lines.append(json.dumps(entry, sort_keys=True))
    with open(args.trend, "w", encoding="utf-8") as fh:
        fh.write("\n".join(lines) + "\n")

    print(f"{args.trend}: {len(lines)} run(s), latest {entry['sha'][:12]} "
          f"(all_identical={entry['all_identical']})")
    return gate_status


if __name__ == "__main__":
    sys.exit(main())
