#!/usr/bin/env python3
"""Append the current BENCH_throughput.json run to a BENCH_trend.jsonl log.

Each invocation appends one compact JSON line keyed by the git commit the
report was produced from, so successive CI runs accumulate a trend of replay
throughput (and dense-vs-sparse speedups) over the repository's history:

    scripts/trend_throughput.py                        # defaults
    scripts/trend_throughput.py --report=B.json --trend=trend.jsonl

If a line for the same commit already exists it is replaced, so re-running
a job never duplicates a data point. Stdlib only.
"""
from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time


def git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
        return out or "unknown"
    except (OSError, subprocess.CalledProcessError):
        return os.environ.get("GITHUB_SHA", "unknown")


def cell_speedups(cells):
    """[{label, speedup, dense_requests_per_sec, identical}, ...]"""
    out = []
    for cell in cells:
        label = cell.get("label") or "{} {}".format(
            cell.get("policy", "?"), cell.get("cost_model", ""))
        out.append({
            "label": label.strip(),
            "speedup": cell.get("speedup"),
            "dense_requests_per_sec": cell.get("dense_requests_per_sec"),
            "identical": cell.get("identical"),
        })
    return out


def summarize(report: dict) -> dict:
    entry = {
        "sha": git_sha(),
        "timestamp": int(time.time()),
        "scale": report.get("scale"),
        "seed": report.get("seed"),
        "cache_fraction": report.get("cache_fraction"),
        "reps": report.get("reps"),
        "peak_rss_kb": report.get("peak_rss_kb"),
        "all_identical": report.get("all_identical"),
        "hierarchy": cell_speedups(report.get("hierarchy", [])),
        "partitioned": cell_speedups(report.get("partitioned", [])),
    }
    traces = []
    for trace in report.get("traces", []):
        traces.append({
            "trace": trace.get("trace"),
            "requests": trace.get("requests"),
            "densify_seconds": trace.get("densify_seconds"),
            "cells": cell_speedups(trace.get("cells", [])),
        })
    entry["traces"] = traces
    return entry


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--report", default="BENCH_throughput.json",
                        help="throughput report to ingest")
    parser.add_argument("--trend", default="BENCH_trend.jsonl",
                        help="JSONL trend log to append to")
    args = parser.parse_args()

    try:
        with open(args.report, encoding="utf-8") as fh:
            report = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read {args.report}: {err}", file=sys.stderr)
        return 1

    entry = summarize(report)

    lines = []
    if os.path.exists(args.trend):
        with open(args.trend, encoding="utf-8") as fh:
            for raw in fh:
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    prior = json.loads(raw)
                except json.JSONDecodeError:
                    continue  # drop corrupt lines rather than propagate them
                if prior.get("sha") != entry["sha"]:
                    lines.append(raw)

    lines.append(json.dumps(entry, sort_keys=True))
    with open(args.trend, "w", encoding="utf-8") as fh:
        fh.write("\n".join(lines) + "\n")

    print(f"{args.trend}: {len(lines)} run(s), latest {entry['sha'][:12]} "
          f"(all_identical={entry['all_identical']})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
