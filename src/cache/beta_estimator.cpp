#include "cache/beta_estimator.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/fit.hpp"

namespace webcache::cache {

BetaEstimator::BetaEstimator(const Options& options)
    : options_(options), histogram_(2.0, 48), beta_(options.initial_beta) {
  if (!(options.min_beta > 0.0 && options.min_beta <= options.max_beta)) {
    throw std::invalid_argument("BetaEstimator: invalid beta clamp range");
  }
  if (options.initial_beta < options.min_beta ||
      options.initial_beta > options.max_beta) {
    throw std::invalid_argument("BetaEstimator: initial beta outside clamp");
  }
  if (!(options.decay > 0.0 && options.decay <= 1.0)) {
    throw std::invalid_argument("BetaEstimator: decay must be in (0, 1]");
  }
}

void BetaEstimator::observe_gap(std::uint64_t gap) {
  histogram_.add(static_cast<double>(std::max<std::uint64_t>(1, gap)));
  ++samples_;
  ++since_refit_;
  if (samples_ >= options_.min_samples &&
      since_refit_ >= options_.refit_interval) {
    refit();
    since_refit_ = 0;
  }
}

void BetaEstimator::refit() {
  const auto points = histogram_.density_points();
  // A power law needs at least three decades of support to be fit sensibly.
  if (points.size() >= 3) {
    const util::LineFit fit = util::fit_loglog(points);
    if (fit.valid()) {
      beta_ = std::clamp(-fit.slope, options_.min_beta, options_.max_beta);
    }
  }
  histogram_.scale(options_.decay);
}

void BetaEstimator::clear() {
  histogram_.clear();
  beta_ = options_.initial_beta;
  samples_ = 0;
  since_refit_ = 0;
}

}  // namespace webcache::cache
