// Online estimator of the temporal-correlation exponent beta.
//
// Jin & Bestavros model temporal correlation as: for equally popular
// documents, the probability of a re-reference n requests after the previous
// reference decays as n^-beta. "The novel feature of GD* is that f(p) and
// beta can be calculated in an on-line fashion, which makes the algorithm
// adaptive to these workload characteristics" (paper, Section 3).
//
// This estimator bins observed inter-reference gaps into logarithmic
// buckets and periodically refits beta as the negative slope of the
// least-squares line through the log-log gap-density plot. Between refits
// the cached value is returned, so the per-request cost is O(1).
#pragma once

#include <cstdint>

#include "util/histogram.hpp"

namespace webcache::util {
class StateWriter;
class StateReader;
}  // namespace webcache::util

namespace webcache::cache {

class BetaEstimator {
 public:
  struct Options {
    double initial_beta = 1.0;    // used until enough gaps are observed
    double min_beta = 0.1;        // clamp: keeps 1/beta finite and sane
    double max_beta = 2.0;
    std::uint64_t refit_interval = 4096;  // gaps between refits
    std::uint64_t min_samples = 256;      // gaps needed before first fit
    /// Exponential forgetting applied to the histogram at each refit, so
    /// the estimate tracks workload drift (1.0 = never forget).
    double decay = 0.9;
  };

  BetaEstimator() : BetaEstimator(Options{}) {}
  explicit BetaEstimator(const Options& options);

  /// Records one inter-reference gap, measured in requests (>= 1).
  void observe_gap(std::uint64_t gap);

  /// Current estimate of beta (clamped to [min_beta, max_beta]).
  double beta() const { return beta_; }

  std::uint64_t samples() const { return samples_; }

  void clear();

  /// Checkpoint support: the gap histogram plus the fitted value is the
  /// estimator's complete state (options are construction config and must
  /// match on restore).
  void save_state(util::StateWriter& w) const;
  void restore_state(util::StateReader& r);

 private:
  void refit();

  Options options_;
  util::LogHistogram histogram_;
  double beta_;
  std::uint64_t samples_ = 0;
  std::uint64_t since_refit_ = 0;
};

}  // namespace webcache::cache
