#include "cache/cache.hpp"

namespace webcache::cache {

double Occupancy::object_fraction(trace::DocumentClass c) const {
  if (total_objects == 0) return 0.0;
  return static_cast<double>(objects[static_cast<std::size_t>(c)]) /
         static_cast<double>(total_objects);
}

double Occupancy::byte_fraction(trace::DocumentClass c) const {
  if (total_bytes == 0) return 0.0;
  return static_cast<double>(bytes[static_cast<std::size_t>(c)]) /
         static_cast<double>(total_bytes);
}

}  // namespace webcache::cache
