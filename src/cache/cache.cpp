#include "cache/cache.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "util/state_io.hpp"

namespace webcache::cache {

namespace {

std::size_t class_index(trace::DocumentClass c) {
  return static_cast<std::size_t>(c);
}

}  // namespace

double Occupancy::object_fraction(trace::DocumentClass c) const {
  if (total_objects == 0) return 0.0;
  return static_cast<double>(objects[class_index(c)]) /
         static_cast<double>(total_objects);
}

double Occupancy::byte_fraction(trace::DocumentClass c) const {
  if (total_bytes == 0) return 0.0;
  return static_cast<double>(bytes[class_index(c)]) /
         static_cast<double>(total_bytes);
}

Cache::Cache(std::uint64_t capacity_bytes,
             std::unique_ptr<ReplacementPolicy> policy)
    : capacity_bytes_(capacity_bytes), policy_(std::move(policy)) {
  if (!policy_) throw std::invalid_argument("Cache: null policy");
}

void Cache::reserve_dense_ids(std::uint64_t universe) {
  if (!objects_.empty()) {
    throw std::logic_error("Cache: reserve_dense_ids on non-empty cache");
  }
  objects_.reserve_dense(universe);
  policy_->reserve_ids(universe);
}

Cache::AccessOutcome Cache::access(ObjectId id, std::uint64_t size,
                                   trace::DocumentClass doc_class,
                                   bool force_miss) {
  ++clock_;
  AccessOutcome outcome;

  CacheObject* found = objects_.find(id);
  if (found != nullptr && !force_miss) {
    CacheObject& obj = *found;
    obj.previous_access = obj.last_access;
    obj.last_access = clock_;
    ++obj.reference_count;
    policy_->on_hit(obj);
    outcome.kind = AccessKind::kHit;
    return outcome;
  }

  if (found != nullptr) {
    // force_miss: the origin's copy changed; drop the stale version.
    remove_object(id, /*is_eviction=*/false);
  }

  if (!admitted(size)) {
    outcome.kind = AccessKind::kBypass;
    return outcome;
  }

  outcome.evictions = evict_until_fits(size);
  insert(id, size, doc_class);
  outcome.kind = AccessKind::kMiss;
  return outcome;
}

bool Cache::touch(ObjectId id) {
  ++clock_;
  CacheObject* found = objects_.find(id);
  if (found == nullptr) return false;
  CacheObject& obj = *found;
  obj.previous_access = obj.last_access;
  obj.last_access = clock_;
  ++obj.reference_count;
  policy_->on_hit(obj);
  return true;
}

bool Cache::put(ObjectId id, std::uint64_t size,
                trace::DocumentClass doc_class) {
  if (objects_.contains(id)) remove_object(id, /*is_eviction=*/false);
  if (!admitted(size)) return false;
  evict_until_fits(size);
  insert(id, size, doc_class);
  return true;
}

const CacheObject* Cache::find(ObjectId id) const { return objects_.find(id); }

void Cache::erase(ObjectId id) {
  if (objects_.contains(id)) remove_object(id, /*is_eviction=*/false);
}

Occupancy Cache::occupancy() const {
  Occupancy occ;
  occ.objects = class_objects_;
  occ.bytes = class_bytes_;
  occ.total_objects = objects_.size();
  occ.total_bytes = used_bytes_;
  return occ;
}

void Cache::reset() {
  objects_.clear();
  policy_->clear();
  used_bytes_ = 0;
  clock_ = 0;
  evictions_ = 0;
  insertions_ = 0;
  class_objects_.fill(0);
  class_bytes_.fill(0);
}

std::uint64_t Cache::resize(std::uint64_t new_capacity_bytes) {
  capacity_bytes_ = new_capacity_bytes;
  return evict_until_fits(0);
}

void Cache::crash() {
  objects_.clear();
  policy_->clear();
  used_bytes_ = 0;
  class_objects_.fill(0);
  class_bytes_.fill(0);
}

bool Cache::check_invariants() const {
  std::uint64_t bytes = 0;
  std::array<std::uint64_t, trace::kDocumentClassCount> per_class_bytes{};
  std::array<std::uint64_t, trace::kDocumentClassCount> per_class_objects{};
  bool ids_consistent = true;
  objects_.for_each([&](const CacheObject& obj) {
    if (objects_.find(obj.id) != &obj) ids_consistent = false;
    bytes += obj.size;
    per_class_bytes[class_index(obj.doc_class)] += obj.size;
    per_class_objects[class_index(obj.doc_class)] += 1;
  });
  return ids_consistent && bytes == used_bytes_ && bytes <= capacity_bytes_ &&
         per_class_bytes == class_bytes_ && per_class_objects == class_objects_;
}

void Cache::save_state(util::StateWriter& w) const {
  w.put_u64(admission_limit_);
  w.put_u64(used_bytes_);
  w.put_u64(clock_);
  w.put_u64(evictions_);
  w.put_u64(insertions_);
  for (const std::uint64_t n : class_objects_) w.put_u64(n);
  for (const std::uint64_t n : class_bytes_) w.put_u64(n);

  std::vector<CacheObject> resident;
  resident.reserve(static_cast<std::size_t>(objects_.size()));
  objects_.for_each([&](const CacheObject& obj) { resident.push_back(obj); });
  std::sort(resident.begin(), resident.end(),
            [](const CacheObject& a, const CacheObject& b) {
              return a.id < b.id;
            });
  w.put_u64(resident.size());
  for (const CacheObject& obj : resident) {
    w.put_u64(obj.id);
    w.put_u64(obj.size);
    w.put_u8(static_cast<std::uint8_t>(obj.doc_class));
    w.put_u64(obj.reference_count);
    w.put_u64(obj.last_access);
    w.put_u64(obj.previous_access);
    w.put_u64(obj.insert_index);
  }

  policy_->save_state(w);
}

void Cache::restore_state(util::StateReader& r) {
  if (!objects_.empty()) {
    throw std::logic_error("Cache: restore_state on non-empty cache");
  }
  admission_limit_ = r.take_u64();
  used_bytes_ = r.take_u64();
  clock_ = r.take_u64();
  evictions_ = r.take_u64();
  insertions_ = r.take_u64();
  for (std::uint64_t& n : class_objects_) n = r.take_u64();
  for (std::uint64_t& n : class_bytes_) n = r.take_u64();

  const std::uint64_t count = r.take_u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    CacheObject obj;
    obj.id = r.take_u64();
    obj.size = r.take_u64();
    const std::uint8_t cls = r.take_u8();
    if (cls >= trace::kDocumentClassCount) {
      r.fail("document class byte out of range");
    }
    obj.doc_class = static_cast<trace::DocumentClass>(cls);
    obj.reference_count = r.take_u64();
    obj.last_access = r.take_u64();
    obj.previous_access = r.take_u64();
    obj.insert_index = r.take_u64();
    objects_.insert(obj);
  }

  policy_->restore_state(r);
}

void Cache::insert(ObjectId id, std::uint64_t size,
                   trace::DocumentClass doc_class) {
  CacheObject obj;
  obj.id = id;
  obj.size = size;
  obj.doc_class = doc_class;
  obj.reference_count = 1;
  obj.last_access = clock_;
  obj.previous_access = clock_;
  obj.insert_index = clock_;

  CacheObject& stored = objects_.insert(obj);
  used_bytes_ += size;
  class_bytes_[class_index(doc_class)] += size;
  class_objects_[class_index(doc_class)] += 1;
  ++insertions_;
  policy_->on_insert(stored);
}

std::uint64_t Cache::evict_until_fits(std::uint64_t incoming_size) {
  std::uint64_t evicted = 0;
  while (used_bytes_ + incoming_size > capacity_bytes_) {
    const ObjectId victim = policy_->choose_victim(incoming_size);
    remove_object(victim, /*is_eviction=*/true);
    ++evicted;
  }
  return evicted;
}

void Cache::remove_object(ObjectId id, bool is_eviction) {
  const CacheObject* found = objects_.find(id);
  if (found == nullptr) {
    throw std::logic_error("Cache: removing absent object");
  }
  const CacheObject& obj = *found;
  used_bytes_ -= obj.size;
  class_bytes_[class_index(obj.doc_class)] -= obj.size;
  class_objects_[class_index(obj.doc_class)] -= 1;
  if (is_eviction) {
    ++evictions_;
    policy_->on_evict(id);
  } else {
    policy_->on_erase(id);
  }
  if (removal_listener_ != nullptr) {
    removal_listener_->on_removal(
        obj, is_eviction ? RemovalCause::kEviction : RemovalCause::kInvalidation);
  }
  objects_.erase(id);
}

}  // namespace webcache::cache
