// The cache container: capacity accounting, object metadata, per-class
// occupancy, and the eviction loop. Replacement order is delegated to a
// ReplacementPolicy.
//
// The container is a template over its *policy holder* so the same source
// compiles into two shapes:
//   * Cache = BasicCache<std::unique_ptr<ReplacementPolicy>> — the runtime-
//     polymorphic container every existing caller uses (policy chosen at
//     run time, hooks dispatched virtually);
//   * BasicCache<PolicyValue<P>> — the monomorphized form the replay
//     kernels (sim/kernel.hpp) instantiate per concrete policy, where the
//     policy hooks are direct calls the compiler can inline into the
//     replay loop.
// Both instantiate the identical member functions, so the two forms run the
// same access/evict/insert sequence by construction — the bit-identity the
// kernel differential suite then verifies.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "cache/object_table.hpp"
#include "cache/policy.hpp"
#include "cache/types.hpp"
#include "util/state_io.hpp"

namespace webcache::cache {

/// Per-class and total occupancy snapshot (drives the paper's Figure 1).
struct Occupancy {
  std::array<std::uint64_t, trace::kDocumentClassCount> objects{};
  std::array<std::uint64_t, trace::kDocumentClassCount> bytes{};
  std::uint64_t total_objects = 0;
  std::uint64_t total_bytes = 0;

  double object_fraction(trace::DocumentClass c) const;
  double byte_fraction(trace::DocumentClass c) const;
};

/// Why an object left the cache: displaced by the replacement policy, or
/// dropped explicitly (erase(), document modification, replacement by a new
/// version). The instrumentation layer splits its counters on this.
enum class RemovalCause : std::uint8_t {
  kEviction,
  kInvalidation,
};

/// Notification interface for objects leaving the cache. A plain virtual
/// interface rather than std::function: the eviction loop fires this per
/// removed object, and a null-pointer check plus a direct virtual call is
/// cheaper than type-erased dispatch there.
class RemovalListener {
 public:
  virtual ~RemovalListener() = default;
  /// Invoked for every object leaving the cache — by eviction, erase(), or
  /// replacement — just before its metadata is destroyed.
  virtual void on_removal(const CacheObject& obj, RemovalCause cause) = 0;
};

/// Outcome classification of one access(). Namespace-scope (shared by every
/// BasicCache instantiation); Cache::AccessKind / Cache::AccessOutcome stay
/// available as member aliases for existing call sites.
enum class AccessKind : std::uint8_t {
  kHit,     // document resident and valid
  kMiss,    // not resident (or forced invalid); now inserted
  kBypass,  // larger than the whole cache; never stored
};

struct AccessOutcome {
  AccessKind kind = AccessKind::kMiss;
  std::uint64_t evictions = 0;  // evictions performed to make room
  /// Whether any copy (valid or stale) was resident when the request
  /// arrived — the pre-access contains() answer, reported from the same
  /// table probe the access itself performs. The simulator's document-
  /// modification accounting consumes this; it saves the separate
  /// contains() lookup the replay loop used to issue per request.
  bool was_resident = false;
};

/// By-value policy holder: dereferences to a concrete policy type, so
/// BasicCache's `policy_->hook(...)` calls compile to direct (inlinable)
/// calls. The replay kernels use this; the runtime path keeps unique_ptr.
template <typename P>
struct PolicyValue {
  P policy;

  P* operator->() { return &policy; }
  const P* operator->() const { return &policy; }
  P& operator*() { return policy; }
  const P& operator*() const { return policy; }
  explicit operator bool() const { return true; }
};

template <typename PolicyHolder>
class BasicCache {
 public:
  // Compatibility aliases: call sites spell these Cache::AccessKind etc.
  using AccessKind = cache::AccessKind;
  using AccessOutcome = cache::AccessOutcome;

  /// capacity_bytes == 0 disables storage entirely (everything bypasses).
  BasicCache(std::uint64_t capacity_bytes, PolicyHolder policy)
      : capacity_bytes_(capacity_bytes), policy_(std::move(policy)) {
    if (!policy_) throw std::invalid_argument("Cache: null policy");
  }

  /// Dense-id fast path: declares that every ObjectId passed to this cache
  /// lies in [0, universe) — true for traces run through trace::densify().
  /// The object table switches to a flat-indexed slab and the hint is
  /// forwarded to the policy (ReplacementPolicy::reserve_ids). Results are
  /// bit-identical to the hash-backed mode. Only legal while empty.
  void reserve_dense_ids(std::uint64_t universe) {
    if (!objects_.empty()) {
      throw std::logic_error("Cache: reserve_dense_ids on non-empty cache");
    }
    objects_.reserve_dense(universe);
    policy_->reserve_ids(universe);
  }

  /// Admission control: objects larger than `bytes` are never stored
  /// (kBypass), as in the LRU-Threshold scheme. 0 = unlimited (default).
  void set_admission_limit(std::uint64_t bytes) { admission_limit_ = bytes; }
  std::uint64_t admission_limit() const { return admission_limit_; }

  /// The one-call protocol used by the simulator: advances the request
  /// clock, then either records a hit or inserts the document (evicting as
  /// needed). With force_miss, a resident copy is invalidated first and the
  /// access counts as a miss (the paper's document-modification rule).
  AccessOutcome access(ObjectId id, std::uint64_t size,
                       trace::DocumentClass doc_class,
                       bool force_miss = false) {
    ++clock_;
    AccessOutcome outcome;

    CacheObject* found = objects_.find(id);
    outcome.was_resident = found != nullptr;
    if (found != nullptr && !force_miss) {
      CacheObject& obj = *found;
      obj.previous_access = obj.last_access;
      obj.last_access = clock_;
      ++obj.reference_count;
      policy_->on_hit(obj);
      outcome.kind = AccessKind::kHit;
      return outcome;
    }

    if (found != nullptr) {
      // force_miss: the origin's copy changed; drop the stale version.
      remove_object(id, /*is_eviction=*/false);
    }

    if (!admitted(size)) {
      outcome.kind = AccessKind::kBypass;
      return outcome;
    }

    outcome.evictions = evict_until_fits(size);
    insert(id, size, doc_class);
    outcome.kind = AccessKind::kMiss;
    return outcome;
  }

  // ---- granular operations (used by the proxy facade) ----

  /// Advances the request clock and, when the object is resident, records a
  /// hit on it (reference count, access indices, policy). Returns whether
  /// it was resident. Unlike access(), a miss inserts nothing — the caller
  /// fetches the body and calls put().
  bool touch(ObjectId id) {
    ++clock_;
    CacheObject* found = objects_.find(id);
    if (found == nullptr) return false;
    CacheObject& obj = *found;
    obj.previous_access = obj.last_access;
    obj.last_access = clock_;
    ++obj.reference_count;
    policy_->on_hit(obj);
    return true;
  }

  /// Inserts or refreshes an object *without* advancing the clock (it
  /// belongs to the request already clocked by the preceding touch()).
  /// A resident copy is replaced. Returns false when the object exceeds
  /// the whole cache capacity (bypass).
  bool put(ObjectId id, std::uint64_t size, trace::DocumentClass doc_class) {
    if (objects_.contains(id)) remove_object(id, /*is_eviction=*/false);
    if (!admitted(size)) return false;
    evict_until_fits(size);
    insert(id, size, doc_class);
    return true;
  }

  bool contains(ObjectId id) const { return objects_.contains(id); }
  /// Metadata of a resident object, or nullptr.
  const CacheObject* find(ObjectId id) const { return objects_.find(id); }
  /// Removes a resident object (invalidation); no-op when absent.
  void erase(ObjectId id) {
    if (objects_.contains(id)) remove_object(id, /*is_eviction=*/false);
  }

  /// Software-prefetch hint for an upcoming access(id) — dense-id mode
  /// only, a no-op otherwise. The streaming kernels issue these a few
  /// requests ahead so the slot cell is in cache when the access arrives.
  void prefetch(ObjectId id) const { objects_.prefetch_slot(id); }
  /// Deeper hint: also prefetches the slab entry id currently maps to (the
  /// mapping may go stale before the access — harmless, it is a hint).
  void prefetch_object(ObjectId id) const { objects_.prefetch_object(id); }

  // ---- accounting ----

  std::uint64_t capacity_bytes() const { return capacity_bytes_; }
  std::uint64_t used_bytes() const { return used_bytes_; }
  std::uint64_t object_count() const { return objects_.size(); }
  std::uint64_t eviction_count() const { return evictions_; }
  std::uint64_t insertion_count() const { return insertions_; }
  /// Logical clock: number of access() calls so far.
  std::uint64_t clock() const { return clock_; }

  Occupancy occupancy() const {
    Occupancy occ;
    occ.objects = class_objects_;
    occ.bytes = class_bytes_;
    occ.total_objects = objects_.size();
    occ.total_bytes = used_bytes_;
    return occ;
  }

  /// The held policy: ReplacementPolicy& for the runtime Cache, the
  /// concrete policy type for monomorphized instantiations.
  const auto& policy() const { return *policy_; }

  /// Observability snapshot of the policy's internal state (heap size,
  /// aging term, beta estimate); sampled per metrics window.
  PolicyProbe policy_probe() const { return policy_->probe(); }

  /// Installs (or, with nullptr, removes) the removal notification hook.
  /// The listener is not owned and must outlive the cache or be detached.
  void set_removal_listener(RemovalListener* listener) {
    removal_listener_ = listener;
  }

  /// Empties the cache and resets the policy and all counters.
  void reset() {
    objects_.clear();
    policy_->clear();
    used_bytes_ = 0;
    clock_ = 0;
    evictions_ = 0;
    insertions_ = 0;
    class_objects_.fill(0);
    class_bytes_.fill(0);
  }

  /// Changes the byte capacity in place. Shrinking evicts (through the
  /// replacement policy, counted as ordinary evictions and reported to the
  /// removal listener) until the contents fit; growing never touches the
  /// contents. Returns the number of objects evicted. The sharded replay
  /// engine's quota rebalance uses this to move budget between shards.
  std::uint64_t resize(std::uint64_t new_capacity_bytes) {
    capacity_bytes_ = new_capacity_bytes;
    return evict_until_fits(0);
  }

  /// Simulates a node failure (fault injection): every resident object is
  /// dropped and the replacement policy restarts cold, but the request clock
  /// and the cumulative eviction/insertion counters keep running — they
  /// describe the node's lifetime across restarts, and the fault metrics
  /// must not conflate crash losses with evictions. For the same reason the
  /// removal listener is NOT notified: the objects were lost with the
  /// process, not evicted or invalidated. Dense-id mode is preserved.
  void crash() {
    objects_.clear();
    policy_->clear();
    used_bytes_ = 0;
    class_objects_.fill(0);
    class_bytes_.fill(0);
  }

  /// Exhaustive consistency check (byte accounting vs object map); tests.
  bool check_invariants() const {
    std::uint64_t bytes = 0;
    std::array<std::uint64_t, trace::kDocumentClassCount> per_class_bytes{};
    std::array<std::uint64_t, trace::kDocumentClassCount> per_class_objects{};
    bool ids_consistent = true;
    objects_.for_each([&](const CacheObject& obj) {
      if (objects_.find(obj.id) != &obj) ids_consistent = false;
      bytes += obj.size;
      per_class_bytes[class_index(obj.doc_class)] += obj.size;
      per_class_objects[class_index(obj.doc_class)] += 1;
    });
    return ids_consistent && bytes == used_bytes_ &&
           bytes <= capacity_bytes_ && per_class_bytes == class_bytes_ &&
           per_class_objects == class_objects_;
  }

  // ---- checkpointing ----
  //
  // save_state serializes the container's accounting, the resident-object
  // metadata (sorted by id, so the bytes are deterministic regardless of
  // hash layout), and the policy's semantic state. restore_state is only
  // legal on an empty cache constructed with the identical capacity,
  // policy spec and dense-id reservation; sim::checkpoint validates that
  // through the run fingerprint before calling it.

  void save_state(util::StateWriter& w) const {
    w.put_u64(admission_limit_);
    w.put_u64(used_bytes_);
    w.put_u64(clock_);
    w.put_u64(evictions_);
    w.put_u64(insertions_);
    for (const std::uint64_t n : class_objects_) w.put_u64(n);
    for (const std::uint64_t n : class_bytes_) w.put_u64(n);

    std::vector<CacheObject> resident;
    resident.reserve(static_cast<std::size_t>(objects_.size()));
    objects_.for_each([&](const CacheObject& obj) { resident.push_back(obj); });
    std::sort(resident.begin(), resident.end(),
              [](const CacheObject& a, const CacheObject& b) {
                return a.id < b.id;
              });
    w.put_u64(resident.size());
    for (const CacheObject& obj : resident) {
      w.put_u64(obj.id);
      w.put_u64(obj.size);
      w.put_u8(static_cast<std::uint8_t>(obj.doc_class));
      w.put_u64(obj.reference_count);
      w.put_u64(obj.last_access);
      w.put_u64(obj.previous_access);
      w.put_u64(obj.insert_index);
    }

    policy_->save_state(w);
  }

  void restore_state(util::StateReader& r) {
    if (!objects_.empty()) {
      throw std::logic_error("Cache: restore_state on non-empty cache");
    }
    admission_limit_ = r.take_u64();
    used_bytes_ = r.take_u64();
    clock_ = r.take_u64();
    evictions_ = r.take_u64();
    insertions_ = r.take_u64();
    for (std::uint64_t& n : class_objects_) n = r.take_u64();
    for (std::uint64_t& n : class_bytes_) n = r.take_u64();

    const std::uint64_t count = r.take_u64();
    for (std::uint64_t i = 0; i < count; ++i) {
      CacheObject obj;
      obj.id = r.take_u64();
      obj.size = r.take_u64();
      const std::uint8_t cls = r.take_u8();
      if (cls >= trace::kDocumentClassCount) {
        r.fail("document class byte out of range");
      }
      obj.doc_class = static_cast<trace::DocumentClass>(cls);
      obj.reference_count = r.take_u64();
      obj.last_access = r.take_u64();
      obj.previous_access = r.take_u64();
      obj.insert_index = r.take_u64();
      objects_.insert(obj);
    }

    policy_->restore_state(r);
  }

 private:
  static std::size_t class_index(trace::DocumentClass c) {
    return static_cast<std::size_t>(c);
  }

  void insert(ObjectId id, std::uint64_t size,
              trace::DocumentClass doc_class) {
    CacheObject obj;
    obj.id = id;
    obj.size = size;
    obj.doc_class = doc_class;
    obj.reference_count = 1;
    obj.last_access = clock_;
    obj.previous_access = clock_;
    obj.insert_index = clock_;

    CacheObject& stored = objects_.insert(obj);
    used_bytes_ += size;
    class_bytes_[class_index(doc_class)] += size;
    class_objects_[class_index(doc_class)] += 1;
    ++insertions_;
    policy_->on_insert(stored);
  }

  std::uint64_t evict_until_fits(std::uint64_t incoming_size) {
    std::uint64_t evicted = 0;
    while (used_bytes_ + incoming_size > capacity_bytes_) {
      const ObjectId victim = policy_->choose_victim(incoming_size);
      remove_object(victim, /*is_eviction=*/true);
      ++evicted;
    }
    return evicted;
  }

  void remove_object(ObjectId id, bool is_eviction) {
    const CacheObject* found = objects_.find(id);
    if (found == nullptr) {
      throw std::logic_error("Cache: removing absent object");
    }
    const CacheObject& obj = *found;
    used_bytes_ -= obj.size;
    class_bytes_[class_index(obj.doc_class)] -= obj.size;
    class_objects_[class_index(obj.doc_class)] -= 1;
    if (is_eviction) {
      ++evictions_;
      policy_->on_evict(id);
    } else {
      policy_->on_erase(id);
    }
    if (removal_listener_ != nullptr) {
      removal_listener_->on_removal(obj, is_eviction
                                             ? RemovalCause::kEviction
                                             : RemovalCause::kInvalidation);
    }
    objects_.erase(id);
  }

  bool admitted(std::uint64_t size) const {
    return size <= capacity_bytes_ &&
           (admission_limit_ == 0 || size <= admission_limit_);
  }

  std::uint64_t capacity_bytes_;
  std::uint64_t admission_limit_ = 0;
  PolicyHolder policy_;
  RemovalListener* removal_listener_ = nullptr;
  ObjectTable objects_;
  std::uint64_t used_bytes_ = 0;
  std::uint64_t clock_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t insertions_ = 0;
  std::array<std::uint64_t, trace::kDocumentClassCount> class_objects_{};
  std::array<std::uint64_t, trace::kDocumentClassCount> class_bytes_{};
};

/// The runtime-polymorphic container (policy chosen at run time).
using Cache = BasicCache<std::unique_ptr<ReplacementPolicy>>;

}  // namespace webcache::cache
