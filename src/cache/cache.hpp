// The cache container: capacity accounting, object metadata, per-class
// occupancy, and the eviction loop. Replacement order is delegated to a
// ReplacementPolicy.
#pragma once

#include <array>
#include <cstdint>
#include <memory>

#include "cache/object_table.hpp"
#include "cache/policy.hpp"
#include "cache/types.hpp"

namespace webcache::cache {

/// Per-class and total occupancy snapshot (drives the paper's Figure 1).
struct Occupancy {
  std::array<std::uint64_t, trace::kDocumentClassCount> objects{};
  std::array<std::uint64_t, trace::kDocumentClassCount> bytes{};
  std::uint64_t total_objects = 0;
  std::uint64_t total_bytes = 0;

  double object_fraction(trace::DocumentClass c) const;
  double byte_fraction(trace::DocumentClass c) const;
};

/// Why an object left the cache: displaced by the replacement policy, or
/// dropped explicitly (erase(), document modification, replacement by a new
/// version). The instrumentation layer splits its counters on this.
enum class RemovalCause : std::uint8_t {
  kEviction,
  kInvalidation,
};

/// Notification interface for objects leaving the cache. A plain virtual
/// interface rather than std::function: the eviction loop fires this per
/// removed object, and a null-pointer check plus a direct virtual call is
/// cheaper than type-erased dispatch there.
class RemovalListener {
 public:
  virtual ~RemovalListener() = default;
  /// Invoked for every object leaving the cache — by eviction, erase(), or
  /// replacement — just before its metadata is destroyed.
  virtual void on_removal(const CacheObject& obj, RemovalCause cause) = 0;
};

class Cache {
 public:
  enum class AccessKind : std::uint8_t {
    kHit,     // document resident and valid
    kMiss,    // not resident (or forced invalid); now inserted
    kBypass,  // larger than the whole cache; never stored
  };

  struct AccessOutcome {
    AccessKind kind = AccessKind::kMiss;
    std::uint64_t evictions = 0;  // evictions performed to make room
  };

  /// capacity_bytes == 0 disables storage entirely (everything bypasses).
  Cache(std::uint64_t capacity_bytes,
        std::unique_ptr<ReplacementPolicy> policy);

  /// Dense-id fast path: declares that every ObjectId passed to this cache
  /// lies in [0, universe) — true for traces run through trace::densify().
  /// The object table switches to a flat-indexed slab and the hint is
  /// forwarded to the policy (ReplacementPolicy::reserve_ids). Results are
  /// bit-identical to the hash-backed mode. Only legal while empty.
  void reserve_dense_ids(std::uint64_t universe);

  /// Admission control: objects larger than `bytes` are never stored
  /// (kBypass), as in the LRU-Threshold scheme. 0 = unlimited (default).
  void set_admission_limit(std::uint64_t bytes) { admission_limit_ = bytes; }
  std::uint64_t admission_limit() const { return admission_limit_; }

  /// The one-call protocol used by the simulator: advances the request
  /// clock, then either records a hit or inserts the document (evicting as
  /// needed). With force_miss, a resident copy is invalidated first and the
  /// access counts as a miss (the paper's document-modification rule).
  AccessOutcome access(ObjectId id, std::uint64_t size,
                       trace::DocumentClass doc_class, bool force_miss = false);

  // ---- granular operations (used by the proxy facade) ----

  /// Advances the request clock and, when the object is resident, records a
  /// hit on it (reference count, access indices, policy). Returns whether
  /// it was resident. Unlike access(), a miss inserts nothing — the caller
  /// fetches the body and calls put().
  bool touch(ObjectId id);

  /// Inserts or refreshes an object *without* advancing the clock (it
  /// belongs to the request already clocked by the preceding touch()).
  /// A resident copy is replaced. Returns false when the object exceeds
  /// the whole cache capacity (bypass).
  bool put(ObjectId id, std::uint64_t size, trace::DocumentClass doc_class);

  bool contains(ObjectId id) const { return objects_.contains(id); }
  /// Metadata of a resident object, or nullptr.
  const CacheObject* find(ObjectId id) const;
  /// Removes a resident object (invalidation); no-op when absent.
  void erase(ObjectId id);

  // ---- accounting ----

  std::uint64_t capacity_bytes() const { return capacity_bytes_; }
  std::uint64_t used_bytes() const { return used_bytes_; }
  std::uint64_t object_count() const { return objects_.size(); }
  std::uint64_t eviction_count() const { return evictions_; }
  std::uint64_t insertion_count() const { return insertions_; }
  /// Logical clock: number of access() calls so far.
  std::uint64_t clock() const { return clock_; }

  Occupancy occupancy() const;

  const ReplacementPolicy& policy() const { return *policy_; }

  /// Observability snapshot of the policy's internal state (heap size,
  /// aging term, beta estimate); sampled per metrics window.
  PolicyProbe policy_probe() const { return policy_->probe(); }

  /// Installs (or, with nullptr, removes) the removal notification hook.
  /// The listener is not owned and must outlive the cache or be detached.
  void set_removal_listener(RemovalListener* listener) {
    removal_listener_ = listener;
  }

  /// Empties the cache and resets the policy and all counters.
  void reset();

  /// Changes the byte capacity in place. Shrinking evicts (through the
  /// replacement policy, counted as ordinary evictions and reported to the
  /// removal listener) until the contents fit; growing never touches the
  /// contents. Returns the number of objects evicted. The sharded replay
  /// engine's quota rebalance uses this to move budget between shards.
  std::uint64_t resize(std::uint64_t new_capacity_bytes);

  /// Simulates a node failure (fault injection): every resident object is
  /// dropped and the replacement policy restarts cold, but the request clock
  /// and the cumulative eviction/insertion counters keep running — they
  /// describe the node's lifetime across restarts, and the fault metrics
  /// must not conflate crash losses with evictions. For the same reason the
  /// removal listener is NOT notified: the objects were lost with the
  /// process, not evicted or invalidated. Dense-id mode is preserved.
  void crash();

  /// Exhaustive consistency check (byte accounting vs object map); tests.
  bool check_invariants() const;

  // ---- checkpointing ----
  //
  // save_state serializes the container's accounting, the resident-object
  // metadata (sorted by id, so the bytes are deterministic regardless of
  // hash layout), and the policy's semantic state. restore_state is only
  // legal on an empty cache constructed with the identical capacity,
  // policy spec and dense-id reservation; sim::checkpoint validates that
  // through the run fingerprint before calling it.

  void save_state(util::StateWriter& w) const;
  void restore_state(util::StateReader& r);

 private:
  void insert(ObjectId id, std::uint64_t size, trace::DocumentClass doc_class);
  std::uint64_t evict_until_fits(std::uint64_t incoming_size);
  void remove_object(ObjectId id, bool is_eviction);

  bool admitted(std::uint64_t size) const {
    return size <= capacity_bytes_ &&
           (admission_limit_ == 0 || size <= admission_limit_);
  }

  std::uint64_t capacity_bytes_;
  std::uint64_t admission_limit_ = 0;
  std::unique_ptr<ReplacementPolicy> policy_;
  RemovalListener* removal_listener_ = nullptr;
  ObjectTable objects_;
  std::uint64_t used_bytes_ = 0;
  std::uint64_t clock_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t insertions_ = 0;
  std::array<std::uint64_t, trace::kDocumentClassCount> class_objects_{};
  std::array<std::uint64_t, trace::kDocumentClassCount> class_bytes_{};
};

}  // namespace webcache::cache
