#include "cache/clock.hpp"

#include <stdexcept>

namespace webcache::cache {

SecondChancePolicy::SecondChancePolicy(std::uint32_t counter_max)
    : counter_max_(counter_max) {
  if (counter_max == 0) {
    throw std::invalid_argument("SecondChancePolicy: counter max must be >= 1");
  }
}

void SecondChancePolicy::reserve_ids(std::uint64_t universe) {
  ring_.reserve_ids(universe);
  dense_ = true;
  counters_.clear();
  dense_counters_.assign(static_cast<std::size_t>(universe), 0);
}

std::uint32_t SecondChancePolicy::counter_of(ObjectId id) const {
  if (dense_) return dense_counters_[static_cast<std::size_t>(id)];
  const auto it = counters_.find(id);
  return it == counters_.end() ? 0 : it->second;
}

void SecondChancePolicy::set_counter(ObjectId id, std::uint32_t value) {
  if (dense_) {
    dense_counters_[static_cast<std::size_t>(id)] = value;
  } else if (value == 0) {
    counters_.erase(id);
  } else {
    counters_[id] = value;
  }
}

void SecondChancePolicy::on_insert(const CacheObject& obj) {
  // New objects enter unarmed: the first hand pass evicts them unless a
  // hit arms the counter first (quick demotion of one-timers).
  ring_.push_front(obj.id);
  set_counter(obj.id, 0);
}

void SecondChancePolicy::on_hit(const CacheObject& obj) {
  const std::uint32_t c = counter_of(obj.id);
  if (c < counter_max_) set_counter(obj.id, c + 1);
}

ObjectId SecondChancePolicy::choose_victim(std::uint64_t /*incoming_size*/) {
  // The hand walks from the cold end; armed objects lose one chance and
  // recycle to the young end. Counters only decrease along the walk, so the
  // scan terminates after at most counter_max_ full revolutions.
  for (;;) {
    const ObjectId hand = ring_.back();
    const std::uint32_t c = counter_of(hand);
    if (c == 0) return hand;
    set_counter(hand, c - 1);
    ring_.move_to_front(hand);
  }
}

void SecondChancePolicy::on_evict(ObjectId id) {
  ring_.erase(id);
  set_counter(id, 0);
}

void SecondChancePolicy::clear() {
  ring_.clear();
  if (dense_) {
    dense_counters_.assign(dense_counters_.size(), 0);
  } else {
    counters_.clear();
  }
}

}  // namespace webcache::cache
