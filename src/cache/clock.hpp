// CLOCK / Delay-CLOCK: second-chance FIFO with per-object reference
// counters — the classic lazy-promotion scheme (the hit path touches one
// counter; the recency structure is only maintained at eviction time).
//
// Implementation: an array-backed ring over the object slab
// (cache::LruIndexList — contiguous nodes, 32-bit links, flat id index
// after reserve_ids) ordered by insertion, with the clock hand at the cold
// end. A hit arms the object's reference counter (capped at k); the hand
// walks from the cold end, decrementing armed counters and recycling those
// objects to the young end (the second chance), and evicts the first
// object found with counter zero. CLOCK is the k=1 special case (a single
// reference bit); Delay-CLOCK generalizes to k chances, which approximates
// LRU more closely at slightly higher scan cost (Corbató's multi-bit CLOCK;
// the FIFO-family lazy-promotion studies rediscover it as "QuickDemotion
// resistant" CLOCK variants).
//
// Determinism: no randomness; the ring evolution depends only on the
// insert/hit/evict sequence, never on id numbering — sparse and dense-id
// replays are bit-identical, and the sharded exact engine replays the same
// sequence against the same structure.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/lru_list.hpp"
#include "cache/policy.hpp"

namespace webcache::cache {

/// Shared second-chance machinery; concrete policies fix k and the name.
class SecondChancePolicy : public ReplacementPolicy {
 public:
  void reserve_ids(std::uint64_t universe) override;
  void on_insert(const CacheObject& obj) override;
  void on_hit(const CacheObject& obj) override;
  using ReplacementPolicy::choose_victim;
  ObjectId choose_victim(std::uint64_t incoming_size) override;
  void on_evict(ObjectId id) override;
  void clear() override;

  PolicyProbe probe() const override {
    return {ring_.size(), std::nullopt, std::nullopt};
  }

  std::uint32_t counter_max() const { return counter_max_; }

  void save_state(util::StateWriter& w) const override;
  void restore_state(util::StateReader& r) override;

 protected:
  explicit SecondChancePolicy(std::uint32_t counter_max);

 private:
  std::uint32_t counter_of(ObjectId id) const;
  void set_counter(ObjectId id, std::uint32_t value);

  std::uint32_t counter_max_;  // k: chances granted by consecutive hits
  LruIndexList ring_;          // front = youngest, back = clock hand
  bool dense_ = false;
  std::unordered_map<ObjectId, std::uint32_t> counters_;
  std::vector<std::uint32_t> dense_counters_;
};

/// CLOCK: one reference bit (k = 1).
class ClockPolicy final : public SecondChancePolicy {
 public:
  ClockPolicy() : SecondChancePolicy(1) {}
  std::string_view name() const override { return "CLOCK"; }
};

/// Delay-CLOCK: reference counter capped at k (k >= 1).
class DelayClockPolicy final : public SecondChancePolicy {
 public:
  static constexpr std::uint32_t kDefaultK = 2;

  explicit DelayClockPolicy(std::uint32_t k = kDefaultK)
      : SecondChancePolicy(k),
        name_("DELAY-CLOCK:k=" + std::to_string(k)) {}
  std::string_view name() const override { return name_; }

 private:
  std::string name_;
};

}  // namespace webcache::cache
