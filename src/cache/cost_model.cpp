#include "cache/cost_model.hpp"

#include <stdexcept>

namespace webcache::cache {

LatencyCostModel::LatencyCostModel(double setup_ms, double bytes_per_ms)
    : setup_ms_(setup_ms), bytes_per_ms_(bytes_per_ms) {
  if (setup_ms < 0.0 || bytes_per_ms <= 0.0) {
    throw std::invalid_argument("LatencyCostModel: invalid parameters");
  }
}

std::unique_ptr<CostModel> make_cost_model(CostModelKind kind) {
  switch (kind) {
    case CostModelKind::kConstant:
      return std::make_unique<ConstantCostModel>();
    case CostModelKind::kPacket:
      return std::make_unique<PacketCostModel>();
    case CostModelKind::kLatency:
      return std::make_unique<LatencyCostModel>();
  }
  throw std::invalid_argument("make_cost_model: unknown kind");
}

std::string_view cost_model_suffix(CostModelKind kind) {
  switch (kind) {
    case CostModelKind::kConstant:
      return "1";
    case CostModelKind::kPacket:
      return "packet";
    case CostModelKind::kLatency:
      return "latency";
  }
  return "?";
}

CostModelKind cost_model_from_name(std::string_view name) {
  if (name == "constant" || name == "1") return CostModelKind::kConstant;
  if (name == "packet") return CostModelKind::kPacket;
  if (name == "latency") return CostModelKind::kLatency;
  throw std::invalid_argument("cost_model_from_name: unknown cost model '" +
                              std::string(name) + "'");
}

}  // namespace webcache::cache
