// Retrieval-cost models (paper, Section 3).
//
// "In the constant cost model, the cost of document retrieval is fixed. The
//  packet cost model assumes that the number of TCP packets transmitted
//  determines the cost of document retrieval. ... The second variant applies
//  the packet cost model by setting the cost function to the number of TCP
//  packets needed to transmit document p, i.e., c(p) = 2 + s(p)/536."
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

namespace webcache::cache {

class CostModel {
 public:
  virtual ~CostModel() = default;
  /// Cost of bringing a document of `size` bytes into the cache.
  virtual double cost(std::uint64_t size) const = 0;
  virtual std::string_view name() const = 0;
};

/// c(p) = 1. The model of choice for institutional proxies optimizing hit
/// rate; makes GDS/GD* prefer small documents.
class ConstantCostModel final : public CostModel {
 public:
  double cost(std::uint64_t /*size*/) const override { return 1.0; }
  std::string_view name() const override { return "constant"; }
};

/// c(p) = 2 + s(p)/536: TCP packet count (SYN + request packet + payload in
/// 536-byte segments). Appropriate for backbone proxies optimizing byte hit
/// rate; roughly proportional to size for large documents, so c/s flattens.
class PacketCostModel final : public CostModel {
 public:
  static constexpr double kSegmentBytes = 536.0;

  double cost(std::uint64_t size) const override {
    return 2.0 + static_cast<double>(size) / kSegmentBytes;
  }
  std::string_view name() const override { return "packet"; }
};

/// c(p) = latency to fetch: connection setup plus transfer time at a fixed
/// bandwidth (Cao & Irani's third cost function, there used for reducing
/// average download latency). Defaults model a 2001-era backbone origin
/// fetch: 150 ms setup, 400 KB/s.
class LatencyCostModel final : public CostModel {
 public:
  explicit LatencyCostModel(double setup_ms = 150.0,
                            double bytes_per_ms = 400.0);

  double cost(std::uint64_t size) const override {
    return setup_ms_ + static_cast<double>(size) / bytes_per_ms_;
  }
  std::string_view name() const override { return "latency"; }

  double setup_ms() const { return setup_ms_; }
  double bytes_per_ms() const { return bytes_per_ms_; }

 private:
  double setup_ms_;
  double bytes_per_ms_;
};

enum class CostModelKind { kConstant, kPacket, kLatency };

std::unique_ptr<CostModel> make_cost_model(CostModelKind kind);
CostModelKind cost_model_from_name(std::string_view name);

/// The suffix used in policy display names: GDS(1), GDS(packet),
/// GDS(latency), ...
std::string_view cost_model_suffix(CostModelKind kind);

}  // namespace webcache::cache
