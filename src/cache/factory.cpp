#include "cache/factory.hpp"

#include <stdexcept>
#include <string>

#include "cache/fifo.hpp"
#include "cache/gds.hpp"
#include "cache/gdsf.hpp"
#include "cache/gdstar.hpp"
#include "cache/gdstar_class.hpp"
#include "cache/lfu.hpp"
#include "cache/lfu_da.hpp"
#include "cache/lru.hpp"
#include "cache/lru_k.hpp"
#include "cache/lru_variants.hpp"
#include "cache/size_policy.hpp"

namespace webcache::cache {

std::unique_ptr<ReplacementPolicy> make_policy(const PolicySpec& spec) {
  switch (spec.kind) {
    case PolicyKind::kLru:
      return std::make_unique<LruPolicy>();
    case PolicyKind::kFifo:
      return std::make_unique<FifoPolicy>();
    case PolicyKind::kSize:
      return std::make_unique<SizePolicy>();
    case PolicyKind::kLfu:
      return std::make_unique<LfuPolicy>();
    case PolicyKind::kLfuDa:
      return std::make_unique<LfuDaPolicy>();
    case PolicyKind::kGds:
      return std::make_unique<GdsPolicy>(spec.cost_model);
    case PolicyKind::kGdsf:
      return std::make_unique<GdsfPolicy>(spec.cost_model);
    case PolicyKind::kGdStar:
      return std::make_unique<GdStarPolicy>(spec.cost_model, spec.fixed_beta);
    case PolicyKind::kLruThreshold:
      return std::make_unique<LruThresholdPolicy>(
          spec.admission_threshold_bytes);
    case PolicyKind::kLruMin:
      return std::make_unique<LruMinPolicy>();
    case PolicyKind::kLruK:
      return std::make_unique<LruKPolicy>();
    case PolicyKind::kGdStarPerClass:
      return std::make_unique<GdStarPerClassPolicy>(spec.cost_model);
  }
  throw std::invalid_argument("make_policy: unknown kind");
}

PolicySpec policy_spec_from_name(std::string_view name) {
  PolicySpec spec;
  auto with_cost = [&](PolicyKind kind, std::string_view base) -> bool {
    if (name == std::string(base) + "(1)") {
      spec.kind = kind;
      spec.cost_model = CostModelKind::kConstant;
      return true;
    }
    if (name == std::string(base) + "(packet)") {
      spec.kind = kind;
      spec.cost_model = CostModelKind::kPacket;
      return true;
    }
    if (name == std::string(base) + "(latency)") {
      spec.kind = kind;
      spec.cost_model = CostModelKind::kLatency;
      return true;
    }
    return false;
  };

  if (name == "LRU") {
    spec.kind = PolicyKind::kLru;
  } else if (name == "LRU-MIN") {
    spec.kind = PolicyKind::kLruMin;
  } else if (name == "LRU-2") {
    spec.kind = PolicyKind::kLruK;
  } else if (name.rfind("LRU-THOLD(", 0) == 0 && name.back() == ')') {
    spec.kind = PolicyKind::kLruThreshold;
    const std::string digits(name.substr(10, name.size() - 11));
    try {
      const long long bytes = std::stoll(digits);
      if (bytes <= 0) throw std::invalid_argument("non-positive");
      spec.admission_threshold_bytes = static_cast<std::uint64_t>(bytes);
    } catch (const std::exception&) {
      throw std::invalid_argument(
          "policy_spec_from_name: bad LRU-THOLD threshold '" + digits + "'");
    }
  } else if (name == "FIFO") {
    spec.kind = PolicyKind::kFifo;
  } else if (name == "SIZE") {
    spec.kind = PolicyKind::kSize;
  } else if (name == "LFU") {
    spec.kind = PolicyKind::kLfu;
  } else if (name == "LFU-DA") {
    spec.kind = PolicyKind::kLfuDa;
  } else if (with_cost(PolicyKind::kGds, "GDS") ||
             with_cost(PolicyKind::kGdsf, "GDSF") ||
             with_cost(PolicyKind::kGdStar, "GD*") ||
             with_cost(PolicyKind::kGdStarPerClass, "GD*C")) {
    // spec filled by with_cost
  } else {
    throw std::invalid_argument("policy_spec_from_name: unknown policy '" +
                                std::string(name) + "'");
  }
  return spec;
}

std::unique_ptr<ReplacementPolicy> make_policy(std::string_view name) {
  return make_policy(policy_spec_from_name(name));
}

std::vector<PolicySpec> paper_policy_set(CostModelKind cost_model) {
  std::vector<PolicySpec> specs;
  specs.push_back({PolicyKind::kLru, cost_model, std::nullopt});
  specs.push_back({PolicyKind::kLfuDa, cost_model, std::nullopt});
  specs.push_back({PolicyKind::kGds, cost_model, std::nullopt});
  specs.push_back({PolicyKind::kGdStar, cost_model, std::nullopt});
  return specs;
}

}  // namespace webcache::cache
