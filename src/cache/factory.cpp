#include "cache/factory.hpp"

#include <cctype>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "cache/clock.hpp"
#include "cache/fifo.hpp"
#include "cache/gds.hpp"
#include "cache/gdsf.hpp"
#include "cache/gdstar.hpp"
#include "cache/gdstar_class.hpp"
#include "cache/lazy_lru.hpp"
#include "cache/lfu.hpp"
#include "cache/lfu_da.hpp"
#include "cache/lru.hpp"
#include "cache/lru_k.hpp"
#include "cache/lru_variants.hpp"
#include "cache/random.hpp"
#include "cache/size_policy.hpp"

namespace webcache::cache {

std::unique_ptr<ReplacementPolicy> make_policy(const PolicySpec& spec) {
  switch (spec.kind) {
    case PolicyKind::kLru:
      return std::make_unique<LruPolicy>();
    case PolicyKind::kFifo:
      return std::make_unique<FifoPolicy>();
    case PolicyKind::kSize:
      return std::make_unique<SizePolicy>();
    case PolicyKind::kLfu:
      return std::make_unique<LfuPolicy>();
    case PolicyKind::kLfuDa:
      return std::make_unique<LfuDaPolicy>();
    case PolicyKind::kGds:
      return std::make_unique<GdsPolicy>(spec.cost_model);
    case PolicyKind::kGdsf:
      return std::make_unique<GdsfPolicy>(spec.cost_model);
    case PolicyKind::kGdStar:
      return std::make_unique<GdStarPolicy>(spec.cost_model, spec.fixed_beta);
    case PolicyKind::kLruThreshold:
      return std::make_unique<LruThresholdPolicy>(
          spec.admission_threshold_bytes);
    case PolicyKind::kLruMin:
      return std::make_unique<LruMinPolicy>();
    case PolicyKind::kLruK:
      return std::make_unique<LruKPolicy>();
    case PolicyKind::kGdStarPerClass:
      return std::make_unique<GdStarPerClassPolicy>(spec.cost_model);
    case PolicyKind::kRandom:
      return std::make_unique<RandomPolicy>(spec.random_seed);
    case PolicyKind::kClock:
      return std::make_unique<ClockPolicy>();
    case PolicyKind::kDelayClock:
      return std::make_unique<DelayClockPolicy>(spec.clock_counter_max);
    case PolicyKind::kProbLru:
      return std::make_unique<ProbLruPolicy>(spec.promote_probability,
                                             spec.random_seed);
    case PolicyKind::kDelayLru:
      return std::make_unique<DelayLruPolicy>(spec.promote_interval);
    case PolicyKind::kBatchPromotion:
      return std::make_unique<BatchPromotionPolicy>(spec.promotion_batch);
  }
  throw std::invalid_argument("make_policy: unknown kind");
}

namespace {

std::string lower_ascii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

// `base[:key=value,...]` parameter list for the lazy-promotion family.
// Every diagnostic names the policy, the parameter, and the offending
// value so a CLI typo is a one-line fix.
struct ParamList {
  std::string_view policy;  // canonical display base, for error messages
  std::vector<std::pair<std::string, std::string>> items;

  [[noreturn]] void fail(std::string_view key, std::string_view value,
                         std::string_view expected) const {
    throw std::invalid_argument("policy_spec_from_name: " +
                                std::string(policy) + " parameter '" +
                                std::string(key) + "': bad value '" +
                                std::string(value) + "' (expected " +
                                std::string(expected) + ")");
  }

  std::uint64_t take_u64(std::string_view key, std::uint64_t fallback,
                         std::uint64_t min_value) {
    const std::string* raw = take(key);
    if (raw == nullptr) return fallback;
    try {
      // stoull would wrap "-3" around; demand plain digits.
      for (const char c : *raw) {
        if (!std::isdigit(static_cast<unsigned char>(c))) {
          throw std::invalid_argument("");
        }
      }
      std::size_t used = 0;
      const unsigned long long v = std::stoull(*raw, &used);
      if (used != raw->size() || v < min_value) throw std::invalid_argument("");
      return static_cast<std::uint64_t>(v);
    } catch (const std::exception&) {
      fail(key, *raw, "integer >= " + std::to_string(min_value));
    }
  }

  double take_probability(std::string_view key, double fallback) {
    const std::string* raw = take(key);
    if (raw == nullptr) return fallback;
    try {
      std::size_t used = 0;
      const double v = std::stod(*raw, &used);
      if (used != raw->size() || !(v > 0.0) || v > 1.0) {
        throw std::invalid_argument("");
      }
      return v;
    } catch (const std::exception&) {
      fail(key, *raw, "probability in (0, 1]");
    }
  }

  void finish() const {
    if (items.empty()) return;
    throw std::invalid_argument(
        "policy_spec_from_name: " + std::string(policy) +
        ": unknown parameter '" + items.front().first + "'");
  }

 private:
  const std::string* take(std::string_view key) {
    for (auto it = items.begin(); it != items.end(); ++it) {
      if (it->first == key) {
        taken_ = std::move(it->second);
        items.erase(it);
        return &taken_;
      }
    }
    return nullptr;
  }

  std::string taken_;
};

/// Matches `name` against a lazy-family base (case-insensitive) and, on a
/// match, splits the `key=value,...` tail. Returns nullopt when the base
/// differs; throws on a matching base with a malformed tail.
std::optional<ParamList> match_lazy(std::string_view name,
                                    std::string_view canonical_base) {
  const std::size_t colon = name.find(':');
  const std::string_view base = name.substr(0, colon);
  if (lower_ascii(base) != lower_ascii(canonical_base)) return std::nullopt;

  ParamList params;
  params.policy = canonical_base;
  if (colon == std::string_view::npos) return params;
  std::string_view tail = name.substr(colon + 1);
  while (!tail.empty()) {
    const std::size_t comma = tail.find(',');
    const std::string_view item = tail.substr(0, comma);
    tail = comma == std::string_view::npos ? std::string_view{}
                                           : tail.substr(comma + 1);
    const std::size_t eq = item.find('=');
    if (eq == 0 || eq == std::string_view::npos || eq + 1 == item.size()) {
      throw std::invalid_argument(
          "policy_spec_from_name: " + std::string(canonical_base) +
          ": malformed parameter '" + std::string(item) +
          "' (expected key=value)");
    }
    params.items.emplace_back(lower_ascii(item.substr(0, eq)),
                              std::string(item.substr(eq + 1)));
  }
  return params;
}

/// The lazy-promotion / RANDOM family, `base[:key=value,...]` syntax.
/// Returns false when `name`'s base matches none of the family.
bool parse_lazy_family(std::string_view name, PolicySpec& spec) {
  if (auto p = match_lazy(name, "RANDOM")) {
    spec.kind = PolicyKind::kRandom;
    spec.random_seed = p->take_u64("seed", spec.random_seed, 0);
    p->finish();
  } else if (auto p = match_lazy(name, "CLOCK")) {
    spec.kind = PolicyKind::kClock;
    p->finish();
  } else if (auto p = match_lazy(name, "DELAY-CLOCK")) {
    spec.kind = PolicyKind::kDelayClock;
    spec.clock_counter_max =
        static_cast<std::uint32_t>(p->take_u64("k", spec.clock_counter_max, 1));
    p->finish();
  } else if (auto p = match_lazy(name, "PROB-LRU")) {
    spec.kind = PolicyKind::kProbLru;
    spec.promote_probability =
        p->take_probability("p", spec.promote_probability);
    spec.random_seed = p->take_u64("seed", spec.random_seed, 0);
    p->finish();
  } else if (auto p = match_lazy(name, "DELAY-LRU")) {
    spec.kind = PolicyKind::kDelayLru;
    spec.promote_interval = p->take_u64("k", spec.promote_interval, 1);
    p->finish();
  } else if (auto p = match_lazy(name, "BATCH-LRU")) {
    spec.kind = PolicyKind::kBatchPromotion;
    spec.promotion_batch = p->take_u64("batch", spec.promotion_batch, 1);
    p->finish();
  } else {
    return false;
  }
  return true;
}

}  // namespace

PolicySpec policy_spec_from_name(std::string_view name) {
  PolicySpec spec;
  auto with_cost = [&](PolicyKind kind, std::string_view base) -> bool {
    if (name == std::string(base) + "(1)") {
      spec.kind = kind;
      spec.cost_model = CostModelKind::kConstant;
      return true;
    }
    if (name == std::string(base) + "(packet)") {
      spec.kind = kind;
      spec.cost_model = CostModelKind::kPacket;
      return true;
    }
    if (name == std::string(base) + "(latency)") {
      spec.kind = kind;
      spec.cost_model = CostModelKind::kLatency;
      return true;
    }
    return false;
  };

  if (name == "LRU") {
    spec.kind = PolicyKind::kLru;
  } else if (name == "LRU-MIN") {
    spec.kind = PolicyKind::kLruMin;
  } else if (name == "LRU-2") {
    spec.kind = PolicyKind::kLruK;
  } else if (name.rfind("LRU-THOLD(", 0) == 0 && name.back() == ')') {
    spec.kind = PolicyKind::kLruThreshold;
    const std::string digits(name.substr(10, name.size() - 11));
    try {
      const long long bytes = std::stoll(digits);
      if (bytes <= 0) throw std::invalid_argument("non-positive");
      spec.admission_threshold_bytes = static_cast<std::uint64_t>(bytes);
    } catch (const std::exception&) {
      throw std::invalid_argument(
          "policy_spec_from_name: bad LRU-THOLD threshold '" + digits + "'");
    }
  } else if (name == "FIFO") {
    spec.kind = PolicyKind::kFifo;
  } else if (name == "SIZE") {
    spec.kind = PolicyKind::kSize;
  } else if (name == "LFU") {
    spec.kind = PolicyKind::kLfu;
  } else if (name == "LFU-DA") {
    spec.kind = PolicyKind::kLfuDa;
  } else if (with_cost(PolicyKind::kGds, "GDS") ||
             with_cost(PolicyKind::kGdsf, "GDSF") ||
             with_cost(PolicyKind::kGdStar, "GD*") ||
             with_cost(PolicyKind::kGdStarPerClass, "GD*C")) {
    // spec filled by with_cost
  } else if (parse_lazy_family(name, spec)) {
    // spec filled by parse_lazy_family
  } else {
    throw std::invalid_argument("policy_spec_from_name: unknown policy '" +
                                std::string(name) + "'");
  }
  return spec;
}

std::unique_ptr<ReplacementPolicy> make_policy(std::string_view name) {
  return make_policy(policy_spec_from_name(name));
}

std::vector<PolicySpec> paper_policy_set(CostModelKind cost_model) {
  std::vector<PolicySpec> specs;
  specs.push_back({PolicyKind::kLru, cost_model, std::nullopt});
  specs.push_back({PolicyKind::kLfuDa, cost_model, std::nullopt});
  specs.push_back({PolicyKind::kGds, cost_model, std::nullopt});
  specs.push_back({PolicyKind::kGdStar, cost_model, std::nullopt});
  return specs;
}

}  // namespace webcache::cache
