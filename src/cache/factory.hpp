// Policy construction by specification or by the paper's display names.
#pragma once

#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "cache/cost_model.hpp"
#include "cache/policy.hpp"

namespace webcache::cache {

enum class PolicyKind {
  kLru,
  kFifo,
  kSize,
  kLfu,
  kLfuDa,
  kGds,
  kGdsf,
  kGdStar,
  kLruThreshold,
  kLruMin,
  kLruK,
  kGdStarPerClass,
};

struct PolicySpec {
  PolicyKind kind = PolicyKind::kLru;
  /// Meaningful for the GDS family only.
  CostModelKind cost_model = CostModelKind::kConstant;
  /// GD* only: disable the online estimator and pin beta.
  std::optional<double> fixed_beta;
  /// LRU-Threshold only: the admission threshold in bytes (> 0). The
  /// simulator applies it via Cache::set_admission_limit.
  std::uint64_t admission_threshold_bytes = 512 * 1024;
};

std::unique_ptr<ReplacementPolicy> make_policy(const PolicySpec& spec);

/// Parses the paper's names: "LRU", "LFU-DA", "GDS(1)", "GDS(packet)",
/// "GD*(1)", "GD*(packet)", plus the baselines "FIFO", "SIZE", "LFU",
/// "GDSF(1)", "GDSF(packet)", "LRU-MIN", "LRU-2" and "LRU-THOLD(<bytes>)".
/// Throws std::invalid_argument on anything else.
PolicySpec policy_spec_from_name(std::string_view name);

std::unique_ptr<ReplacementPolicy> make_policy(std::string_view name);

/// The paper's four schemes under the given cost model, in presentation
/// order: LRU, LFU-DA, GDS(model), GD*(model).
std::vector<PolicySpec> paper_policy_set(CostModelKind cost_model);

}  // namespace webcache::cache
