// Policy construction by specification or by the paper's display names.
#pragma once

#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "cache/cost_model.hpp"
#include "cache/policy.hpp"

namespace webcache::cache {

enum class PolicyKind {
  kLru,
  kFifo,
  kSize,
  kLfu,
  kLfuDa,
  kGds,
  kGdsf,
  kGdStar,
  kLruThreshold,
  kLruMin,
  kLruK,
  kGdStarPerClass,
  kRandom,
  kClock,
  kDelayClock,
  kProbLru,
  kDelayLru,
  kBatchPromotion,
};

struct PolicySpec {
  PolicyKind kind = PolicyKind::kLru;
  /// Meaningful for the GDS family only.
  CostModelKind cost_model = CostModelKind::kConstant;
  /// GD* only: disable the online estimator and pin beta.
  std::optional<double> fixed_beta;
  /// LRU-Threshold only: the admission threshold in bytes (> 0). The
  /// simulator applies it via Cache::set_admission_limit.
  std::uint64_t admission_threshold_bytes = 512 * 1024;
  /// RANDOM / PROB-LRU: seed for the policy's private draw stream. Not
  /// part of the display name, so two seeds of the same policy report the
  /// same scheme in result tables.
  std::uint64_t random_seed = 1;
  /// DELAY-CLOCK: reference-counter cap k (CLOCK is the k=1 special case).
  std::uint32_t clock_counter_max = 2;
  /// PROB-LRU: per-hit promotion probability p in (0, 1].
  double promote_probability = 0.5;
  /// DELAY-LRU: minimum requests between promotions of one object.
  std::uint64_t promote_interval = 16;
  /// BATCH-LRU: queued hits per promotion flush.
  std::uint64_t promotion_batch = 64;
};

std::unique_ptr<ReplacementPolicy> make_policy(const PolicySpec& spec);

/// Parses the paper's names: "LRU", "LFU-DA", "GDS(1)", "GDS(packet)",
/// "GD*(1)", "GD*(packet)", plus the baselines "FIFO", "SIZE", "LFU",
/// "GDSF(1)", "GDSF(packet)", "LRU-MIN", "LRU-2" and "LRU-THOLD(<bytes>)".
///
/// The lazy-promotion family uses `base[:key=value,...]` syntax with a
/// case-insensitive base name: "RANDOM" (optional `seed=<n>`), "CLOCK",
/// "DELAY-CLOCK" (`k=<n>`), "PROB-LRU" (`p=<x>`, optional `seed=<n>`),
/// "DELAY-LRU" (`k=<n>`) and "BATCH-LRU" (`batch=<n>`), e.g.
/// "prob-lru:p=0.1" or "DELAY-CLOCK:k=8". Unknown keys and malformed
/// values are rejected with the policy and parameter named in the error.
///
/// Throws std::invalid_argument on anything else.
PolicySpec policy_spec_from_name(std::string_view name);

std::unique_ptr<ReplacementPolicy> make_policy(std::string_view name);

/// The paper's four schemes under the given cost model, in presentation
/// order: LRU, LFU-DA, GDS(model), GD*(model).
std::vector<PolicySpec> paper_policy_set(CostModelKind cost_model);

}  // namespace webcache::cache
