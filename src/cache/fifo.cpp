#include "cache/fifo.hpp"

#include <stdexcept>

namespace webcache::cache {

void FifoPolicy::on_insert(const CacheObject& obj) {
  if (!resident_.insert(obj.id).second) {
    throw std::logic_error("FifoPolicy: duplicate insert");
  }
  order_.push_back(obj.id);
}

void FifoPolicy::skip_tombstones() {
  while (!order_.empty()) {
    const auto it = tombstones_.find(order_.front());
    if (it == tombstones_.end()) break;
    if (--it->second == 0) tombstones_.erase(it);
    order_.pop_front();
  }
}

ObjectId FifoPolicy::choose_victim(std::uint64_t /*incoming_size*/) {
  skip_tombstones();
  if (order_.empty()) throw std::logic_error("FifoPolicy: empty");
  return order_.front();
}

void FifoPolicy::on_evict(ObjectId id) {
  if (resident_.erase(id) == 0) {
    throw std::logic_error("FifoPolicy: evict absent id");
  }
  skip_tombstones();
  if (!order_.empty() && order_.front() == id) {
    order_.pop_front();
  } else {
    // Removed out of order: leave the entry in place, matched by a
    // tombstone. If the id is later re-inserted, the stale entry is still
    // the one the tombstone refers to (oldest first).
    ++tombstones_[id];
  }
}

void FifoPolicy::clear() {
  order_.clear();
  tombstones_.clear();
  resident_.clear();
}

}  // namespace webcache::cache
