// First-In First-Out baseline.
//
// Not part of the paper's four schemes, but a member of the six-policy
// comparison in Arlitt, Friedrich & Jin (Performance Evaluation 39, 2000)
// that the paper builds on; included as a floor for the benchmarks.
//
// Removal of non-front objects is lazy: a tombstone count per id marks how
// many stale deque entries exist, and choose_victim() skips them. An id can
// be erased and re-inserted repeatedly; each stale entry is matched by
// exactly one tombstone.
#pragma once

#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "cache/policy.hpp"

namespace webcache::cache {

class FifoPolicy final : public ReplacementPolicy {
 public:
  void on_insert(const CacheObject& obj) override;
  void on_hit(const CacheObject& /*obj*/) override {}  // recency is ignored
  using ReplacementPolicy::choose_victim;
  ObjectId choose_victim(std::uint64_t incoming_size) override;
  void on_evict(ObjectId id) override;
  std::string_view name() const override { return "FIFO"; }
  void clear() override;

  void save_state(util::StateWriter& w) const override;
  void restore_state(util::StateReader& r) override;

 private:
  void skip_tombstones();

  std::deque<ObjectId> order_;  // front = oldest
  std::unordered_map<ObjectId, std::uint32_t> tombstones_;
  std::unordered_set<ObjectId> resident_;
};

}  // namespace webcache::cache
