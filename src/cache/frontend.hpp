// CacheFrontend: the minimal surface the simulator needs from a cache, so
// composite organizations (class-partitioned caches, hierarchies) can be
// driven by the same trace loop as a single Cache.
#pragma once

#include <string>

#include "cache/cache.hpp"

namespace webcache::cache {

class CacheFrontend {
 public:
  virtual ~CacheFrontend() = default;

  virtual Cache::AccessOutcome access(ObjectId id, std::uint64_t size,
                                      trace::DocumentClass doc_class,
                                      bool force_miss) = 0;
  /// Dense-id fast path hint: every ObjectId subsequently passed to this
  /// frontend lies in [0, universe) — true for traces run through
  /// trace::densify(). Composites forward the reservation to every
  /// underlying cache so each switches its object table and policy indices
  /// to flat arrays; results are bit-identical either way. Only legal while
  /// the frontend is empty (implementations throw std::logic_error
  /// otherwise). The default ignores the hint: a frontend without
  /// array-backed state simply stays sparse.
  virtual void reserve_dense_ids(std::uint64_t /*universe*/) {}
  virtual bool contains(ObjectId id) const = 0;
  virtual Occupancy occupancy() const = 0;
  virtual std::uint64_t eviction_count() const = 0;
  virtual std::uint64_t capacity_bytes() const = 0;
  /// Human-readable identity for reports (policy name or composite label).
  virtual std::string description() const = 0;

  /// Installs (nullptr: removes) a removal listener on every underlying
  /// cache — the instrumentation layer's eviction feed. The listener is not
  /// owned. The default ignores the hook: a frontend without caches behind
  /// it has nothing to report.
  virtual void set_removal_listener(RemovalListener* /*listener*/) {}

  /// Observability snapshot of the underlying replacement state, sampled
  /// per metrics window. Composites aggregate what aggregates (heap
  /// entries) and drop what doesn't (a partitioned cache has one aging term
  /// per partition, not one overall). Default: nothing to report.
  virtual PolicyProbe policy_probe() const { return {}; }
};

/// Adapts a plain Cache to the frontend interface.
class SingleCacheFrontend final : public CacheFrontend {
 public:
  SingleCacheFrontend(std::uint64_t capacity_bytes,
                      std::unique_ptr<ReplacementPolicy> policy,
                      std::uint64_t admission_limit_bytes = 0)
      : cache_(capacity_bytes, std::move(policy)) {
    if (admission_limit_bytes > 0) {
      cache_.set_admission_limit(admission_limit_bytes);
    }
  }

  Cache::AccessOutcome access(ObjectId id, std::uint64_t size,
                              trace::DocumentClass doc_class,
                              bool force_miss) override {
    return cache_.access(id, size, doc_class, force_miss);
  }
  void reserve_dense_ids(std::uint64_t universe) override {
    cache_.reserve_dense_ids(universe);
  }
  bool contains(ObjectId id) const override { return cache_.contains(id); }
  Occupancy occupancy() const override { return cache_.occupancy(); }
  std::uint64_t eviction_count() const override {
    return cache_.eviction_count();
  }
  std::uint64_t capacity_bytes() const override {
    return cache_.capacity_bytes();
  }
  std::string description() const override {
    return std::string(cache_.policy().name());
  }
  void set_removal_listener(RemovalListener* listener) override {
    cache_.set_removal_listener(listener);
  }
  PolicyProbe policy_probe() const override { return cache_.policy_probe(); }

  Cache& cache() { return cache_; }

 private:
  Cache cache_;
};

}  // namespace webcache::cache
