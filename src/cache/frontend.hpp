// CacheFrontend: the minimal surface the simulator needs from a cache, so
// composite organizations (class-partitioned caches, hierarchies) can be
// driven by the same trace loop as a single Cache.
#pragma once

#include <string>

#include "cache/cache.hpp"

namespace webcache::cache {

class CacheFrontend {
 public:
  virtual ~CacheFrontend() = default;

  virtual Cache::AccessOutcome access(ObjectId id, std::uint64_t size,
                                      trace::DocumentClass doc_class,
                                      bool force_miss) = 0;
  /// Dense-id fast path hint: every ObjectId subsequently passed to this
  /// frontend lies in [0, universe) — true for traces run through
  /// trace::densify(). Composites forward the reservation to every
  /// underlying cache so each switches its object table and policy indices
  /// to flat arrays; results are bit-identical either way. Only legal while
  /// the frontend is empty (implementations throw std::logic_error
  /// otherwise). The default ignores the hint: a frontend without
  /// array-backed state simply stays sparse.
  virtual void reserve_dense_ids(std::uint64_t /*universe*/) {}
  virtual bool contains(ObjectId id) const = 0;
  virtual Occupancy occupancy() const = 0;
  virtual std::uint64_t eviction_count() const = 0;
  virtual std::uint64_t capacity_bytes() const = 0;
  /// Human-readable identity for reports (policy name or composite label).
  virtual std::string description() const = 0;

  /// Installs (nullptr: removes) a removal listener on every underlying
  /// cache — the instrumentation layer's eviction feed. The listener is not
  /// owned. The default ignores the hook: a frontend without caches behind
  /// it has nothing to report.
  virtual void set_removal_listener(RemovalListener* /*listener*/) {}

  /// Observability snapshot of the underlying replacement state, sampled
  /// per metrics window. Composites aggregate what aggregates (heap
  /// entries) and drop what doesn't (a partitioned cache has one aging term
  /// per partition, not one overall). Default: nothing to report.
  virtual PolicyProbe policy_probe() const { return {}; }

  // ---- fault-injection seams (sim/faults.hpp) ----
  //
  // The fault-aware replay loops model a frontend as a set of independent
  // fault domains: a schedule's edge-crash/recover events address domains,
  // a request whose domain is down is LOST (a single box has no failover
  // path), and a crash drops the domain's contents cold. A plain frontend
  // is one domain; a class-partitioned cache is one domain per document
  // class (matching the PR-4 partitioned fault semantics).

  /// Number of independent fault domains (schedule node indices must be
  /// smaller). Default: the whole frontend is one domain.
  virtual std::uint32_t fault_domains() const { return 1; }

  /// Which domain serves requests of this document class.
  virtual std::uint32_t fault_domain_of(trace::DocumentClass /*cls*/) const {
    return 0;
  }

  /// Drops the domain's contents and restarts its replacement state cold
  /// (Cache::crash semantics: lifetime counters keep running, the removal
  /// listener is not notified — the objects were lost, not evicted).
  /// Frontends without a crash seam throw std::logic_error; they cannot be
  /// driven by a fault schedule.
  virtual void crash_domain(std::uint32_t /*domain*/) {
    throw std::logic_error(
        "CacheFrontend: this frontend has no fault-injection crash seam");
  }

  // ---- checkpointing (sim/checkpoint.hpp) ----
  //
  // Serializes every underlying cache (accounting, resident objects,
  // policy state). restore_state is only legal on an empty frontend built
  // from the identical configuration — the checkpoint fingerprint
  // enforces that before this is called. Frontends without a snapshot
  // seam keep the throwing defaults and cannot be checkpointed.

  virtual void save_state(util::StateWriter& /*w*/) const {
    throw std::logic_error(
        "CacheFrontend: this frontend has no checkpoint seam");
  }
  virtual void restore_state(util::StateReader& /*r*/) {
    throw std::logic_error(
        "CacheFrontend: this frontend has no checkpoint seam");
  }
};

/// Adapts a plain Cache to the frontend interface.
class SingleCacheFrontend final : public CacheFrontend {
 public:
  SingleCacheFrontend(std::uint64_t capacity_bytes,
                      std::unique_ptr<ReplacementPolicy> policy,
                      std::uint64_t admission_limit_bytes = 0)
      : cache_(capacity_bytes, std::move(policy)) {
    if (admission_limit_bytes > 0) {
      cache_.set_admission_limit(admission_limit_bytes);
    }
  }

  Cache::AccessOutcome access(ObjectId id, std::uint64_t size,
                              trace::DocumentClass doc_class,
                              bool force_miss) override {
    return cache_.access(id, size, doc_class, force_miss);
  }
  void reserve_dense_ids(std::uint64_t universe) override {
    cache_.reserve_dense_ids(universe);
  }
  bool contains(ObjectId id) const override { return cache_.contains(id); }
  Occupancy occupancy() const override { return cache_.occupancy(); }
  std::uint64_t eviction_count() const override {
    return cache_.eviction_count();
  }
  std::uint64_t capacity_bytes() const override {
    return cache_.capacity_bytes();
  }
  std::string description() const override {
    return std::string(cache_.policy().name());
  }
  void set_removal_listener(RemovalListener* listener) override {
    cache_.set_removal_listener(listener);
  }
  PolicyProbe policy_probe() const override { return cache_.policy_probe(); }
  void crash_domain(std::uint32_t domain) override {
    if (domain != 0) {
      throw std::logic_error("SingleCacheFrontend: only fault domain 0");
    }
    cache_.crash();
  }
  void save_state(util::StateWriter& w) const override {
    cache_.save_state(w);
  }
  void restore_state(util::StateReader& r) override {
    cache_.restore_state(r);
  }

  Cache& cache() { return cache_; }

 private:
  Cache cache_;
};

}  // namespace webcache::cache
