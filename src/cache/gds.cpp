#include "cache/gds.hpp"

#include <algorithm>

namespace webcache::cache {

GdsPolicy::GdsPolicy(CostModelKind cost_model)
    : cost_model_(make_cost_model(cost_model)) {
  name_ = "GDS(" + std::string(cost_model_suffix(cost_model)) + ")";
}

double GdsPolicy::value_of(const CacheObject& obj) const {
  // Guard the degenerate size-0 document (e.g. 304 bodies): treat as 1 byte
  // so the utility stays finite; such objects occupy no capacity anyway.
  const double size = std::max<double>(1.0, static_cast<double>(obj.size));
  return cost_model_->cost(obj.size) / size;
}

void GdsPolicy::on_insert(const CacheObject& obj) {
  heap_.push(obj.id, inflation_ + value_of(obj));
}

void GdsPolicy::on_hit(const CacheObject& obj) {
  // Restore the full value on top of the *current* inflation: documents not
  // referenced since their last H assignment decay relative to this one.
  heap_.update(obj.id, inflation_ + value_of(obj));
}

ObjectId GdsPolicy::choose_victim(std::uint64_t /*incoming_size*/) { return heap_.top().key; }

void GdsPolicy::on_evict(ObjectId id) {
  if (!heap_.empty() && heap_.top().key == id) {
    inflation_ = heap_.top().priority;
  }
  heap_.erase(id);
}

void GdsPolicy::clear() {
  heap_.clear();
  inflation_ = 0.0;
}

}  // namespace webcache::cache
