// GreedyDual-Size (Cao & Irani, USITS 1997; paper, Section 3).
//
// On insert or hit: H(p) = L + c(p) / s(p). Evict min H; on eviction the
// inflation L rises to the victim's H. The inflation replaces the paper's
// "subtract H_min from every H" step with an equivalent O(log n) scheme
// (identical eviction order, as proved in Cao & Irani's implementation
// note and exercised by our tests).
//
// With c(p) = 1 this is the paper's GDS(1); with the packet cost model it
// is GDS(packet).
#pragma once

#include "cache/cost_model.hpp"
#include "cache/indexed_heap.hpp"
#include "cache/policy.hpp"

namespace webcache::cache {

class GdsPolicy final : public ReplacementPolicy {
 public:
  explicit GdsPolicy(CostModelKind cost_model);

  void reserve_ids(std::uint64_t universe) override {
    heap_.reserve_dense_keys(universe);
  }
  void on_insert(const CacheObject& obj) override;
  void on_hit(const CacheObject& obj) override;
  using ReplacementPolicy::choose_victim;
  ObjectId choose_victim(std::uint64_t incoming_size) override;
  void on_evict(ObjectId id) override;
  std::string_view name() const override { return name_; }
  void clear() override;

  double inflation() const { return inflation_; }

  PolicyProbe probe() const override {
    return {heap_.size(), inflation_, std::nullopt};
  }

  void save_state(util::StateWriter& w) const override;
  void restore_state(util::StateReader& r) override;

 private:
  double value_of(const CacheObject& obj) const;

  IndexedMinHeap<ObjectId, double> heap_;
  std::unique_ptr<CostModel> cost_model_;
  std::string name_;
  double inflation_ = 0.0;  // the running L
};

}  // namespace webcache::cache
