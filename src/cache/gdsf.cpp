#include "cache/gdsf.hpp"

#include <algorithm>

namespace webcache::cache {

GdsfPolicy::GdsfPolicy(CostModelKind cost_model)
    : cost_model_(make_cost_model(cost_model)) {
  name_ = "GDSF(" + std::string(cost_model_suffix(cost_model)) + ")";
}

double GdsfPolicy::value_of(const CacheObject& obj) const {
  const double size = std::max<double>(1.0, static_cast<double>(obj.size));
  return static_cast<double>(obj.reference_count) *
         cost_model_->cost(obj.size) / size;
}

void GdsfPolicy::on_insert(const CacheObject& obj) {
  heap_.push(obj.id, inflation_ + value_of(obj));
}

void GdsfPolicy::on_hit(const CacheObject& obj) {
  heap_.update(obj.id, inflation_ + value_of(obj));
}

ObjectId GdsfPolicy::choose_victim(std::uint64_t /*incoming_size*/) { return heap_.top().key; }

void GdsfPolicy::on_evict(ObjectId id) {
  if (!heap_.empty() && heap_.top().key == id) {
    inflation_ = heap_.top().priority;
  }
  heap_.erase(id);
}

void GdsfPolicy::clear() {
  heap_.clear();
  inflation_ = 0.0;
}

}  // namespace webcache::cache
