// GreedyDual-Size with Frequency (Arlitt, Cherkasova et al.; deployed in
// Squid). H(p) = L + f(p) * c(p) / s(p).
//
// Not one of the paper's four schemes, but the natural midpoint between GDS
// (no frequency) and GD* (frequency raised to 1/beta); used by the ablation
// benchmarks — GD* with beta fixed at 1 must behave identically to GDSF.
#pragma once

#include "cache/cost_model.hpp"
#include "cache/indexed_heap.hpp"
#include "cache/policy.hpp"

namespace webcache::cache {

class GdsfPolicy final : public ReplacementPolicy {
 public:
  explicit GdsfPolicy(CostModelKind cost_model);

  void reserve_ids(std::uint64_t universe) override {
    heap_.reserve_dense_keys(universe);
  }
  void on_insert(const CacheObject& obj) override;
  void on_hit(const CacheObject& obj) override;
  using ReplacementPolicy::choose_victim;
  ObjectId choose_victim(std::uint64_t incoming_size) override;
  void on_evict(ObjectId id) override;
  std::string_view name() const override { return name_; }
  void clear() override;

  double inflation() const { return inflation_; }

  PolicyProbe probe() const override {
    return {heap_.size(), inflation_, std::nullopt};
  }

  void save_state(util::StateWriter& w) const override;
  void restore_state(util::StateReader& r) override;

 private:
  double value_of(const CacheObject& obj) const;

  IndexedMinHeap<ObjectId, double> heap_;
  std::unique_ptr<CostModel> cost_model_;
  std::string name_;
  double inflation_ = 0.0;
};

}  // namespace webcache::cache
