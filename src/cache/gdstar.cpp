#include "cache/gdstar.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace webcache::cache {

GdStarPolicy::GdStarPolicy(CostModelKind cost_model,
                           std::optional<double> fixed_beta,
                           BetaEstimator::Options estimator_options)
    : cost_model_(make_cost_model(cost_model)),
      fixed_beta_(fixed_beta),
      estimator_(estimator_options) {
  if (fixed_beta && *fixed_beta <= 0.0) {
    throw std::invalid_argument("GdStarPolicy: fixed beta must be > 0");
  }
  name_ = "GD*(" + std::string(cost_model_suffix(cost_model)) + ")";
  if (fixed_beta) {
    name_ += " [beta=" + std::to_string(*fixed_beta) + "]";
  }
}

double GdStarPolicy::beta() const {
  return fixed_beta_ ? *fixed_beta_ : estimator_.beta();
}

double GdStarPolicy::value_of(const CacheObject& obj) const {
  const double size = std::max<double>(1.0, static_cast<double>(obj.size));
  const double utility = static_cast<double>(obj.reference_count) *
                         cost_model_->cost(obj.size) / size;
  return std::pow(utility, 1.0 / beta());
}

void GdStarPolicy::on_insert(const CacheObject& obj) {
  heap_.push(obj.id, inflation_ + value_of(obj));
}

void GdStarPolicy::on_hit(const CacheObject& obj) {
  // Feed the online beta estimator with the inter-reference gap in requests
  // (the container updates last/previous access before this hook).
  if (!fixed_beta_ && obj.last_access > obj.previous_access) {
    estimator_.observe_gap(obj.last_access - obj.previous_access);
  }
  heap_.update(obj.id, inflation_ + value_of(obj));
}

ObjectId GdStarPolicy::choose_victim(std::uint64_t /*incoming_size*/) { return heap_.top().key; }

void GdStarPolicy::on_evict(ObjectId id) {
  if (!heap_.empty() && heap_.top().key == id) {
    inflation_ = heap_.top().priority;
  }
  heap_.erase(id);
}

void GdStarPolicy::clear() {
  heap_.clear();
  estimator_.clear();
  inflation_ = 0.0;
}

}  // namespace webcache::cache
