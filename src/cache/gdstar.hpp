// GreedyDual* (Jin & Bestavros, Computer Communications 2000; paper,
// Section 3).
//
// "GD* sets the value of H for a document p to
//      H(p) = L + ( f(p) * c(p) / s(p) )^(1/beta)
//  where f(p) is the reference count of the document. The parameter beta
//  characterizes the temporal correlation between successive references ...
//  The novel feature of GD* is that f(p) and beta can be calculated in an
//  on-line fashion, which makes the algorithm adaptive."
//
// beta < 1 (weak temporal correlation) amplifies the utility spread, making
// the policy more frequency-driven; beta -> 1 recovers GDSF; beta > 1
// (strong correlation) compresses utilities so recency (via the inflation
// L) dominates — exactly the popularity-vs-correlation trade the paper
// studies per document type.
#pragma once

#include <optional>

#include "cache/beta_estimator.hpp"
#include "cache/cost_model.hpp"
#include "cache/indexed_heap.hpp"
#include "cache/policy.hpp"

namespace webcache::cache {

class GdStarPolicy final : public ReplacementPolicy {
 public:
  /// With fixed_beta set, the online estimator is disabled and the given
  /// exponent is used throughout (the ablation configuration; fixed_beta = 1
  /// makes GD* coincide with GDSF).
  explicit GdStarPolicy(CostModelKind cost_model,
                        std::optional<double> fixed_beta = std::nullopt,
                        BetaEstimator::Options estimator_options = {});

  void reserve_ids(std::uint64_t universe) override {
    heap_.reserve_dense_keys(universe);
  }
  void on_insert(const CacheObject& obj) override;
  void on_hit(const CacheObject& obj) override;
  using ReplacementPolicy::choose_victim;
  ObjectId choose_victim(std::uint64_t incoming_size) override;
  void on_evict(ObjectId id) override;
  std::string_view name() const override { return name_; }
  void clear() override;

  double inflation() const { return inflation_; }
  /// The exponent currently in effect.
  double beta() const;

  PolicyProbe probe() const override {
    return {heap_.size(), inflation_, beta()};
  }

  void save_state(util::StateWriter& w) const override;
  void restore_state(util::StateReader& r) override;

 private:
  double value_of(const CacheObject& obj) const;

  IndexedMinHeap<ObjectId, double> heap_;
  std::unique_ptr<CostModel> cost_model_;
  std::optional<double> fixed_beta_;
  BetaEstimator estimator_;
  std::string name_;
  double inflation_ = 0.0;
};

}  // namespace webcache::cache
