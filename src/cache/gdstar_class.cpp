#include "cache/gdstar_class.hpp"

#include <algorithm>
#include <cmath>

namespace webcache::cache {

namespace {

std::array<BetaEstimator, trace::kDocumentClassCount> make_estimators(
    const BetaEstimator::Options& options) {
  // Per-class gap volumes are far smaller than the global stream's, so the
  // estimators refit more eagerly than the global GD* default.
  BetaEstimator::Options per_class = options;
  per_class.refit_interval = std::max<std::uint64_t>(
      256, options.refit_interval / trace::kDocumentClassCount);
  per_class.min_samples =
      std::max<std::uint64_t>(64, options.min_samples / 2);
  return {BetaEstimator(per_class), BetaEstimator(per_class),
          BetaEstimator(per_class), BetaEstimator(per_class),
          BetaEstimator(per_class)};
}

}  // namespace

GdStarPerClassPolicy::GdStarPerClassPolicy(
    CostModelKind cost_model, BetaEstimator::Options estimator_options)
    : cost_model_(make_cost_model(cost_model)),
      estimators_(make_estimators(estimator_options)) {
  name_ = "GD*C(" + std::string(cost_model_suffix(cost_model)) + ")";
}

double GdStarPerClassPolicy::value_of(const CacheObject& obj) const {
  const double size = std::max<double>(1.0, static_cast<double>(obj.size));
  const double utility = static_cast<double>(obj.reference_count) *
                         cost_model_->cost(obj.size) / size;
  return std::pow(utility, 1.0 / beta(obj.doc_class));
}

void GdStarPerClassPolicy::on_insert(const CacheObject& obj) {
  heap_.push(obj.id, inflation_ + value_of(obj));
}

void GdStarPerClassPolicy::on_hit(const CacheObject& obj) {
  if (obj.last_access > obj.previous_access) {
    estimators_[static_cast<std::size_t>(obj.doc_class)].observe_gap(
        obj.last_access - obj.previous_access);
  }
  heap_.update(obj.id, inflation_ + value_of(obj));
}

ObjectId GdStarPerClassPolicy::choose_victim(std::uint64_t /*incoming_size*/) {
  return heap_.top().key;
}

void GdStarPerClassPolicy::on_evict(ObjectId id) {
  if (!heap_.empty() && heap_.top().key == id) {
    inflation_ = heap_.top().priority;
  }
  heap_.erase(id);
}

void GdStarPerClassPolicy::clear() {
  heap_.clear();
  for (auto& estimator : estimators_) estimator.clear();
  inflation_ = 0.0;
}

}  // namespace webcache::cache
