// GD* with per-document-class temporal-correlation estimation — the design
// fix the paper's own analysis suggests.
//
// Section 4.4 explains why GD*(packet) loses its edge on the RTP trace:
// "The slopes beta of the distribution of temporal correlation for HTML,
// multi media, and application documents are much bigger than the overall
// slope of the distribution of temporal correlation, which is dominated by
// the slope of image documents. This causes additional errors in
// replacement decisions performed by GD*(packet)."
//
// Standard GD* runs ONE online beta estimator over the whole request
// stream; because images dominate the stream, the estimate is essentially
// the image beta, which mis-ages every other class. This variant keeps an
// independent estimator per document class and exponentiates each
// document's utility with its own class's 1/beta:
//
//     H(p) = L + ( f(p) * c(p) / s(p) ) ^ (1 / beta_class(p))
//
// bench/ext_per_class_beta quantifies what the fix is worth on both traces.
#pragma once

#include <array>

#include "cache/beta_estimator.hpp"
#include "cache/cost_model.hpp"
#include "cache/indexed_heap.hpp"
#include "cache/policy.hpp"

namespace webcache::cache {

class GdStarPerClassPolicy final : public ReplacementPolicy {
 public:
  explicit GdStarPerClassPolicy(CostModelKind cost_model,
                                BetaEstimator::Options estimator_options = {});

  void reserve_ids(std::uint64_t universe) override {
    heap_.reserve_dense_keys(universe);
  }
  void on_insert(const CacheObject& obj) override;
  void on_hit(const CacheObject& obj) override;
  using ReplacementPolicy::choose_victim;
  ObjectId choose_victim(std::uint64_t incoming_size) override;
  void on_evict(ObjectId id) override;
  std::string_view name() const override { return name_; }
  void clear() override;

  double inflation() const { return inflation_; }
  /// Current estimate for one class (initial value until enough gaps).
  double beta(trace::DocumentClass c) const {
    return estimators_[static_cast<std::size_t>(c)].beta();
  }

  /// There is no single beta here (one estimator per class; use beta(c)),
  /// so the probe carries only the shared inflation and the heap size.
  PolicyProbe probe() const override {
    return {heap_.size(), inflation_, std::nullopt};
  }

  void save_state(util::StateWriter& w) const override;
  void restore_state(util::StateReader& r) override;

 private:
  double value_of(const CacheObject& obj) const;

  IndexedMinHeap<ObjectId, double> heap_;
  std::unique_ptr<CostModel> cost_model_;
  std::array<BetaEstimator, trace::kDocumentClassCount> estimators_;
  std::string name_;
  double inflation_ = 0.0;
};

}  // namespace webcache::cache
