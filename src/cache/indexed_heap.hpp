// Indexed binary min-heap.
//
// The value-based policies (LFU-DA, GDS, GDSF, GD*) must, on every hit,
// update the priority of an arbitrary resident object and, on eviction, pop
// the minimum. A binary heap with a key -> slot index gives O(log n) for
// both, and (unlike std::priority_queue) supports decrease/increase-key and
// erase-by-key.
//
// The key -> slot index has two modes. By default it is an unordered_map
// (keys may be arbitrary, e.g. 64-bit URL hashes). After
// reserve_dense_keys(universe) — legal for integral keys in [0, universe),
// i.e. a densified trace — it is a flat vector, so the two slot updates per
// sift step become plain array stores instead of hash probes.
//
// Ties are broken by insertion sequence (FIFO among equal priorities), which
// makes every policy fully deterministic and replay-stable; the index mode
// never affects ordering.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <type_traits>
#include <unordered_map>
#include <vector>

namespace webcache::cache {

template <typename Key, typename Priority>
class IndexedMinHeap {
 public:
  struct Entry {
    Key key;
    Priority priority;
    std::uint64_t sequence;  // tie-breaker: lower = inserted earlier
  };

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  bool contains(const Key& key) const { return find_slot(key) != kNoSlot; }

  /// Switches the key -> slot index to a flat vector covering keys in
  /// [0, universe). Only legal while empty; requires an integral Key.
  void reserve_dense_keys(std::uint64_t universe) {
    static_assert(std::is_integral_v<Key>,
                  "dense key index requires an integral Key");
    if (!heap_.empty()) {
      throw std::logic_error("IndexedMinHeap: reserve_dense_keys on non-empty");
    }
    dense_ = true;
    slots_.clear();
    dense_slots_.assign(static_cast<std::size_t>(universe), kNoSlot);
  }

  /// Inserts a new key. Throws std::logic_error if the key is present.
  void push(const Key& key, Priority priority) {
    if (contains(key)) {
      throw std::logic_error("IndexedMinHeap: duplicate key");
    }
    heap_.push_back(Entry{key, priority, next_sequence_++});
    set_slot(key, heap_.size() - 1);
    sift_up(heap_.size() - 1);
  }

  /// The minimum entry. Throws std::logic_error when empty.
  const Entry& top() const {
    if (heap_.empty()) throw std::logic_error("IndexedMinHeap: empty");
    return heap_.front();
  }

  /// Removes and returns the minimum entry.
  Entry pop() {
    Entry out = top();
    remove_at(0);
    return out;
  }

  /// Updates the priority of an existing key (any direction). The entry
  /// keeps its original sequence number. Throws if absent.
  void update(const Key& key, Priority priority) {
    const std::size_t i = slot_of(key);
    const Priority old = heap_[i].priority;
    heap_[i].priority = priority;
    if (less_at(i, parent(i))) {
      sift_up(i);
    } else if (priority != old) {
      sift_down(i);
    }
  }

  /// Removes an arbitrary key. Throws if absent.
  void erase(const Key& key) { remove_at(slot_of(key)); }

  /// Priority currently stored for key. Throws if absent.
  Priority priority_of(const Key& key) const {
    return heap_[slot_of(key)].priority;
  }

  void clear() {
    heap_.clear();
    if (dense_) {
      dense_slots_.assign(dense_slots_.size(), kNoSlot);
    } else {
      slots_.clear();
    }
    next_sequence_ = 0;
  }

  // ---- checkpointing ----
  //
  // (priority, sequence) is a strict total order over the entries, so the
  // entry set plus next_sequence_ is the heap's complete semantic state:
  // any valid heap over the same entries pops in the same order. The
  // visitor walks the internal array (arbitrary order); restore_entry
  // re-pushes with the original sequence, rebuilding a valid heap whose
  // array layout may differ but whose pop order cannot.

  std::uint64_t next_sequence() const { return next_sequence_; }

  template <typename Fn>
  void for_each_entry(Fn&& fn) const {
    for (const Entry& e : heap_) fn(e);
  }

  /// Re-inserts a saved entry with its original tie-break sequence. Only
  /// for checkpoint restore; the caller must also call set_next_sequence
  /// with the saved counter afterwards.
  void restore_entry(const Key& key, Priority priority,
                     std::uint64_t sequence) {
    if (contains(key)) {
      throw std::logic_error("IndexedMinHeap: duplicate key");
    }
    heap_.push_back(Entry{key, priority, sequence});
    set_slot(key, heap_.size() - 1);
    sift_up(heap_.size() - 1);
  }

  void set_next_sequence(std::uint64_t next) { next_sequence_ = next; }

  /// Validates the heap property and the slot index; test support.
  bool check_invariants() const {
    std::size_t indexed = 0;
    if (dense_) {
      for (const std::size_t s : dense_slots_) {
        if (s != kNoSlot) ++indexed;
      }
    } else {
      indexed = slots_.size();
    }
    if (heap_.size() != indexed) return false;
    for (std::size_t i = 0; i < heap_.size(); ++i) {
      if (find_slot(heap_[i].key) != i) return false;
      if (i > 0 && less_at(i, parent(i))) return false;
    }
    return true;
  }

 private:
  static constexpr std::size_t kNoSlot = std::numeric_limits<std::size_t>::max();

  static std::size_t parent(std::size_t i) { return i == 0 ? 0 : (i - 1) / 2; }

  std::size_t find_slot(const Key& key) const {
    if (dense_) {
      const auto k = static_cast<std::size_t>(key);
      return k < dense_slots_.size() ? dense_slots_[k] : kNoSlot;
    }
    const auto it = slots_.find(key);
    return it == slots_.end() ? kNoSlot : it->second;
  }

  void set_slot(const Key& key, std::size_t slot) {
    if (dense_) {
      const auto k = static_cast<std::size_t>(key);
      if (k >= dense_slots_.size()) {
        throw std::logic_error("IndexedMinHeap: key outside dense universe");
      }
      dense_slots_[k] = slot;
    } else {
      slots_[key] = slot;
    }
  }

  void erase_slot(const Key& key) {
    if (dense_) {
      dense_slots_[static_cast<std::size_t>(key)] = kNoSlot;
    } else {
      slots_.erase(key);
    }
  }

  std::size_t slot_of(const Key& key) const {
    const std::size_t slot = find_slot(key);
    if (slot == kNoSlot) {
      throw std::logic_error("IndexedMinHeap: key not present");
    }
    return slot;
  }

  bool less_at(std::size_t a, std::size_t b) const {
    if (heap_[a].priority != heap_[b].priority) {
      return heap_[a].priority < heap_[b].priority;
    }
    return heap_[a].sequence < heap_[b].sequence;
  }

  void swap_slots(std::size_t a, std::size_t b) {
    std::swap(heap_[a], heap_[b]);
    set_slot(heap_[a].key, a);
    set_slot(heap_[b].key, b);
  }

  void sift_up(std::size_t i) {
    while (i > 0 && less_at(i, parent(i))) {
      swap_slots(i, parent(i));
      i = parent(i);
    }
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t smallest = i;
      const std::size_t l = 2 * i + 1;
      const std::size_t r = 2 * i + 2;
      if (l < n && less_at(l, smallest)) smallest = l;
      if (r < n && less_at(r, smallest)) smallest = r;
      if (smallest == i) break;
      swap_slots(i, smallest);
      i = smallest;
    }
  }

  void remove_at(std::size_t i) {
    erase_slot(heap_[i].key);
    const std::size_t last = heap_.size() - 1;
    if (i != last) {
      heap_[i] = heap_[last];
      set_slot(heap_[i].key, i);
      heap_.pop_back();
      if (i > 0 && less_at(i, parent(i))) {
        sift_up(i);
      } else {
        sift_down(i);
      }
    } else {
      heap_.pop_back();
    }
  }

  std::vector<Entry> heap_;
  std::uint64_t next_sequence_ = 0;

  bool dense_ = false;
  std::unordered_map<Key, std::size_t> slots_;
  std::vector<std::size_t> dense_slots_;
};

}  // namespace webcache::cache
