// Indexed binary min-heap.
//
// The value-based policies (LFU-DA, GDS, GDSF, GD*) must, on every hit,
// update the priority of an arbitrary resident object and, on eviction, pop
// the minimum. A binary heap with a key -> slot index gives O(log n) for
// both, and (unlike std::priority_queue) supports decrease/increase-key and
// erase-by-key.
//
// Ties are broken by insertion sequence (FIFO among equal priorities), which
// makes every policy fully deterministic and replay-stable.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace webcache::cache {

template <typename Key, typename Priority>
class IndexedMinHeap {
 public:
  struct Entry {
    Key key;
    Priority priority;
    std::uint64_t sequence;  // tie-breaker: lower = inserted earlier
  };

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  bool contains(const Key& key) const { return slots_.count(key) > 0; }

  /// Inserts a new key. Throws std::logic_error if the key is present.
  void push(const Key& key, Priority priority) {
    if (contains(key)) {
      throw std::logic_error("IndexedMinHeap: duplicate key");
    }
    heap_.push_back(Entry{key, priority, next_sequence_++});
    slots_[key] = heap_.size() - 1;
    sift_up(heap_.size() - 1);
  }

  /// The minimum entry. Throws std::logic_error when empty.
  const Entry& top() const {
    if (heap_.empty()) throw std::logic_error("IndexedMinHeap: empty");
    return heap_.front();
  }

  /// Removes and returns the minimum entry.
  Entry pop() {
    Entry out = top();
    remove_at(0);
    return out;
  }

  /// Updates the priority of an existing key (any direction). The entry
  /// keeps its original sequence number. Throws if absent.
  void update(const Key& key, Priority priority) {
    const std::size_t i = slot_of(key);
    const Priority old = heap_[i].priority;
    heap_[i].priority = priority;
    if (less_at(i, parent(i))) {
      sift_up(i);
    } else if (priority != old) {
      sift_down(i);
    }
  }

  /// Removes an arbitrary key. Throws if absent.
  void erase(const Key& key) { remove_at(slot_of(key)); }

  /// Priority currently stored for key. Throws if absent.
  Priority priority_of(const Key& key) const {
    return heap_[slot_of(key)].priority;
  }

  void clear() {
    heap_.clear();
    slots_.clear();
    next_sequence_ = 0;
  }

  /// Validates the heap property and the slot index; test support.
  bool check_invariants() const {
    if (heap_.size() != slots_.size()) return false;
    for (std::size_t i = 0; i < heap_.size(); ++i) {
      const auto it = slots_.find(heap_[i].key);
      if (it == slots_.end() || it->second != i) return false;
      if (i > 0 && less_at(i, parent(i))) return false;
    }
    return true;
  }

 private:
  static std::size_t parent(std::size_t i) { return i == 0 ? 0 : (i - 1) / 2; }

  std::size_t slot_of(const Key& key) const {
    const auto it = slots_.find(key);
    if (it == slots_.end()) {
      throw std::logic_error("IndexedMinHeap: key not present");
    }
    return it->second;
  }

  bool less_at(std::size_t a, std::size_t b) const {
    if (heap_[a].priority != heap_[b].priority) {
      return heap_[a].priority < heap_[b].priority;
    }
    return heap_[a].sequence < heap_[b].sequence;
  }

  void swap_slots(std::size_t a, std::size_t b) {
    std::swap(heap_[a], heap_[b]);
    slots_[heap_[a].key] = a;
    slots_[heap_[b].key] = b;
  }

  void sift_up(std::size_t i) {
    while (i > 0 && less_at(i, parent(i))) {
      swap_slots(i, parent(i));
      i = parent(i);
    }
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t smallest = i;
      const std::size_t l = 2 * i + 1;
      const std::size_t r = 2 * i + 2;
      if (l < n && less_at(l, smallest)) smallest = l;
      if (r < n && less_at(r, smallest)) smallest = r;
      if (smallest == i) break;
      swap_slots(i, smallest);
      i = smallest;
    }
  }

  void remove_at(std::size_t i) {
    slots_.erase(heap_[i].key);
    const std::size_t last = heap_.size() - 1;
    if (i != last) {
      heap_[i] = heap_[last];
      slots_[heap_[i].key] = i;
      heap_.pop_back();
      if (i > 0 && less_at(i, parent(i))) {
        sift_up(i);
      } else {
        sift_down(i);
      }
    } else {
      heap_.pop_back();
    }
  }

  std::vector<Entry> heap_;
  std::unordered_map<Key, std::size_t> slots_;
  std::uint64_t next_sequence_ = 0;
};

}  // namespace webcache::cache
