#include "cache/lazy_lru.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace webcache::cache {

namespace {

std::string fmt_probability(double p) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", p);
  return buf;
}

}  // namespace

// ---- Prob-LRU -------------------------------------------------------------

ProbLruPolicy::ProbLruPolicy(double p, std::uint64_t seed)
    : p_(p),
      seed_(seed),
      rng_(seed),
      name_("PROB-LRU:p=" + fmt_probability(p)) {
  if (!(p > 0.0) || p > 1.0) {
    throw std::invalid_argument(
        "ProbLruPolicy: promotion probability must be in (0, 1]");
  }
}

void ProbLruPolicy::reserve_ids(std::uint64_t universe) {
  order_.reserve_ids(universe);
}

void ProbLruPolicy::on_insert(const CacheObject& obj) {
  order_.push_front(obj.id);
}

void ProbLruPolicy::on_hit(const CacheObject& obj) {
  // One draw per hit, unconditionally: the draw stream then depends only on
  // the hit sequence, never on the object's current list position, which is
  // what keeps sparse and dense replays bit-identical.
  if (rng_.chance(p_)) order_.move_to_front(obj.id);
}

ObjectId ProbLruPolicy::choose_victim(std::uint64_t /*incoming_size*/) {
  return order_.back();
}

void ProbLruPolicy::on_evict(ObjectId id) { order_.erase(id); }

void ProbLruPolicy::clear() {
  // A reset run must reproduce the original draw sequence.
  rng_ = util::Rng(seed_);
  order_.clear();
}

// ---- Delay-LRU ------------------------------------------------------------

DelayLruPolicy::DelayLruPolicy(std::uint64_t k)
    : k_(k), name_("DELAY-LRU:k=" + std::to_string(k)) {
  if (k == 0) {
    throw std::invalid_argument(
        "DelayLruPolicy: promotion interval must be >= 1");
  }
}

void DelayLruPolicy::reserve_ids(std::uint64_t universe) {
  order_.reserve_ids(universe);
  dense_ = true;
  stamps_.clear();
  dense_stamps_.assign(static_cast<std::size_t>(universe), 0);
}

std::uint64_t DelayLruPolicy::stamp_of(ObjectId id) const {
  if (dense_) return dense_stamps_[static_cast<std::size_t>(id)];
  const auto it = stamps_.find(id);
  return it == stamps_.end() ? 0 : it->second;
}

void DelayLruPolicy::set_stamp(ObjectId id, std::uint64_t stamp) {
  if (dense_) {
    dense_stamps_[static_cast<std::size_t>(id)] = stamp;
  } else {
    stamps_[id] = stamp;
  }
}

void DelayLruPolicy::on_insert(const CacheObject& obj) {
  order_.push_front(obj.id);
  // Insertion counts as the first promotion: the window opens at the
  // insert clock (CacheObject::last_access == the container clock here).
  set_stamp(obj.id, obj.last_access);
}

void DelayLruPolicy::on_hit(const CacheObject& obj) {
  if (obj.last_access - stamp_of(obj.id) >= k_) {
    order_.move_to_front(obj.id);
    set_stamp(obj.id, obj.last_access);
  }
}

ObjectId DelayLruPolicy::choose_victim(std::uint64_t /*incoming_size*/) {
  return order_.back();
}

void DelayLruPolicy::on_evict(ObjectId id) {
  order_.erase(id);
  if (dense_) {
    dense_stamps_[static_cast<std::size_t>(id)] = 0;
  } else {
    stamps_.erase(id);
  }
}

void DelayLruPolicy::clear() {
  order_.clear();
  if (dense_) {
    dense_stamps_.assign(dense_stamps_.size(), 0);
  } else {
    stamps_.clear();
  }
}

// ---- batch promotion ------------------------------------------------------

BatchPromotionPolicy::BatchPromotionPolicy(std::uint64_t batch)
    : batch_(batch), name_("BATCH-LRU:batch=" + std::to_string(batch)) {
  if (batch == 0) {
    throw std::invalid_argument(
        "BatchPromotionPolicy: batch size must be >= 1");
  }
  pending_.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(
      batch, 1 << 20)));
}

void BatchPromotionPolicy::reserve_ids(std::uint64_t universe) {
  order_.reserve_ids(universe);
}

void BatchPromotionPolicy::on_insert(const CacheObject& obj) {
  order_.push_front(obj.id);
}

void BatchPromotionPolicy::on_hit(const CacheObject& obj) {
  pending_.push_back(obj.id);
  if (pending_.size() >= batch_) flush();
}

void BatchPromotionPolicy::flush() {
  // Arrival order: the most recently hit object ends up at the MRU end.
  // Duplicates are harmless (a second move is idempotent on the order);
  // evicted ids were purged by on_evict, so everything queued is resident.
  for (const ObjectId id : pending_) order_.move_to_front(id);
  pending_.clear();
}

ObjectId BatchPromotionPolicy::choose_victim(std::uint64_t /*incoming_size*/) {
  return order_.back();
}

void BatchPromotionPolicy::on_evict(ObjectId id) {
  order_.erase(id);
  pending_.erase(std::remove(pending_.begin(), pending_.end(), id),
                 pending_.end());
}

void BatchPromotionPolicy::clear() {
  order_.clear();
  pending_.clear();
}

}  // namespace webcache::cache
