// Lazy-promotion LRU variants: keep LRU's eviction order but cheapen the
// hit path by promoting less often (Prob-LRU, Delay-LRU) or in batches
// (batch promotion). The FIFO-family lazy-promotion studies (see
// PAPERS.md / SNIPPETS.md: the libCacheSim-based artifact) show these
// retain most of LRU's hit ratio while removing the per-hit list splice —
// which also makes them the natural policies for sharded replay, where
// promotion traffic is the contention hot spot.
//
// Determinism: Prob-LRU draws one Bernoulli per hit from a seeded
// util::Rng (position-independent, so sparse and dense-id replays see the
// same stream); Delay-LRU keys its promotion window off the container's
// request clock (CacheObject::last_access); batch promotion flushes at
// exact hit counts. All three are bit-identical between the hash-backed
// and flat-array representations.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/lru_list.hpp"
#include "cache/policy.hpp"
#include "util/rng.hpp"

namespace webcache::cache {

/// Prob-LRU: on a hit, move to the MRU end with probability p (p = 1 is
/// plain LRU, p -> 0 approaches FIFO). One seeded draw per hit.
class ProbLruPolicy final : public ReplacementPolicy {
 public:
  static constexpr double kDefaultP = 0.5;
  static constexpr std::uint64_t kDefaultSeed = 1;

  explicit ProbLruPolicy(double p = kDefaultP,
                         std::uint64_t seed = kDefaultSeed);

  void reserve_ids(std::uint64_t universe) override;
  void on_insert(const CacheObject& obj) override;
  void on_hit(const CacheObject& obj) override;
  using ReplacementPolicy::choose_victim;
  ObjectId choose_victim(std::uint64_t incoming_size) override;
  void on_evict(ObjectId id) override;
  std::string_view name() const override { return name_; }
  void clear() override;

  PolicyProbe probe() const override {
    return {order_.size(), std::nullopt, std::nullopt};
  }

  double promote_probability() const { return p_; }

  void save_state(util::StateWriter& w) const override;
  void restore_state(util::StateReader& r) override;

 private:
  double p_;
  std::uint64_t seed_;
  util::Rng rng_;
  std::string name_;
  LruIndexList order_;  // front = most recently promoted
};

/// Delay-LRU: promote on a hit only when the object has not been promoted
/// within the last k requests (per object, measured on the container's
/// request clock). k = 0 would be plain LRU; we require k >= 1.
class DelayLruPolicy final : public ReplacementPolicy {
 public:
  static constexpr std::uint64_t kDefaultK = 16;

  explicit DelayLruPolicy(std::uint64_t k = kDefaultK);

  void reserve_ids(std::uint64_t universe) override;
  void on_insert(const CacheObject& obj) override;
  void on_hit(const CacheObject& obj) override;
  using ReplacementPolicy::choose_victim;
  ObjectId choose_victim(std::uint64_t incoming_size) override;
  void on_evict(ObjectId id) override;
  std::string_view name() const override { return name_; }
  void clear() override;

  PolicyProbe probe() const override {
    return {order_.size(), std::nullopt, std::nullopt};
  }

  std::uint64_t promote_interval() const { return k_; }

  void save_state(util::StateWriter& w) const override;
  void restore_state(util::StateReader& r) override;

 private:
  std::uint64_t stamp_of(ObjectId id) const;
  void set_stamp(ObjectId id, std::uint64_t stamp);

  std::uint64_t k_;
  std::string name_;
  LruIndexList order_;
  // id -> request-clock index of the last promotion (insert counts).
  bool dense_ = false;
  std::unordered_map<ObjectId, std::uint64_t> stamps_;
  std::vector<std::uint64_t> dense_stamps_;
};

/// Batch promotion: hits only enqueue the object id; every `batch`
/// queued hits the whole queue is promoted in arrival order (the most
/// recent hit ends up at the MRU end) and cleared. Eviction purges any
/// queued entries for the victim so a re-inserted id can never inherit a
/// stale promotion.
class BatchPromotionPolicy final : public ReplacementPolicy {
 public:
  static constexpr std::uint64_t kDefaultBatch = 64;

  explicit BatchPromotionPolicy(std::uint64_t batch = kDefaultBatch);

  void reserve_ids(std::uint64_t universe) override;
  void on_insert(const CacheObject& obj) override;
  void on_hit(const CacheObject& obj) override;
  using ReplacementPolicy::choose_victim;
  ObjectId choose_victim(std::uint64_t incoming_size) override;
  void on_evict(ObjectId id) override;
  std::string_view name() const override { return name_; }
  void clear() override;

  PolicyProbe probe() const override {
    return {order_.size(), std::nullopt, std::nullopt};
  }

  std::uint64_t batch_size() const { return batch_; }
  std::size_t pending_promotions() const { return pending_.size(); }

  void save_state(util::StateWriter& w) const override;
  void restore_state(util::StateReader& r) override;

 private:
  void flush();

  std::uint64_t batch_;
  std::string name_;
  LruIndexList order_;
  std::vector<ObjectId> pending_;  // queued hits awaiting the batch flush
};

}  // namespace webcache::cache
