#include "cache/lfu.hpp"

namespace webcache::cache {

void LfuPolicy::on_insert(const CacheObject& obj) {
  heap_.push(obj.id, static_cast<double>(obj.reference_count));
}

void LfuPolicy::on_hit(const CacheObject& obj) {
  heap_.update(obj.id, static_cast<double>(obj.reference_count));
}

ObjectId LfuPolicy::choose_victim(std::uint64_t /*incoming_size*/) { return heap_.top().key; }

void LfuPolicy::on_evict(ObjectId id) { heap_.erase(id); }

void LfuPolicy::clear() { heap_.clear(); }

}  // namespace webcache::cache
