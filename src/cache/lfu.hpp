// Plain Least Frequently Used (in-cache frequency, no aging).
//
// Kept as the baseline that motivates LFU-DA: without aging, objects that
// were popular long ago pollute the cache ("cache pollution", Section 3).
// Ties (equal counts) break FIFO.
#pragma once

#include "cache/indexed_heap.hpp"
#include "cache/policy.hpp"

namespace webcache::cache {

class LfuPolicy final : public ReplacementPolicy {
 public:
  void on_insert(const CacheObject& obj) override;
  void on_hit(const CacheObject& obj) override;
  using ReplacementPolicy::choose_victim;
  ObjectId choose_victim(std::uint64_t incoming_size) override;
  void on_evict(ObjectId id) override;
  std::string_view name() const override { return "LFU"; }
  void clear() override;

  PolicyProbe probe() const override {
    return {heap_.size(), std::nullopt, std::nullopt};
  }

  void save_state(util::StateWriter& w) const override;
  void restore_state(util::StateReader& r) override;

 private:
  IndexedMinHeap<ObjectId, double> heap_;  // priority = reference count
};

}  // namespace webcache::cache
