#include "cache/lfu_da.hpp"

namespace webcache::cache {

void LfuDaPolicy::on_insert(const CacheObject& obj) {
  heap_.push(obj.id, cache_age_ + static_cast<double>(obj.reference_count));
}

void LfuDaPolicy::on_hit(const CacheObject& obj) {
  heap_.update(obj.id, cache_age_ + static_cast<double>(obj.reference_count));
}

ObjectId LfuDaPolicy::choose_victim(std::uint64_t /*incoming_size*/) { return heap_.top().key; }

void LfuDaPolicy::on_evict(ObjectId id) {
  // The cache age becomes the priority of the departing document, so all
  // future insertions start at least as high as anything evicted so far.
  // Taking the age only on replacement-driven evictions vs all removals is
  // equivalent here because the age is monotone and erased ids are minimal
  // only when chosen as victims; we conservatively update on every removal
  // of the current minimum.
  if (!heap_.empty() && heap_.top().key == id) {
    cache_age_ = heap_.top().priority;
  }
  heap_.erase(id);
}

void LfuDaPolicy::clear() {
  heap_.clear();
  cache_age_ = 0.0;
}

}  // namespace webcache::cache
