// Least Frequently Used with Dynamic Aging (paper, Section 3).
//
// "LFU-DA keeps a cache age [L], which is set to the [priority] of the last
//  evicted document. When putting a new document into cache or referencing
//  an old one, the cache age is added to the document's reference count."
//
// Priority: H(p) = L + f(p), where f(p) is the in-cache reference count and
// L is the inflation (cache age). Evict min H; on eviction L := H of the
// victim. This is the Arlitt/Cherkasova formulation used in Squid.
#pragma once

#include "cache/indexed_heap.hpp"
#include "cache/policy.hpp"

namespace webcache::cache {

class LfuDaPolicy final : public ReplacementPolicy {
 public:
  void reserve_ids(std::uint64_t universe) override {
    heap_.reserve_dense_keys(universe);
  }
  void on_insert(const CacheObject& obj) override;
  void on_hit(const CacheObject& obj) override;
  using ReplacementPolicy::choose_victim;
  ObjectId choose_victim(std::uint64_t incoming_size) override;
  void on_evict(ObjectId id) override;
  std::string_view name() const override { return "LFU-DA"; }
  void clear() override;

  /// Current cache age L (monotone non-decreasing); exposed for tests.
  double cache_age() const { return cache_age_; }

  PolicyProbe probe() const override {
    return {heap_.size(), cache_age_, std::nullopt};
  }

  void save_state(util::StateWriter& w) const override;
  void restore_state(util::StateReader& r) override;

 private:
  IndexedMinHeap<ObjectId, double> heap_;  // priority = L_at_access + count
  double cache_age_ = 0.0;
};

}  // namespace webcache::cache
