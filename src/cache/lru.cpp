#include "cache/lru.hpp"

#include <stdexcept>

namespace webcache::cache {

void LruPolicy::on_insert(const CacheObject& obj) {
  if (where_.count(obj.id) > 0) {
    throw std::logic_error("LruPolicy: duplicate insert");
  }
  order_.push_front(obj.id);
  where_[obj.id] = order_.begin();
}

void LruPolicy::on_hit(const CacheObject& obj) {
  const auto it = where_.find(obj.id);
  if (it == where_.end()) throw std::logic_error("LruPolicy: hit on absent id");
  order_.splice(order_.begin(), order_, it->second);
}

ObjectId LruPolicy::choose_victim(std::uint64_t /*incoming_size*/) {
  if (order_.empty()) throw std::logic_error("LruPolicy: empty");
  return order_.back();
}

void LruPolicy::on_evict(ObjectId id) {
  const auto it = where_.find(id);
  if (it == where_.end()) throw std::logic_error("LruPolicy: evict absent id");
  order_.erase(it->second);
  where_.erase(it);
}

void LruPolicy::clear() {
  order_.clear();
  where_.clear();
}

}  // namespace webcache::cache
