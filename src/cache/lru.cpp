#include "cache/lru.hpp"

namespace webcache::cache {

void LruPolicy::reserve_ids(std::uint64_t universe) {
  order_.reserve_ids(universe);
}

void LruPolicy::on_insert(const CacheObject& obj) {
  order_.push_front(obj.id);
}

void LruPolicy::on_hit(const CacheObject& obj) {
  order_.move_to_front(obj.id);
}

ObjectId LruPolicy::choose_victim(std::uint64_t /*incoming_size*/) {
  return order_.back();
}

void LruPolicy::on_evict(ObjectId id) { order_.erase(id); }

void LruPolicy::clear() { order_.clear(); }

}  // namespace webcache::cache
