// Least Recently Used (paper, Section 3).
//
// "LRU is based on the assumption that a recently referenced document will
//  be referenced again in near future. Therefore, on replacement LRU removes
//  the document from cache that has not been referenced for the longest
//  period of time."
#pragma once

#include "cache/lru_list.hpp"
#include "cache/policy.hpp"

namespace webcache::cache {

// Hot-path bodies live in the header so the monomorphized kernel layer
// (sim/kernel_impl.hpp instantiates BasicCache<PolicyValue<LruPolicy>>)
// can inline them; the virtual path still dispatches through the vtable.
class LruPolicy final : public ReplacementPolicy {
 public:
  void reserve_ids(std::uint64_t universe) override {
    order_.reserve_ids(universe);
  }
  void on_insert(const CacheObject& obj) override {
    order_.push_front(obj.id);
  }
  void on_hit(const CacheObject& obj) override {
    order_.move_to_front(obj.id);
  }
  using ReplacementPolicy::choose_victim;
  ObjectId choose_victim(std::uint64_t /*incoming_size*/) override {
    return order_.back();
  }
  void on_evict(ObjectId id) override { order_.erase(id); }
  std::string_view name() const override { return "LRU"; }
  void clear() override { order_.clear(); }

  PolicyProbe probe() const override {
    return {order_.size(), std::nullopt, std::nullopt};
  }

  void save_state(util::StateWriter& w) const override;
  void restore_state(util::StateReader& r) override;

 private:
  LruIndexList order_;  // front = most recently used, back = LRU victim
};

}  // namespace webcache::cache
