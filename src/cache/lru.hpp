// Least Recently Used (paper, Section 3).
//
// "LRU is based on the assumption that a recently referenced document will
//  be referenced again in near future. Therefore, on replacement LRU removes
//  the document from cache that has not been referenced for the longest
//  period of time."
#pragma once

#include <list>
#include <unordered_map>

#include "cache/policy.hpp"

namespace webcache::cache {

class LruPolicy final : public ReplacementPolicy {
 public:
  void on_insert(const CacheObject& obj) override;
  void on_hit(const CacheObject& obj) override;
  using ReplacementPolicy::choose_victim;
  ObjectId choose_victim(std::uint64_t incoming_size) override;
  void on_evict(ObjectId id) override;
  std::string_view name() const override { return "LRU"; }
  void clear() override;

 private:
  // Front = most recently used, back = LRU victim.
  std::list<ObjectId> order_;
  std::unordered_map<ObjectId, std::list<ObjectId>::iterator> where_;
};

}  // namespace webcache::cache
