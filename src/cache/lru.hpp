// Least Recently Used (paper, Section 3).
//
// "LRU is based on the assumption that a recently referenced document will
//  be referenced again in near future. Therefore, on replacement LRU removes
//  the document from cache that has not been referenced for the longest
//  period of time."
#pragma once

#include "cache/lru_list.hpp"
#include "cache/policy.hpp"

namespace webcache::cache {

class LruPolicy final : public ReplacementPolicy {
 public:
  void reserve_ids(std::uint64_t universe) override;
  void on_insert(const CacheObject& obj) override;
  void on_hit(const CacheObject& obj) override;
  using ReplacementPolicy::choose_victim;
  ObjectId choose_victim(std::uint64_t incoming_size) override;
  void on_evict(ObjectId id) override;
  std::string_view name() const override { return "LRU"; }
  void clear() override;

  PolicyProbe probe() const override {
    return {order_.size(), std::nullopt, std::nullopt};
  }

  void save_state(util::StateWriter& w) const override;
  void restore_state(util::StateReader& r) override;

 private:
  LruIndexList order_;  // front = most recently used, back = LRU victim
};

}  // namespace webcache::cache
