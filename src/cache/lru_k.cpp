#include "cache/lru_k.hpp"

#include <stdexcept>

namespace webcache::cache {

namespace {

// Sub-zero band for objects with no known second access: ordered by the
// single access, strictly below every real clock value. Clocks stay far
// below 2^52, so the mapping is collision-free in double.
double one_timer_priority(std::uint64_t last_access) {
  return -1.0e15 + static_cast<double>(last_access);
}

}  // namespace

LruKPolicy::LruKPolicy(std::size_t history_limit)
    : history_limit_(history_limit) {
  if (history_limit == 0) {
    throw std::invalid_argument("LruKPolicy: history_limit must be > 0");
  }
}

void LruKPolicy::on_insert(const CacheObject& obj) {
  double priority;
  const auto it = history_.find(obj.id);
  if (it != history_.end()) {
    // The retained access becomes the penultimate one.
    priority = static_cast<double>(it->second);
    history_.erase(it);
  } else {
    priority = one_timer_priority(obj.last_access);
  }
  heap_.push(obj.id, priority);
  resident_last_[obj.id] = obj.last_access;
}

void LruKPolicy::on_hit(const CacheObject& obj) {
  // previous_access is the second-most-recent reference (the container
  // updates it before this hook).
  heap_.update(obj.id, static_cast<double>(obj.previous_access));
  resident_last_[obj.id] = obj.last_access;
}

ObjectId LruKPolicy::choose_victim(std::uint64_t /*incoming_size*/) {
  return heap_.top().key;
}

void LruKPolicy::on_evict(ObjectId id) {
  heap_.erase(id);
  const auto it = resident_last_.find(id);
  if (it != resident_last_.end()) {
    remember(id, it->second);
    resident_last_.erase(it);
  }
}

void LruKPolicy::remember(ObjectId id, std::uint64_t last_access) {
  history_[id] = last_access;
  history_fifo_.emplace_back(id, last_access);
  prune_history();
}

void LruKPolicy::prune_history() {
  while (history_.size() > history_limit_ && !history_fifo_.empty()) {
    const auto& [id, stamp] = history_fifo_.front();
    const auto it = history_.find(id);
    // Drop only if this FIFO entry still describes the live record (the id
    // may have been re-evicted with a newer stamp since).
    if (it != history_.end() && it->second == stamp) history_.erase(it);
    history_fifo_.pop_front();
  }
}

void LruKPolicy::clear() {
  heap_.clear();
  resident_last_.clear();
  history_.clear();
  history_fifo_.clear();
}

}  // namespace webcache::cache
