// LRU-K for K = 2 (O'Neil, O'Neil & Weikum, SIGMOD 1993).
//
// Evicts the object with the oldest *second*-most-recent access (backward
// K-distance). Objects with only one known access have infinite backward
// 2-distance and are evicted first — which on web workloads with ~50%
// one-timer requests acts as a natural scan filter.
//
// Faithful to the paper, access history is *retained* for objects after
// eviction (the Retained Information Period): re-inserting a document whose
// previous access is still on record immediately gives it a finite backward
// 2-distance. Without this, a scan can evict a working set before it ever
// earns its second reference and LRU-K degenerates. The history is bounded
// (FIFO) to keep memory proportional to the configured limit.
#pragma once

#include <deque>
#include <unordered_map>

#include "cache/indexed_heap.hpp"
#include "cache/policy.hpp"

namespace webcache::cache {

class LruKPolicy final : public ReplacementPolicy {
 public:
  /// history_limit bounds the number of evicted documents whose last access
  /// time is retained.
  explicit LruKPolicy(std::size_t history_limit = 16384);

  void on_insert(const CacheObject& obj) override;
  void on_hit(const CacheObject& obj) override;
  using ReplacementPolicy::choose_victim;
  ObjectId choose_victim(std::uint64_t incoming_size) override;
  void on_evict(ObjectId id) override;
  std::string_view name() const override { return "LRU-2"; }
  void clear() override;

  std::size_t history_size() const { return history_.size(); }

  void save_state(util::StateWriter& w) const override;
  void restore_state(util::StateReader& r) override;

 private:
  void remember(ObjectId id, std::uint64_t last_access);
  void prune_history();

  std::size_t history_limit_;

  // Min-heap on the penultimate access clock; objects with no known second
  // access sit in a sub-zero band ordered by their only access.
  IndexedMinHeap<ObjectId, double> heap_;

  // Most recent access per resident object (the policy's own copy, needed
  // when the object departs and only its id is reported).
  std::unordered_map<ObjectId, std::uint64_t> resident_last_;

  // Retained information: last known access of recently evicted objects.
  std::unordered_map<ObjectId, std::uint64_t> history_;
  std::deque<std::pair<ObjectId, std::uint64_t>> history_fifo_;
};

}  // namespace webcache::cache
