// Array-backed intrusive LRU list.
//
// A recency list built on std::list costs a heap allocation per insert and a
// pointer chase per splice; the id -> iterator unordered_map adds a hash
// probe per touch. This list keeps its nodes in one contiguous vector
// (recycled through a free list) and links them by 32-bit indices, and the
// id -> node index can be switched from a hash map to a flat vector when the
// caller guarantees dense ids (reserve_ids). Order semantics are identical
// to the std::list formulation: push_front = MRU, back() = LRU victim.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "cache/types.hpp"

namespace webcache::cache {

class LruIndexList {
 public:
  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// Hint that every id passed from now on lies in [0, universe): the
  /// id -> node index becomes a flat vector. Only legal while empty.
  void reserve_ids(std::uint64_t universe) {
    if (size_ != 0) {
      throw std::logic_error("LruIndexList: reserve_ids on non-empty list");
    }
    dense_ = true;
    where_.clear();
    dense_where_.assign(static_cast<std::size_t>(universe), kNil);
    nodes_.reserve(static_cast<std::size_t>(universe));
  }

  bool contains(ObjectId id) const { return find_node(id) != kNil; }

  /// Inserts id at the MRU end. Throws std::logic_error on duplicates.
  void push_front(ObjectId id) {
    if (find_node(id) != kNil) {
      throw std::logic_error("LruIndexList: duplicate insert");
    }
    const std::int32_t n = allocate_node(id);
    link_front(n);
    set_node(id, n);
    ++size_;
  }

  /// Moves id to the MRU end. Throws std::logic_error when absent.
  void move_to_front(ObjectId id) {
    const std::int32_t n = find_node(id);
    if (n == kNil) throw std::logic_error("LruIndexList: touch on absent id");
    if (head_ == n) return;
    unlink(n);
    link_front(n);
  }

  /// The LRU (coldest) id. Throws std::logic_error when empty.
  ObjectId back() const {
    if (tail_ == kNil) throw std::logic_error("LruIndexList: empty");
    return nodes_[static_cast<std::size_t>(tail_)].id;
  }

  /// Removes id. Throws std::logic_error when absent.
  void erase(ObjectId id) {
    const std::int32_t n = find_node(id);
    if (n == kNil) throw std::logic_error("LruIndexList: erase absent id");
    unlink(n);
    clear_node(id);
    free_.push_back(n);
    --size_;
  }

  /// Visits every id front (MRU) to back (LRU). The visited order is the
  /// list's complete semantic state: feeding it back through push_front in
  /// reverse rebuilds an equivalent list (node indices and free-list
  /// layout may differ; the eviction order cannot).
  template <typename Fn>
  void for_each_front_to_back(Fn&& fn) const {
    for (std::int32_t n = head_; n != kNil;
         n = nodes_[static_cast<std::size_t>(n)].next) {
      fn(nodes_[static_cast<std::size_t>(n)].id);
    }
  }

  /// Drops all entries; keeps the dense/sparse mode and the reserved index.
  void clear() {
    if (dense_) {
      dense_where_.assign(dense_where_.size(), kNil);
    } else {
      where_.clear();
    }
    nodes_.clear();
    free_.clear();
    head_ = tail_ = kNil;
    size_ = 0;
  }

 private:
  static constexpr std::int32_t kNil = -1;

  struct Node {
    ObjectId id = 0;
    std::int32_t prev = kNil;
    std::int32_t next = kNil;
  };

  std::int32_t find_node(ObjectId id) const {
    if (dense_) {
      const auto i = static_cast<std::size_t>(id);
      return i < dense_where_.size() ? dense_where_[i] : kNil;
    }
    const auto it = where_.find(id);
    return it == where_.end() ? kNil : it->second;
  }

  void set_node(ObjectId id, std::int32_t n) {
    if (dense_) {
      const auto i = static_cast<std::size_t>(id);
      if (i >= dense_where_.size()) {
        throw std::logic_error("LruIndexList: id outside reserved universe");
      }
      dense_where_[i] = n;
    } else {
      where_[id] = n;
    }
  }

  void clear_node(ObjectId id) {
    if (dense_) {
      dense_where_[static_cast<std::size_t>(id)] = kNil;
    } else {
      where_.erase(id);
    }
  }

  std::int32_t allocate_node(ObjectId id) {
    if (!free_.empty()) {
      const std::int32_t n = free_.back();
      free_.pop_back();
      nodes_[static_cast<std::size_t>(n)] = Node{id, kNil, kNil};
      return n;
    }
    nodes_.push_back(Node{id, kNil, kNil});
    return static_cast<std::int32_t>(nodes_.size() - 1);
  }

  void link_front(std::int32_t n) {
    Node& node = nodes_[static_cast<std::size_t>(n)];
    node.prev = kNil;
    node.next = head_;
    if (head_ != kNil) nodes_[static_cast<std::size_t>(head_)].prev = n;
    head_ = n;
    if (tail_ == kNil) tail_ = n;
  }

  void unlink(std::int32_t n) {
    Node& node = nodes_[static_cast<std::size_t>(n)];
    if (node.prev != kNil) {
      nodes_[static_cast<std::size_t>(node.prev)].next = node.next;
    } else {
      head_ = node.next;
    }
    if (node.next != kNil) {
      nodes_[static_cast<std::size_t>(node.next)].prev = node.prev;
    } else {
      tail_ = node.prev;
    }
    node.prev = node.next = kNil;
  }

  std::vector<Node> nodes_;
  std::vector<std::int32_t> free_;
  std::int32_t head_ = kNil;
  std::int32_t tail_ = kNil;
  std::size_t size_ = 0;

  bool dense_ = false;
  std::unordered_map<ObjectId, std::int32_t> where_;
  std::vector<std::int32_t> dense_where_;
};

}  // namespace webcache::cache
