#include "cache/lru_variants.hpp"

#include <bit>
#include <stdexcept>
#include <string>

namespace webcache::cache {

// ------------------------------------------------------- LRU-Threshold

LruThresholdPolicy::LruThresholdPolicy(std::uint64_t threshold_bytes)
    : threshold_bytes_(threshold_bytes) {
  if (threshold_bytes == 0) {
    throw std::invalid_argument("LruThresholdPolicy: threshold must be > 0");
  }
  name_ = "LRU-THOLD(" + std::to_string(threshold_bytes) + ")";
}

void LruThresholdPolicy::reserve_ids(std::uint64_t universe) {
  order_.reserve_ids(universe);
}

void LruThresholdPolicy::on_insert(const CacheObject& obj) {
  order_.push_front(obj.id);
}

void LruThresholdPolicy::on_hit(const CacheObject& obj) {
  order_.move_to_front(obj.id);
}

ObjectId LruThresholdPolicy::choose_victim(std::uint64_t /*incoming_size*/) {
  return order_.back();
}

void LruThresholdPolicy::on_evict(ObjectId id) { order_.erase(id); }

void LruThresholdPolicy::clear() { order_.clear(); }

// ------------------------------------------------------------- LRU-MIN

std::size_t LruMinPolicy::bucket_of(std::uint64_t size) {
  if (size == 0) return 0;
  return 63 - static_cast<std::size_t>(std::countl_zero(size));
}

void LruMinPolicy::reserve_ids(std::uint64_t universe) {
  if (resident_ != 0) {
    throw std::logic_error("LruMinPolicy: reserve_ids on non-empty policy");
  }
  dense_ = true;
  where_.clear();
  dense_where_.assign(static_cast<std::size_t>(universe), Slot{});
}

LruMinPolicy::Slot* LruMinPolicy::find_slot(ObjectId id) {
  if (dense_) {
    const auto i = static_cast<std::size_t>(id);
    if (i >= dense_where_.size()) return nullptr;
    Slot& slot = dense_where_[i];
    return slot.bucket == kAbsent ? nullptr : &slot;
  }
  const auto it = where_.find(id);
  return it == where_.end() ? nullptr : &it->second;
}

LruMinPolicy::Slot& LruMinPolicy::make_slot(ObjectId id) {
  if (dense_) {
    const auto i = static_cast<std::size_t>(id);
    if (i >= dense_where_.size()) {
      throw std::logic_error("LruMinPolicy: id outside reserved universe");
    }
    return dense_where_[i];
  }
  return where_[id];
}

void LruMinPolicy::drop_slot(ObjectId id) {
  if (dense_) {
    dense_where_[static_cast<std::size_t>(id)] = Slot{};
  } else {
    where_.erase(id);
  }
}

void LruMinPolicy::on_insert(const CacheObject& obj) {
  if (find_slot(obj.id) != nullptr) {
    throw std::logic_error("LruMinPolicy: duplicate insert");
  }
  const std::size_t bucket = bucket_of(obj.size);
  buckets_[bucket].push_front(Entry{obj.id, obj.size, next_stamp_++});
  make_slot(obj.id) = Slot{bucket, buckets_[bucket].begin()};
  ++resident_;
}

void LruMinPolicy::on_hit(const CacheObject& obj) {
  Slot* slot = find_slot(obj.id);
  if (slot == nullptr) {
    throw std::logic_error("LruMinPolicy: hit on absent id");
  }
  // Size may have been refreshed by the container; re-bucket if needed.
  const std::size_t bucket = bucket_of(obj.size);
  slot->where->size = obj.size;
  slot->where->stamp = next_stamp_++;
  buckets_[bucket].splice(buckets_[bucket].begin(), buckets_[slot->bucket],
                          slot->where);
  slot->bucket = bucket;
  slot->where = buckets_[bucket].begin();
}

const LruMinPolicy::Entry* LruMinPolicy::oldest_at_least(
    std::uint64_t threshold) const {
  const Entry* best = nullptr;
  const std::size_t first_bucket = threshold == 0 ? 0 : bucket_of(threshold);
  for (std::size_t b = first_bucket; b < kBuckets; ++b) {
    const auto& bucket = buckets_[b];
    if (bucket.empty()) continue;
    const Entry* candidate = nullptr;
    if (b > first_bucket || threshold == 0 ||
        threshold == (1ULL << first_bucket)) {
      // Every entry in this bucket is >= threshold: its LRU tail qualifies.
      candidate = &bucket.back();
    } else {
      // Boundary bucket: walk from the cold end for the first entry that
      // clears the exact threshold.
      for (auto it = bucket.rbegin(); it != bucket.rend(); ++it) {
        if (it->size >= threshold) {
          candidate = &*it;
          break;
        }
      }
    }
    if (candidate != nullptr &&
        (best == nullptr || candidate->stamp < best->stamp)) {
      best = candidate;
    }
  }
  return best;
}

ObjectId LruMinPolicy::choose_victim(std::uint64_t incoming_size) {
  if (resident_ == 0) throw std::logic_error("LruMinPolicy: empty");
  // Evict the LRU document with size >= S; halve S on failure. S = 0
  // accepts anything, so the loop terminates at the global LRU victim.
  std::uint64_t threshold = incoming_size;
  for (;;) {
    if (const Entry* victim = oldest_at_least(threshold)) return victim->id;
    threshold /= 2;
  }
}

void LruMinPolicy::on_evict(ObjectId id) {
  Slot* slot = find_slot(id);
  if (slot == nullptr) {
    throw std::logic_error("LruMinPolicy: evict absent id");
  }
  buckets_[slot->bucket].erase(slot->where);
  drop_slot(id);
  --resident_;
}

void LruMinPolicy::clear() {
  for (auto& bucket : buckets_) bucket.clear();
  if (dense_) {
    dense_where_.assign(dense_where_.size(), Slot{});
  } else {
    where_.clear();
  }
  next_stamp_ = 0;
  resident_ = 0;
}

}  // namespace webcache::cache
