#include "cache/lru_variants.hpp"

#include <bit>
#include <stdexcept>
#include <string>

namespace webcache::cache {

// ------------------------------------------------------- LRU-Threshold

LruThresholdPolicy::LruThresholdPolicy(std::uint64_t threshold_bytes)
    : threshold_bytes_(threshold_bytes) {
  if (threshold_bytes == 0) {
    throw std::invalid_argument("LruThresholdPolicy: threshold must be > 0");
  }
  name_ = "LRU-THOLD(" + std::to_string(threshold_bytes) + ")";
}

void LruThresholdPolicy::on_insert(const CacheObject& obj) {
  if (where_.count(obj.id) > 0) {
    throw std::logic_error("LruThresholdPolicy: duplicate insert");
  }
  order_.push_front(obj.id);
  where_[obj.id] = order_.begin();
}

void LruThresholdPolicy::on_hit(const CacheObject& obj) {
  const auto it = where_.find(obj.id);
  if (it == where_.end()) {
    throw std::logic_error("LruThresholdPolicy: hit on absent id");
  }
  order_.splice(order_.begin(), order_, it->second);
}

ObjectId LruThresholdPolicy::choose_victim(std::uint64_t /*incoming_size*/) {
  if (order_.empty()) throw std::logic_error("LruThresholdPolicy: empty");
  return order_.back();
}

void LruThresholdPolicy::on_evict(ObjectId id) {
  const auto it = where_.find(id);
  if (it == where_.end()) {
    throw std::logic_error("LruThresholdPolicy: evict absent id");
  }
  order_.erase(it->second);
  where_.erase(it);
}

void LruThresholdPolicy::clear() {
  order_.clear();
  where_.clear();
}

// ------------------------------------------------------------- LRU-MIN

std::size_t LruMinPolicy::bucket_of(std::uint64_t size) {
  if (size == 0) return 0;
  return 63 - static_cast<std::size_t>(std::countl_zero(size));
}

void LruMinPolicy::on_insert(const CacheObject& obj) {
  if (where_.count(obj.id) > 0) {
    throw std::logic_error("LruMinPolicy: duplicate insert");
  }
  const std::size_t bucket = bucket_of(obj.size);
  buckets_[bucket].push_front(Entry{obj.id, obj.size, next_stamp_++});
  where_[obj.id] = Slot{bucket, buckets_[bucket].begin()};
}

void LruMinPolicy::on_hit(const CacheObject& obj) {
  const auto it = where_.find(obj.id);
  if (it == where_.end()) {
    throw std::logic_error("LruMinPolicy: hit on absent id");
  }
  // Size may have been refreshed by the container; re-bucket if needed.
  Slot& slot = it->second;
  const std::size_t bucket = bucket_of(obj.size);
  slot.where->size = obj.size;
  slot.where->stamp = next_stamp_++;
  if (bucket == slot.bucket) {
    buckets_[bucket].splice(buckets_[bucket].begin(), buckets_[slot.bucket],
                            slot.where);
  } else {
    buckets_[bucket].splice(buckets_[bucket].begin(), buckets_[slot.bucket],
                            slot.where);
    slot.bucket = bucket;
  }
  slot.where = buckets_[bucket].begin();
}

const LruMinPolicy::Entry* LruMinPolicy::oldest_at_least(
    std::uint64_t threshold) const {
  const Entry* best = nullptr;
  const std::size_t first_bucket = threshold == 0 ? 0 : bucket_of(threshold);
  for (std::size_t b = first_bucket; b < kBuckets; ++b) {
    const auto& bucket = buckets_[b];
    if (bucket.empty()) continue;
    const Entry* candidate = nullptr;
    if (b > first_bucket || threshold == 0 ||
        threshold == (1ULL << first_bucket)) {
      // Every entry in this bucket is >= threshold: its LRU tail qualifies.
      candidate = &bucket.back();
    } else {
      // Boundary bucket: walk from the cold end for the first entry that
      // clears the exact threshold.
      for (auto it = bucket.rbegin(); it != bucket.rend(); ++it) {
        if (it->size >= threshold) {
          candidate = &*it;
          break;
        }
      }
    }
    if (candidate != nullptr &&
        (best == nullptr || candidate->stamp < best->stamp)) {
      best = candidate;
    }
  }
  return best;
}

ObjectId LruMinPolicy::choose_victim(std::uint64_t incoming_size) {
  if (where_.empty()) throw std::logic_error("LruMinPolicy: empty");
  // Evict the LRU document with size >= S; halve S on failure. S = 0
  // accepts anything, so the loop terminates at the global LRU victim.
  std::uint64_t threshold = incoming_size;
  for (;;) {
    if (const Entry* victim = oldest_at_least(threshold)) return victim->id;
    threshold /= 2;
  }
}

void LruMinPolicy::on_evict(ObjectId id) {
  const auto it = where_.find(id);
  if (it == where_.end()) {
    throw std::logic_error("LruMinPolicy: evict absent id");
  }
  buckets_[it->second.bucket].erase(it->second.where);
  where_.erase(it);
}

void LruMinPolicy::clear() {
  for (auto& bucket : buckets_) bucket.clear();
  where_.clear();
  next_stamp_ = 0;
}

}  // namespace webcache::cache
