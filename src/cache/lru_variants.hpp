// Size-aware LRU variants from the pre-GreedyDual literature (Abrams,
// Standridge, Abdulla, Williams & Fox, "Caching proxies: limitations and
// potentials", WWW 1995/1996) — the baselines GDS was designed to beat.
// Included for the extended comparison benchmarks.
#pragma once

#include <array>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "cache/lru_list.hpp"
#include "cache/policy.hpp"

namespace webcache::cache {

/// LRU-Threshold: plain LRU eviction; documents larger than the threshold
/// are never admitted. The admission part is enforced by the container
/// (Cache::set_admission_limit) — this class only carries the name and the
/// threshold so the factory and reports stay self-describing.
class LruThresholdPolicy final : public ReplacementPolicy {
 public:
  explicit LruThresholdPolicy(std::uint64_t threshold_bytes);

  void reserve_ids(std::uint64_t universe) override;
  void on_insert(const CacheObject& obj) override;
  void on_hit(const CacheObject& obj) override;
  using ReplacementPolicy::choose_victim;
  ObjectId choose_victim(std::uint64_t incoming_size) override;
  void on_evict(ObjectId id) override;
  std::string_view name() const override { return name_; }
  void clear() override;

  std::uint64_t threshold_bytes() const { return threshold_bytes_; }

  void save_state(util::StateWriter& w) const override;
  void restore_state(util::StateReader& r) override;

 private:
  std::uint64_t threshold_bytes_;
  std::string name_;
  LruIndexList order_;  // front = MRU
};

/// LRU-MIN: prefer evicting documents at least as large as the incoming
/// one. Let S be the incoming size; evict the least recently used document
/// with size >= S; if none exists, halve S and repeat (degenerating to
/// plain LRU at S = 0).
///
/// Implementation: one LRU list per power-of-two size class, global
/// recency stamps. Victim selection inspects the cold end of each class at
/// or above the threshold bucket (walking inside the boundary bucket only),
/// so the naive formulation's full-list scans — O(n) per eviction, ruinous
/// when large multimedia documents arrive — become O(#buckets) with
/// identical victims.
class LruMinPolicy final : public ReplacementPolicy {
 public:
  void reserve_ids(std::uint64_t universe) override;
  void on_insert(const CacheObject& obj) override;
  void on_hit(const CacheObject& obj) override;
  using ReplacementPolicy::choose_victim;
  ObjectId choose_victim(std::uint64_t incoming_size) override;
  void on_evict(ObjectId id) override;
  std::string_view name() const override { return "LRU-MIN"; }
  void clear() override;

  void save_state(util::StateWriter& w) const override;
  void restore_state(util::StateReader& r) override;

 private:
  static constexpr std::size_t kBuckets = 64;
  static constexpr std::size_t kAbsent = kBuckets;  // Slot.bucket sentinel

  struct Entry {
    ObjectId id;
    std::uint64_t size;
    std::uint64_t stamp;  // global recency: larger = more recent
  };
  struct Slot {
    std::size_t bucket = kAbsent;
    std::list<Entry>::iterator where;
  };

  static std::size_t bucket_of(std::uint64_t size);
  /// Oldest entry with size >= threshold, or nullptr.
  const Entry* oldest_at_least(std::uint64_t threshold) const;

  Slot* find_slot(ObjectId id);
  Slot& make_slot(ObjectId id);
  void drop_slot(ObjectId id);

  std::array<std::list<Entry>, kBuckets> buckets_;  // front = MRU per class
  std::uint64_t next_stamp_ = 0;
  std::size_t resident_ = 0;

  // id -> slot, hash-backed by default, flat after reserve_ids().
  bool dense_ = false;
  std::unordered_map<ObjectId, Slot> where_;
  std::vector<Slot> dense_where_;
};

}  // namespace webcache::cache
