// Resident-object metadata store for the Cache container.
//
// Sparse mode (default) keys an unordered_map by ObjectId — required when
// ids are URL hashes. Dense mode (reserve_dense) keeps the metadata in a
// compact slab vector plus a flat id -> slab-slot index, so the per-request
// lookup is one array load instead of a hash probe, and iteration touches
// only resident objects, contiguously.
//
// Pointer validity contract (narrower than unordered_map's): a pointer
// returned by find()/insert() is invalidated by the *next* insert or erase
// on the table. The Cache hot path never holds one across a mutation.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "cache/types.hpp"

namespace webcache::cache {

class ObjectTable {
 public:
  std::uint64_t size() const {
    return dense_ ? slab_.size() : map_.size();
  }
  bool empty() const { return size() == 0; }

  /// Switches to the slab + flat-index representation for ids in
  /// [0, universe). Only legal while empty.
  void reserve_dense(std::uint64_t universe) {
    if (!empty()) {
      throw std::logic_error("ObjectTable: reserve_dense on non-empty table");
    }
    if (universe >= kNoSlot) {
      throw std::invalid_argument("ObjectTable: dense universe too large");
    }
    dense_ = true;
    map_.clear();
    slot_.assign(static_cast<std::size_t>(universe), kNoSlot);
  }

  CacheObject* find(ObjectId id) {
    if (dense_) {
      const auto i = static_cast<std::size_t>(id);
      if (i >= slot_.size() || slot_[i] == kNoSlot) return nullptr;
      return &slab_[slot_[i]];
    }
    const auto it = map_.find(id);
    return it == map_.end() ? nullptr : &it->second;
  }
  const CacheObject* find(ObjectId id) const {
    return const_cast<ObjectTable*>(this)->find(id);
  }
  bool contains(ObjectId id) const { return find(id) != nullptr; }

  /// Software-prefetch hint: pull the slot-index cell for id toward the
  /// cache ahead of a find(id). Dense mode only (the hash map's bucket
  /// address is not computable without probing); a no-op otherwise.
  void prefetch_slot(ObjectId id) const {
#if defined(__GNUC__) || defined(__clang__)
    if (dense_) {
      const auto i = static_cast<std::size_t>(id);
      if (i < slot_.size()) __builtin_prefetch(&slot_[i], 0, 1);
    }
#else
    (void)id;
#endif
  }

  /// Deeper hint: reads the slot cell now and prefetches the slab entry it
  /// maps to. The mapping may be stale by the time the access arrives
  /// (inserts/erases move slab entries) — harmless, prefetches are hints.
  void prefetch_object(ObjectId id) const {
#if defined(__GNUC__) || defined(__clang__)
    if (dense_) {
      const auto i = static_cast<std::size_t>(id);
      if (i < slot_.size()) {
        const std::uint32_t s = slot_[i];
        if (s != kNoSlot) __builtin_prefetch(&slab_[s], 0, 1);
      }
    }
#else
    (void)id;
#endif
  }

  /// Inserts a copy of obj (keyed by obj.id); throws on duplicates.
  CacheObject& insert(const CacheObject& obj) {
    if (dense_) {
      const auto i = static_cast<std::size_t>(obj.id);
      if (i >= slot_.size()) {
        throw std::logic_error("ObjectTable: id outside dense universe");
      }
      if (slot_[i] != kNoSlot) {
        throw std::logic_error("ObjectTable: duplicate insert");
      }
      slot_[i] = static_cast<std::uint32_t>(slab_.size());
      slab_.push_back(obj);
      return slab_.back();
    }
    const auto [it, inserted] = map_.emplace(obj.id, obj);
    if (!inserted) throw std::logic_error("ObjectTable: duplicate insert");
    return it->second;
  }

  /// Removes id; throws when absent.
  void erase(ObjectId id) {
    if (dense_) {
      const auto i = static_cast<std::size_t>(id);
      if (i >= slot_.size() || slot_[i] == kNoSlot) {
        throw std::logic_error("ObjectTable: erasing absent object");
      }
      const std::uint32_t hole = slot_[i];
      const std::uint32_t last = static_cast<std::uint32_t>(slab_.size() - 1);
      if (hole != last) {
        slab_[hole] = slab_[last];
        slot_[static_cast<std::size_t>(slab_[hole].id)] = hole;
      }
      slab_.pop_back();
      slot_[i] = kNoSlot;
      return;
    }
    if (map_.erase(id) == 0) {
      throw std::logic_error("ObjectTable: erasing absent object");
    }
  }

  /// Drops all objects; keeps the dense/sparse mode and reserved index.
  void clear() {
    if (dense_) {
      slot_.assign(slot_.size(), kNoSlot);
      slab_.clear();
    } else {
      map_.clear();
    }
  }

  /// Visits every resident object (arbitrary order).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    if (dense_) {
      for (const CacheObject& obj : slab_) fn(obj);
    } else {
      for (const auto& [id, obj] : map_) fn(obj);
    }
  }

 private:
  static constexpr std::uint32_t kNoSlot =
      std::numeric_limits<std::uint32_t>::max();

  bool dense_ = false;
  std::unordered_map<ObjectId, CacheObject> map_;
  std::vector<CacheObject> slab_;
  std::vector<std::uint32_t> slot_;
};

}  // namespace webcache::cache
