#include "cache/opt.hpp"

#include <algorithm>

namespace webcache::cache {

OptPolicy::OptPolicy(const std::vector<trace::Request>& requests) {
  positions_.reserve(requests.size() / 2 + 16);
  std::uint64_t clock = 0;
  for (const trace::Request& r : requests) {
    ++clock;
    positions_[r.document].push_back(clock);
  }
}

std::uint64_t OptPolicy::next_reference_after(ObjectId id,
                                              std::uint64_t now) const {
  const auto it = positions_.find(id);
  if (it == positions_.end()) return 0;
  const auto& pos = it->second;
  const auto next = std::upper_bound(pos.begin(), pos.end(), now);
  return next == pos.end() ? 0 : *next;
}

double OptPolicy::priority_for(const CacheObject& obj) const {
  const std::uint64_t next = next_reference_after(obj.id, obj.last_access);
  if (next == 0) {
    // Dead object: evict before anything with a future, biggest first. The
    // base is far beyond any clock value yet small enough that adding the
    // size is not absorbed by floating-point rounding.
    constexpr double kDeadBase = 1e15;
    return -(kDeadBase + static_cast<double>(obj.size));
  }
  // Min-heap: further next reference = smaller priority = evicted earlier.
  return -static_cast<double>(next);
}

void OptPolicy::on_insert(const CacheObject& obj) {
  heap_.push(obj.id, priority_for(obj));
}

void OptPolicy::on_hit(const CacheObject& obj) {
  heap_.update(obj.id, priority_for(obj));
}

ObjectId OptPolicy::choose_victim(std::uint64_t /*incoming_size*/) { return heap_.top().key; }

void OptPolicy::on_evict(ObjectId id) { heap_.erase(id); }

void OptPolicy::clear() { heap_.clear(); }

}  // namespace webcache::cache
