// Clairvoyant replacement bound (Belady's MIN generalized to variable-size
// objects by the standard furthest-next-reference greedy).
//
// Not part of the paper's scheme set — an *upper bound* harness feature:
// the policy is constructed from the full future request sequence and, on
// replacement, evicts the resident object whose next reference is furthest
// in the future (never-referenced-again objects first, largest-first among
// those). For unit-size objects this is Belady's optimal MIN; for variable
// sizes the offline optimum is NP-hard and this greedy is the customary
// reference bound (e.g. in Cao & Irani's evaluation).
//
// The container's logical clock must advance exactly once per trace request
// (which the simulator guarantees), because next-reference lookups are
// keyed by request index.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cache/indexed_heap.hpp"
#include "cache/policy.hpp"
#include "trace/request.hpp"

namespace webcache::cache {

class OptPolicy final : public ReplacementPolicy {
 public:
  /// Builds the next-reference oracle from the full request sequence, in
  /// trace order. Request i corresponds to container clock i + 1.
  explicit OptPolicy(const std::vector<trace::Request>& requests);

  void on_insert(const CacheObject& obj) override;
  void on_hit(const CacheObject& obj) override;
  using ReplacementPolicy::choose_victim;
  ObjectId choose_victim(std::uint64_t incoming_size) override;
  void on_evict(ObjectId id) override;
  std::string_view name() const override { return "OPT"; }
  void clear() override;

 private:
  /// Priority for eviction ordering: -(next reference clock); objects never
  /// referenced again sort before everything (minus infinity bucket, with
  /// larger objects first so one eviction frees the most space).
  double priority_for(const CacheObject& obj) const;
  /// Clock index (1-based) of the first reference to `id` strictly after
  /// `now`; 0 when there is none.
  std::uint64_t next_reference_after(ObjectId id, std::uint64_t now) const;

  std::unordered_map<ObjectId, std::vector<std::uint64_t>> positions_;
  IndexedMinHeap<ObjectId, double> heap_;
};

}  // namespace webcache::cache
