#include "cache/partitioned.hpp"

#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "util/state_io.hpp"

namespace webcache::cache {

PartitionedCacheConfig PartitionedCacheConfig::uniform_policy(
    std::uint64_t capacity_bytes, const PolicySpec& policy,
    const std::array<double, trace::kDocumentClassCount>& weights) {
  PartitionedCacheConfig config;
  config.capacity_bytes = capacity_bytes;
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0) {
    throw std::invalid_argument("PartitionedCacheConfig: zero weights");
  }
  for (std::size_t c = 0; c < trace::kDocumentClassCount; ++c) {
    config.shares[c] = weights[c] / total;
    config.policies[c] = policy;
  }
  return config;
}

PartitionedCache::PartitionedCache(const PartitionedCacheConfig& config)
    : capacity_bytes_(config.capacity_bytes) {
  if (config.capacity_bytes == 0) {
    throw std::invalid_argument("PartitionedCache: capacity must be > 0");
  }
  double share_sum = 0.0;
  for (const double share : config.shares) {
    if (share < 0.0) {
      throw std::invalid_argument("PartitionedCache: negative share");
    }
    share_sum += share;
  }
  if (std::abs(share_sum - 1.0) > 1e-6) {
    throw std::invalid_argument("PartitionedCache: shares must sum to 1");
  }
  for (std::size_t c = 0; c < trace::kDocumentClassCount; ++c) {
    const auto bytes = static_cast<std::uint64_t>(
        static_cast<double>(config.capacity_bytes) * config.shares[c]);
    partitions_[c] =
        std::make_unique<Cache>(bytes, make_policy(config.policies[c]));
    if (config.policies[c].kind == PolicyKind::kLruThreshold) {
      partitions_[c]->set_admission_limit(
          config.policies[c].admission_threshold_bytes);
    }
  }
}

void PartitionedCache::reserve_dense_ids(std::uint64_t universe) {
  for (const auto& partition : partitions_) {
    if (partition->object_count() != 0) {
      throw std::logic_error(
          "PartitionedCache: reserve_dense_ids on non-empty cache");
    }
  }
  for (const auto& partition : partitions_) {
    partition->reserve_dense_ids(universe);
  }
  dense_universe_ = universe;
}

Cache::AccessOutcome PartitionedCache::access(ObjectId id, std::uint64_t size,
                                              trace::DocumentClass doc_class,
                                              bool force_miss) {
  if (dense_universe_ != 0 && id >= dense_universe_) {
    throw std::invalid_argument(
        "PartitionedCache: id outside the reserved dense universe");
  }
  // was_resident is a whole-frontend property: a document that migrated
  // class sits in a *different* partition than the one this access routes
  // to, and the simulator's modification accounting saw it as resident back
  // when it issued a separate contains() call. Answer across all
  // partitions, then let the class's partition handle the access.
  const bool resident = contains(id);
  Cache::AccessOutcome outcome =
      partitions_[static_cast<std::size_t>(doc_class)]->access(
          id, size, doc_class, force_miss);
  outcome.was_resident = resident;
  return outcome;
}

bool PartitionedCache::contains(ObjectId id) const {
  for (const auto& partition : partitions_) {
    if (partition->contains(id)) return true;
  }
  return false;
}

Occupancy PartitionedCache::occupancy() const {
  Occupancy total;
  for (std::size_t c = 0; c < trace::kDocumentClassCount; ++c) {
    const Occupancy part = partitions_[c]->occupancy();
    for (std::size_t k = 0; k < trace::kDocumentClassCount; ++k) {
      total.objects[k] += part.objects[k];
      total.bytes[k] += part.bytes[k];
    }
    total.total_objects += part.total_objects;
    total.total_bytes += part.total_bytes;
  }
  return total;
}

std::uint64_t PartitionedCache::eviction_count() const {
  std::uint64_t total = 0;
  for (const auto& partition : partitions_) {
    total += partition->eviction_count();
  }
  return total;
}

void PartitionedCache::set_removal_listener(RemovalListener* listener) {
  for (const auto& partition : partitions_) {
    partition->set_removal_listener(listener);
  }
}

PolicyProbe PartitionedCache::policy_probe() const {
  PolicyProbe probe;
  for (const auto& partition : partitions_) {
    probe.heap_entries += partition->policy_probe().heap_entries;
  }
  return probe;
}

std::string PartitionedCache::description() const {
  std::ostringstream os;
  os << "Partitioned[";
  for (std::size_t c = 0; c < trace::kDocumentClassCount; ++c) {
    if (c > 0) os << ", ";
    os << trace::to_string(static_cast<trace::DocumentClass>(c)) << ":"
       << partitions_[c]->policy().name();
  }
  os << "]";
  return os.str();
}

void PartitionedCache::save_state(util::StateWriter& w) const {
  for (const auto& partition : partitions_) partition->save_state(w);
}

void PartitionedCache::restore_state(util::StateReader& r) {
  for (auto& partition : partitions_) partition->restore_state(r);
}

}  // namespace webcache::cache
