// Class-partitioned cache — an extension the paper's conclusion motivates.
//
// The paper shows each replacement scheme trades the document classes off
// differently (GD*(1) starves multi media to win image/HTML hit rate, LRU
// does the opposite). A static partitioning makes the trade explicit:
// capacity is split into per-class partitions, each running its own
// replacement policy, so e.g. multi media gets a guaranteed byte budget
// while the image partition runs a frequency-based scheme.
//
// Shares may be chosen manually, or derived from a workload profile's
// request mix / byte mix (the "adaptive" configurations in the extension
// benchmark).
#pragma once

#include <array>
#include <memory>
#include <string>

#include "cache/factory.hpp"
#include "cache/frontend.hpp"

namespace webcache::cache {

struct PartitionedCacheConfig {
  std::uint64_t capacity_bytes = 0;
  /// Capacity share per document class; must be > 0 where traffic is
  /// expected and sum to ~1 (validated).
  std::array<double, trace::kDocumentClassCount> shares{};
  /// Replacement policy per class (the same spec may be repeated).
  std::array<PolicySpec, trace::kDocumentClassCount> policies{};

  /// Equal policy in all partitions, shares proportional to the given
  /// weights (normalized).
  static PartitionedCacheConfig uniform_policy(
      std::uint64_t capacity_bytes, const PolicySpec& policy,
      const std::array<double, trace::kDocumentClassCount>& weights);
};

class PartitionedCache final : public CacheFrontend {
 public:
  explicit PartitionedCache(const PartitionedCacheConfig& config);

  Cache::AccessOutcome access(ObjectId id, std::uint64_t size,
                              trace::DocumentClass doc_class,
                              bool force_miss) override;
  /// Forwards the reservation to every partition, so each per-class cache
  /// switches to its flat-array representation. Only legal while all
  /// partitions are empty (std::logic_error otherwise). Afterwards any
  /// access with an id outside [0, universe) is rejected with
  /// std::invalid_argument — mixing dense and sparse ids in one partitioned
  /// cache would silently corrupt the flat indices.
  void reserve_dense_ids(std::uint64_t universe) override;
  /// Resident in any partition (documents keep their class, so this is a
  /// scan only in the degenerate cross-class case).
  bool contains(ObjectId id) const override;
  Occupancy occupancy() const override;
  std::uint64_t eviction_count() const override;
  std::uint64_t capacity_bytes() const override { return capacity_bytes_; }
  std::string description() const override;
  /// Installs the listener on every partition, so the instrumentation layer
  /// sees evictions from all classes in one stream.
  void set_removal_listener(RemovalListener* listener) override;
  /// Aggregate probe: heap entries summed over partitions. Aging and beta
  /// stay unset — each partition runs its own policy instance; probe the
  /// per-class state via partition(c).policy_probe().
  PolicyProbe policy_probe() const override;

  const Cache& partition(trace::DocumentClass c) const {
    return *partitions_[static_cast<std::size_t>(c)];
  }

  /// Fault injection: drops the partition's contents and restarts its policy
  /// cold (Cache::crash). Up/down routing state lives in the fault-aware
  /// replay loop, not here — a crashed partition keeps accepting accesses
  /// the moment the schedule marks it recovered.
  void crash_partition(trace::DocumentClass c) {
    partitions_[static_cast<std::size_t>(c)]->crash();
  }

  /// Fault domains: one per document-class partition, so schedule node i
  /// addresses the partition of class i (the PR-4 partitioned semantics).
  std::uint32_t fault_domains() const override {
    return static_cast<std::uint32_t>(trace::kDocumentClassCount);
  }
  std::uint32_t fault_domain_of(trace::DocumentClass c) const override {
    return static_cast<std::uint32_t>(c);
  }
  void crash_domain(std::uint32_t domain) override {
    crash_partition(static_cast<trace::DocumentClass>(domain));
  }

  /// Checkpointing: every partition in class order.
  void save_state(util::StateWriter& w) const override;
  void restore_state(util::StateReader& r) override;

 private:
  std::uint64_t capacity_bytes_;
  /// 0 = sparse mode; otherwise the exclusive id bound set by
  /// reserve_dense_ids.
  std::uint64_t dense_universe_ = 0;
  std::array<std::unique_ptr<Cache>, trace::kDocumentClassCount> partitions_;
};

}  // namespace webcache::cache
