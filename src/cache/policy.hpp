// Replacement-policy interface.
//
// The Cache container owns object storage and accounting; a policy only
// maintains the eviction order. The container guarantees the call protocol:
//   - on_insert(obj)   once per resident object, before any on_hit
//   - on_hit(obj)      obj is resident; obj.reference_count already bumped
//   - choose_victim(incoming_size)
//                      cache non-empty; returns a resident object id and
//                      must not remove it. incoming_size is the size of the
//                      object being admitted (0 when unknown); most
//                      policies ignore it, size-class policies like LRU-MIN
//                      use it to pick their victim pool
//   - on_evict(id)/on_erase(id)  removal bookkeeping (eviction vs explicit
//                      invalidation; most policies treat them identically)
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "cache/types.hpp"

namespace webcache::util {
class StateWriter;
class StateReader;
}  // namespace webcache::util

namespace webcache::cache {

/// Observability snapshot of a policy's internal state, sampled by the
/// instrumentation layer at window boundaries (never on the hot path).
/// Fields are optional because not every scheme has the notion: only the
/// GreedyDual family and LFU-DA carry an aging term, only GD* estimates
/// beta.
struct PolicyProbe {
  /// Entries in the policy's index structure (heap or recency list).
  std::uint64_t heap_entries = 0;
  /// Current aging/inflation term L (GDS/GDSF/GD*: the inflation value;
  /// LFU-DA: the cache age).
  std::optional<double> aging;
  /// GD*'s online estimate of the temporal-correlation exponent beta.
  std::optional<double> beta;
};

class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  /// Hint that every ObjectId this policy will ever see lies in
  /// [0, universe) — true after trace::densify(). Array-backed policies
  /// switch their key -> position indices from hash maps to flat vectors;
  /// the eviction order is unaffected. Only legal before any on_insert
  /// (or right after clear()). Default: ignored.
  virtual void reserve_ids(std::uint64_t /*universe*/) {}

  virtual void on_insert(const CacheObject& obj) = 0;
  virtual void on_hit(const CacheObject& obj) = 0;
  virtual ObjectId choose_victim(std::uint64_t incoming_size) = 0;
  /// Convenience for callers without an incoming object.
  ObjectId choose_victim() { return choose_victim(0); }
  virtual void on_evict(ObjectId id) = 0;
  /// Removal not caused by replacement (invalidation / modification).
  /// Default: same bookkeeping as eviction.
  virtual void on_erase(ObjectId id) { on_evict(id); }

  virtual std::string_view name() const = 0;

  /// Observability hook: a snapshot of the policy's aging/estimator state,
  /// sampled once per metrics window by obs::RecordingSink. Cold path only;
  /// the default reports nothing.
  virtual PolicyProbe probe() const { return {}; }

  /// Drops all state (used when resetting a simulation).
  virtual void clear() = 0;

  // ---- checkpointing ----
  //
  // save_state serializes the policy's *semantic* state: everything a
  // future eviction decision can depend on, nothing it can't. A policy
  // restored through restore_state must make bit-identical decisions to
  // the original from that point on — heap array layouts and free-list
  // orders are not semantic and deliberately not preserved.
  //
  // restore_state is only ever called on a freshly constructed policy of
  // the identical spec (and with reserve_ids already applied when the run
  // is dense); sim::checkpoint validates that before restoring. Policies
  // that carry out-of-band state (e.g. the clairvoyant OPT bound) keep
  // the throwing defaults.

  virtual void save_state(util::StateWriter&) const {
    throw std::logic_error("policy '" + std::string(name()) +
                           "' does not support checkpointing");
  }
  virtual void restore_state(util::StateReader&) {
    throw std::logic_error("policy '" + std::string(name()) +
                           "' does not support checkpointing");
  }
};

}  // namespace webcache::cache
