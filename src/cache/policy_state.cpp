// Checkpoint serialization for every factory-constructible policy.
//
// One translation unit on purpose: the save/restore pair for each policy
// must stay in lockstep, and the conventions they share (LRU lists as
// MRU-to-LRU id sequences rebuilt by reverse push_front, heaps as
// {key, priority, sequence} entry sets plus the tie-break counter, hash
// maps sorted by id for deterministic bytes, mt19937_64 via its exact
// stream representation) are easiest to audit side by side.
//
// Only *semantic* state is serialized — anything a future eviction
// decision can depend on. Free-list layouts, heap array order and hash
// bucket counts are representation, deliberately rebuilt rather than
// preserved; the restored policy is bit-identical in behavior, not in
// memory image.

#include <algorithm>
#include <sstream>
#include <utility>
#include <vector>

#include "cache/beta_estimator.hpp"
#include "cache/clock.hpp"
#include "cache/fifo.hpp"
#include "cache/gds.hpp"
#include "cache/gdsf.hpp"
#include "cache/gdstar.hpp"
#include "cache/gdstar_class.hpp"
#include "cache/lazy_lru.hpp"
#include "cache/lfu.hpp"
#include "cache/lfu_da.hpp"
#include "cache/lru.hpp"
#include "cache/lru_k.hpp"
#include "cache/lru_variants.hpp"
#include "cache/random.hpp"
#include "cache/size_policy.hpp"
#include "util/rng.hpp"
#include "util/state_io.hpp"

namespace webcache::cache {

namespace {

void save_list(util::StateWriter& w, const LruIndexList& list) {
  w.put_u64(list.size());
  list.for_each_front_to_back([&](ObjectId id) { w.put_u64(id); });
}

std::vector<ObjectId> take_id_run(util::StateReader& r) {
  const std::uint64_t n = r.take_u64();
  std::vector<ObjectId> ids;
  ids.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) ids.push_back(r.take_u64());
  return ids;
}

void restore_list(util::StateReader& r, LruIndexList& list) {
  const std::vector<ObjectId> ids = take_id_run(r);
  for (auto it = ids.rbegin(); it != ids.rend(); ++it) list.push_front(*it);
}

void save_heap(util::StateWriter& w, const IndexedMinHeap<ObjectId, double>& heap) {
  w.put_u64(heap.size());
  heap.for_each_entry([&](const IndexedMinHeap<ObjectId, double>::Entry& e) {
    w.put_u64(e.key);
    w.put_double(e.priority);
    w.put_u64(e.sequence);
  });
  w.put_u64(heap.next_sequence());
}

void restore_heap(util::StateReader& r, IndexedMinHeap<ObjectId, double>& heap) {
  const std::uint64_t n = r.take_u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const ObjectId key = r.take_u64();
    const double priority = r.take_double();
    const std::uint64_t sequence = r.take_u64();
    heap.restore_entry(key, priority, sequence);
  }
  heap.set_next_sequence(r.take_u64());
}

void save_rng(util::StateWriter& w, const util::Rng& rng) {
  std::ostringstream os;
  os << rng.engine();
  w.put_string(os.str());
}

void restore_rng(util::StateReader& r, util::Rng& rng) {
  std::istringstream is(r.take_string());
  is >> rng.engine();
  if (is.fail()) r.fail("malformed mt19937_64 state");
}

template <typename Map>
void save_sorted_map(util::StateWriter& w, const Map& map) {
  std::vector<std::pair<ObjectId, typename Map::mapped_type>> items(
      map.begin(), map.end());
  std::sort(items.begin(), items.end());
  w.put_u64(items.size());
  for (const auto& [id, value] : items) {
    w.put_u64(id);
    w.put_u64(static_cast<std::uint64_t>(value));
  }
}

template <typename Map>
void restore_map(util::StateReader& r, Map& map) {
  const std::uint64_t n = r.take_u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const ObjectId id = r.take_u64();
    map[id] = static_cast<typename Map::mapped_type>(r.take_u64());
  }
}

}  // namespace

// ---- LRU family ------------------------------------------------------------

void LruPolicy::save_state(util::StateWriter& w) const { save_list(w, order_); }
void LruPolicy::restore_state(util::StateReader& r) { restore_list(r, order_); }

void LruThresholdPolicy::save_state(util::StateWriter& w) const {
  save_list(w, order_);
}
void LruThresholdPolicy::restore_state(util::StateReader& r) {
  restore_list(r, order_);
}

// ---- FIFO ------------------------------------------------------------------

void FifoPolicy::save_state(util::StateWriter& w) const {
  w.put_u64(order_.size());
  for (const ObjectId id : order_) w.put_u64(id);
  save_sorted_map(w, tombstones_);
  std::vector<ObjectId> resident(resident_.begin(), resident_.end());
  std::sort(resident.begin(), resident.end());
  w.put_u64(resident.size());
  for (const ObjectId id : resident) w.put_u64(id);
}

void FifoPolicy::restore_state(util::StateReader& r) {
  const std::uint64_t n = r.take_u64();
  for (std::uint64_t i = 0; i < n; ++i) order_.push_back(r.take_u64());
  restore_map(r, tombstones_);
  const std::uint64_t m = r.take_u64();
  for (std::uint64_t i = 0; i < m; ++i) resident_.insert(r.take_u64());
}

// ---- heap-ordered family ---------------------------------------------------

void SizePolicy::save_state(util::StateWriter& w) const { save_heap(w, heap_); }
void SizePolicy::restore_state(util::StateReader& r) { restore_heap(r, heap_); }

void LfuPolicy::save_state(util::StateWriter& w) const { save_heap(w, heap_); }
void LfuPolicy::restore_state(util::StateReader& r) { restore_heap(r, heap_); }

void LfuDaPolicy::save_state(util::StateWriter& w) const {
  save_heap(w, heap_);
  w.put_double(cache_age_);
}
void LfuDaPolicy::restore_state(util::StateReader& r) {
  restore_heap(r, heap_);
  cache_age_ = r.take_double();
}

void GdsPolicy::save_state(util::StateWriter& w) const {
  save_heap(w, heap_);
  w.put_double(inflation_);
}
void GdsPolicy::restore_state(util::StateReader& r) {
  restore_heap(r, heap_);
  inflation_ = r.take_double();
}

void GdsfPolicy::save_state(util::StateWriter& w) const {
  save_heap(w, heap_);
  w.put_double(inflation_);
}
void GdsfPolicy::restore_state(util::StateReader& r) {
  restore_heap(r, heap_);
  inflation_ = r.take_double();
}

void GdStarPolicy::save_state(util::StateWriter& w) const {
  save_heap(w, heap_);
  w.put_double(inflation_);
  estimator_.save_state(w);
}
void GdStarPolicy::restore_state(util::StateReader& r) {
  restore_heap(r, heap_);
  inflation_ = r.take_double();
  estimator_.restore_state(r);
}

void GdStarPerClassPolicy::save_state(util::StateWriter& w) const {
  save_heap(w, heap_);
  w.put_double(inflation_);
  for (const BetaEstimator& e : estimators_) e.save_state(w);
}
void GdStarPerClassPolicy::restore_state(util::StateReader& r) {
  restore_heap(r, heap_);
  inflation_ = r.take_double();
  for (BetaEstimator& e : estimators_) e.restore_state(r);
}

// ---- LRU-2 -----------------------------------------------------------------

void LruKPolicy::save_state(util::StateWriter& w) const {
  save_heap(w, heap_);
  save_sorted_map(w, resident_last_);
  save_sorted_map(w, history_);
  w.put_u64(history_fifo_.size());
  for (const auto& [id, stamp] : history_fifo_) {
    w.put_u64(id);
    w.put_u64(stamp);
  }
}

void LruKPolicy::restore_state(util::StateReader& r) {
  restore_heap(r, heap_);
  restore_map(r, resident_last_);
  restore_map(r, history_);
  const std::uint64_t n = r.take_u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const ObjectId id = r.take_u64();
    const std::uint64_t stamp = r.take_u64();
    history_fifo_.emplace_back(id, stamp);
  }
}

// ---- LRU-MIN ---------------------------------------------------------------

void LruMinPolicy::save_state(util::StateWriter& w) const {
  w.put_u64(next_stamp_);
  for (const auto& bucket : buckets_) {
    w.put_u64(bucket.size());
    for (const Entry& e : bucket) {  // front (MRU) to back (LRU)
      w.put_u64(e.id);
      w.put_u64(e.size);
      w.put_u64(e.stamp);
    }
  }
}

void LruMinPolicy::restore_state(util::StateReader& r) {
  next_stamp_ = r.take_u64();
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const std::uint64_t n = r.take_u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      const ObjectId id = r.take_u64();
      const std::uint64_t size = r.take_u64();
      const std::uint64_t stamp = r.take_u64();
      buckets_[b].push_back(Entry{id, size, stamp});
      make_slot(id) = Slot{b, std::prev(buckets_[b].end())};
      ++resident_;
    }
  }
}

// ---- RANDOM ----------------------------------------------------------------

void RandomPolicy::save_state(util::StateWriter& w) const {
  // The resident vector's order (shaped by swap-remove evictions) and the
  // draw stream position are both semantic: together they decide every
  // future victim.
  save_rng(w, rng_);
  w.put_u64(ids_.size());
  for (const ObjectId id : ids_) w.put_u64(id);
}

void RandomPolicy::restore_state(util::StateReader& r) {
  restore_rng(r, rng_);
  const std::uint64_t n = r.take_u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const ObjectId id = r.take_u64();
    set_position(id, static_cast<std::uint32_t>(ids_.size()));
    ids_.push_back(id);
  }
}

// ---- CLOCK / DELAY-CLOCK ---------------------------------------------------

void SecondChancePolicy::save_state(util::StateWriter& w) const {
  w.put_u64(ring_.size());
  ring_.for_each_front_to_back([&](ObjectId id) {
    w.put_u64(id);
    w.put_u32(counter_of(id));
  });
}

void SecondChancePolicy::restore_state(util::StateReader& r) {
  const std::uint64_t n = r.take_u64();
  std::vector<std::pair<ObjectId, std::uint32_t>> entries;
  entries.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    const ObjectId id = r.take_u64();
    const std::uint32_t counter = r.take_u32();
    entries.emplace_back(id, counter);
  }
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    ring_.push_front(it->first);
    set_counter(it->first, it->second);
  }
}

// ---- lazy-promotion LRU variants -------------------------------------------

void ProbLruPolicy::save_state(util::StateWriter& w) const {
  save_rng(w, rng_);
  save_list(w, order_);
}

void ProbLruPolicy::restore_state(util::StateReader& r) {
  restore_rng(r, rng_);
  restore_list(r, order_);
}

void DelayLruPolicy::save_state(util::StateWriter& w) const {
  w.put_u64(order_.size());
  order_.for_each_front_to_back([&](ObjectId id) {
    w.put_u64(id);
    w.put_u64(stamp_of(id));
  });
}

void DelayLruPolicy::restore_state(util::StateReader& r) {
  const std::uint64_t n = r.take_u64();
  std::vector<std::pair<ObjectId, std::uint64_t>> entries;
  entries.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    const ObjectId id = r.take_u64();
    const std::uint64_t stamp = r.take_u64();
    entries.emplace_back(id, stamp);
  }
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    order_.push_front(it->first);
    set_stamp(it->first, it->second);
  }
}

void BatchPromotionPolicy::save_state(util::StateWriter& w) const {
  save_list(w, order_);
  w.put_u64(pending_.size());
  for (const ObjectId id : pending_) w.put_u64(id);
}

void BatchPromotionPolicy::restore_state(util::StateReader& r) {
  restore_list(r, order_);
  const std::uint64_t n = r.take_u64();
  for (std::uint64_t i = 0; i < n; ++i) pending_.push_back(r.take_u64());
}

// ---- beta estimator --------------------------------------------------------

void BetaEstimator::save_state(util::StateWriter& w) const {
  w.put_double(beta_);
  w.put_u64(samples_);
  w.put_u64(since_refit_);
  const std::vector<double>& counts = histogram_.raw_counts();
  w.put_u64(counts.size());
  for (const double c : counts) w.put_double(c);
  w.put_double(histogram_.total_weight());
}

void BetaEstimator::restore_state(util::StateReader& r) {
  beta_ = r.take_double();
  samples_ = r.take_u64();
  since_refit_ = r.take_u64();
  const std::uint64_t n = r.take_u64();
  std::vector<double> counts;
  counts.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) counts.push_back(r.take_double());
  const double total = r.take_double();
  histogram_.restore_counts(std::move(counts), total);
}

}  // namespace webcache::cache
