#include "cache/random.hpp"

#include <stdexcept>

namespace webcache::cache {

RandomPolicy::RandomPolicy(std::uint64_t seed) : seed_(seed), rng_(seed) {}

void RandomPolicy::reserve_ids(std::uint64_t universe) {
  if (!ids_.empty()) {
    throw std::logic_error("RandomPolicy: reserve_ids on non-empty policy");
  }
  dense_ = true;
  where_.clear();
  dense_where_.assign(static_cast<std::size_t>(universe), kAbsent);
  ids_.reserve(static_cast<std::size_t>(universe));
}

std::uint32_t RandomPolicy::find_position(ObjectId id) const {
  if (dense_) {
    const auto i = static_cast<std::size_t>(id);
    return i < dense_where_.size() ? dense_where_[i] : kAbsent;
  }
  const auto it = where_.find(id);
  return it == where_.end() ? kAbsent : it->second;
}

void RandomPolicy::set_position(ObjectId id, std::uint32_t pos) {
  if (dense_) {
    const auto i = static_cast<std::size_t>(id);
    if (i >= dense_where_.size()) {
      throw std::logic_error("RandomPolicy: id outside reserved universe");
    }
    dense_where_[i] = pos;
  } else {
    where_[id] = pos;
  }
}

void RandomPolicy::drop_position(ObjectId id) {
  if (dense_) {
    dense_where_[static_cast<std::size_t>(id)] = kAbsent;
  } else {
    where_.erase(id);
  }
}

void RandomPolicy::on_insert(const CacheObject& obj) {
  if (find_position(obj.id) != kAbsent) {
    throw std::logic_error("RandomPolicy: duplicate insert");
  }
  set_position(obj.id, static_cast<std::uint32_t>(ids_.size()));
  ids_.push_back(obj.id);
}

ObjectId RandomPolicy::choose_victim(std::uint64_t /*incoming_size*/) {
  if (ids_.empty()) throw std::logic_error("RandomPolicy: empty");
  return ids_[static_cast<std::size_t>(rng_.below(ids_.size()))];
}

void RandomPolicy::on_evict(ObjectId id) {
  const std::uint32_t pos = find_position(id);
  if (pos == kAbsent) throw std::logic_error("RandomPolicy: evict absent id");
  const ObjectId moved = ids_.back();
  ids_[pos] = moved;
  ids_.pop_back();
  if (moved != id) set_position(moved, pos);
  drop_position(id);
}

void RandomPolicy::clear() {
  // A reset run must reproduce the original draw sequence, so the stream
  // restarts from the construction seed.
  rng_ = util::Rng(seed_);
  ids_.clear();
  if (dense_) {
    dense_where_.assign(dense_where_.size(), kAbsent);
  } else {
    where_.clear();
  }
}

}  // namespace webcache::cache
