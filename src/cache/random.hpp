// RANDOM replacement: evict a uniformly random resident object.
//
// The cheapest possible baseline — no bookkeeping on hits at all (the
// archetypal lazy-promotion scheme) and O(1) victim selection. Under the
// independent-reference model its hit ratio admits a Che-style analytic
// approximation (Gallo, Kauffmann, Muscariello, Simonian & Tanguy,
// "Performance evaluation of the random replacement policy for networks of
// caches", arXiv:1202.4880): an object requested with probability q_i is
// resident with probability q_i T / (1 + q_i T), where the characteristic
// time T solves sum_i q_i T / (1 + q_i T) = C objects. The analytic
// cross-check test (tests/sim/random_analytic_test.cpp) pins the simulator
// against that formula.
//
// Determinism: every draw comes from one util::Rng constructed from the
// seed in the PolicySpec, and victims are chosen by position in a dense
// resident vector maintained with swap-remove. The vector's evolution
// depends only on the insert/erase sequence — never on the id numbering —
// so sparse and dense-id replays are bit-identical, and the sharded exact
// engine reproduces the stream by replaying the same sequence against the
// same structure.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cache/policy.hpp"
#include "util/rng.hpp"

namespace webcache::cache {

class RandomPolicy final : public ReplacementPolicy {
 public:
  static constexpr std::uint64_t kDefaultSeed = 1;

  explicit RandomPolicy(std::uint64_t seed = kDefaultSeed);

  void reserve_ids(std::uint64_t universe) override;
  void on_insert(const CacheObject& obj) override;
  void on_hit(const CacheObject& /*obj*/) override {}  // lazy: no promotion
  using ReplacementPolicy::choose_victim;
  ObjectId choose_victim(std::uint64_t incoming_size) override;
  void on_evict(ObjectId id) override;
  std::string_view name() const override { return "RANDOM"; }
  void clear() override;

  PolicyProbe probe() const override {
    return {ids_.size(), std::nullopt, std::nullopt};
  }

  std::uint64_t seed() const { return seed_; }

  void save_state(util::StateWriter& w) const override;
  void restore_state(util::StateReader& r) override;

 private:
  static constexpr std::uint32_t kAbsent = 0xffffffffu;

  std::uint32_t find_position(ObjectId id) const;
  void set_position(ObjectId id, std::uint32_t pos);
  void drop_position(ObjectId id);

  std::uint64_t seed_;
  util::Rng rng_;
  std::vector<ObjectId> ids_;  // resident objects, swap-remove order

  // id -> position in ids_, hash-backed by default, flat after reserve_ids.
  bool dense_ = false;
  std::unordered_map<ObjectId, std::uint32_t> where_;
  std::vector<std::uint32_t> dense_where_;
};

}  // namespace webcache::cache
