#include "cache/size_policy.hpp"

namespace webcache::cache {

void SizePolicy::on_insert(const CacheObject& obj) {
  heap_.push(obj.id, -static_cast<double>(obj.size));
}

ObjectId SizePolicy::choose_victim(std::uint64_t /*incoming_size*/) { return heap_.top().key; }

void SizePolicy::on_evict(ObjectId id) { heap_.erase(id); }

void SizePolicy::clear() { heap_.clear(); }

}  // namespace webcache::cache
