// SIZE policy (Williams et al., 1996): evict the largest resident document.
//
// The classic size-aware baseline that GDS generalizes; included for the
// extended comparison benchmarks. Ties (equal sizes) break FIFO.
#pragma once

#include "cache/indexed_heap.hpp"
#include "cache/policy.hpp"

namespace webcache::cache {

class SizePolicy final : public ReplacementPolicy {
 public:
  void on_insert(const CacheObject& obj) override;
  void on_hit(const CacheObject& /*obj*/) override {}  // size never changes
  using ReplacementPolicy::choose_victim;
  ObjectId choose_victim(std::uint64_t incoming_size) override;
  void on_evict(ObjectId id) override;
  std::string_view name() const override { return "SIZE"; }
  void clear() override;

  void save_state(util::StateWriter& w) const override;
  void restore_state(util::StateReader& r) override;

 private:
  // Min-heap over negated size = max-heap over size.
  IndexedMinHeap<ObjectId, double> heap_;
};

}  // namespace webcache::cache
