// Core value types of the cache library.
#pragma once

#include <cstdint>

#include "trace/document_class.hpp"
#include "trace/request.hpp"

namespace webcache::cache {

using ObjectId = trace::DocumentId;

/// Metadata the cache keeps per resident object. Policies receive a const
/// reference on every insert/hit and may base their priorities on any field.
/// The container updates all fields *before* invoking the policy hook, so on
/// a hit `last_access` is the current request index and `previous_access`
/// the one before it — their difference is the inter-reference gap GD*'s
/// beta estimator consumes.
struct CacheObject {
  ObjectId id = 0;
  std::uint64_t size = 0;            // bytes occupied in the cache
  trace::DocumentClass doc_class = trace::DocumentClass::kOther;
  /// References while resident (1 on insert, incremented on each hit).
  /// This is the f(p) of GD* and GDSF: in-cache frequency.
  std::uint64_t reference_count = 1;
  /// Request-stream index (the container's logical clock) of the most
  /// recent access.
  std::uint64_t last_access = 0;
  /// The access before last_access; equals insert_index until the first hit.
  std::uint64_t previous_access = 0;
  std::uint64_t insert_index = 0;    // request index of insertion
};

}  // namespace webcache::cache
