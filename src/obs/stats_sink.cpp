#include "obs/stats_sink.hpp"

#include <stdexcept>
#include <utility>

#include "util/state_io.hpp"

namespace webcache::obs {

SnapshotFn snapshot_from(const cache::CacheFrontend& frontend) {
  return [&frontend] {
    Snapshot snap;
    const cache::Occupancy occ = frontend.occupancy();
    snap.occupancy_bytes = occ.total_bytes;
    snap.occupancy_objects = occ.total_objects;
    const cache::PolicyProbe probe = frontend.policy_probe();
    snap.heap_entries = probe.heap_entries;
    snap.aging = probe.aging;
    snap.beta = probe.beta;
    return snap;
  };
}

void WindowCounters::add(const WindowCounters& other) {
  requests += other.requests;
  hits += other.hits;
  requested_bytes += other.requested_bytes;
  hit_bytes += other.hit_bytes;
  evictions += other.evictions;
  evicted_bytes += other.evicted_bytes;
  lost += other.lost;
  lost_bytes += other.lost_bytes;
}

WindowCounters MetricsSeries::totals() const {
  WindowCounters out;
  for (const WindowSample& w : windows) out.add(w.overall);
  return out;
}

std::array<WindowCounters, trace::kDocumentClassCount>
MetricsSeries::class_totals() const {
  std::array<WindowCounters, trace::kDocumentClassCount> out{};
  for (const WindowSample& w : windows) {
    for (std::size_t c = 0; c < out.size(); ++c) out[c].add(w.per_class[c]);
  }
  return out;
}

std::uint64_t MetricsSeries::total_bypasses() const {
  std::uint64_t out = 0;
  for (const WindowSample& w : windows) out += w.bypasses;
  return out;
}

RecordingSink::RecordingSink(std::uint64_t window_requests) {
  if (window_requests == 0) {
    throw std::invalid_argument("RecordingSink: window_requests must be > 0");
  }
  series_.window_requests = window_requests;
}

void RecordingSink::begin_run(cache::CacheFrontend& frontend) {
  begin_run(snapshot_from(frontend));
  attached_ = &frontend;
  frontend.set_removal_listener(this);
}

void RecordingSink::begin_run(SnapshotFn snapshot) {
  series_.windows.clear();
  series_.total_requests = 0;
  series_.fault_nodes = 0;
  series_.warmup_curves.clear();
  warmup_trackers_.clear();
  snapshot_ = std::move(snapshot);
  attached_ = nullptr;
  window_open_ = false;
  open_window();
}

void RecordingSink::end_run() {
  // Flush the partial tail window, but only if it saw any activity.
  if (window_open_ &&
      (current_.last_request >= current_.first_request ||
       current_.overall.evictions > 0 || current_.invalidations > 0)) {
    close_window();
  }
  window_open_ = false;
  // Nodes still warming up when the trace ended keep their partial curves.
  while (!warmup_trackers_.empty()) {
    finish_warmup(warmup_trackers_.front());
    warmup_trackers_.erase(warmup_trackers_.begin());
  }
  if (attached_ != nullptr) {
    attached_->set_removal_listener(nullptr);
    attached_ = nullptr;
  }
}

void RecordingSink::on_fault_event(std::uint32_t node, FaultEventKind kind) {
  if (!window_open_) open_window();
  current_.fault_events += 1;
  switch (kind) {
    case FaultEventKind::kCrash:
      finish_warmup_for(node);
      break;
    case FaultEventKind::kRecovery: {
      finish_warmup_for(node);  // defensive; a node recovers only when down
      WarmupTracker tracker;
      tracker.curve.node = node;
      // The event applies before the next request enters the loop.
      tracker.curve.recovered_at = series_.total_requests + 1;
      warmup_trackers_.push_back(std::move(tracker));
      break;
    }
    case FaultEventKind::kDegrade:
    case FaultEventKind::kRestore:
      break;
  }
}

void RecordingSink::on_node_access(std::uint32_t node,
                                   trace::DocumentClass cls,
                                   std::uint64_t size, bool hit,
                                   bool measured) {
  if (!measured) return;
  for (WarmupTracker& tracker : warmup_trackers_) {
    if (tracker.curve.node != node || tracker.capped) continue;
    WindowCounters& overall = tracker.current.overall;
    WindowCounters& per_class =
        tracker.current.per_class[static_cast<std::size_t>(cls)];
    overall.requests += 1;
    overall.requested_bytes += size;
    per_class.requests += 1;
    per_class.requested_bytes += size;
    if (hit) {
      overall.hits += 1;
      overall.hit_bytes += size;
      per_class.hits += 1;
      per_class.hit_bytes += size;
    }
    if (++tracker.accesses_in_window == series_.window_requests) {
      tracker.curve.windows.push_back(tracker.current);
      tracker.current = WarmupWindow{};
      tracker.accesses_in_window = 0;
      if (tracker.curve.windows.size() >= kMaxWarmupWindows) {
        tracker.capped = true;
      }
    }
    return;
  }
}

void RecordingSink::finish_warmup(WarmupTracker& tracker) {
  if (tracker.accesses_in_window > 0) {
    tracker.curve.windows.push_back(tracker.current);
  }
  series_.warmup_curves.push_back(std::move(tracker.curve));
}

void RecordingSink::finish_warmup_for(std::uint32_t node) {
  for (std::size_t i = 0; i < warmup_trackers_.size(); ++i) {
    if (warmup_trackers_[i].curve.node != node) continue;
    finish_warmup(warmup_trackers_[i]);
    warmup_trackers_.erase(warmup_trackers_.begin() +
                           static_cast<std::ptrdiff_t>(i));
    return;
  }
}

void RecordingSink::on_removal(const cache::CacheObject& obj,
                               cache::RemovalCause cause) {
  // Removals for request N fire inside the access, before on_access(N); if
  // the previous window just closed they open the next one.
  if (!window_open_) open_window();
  if (cause == cache::RemovalCause::kEviction) {
    current_.overall.evictions += 1;
    current_.overall.evicted_bytes += obj.size;
    WindowCounters& per_class =
        current_.per_class[static_cast<std::size_t>(obj.doc_class)];
    per_class.evictions += 1;
    per_class.evicted_bytes += obj.size;
  } else {
    current_.invalidations += 1;
  }
}

namespace {

void save_counters(util::StateWriter& w, const WindowCounters& c) {
  w.put_u64(c.requests);
  w.put_u64(c.hits);
  w.put_u64(c.requested_bytes);
  w.put_u64(c.hit_bytes);
  w.put_u64(c.evictions);
  w.put_u64(c.evicted_bytes);
  w.put_u64(c.lost);
  w.put_u64(c.lost_bytes);
}

void restore_counters(util::StateReader& r, WindowCounters& c) {
  c.requests = r.take_u64();
  c.hits = r.take_u64();
  c.requested_bytes = r.take_u64();
  c.hit_bytes = r.take_u64();
  c.evictions = r.take_u64();
  c.evicted_bytes = r.take_u64();
  c.lost = r.take_u64();
  c.lost_bytes = r.take_u64();
}

void save_optional(util::StateWriter& w, const std::optional<double>& v) {
  w.put_bool(v.has_value());
  w.put_double(v.value_or(0.0));
}

std::optional<double> restore_optional(util::StateReader& r) {
  const bool present = r.take_bool();
  const double value = r.take_double();
  return present ? std::optional<double>(value) : std::nullopt;
}

void save_sample(util::StateWriter& w, const WindowSample& s) {
  w.put_u64(s.first_request);
  w.put_u64(s.last_request);
  save_counters(w, s.overall);
  for (const WindowCounters& c : s.per_class) save_counters(w, c);
  w.put_u64(s.bypasses);
  w.put_u64(s.invalidations);
  w.put_u64(s.failovers);
  w.put_u64(s.probe_timeouts);
  w.put_u64(s.fault_events);
  w.put_u64(s.node_up_sum);
  w.put_u64(s.node_samples);
  w.put_u64(s.state.occupancy_bytes);
  w.put_u64(s.state.occupancy_objects);
  w.put_u64(s.state.heap_entries);
  save_optional(w, s.state.aging);
  save_optional(w, s.state.beta);
}

void restore_sample(util::StateReader& r, WindowSample& s) {
  s.first_request = r.take_u64();
  s.last_request = r.take_u64();
  restore_counters(r, s.overall);
  for (WindowCounters& c : s.per_class) restore_counters(r, c);
  s.bypasses = r.take_u64();
  s.invalidations = r.take_u64();
  s.failovers = r.take_u64();
  s.probe_timeouts = r.take_u64();
  s.fault_events = r.take_u64();
  s.node_up_sum = r.take_u64();
  s.node_samples = r.take_u64();
  s.state.occupancy_bytes = r.take_u64();
  s.state.occupancy_objects = r.take_u64();
  s.state.heap_entries = r.take_u64();
  s.state.aging = restore_optional(r);
  s.state.beta = restore_optional(r);
}

void save_warmup_window(util::StateWriter& w, const WarmupWindow& win) {
  save_counters(w, win.overall);
  for (const WindowCounters& c : win.per_class) save_counters(w, c);
}

void restore_warmup_window(util::StateReader& r, WarmupWindow& win) {
  restore_counters(r, win.overall);
  for (WindowCounters& c : win.per_class) restore_counters(r, c);
}

void save_curve(util::StateWriter& w, const WarmupCurve& curve) {
  w.put_u32(curve.node);
  w.put_u64(curve.recovered_at);
  w.put_u64(curve.windows.size());
  for (const WarmupWindow& win : curve.windows) save_warmup_window(w, win);
}

void restore_curve(util::StateReader& r, WarmupCurve& curve) {
  curve.node = r.take_u32();
  curve.recovered_at = r.take_u64();
  const std::uint64_t n = r.take_u64();
  curve.windows.resize(static_cast<std::size_t>(n));
  for (WarmupWindow& win : curve.windows) restore_warmup_window(r, win);
}

}  // namespace

void RecordingSink::save_state(util::StateWriter& w) const {
  w.put_u64(series_.window_requests);
  w.put_u64(series_.total_requests);
  w.put_u64(series_.windows.size());
  for (const WindowSample& s : series_.windows) save_sample(w, s);
  w.put_u64(series_.fault_nodes);
  w.put_u64(series_.warmup_curves.size());
  for (const WarmupCurve& c : series_.warmup_curves) save_curve(w, c);
  save_sample(w, current_);
  w.put_bool(window_open_);
  w.put_u64(warmup_trackers_.size());
  for (const WarmupTracker& t : warmup_trackers_) {
    save_curve(w, t.curve);
    save_warmup_window(w, t.current);
    w.put_u64(t.accesses_in_window);
    w.put_bool(t.capped);
  }
}

void RecordingSink::restore_state(util::StateReader& r) {
  const std::uint64_t window_requests = r.take_u64();
  if (window_requests != series_.window_requests) {
    r.fail("metrics window length mismatch (checkpoint " +
           std::to_string(window_requests) + ", run configured " +
           std::to_string(series_.window_requests) + ")");
  }
  series_.total_requests = r.take_u64();
  series_.windows.resize(static_cast<std::size_t>(r.take_u64()));
  for (WindowSample& s : series_.windows) restore_sample(r, s);
  series_.fault_nodes = r.take_u64();
  series_.warmup_curves.resize(static_cast<std::size_t>(r.take_u64()));
  for (WarmupCurve& c : series_.warmup_curves) restore_curve(r, c);
  restore_sample(r, current_);
  window_open_ = r.take_bool();
  warmup_trackers_.clear();
  const std::uint64_t trackers = r.take_u64();
  for (std::uint64_t i = 0; i < trackers; ++i) {
    WarmupTracker t;
    restore_curve(r, t.curve);
    restore_warmup_window(r, t.current);
    t.accesses_in_window = r.take_u64();
    t.capped = r.take_bool();
    warmup_trackers_.push_back(std::move(t));
  }
}

void RecordingSink::open_window() {
  current_ = WindowSample{};
  current_.first_request = series_.total_requests + 1;
  current_.last_request = series_.total_requests;  // nothing seen yet
  window_open_ = true;
}

void RecordingSink::close_window() {
  current_.last_request = series_.total_requests;
  if (snapshot_) current_.state = snapshot_();
  series_.windows.push_back(current_);
  window_open_ = false;
}

}  // namespace webcache::obs
