// Zero-cost event instrumentation for the replay loops.
//
// The simulator, hierarchy, and frontend replay loops are templated on a
// StatsSink. The default NullSink has empty inline hooks, so the
// uninstrumented instantiation is the pre-existing code path: bit-identical
// results, no measurable overhead (bench/obs_overhead proves both). The
// RecordingSink instantiation collects per-request-window time series —
// hit/byte-hit counters, evictions and evicted bytes (per document class),
// admission rejections, and an end-of-window snapshot of cache occupancy,
// the policy's heap size, the aging term L, and GD*'s online beta estimate
// — the dynamic behaviors behind the paper's aggregate Figures 1-3.
//
// Event feeds:
//   * request outcomes arrive from the replay loop (StatsSink::on_access);
//   * evictions/invalidations arrive through the cache's RemovalListener
//     seam (RecordingSink implements it; attach via
//     CacheFrontend::set_removal_listener or Cache::set_removal_listener);
//   * window-boundary snapshots pull from a SnapshotFn — a frontend's
//     occupancy() + policy_probe() by default, or a caller-provided
//     closure for composites (the hierarchy sums edges + root).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "cache/cache.hpp"
#include "cache/frontend.hpp"
#include "trace/document_class.hpp"

namespace webcache::obs {

/// End-of-window state snapshot: occupancy plus the policy probe.
struct Snapshot {
  std::uint64_t occupancy_bytes = 0;
  std::uint64_t occupancy_objects = 0;
  std::uint64_t heap_entries = 0;
  std::optional<double> aging;  // L (GDS family inflation, LFU-DA cache age)
  std::optional<double> beta;   // GD*'s online estimate
};

using SnapshotFn = std::function<Snapshot()>;

/// Builds the default snapshot closure for a frontend.
SnapshotFn snapshot_from(const cache::CacheFrontend& frontend);

/// Flow counters accumulated over one window (and, summed, over the run).
/// Request-side fields count measured requests only (warm-up excluded,
/// matching the aggregate SimResult); eviction-side fields count every
/// eviction including warm-up (matching SimResult::evictions).
struct WindowCounters {
  std::uint64_t requests = 0;
  std::uint64_t hits = 0;
  std::uint64_t requested_bytes = 0;
  std::uint64_t hit_bytes = 0;
  std::uint64_t evictions = 0;
  std::uint64_t evicted_bytes = 0;
  /// Requests lost to faults (counted in `requests`, never in `hits`, so
  /// hits + misses + lost == requests with misses = requests - hits - lost).
  std::uint64_t lost = 0;
  std::uint64_t lost_bytes = 0;

  double hit_rate() const {
    return requests == 0 ? 0.0
                         : static_cast<double>(hits) /
                               static_cast<double>(requests);
  }
  double byte_hit_rate() const {
    return requested_bytes == 0 ? 0.0
                                : static_cast<double>(hit_bytes) /
                                      static_cast<double>(requested_bytes);
  }

  void add(const WindowCounters& other);
};

/// One window of the time series: flow counters (overall + per class),
/// admission rejections, and the end-of-window snapshot.
struct WindowSample {
  std::uint64_t first_request = 0;  // 1-based request index, inclusive
  std::uint64_t last_request = 0;

  WindowCounters overall;
  std::array<WindowCounters, trace::kDocumentClassCount> per_class{};

  std::uint64_t bypasses = 0;       // measured admission rejections
  std::uint64_t invalidations = 0;  // non-eviction removals (modifications)

  // ---- fault-injection feed (all zero without a FaultSchedule) ----
  std::uint64_t failovers = 0;       // measured requests routed around a
                                     // down node
  std::uint64_t probe_timeouts = 0;  // timed-out sibling-probe attempts
  std::uint64_t fault_events = 0;    // schedule events applied this window
  /// Per-request availability accumulator: each on_node_state call adds the
  /// number of nodes currently up. Mean availability over the window is
  /// node_up_sum / (node_samples * node_count); node_samples == 0 means the
  /// run was not fault-instrumented (availability reports as absent).
  std::uint64_t node_up_sum = 0;
  std::uint64_t node_samples = 0;

  /// Mean fraction of mesh nodes up over the window, or nullopt for
  /// uninstrumented runs. node_count is MetricsSeries::fault_nodes.
  std::optional<double> availability(std::uint64_t node_count) const {
    if (node_samples == 0 || node_count == 0) return std::nullopt;
    return static_cast<double>(node_up_sum) /
           (static_cast<double>(node_samples) *
            static_cast<double>(node_count));
  }

  Snapshot state;  // taken when the window closed
};

/// The node id the fault feed uses for the hierarchy root (edges use their
/// index). Partitioned caches use the document-class index.
inline constexpr std::uint32_t kRootNode = 0xffffffffu;

/// Fault events as the sink sees them (primitive — the obs layer does not
/// depend on sim/faults.hpp; sim::FaultKind maps onto this).
enum class FaultEventKind : std::uint8_t {
  kCrash,     // node contents lost, node down
  kRecovery,  // node back up, cold
  kDegrade,   // sibling probes to the node start timing out
  kRestore,   // probe path healthy again
};

/// Post-recovery warm-up: one fixed-length window of a restarted node's own
/// request stream (measured accesses only).
struct WarmupWindow {
  WindowCounters overall;  // eviction/lost fields unused (zero)
  std::array<WindowCounters, trace::kDocumentClassCount> per_class{};
};

/// Hit rate per window since a node restarted — the cold-start transient
/// the paper observes once, replayed at every recovery. Windows hold
/// MetricsSeries::window_requests accesses of the node (last may be short);
/// tracking stops at kMaxWarmupWindows or when the node crashes again.
struct WarmupCurve {
  std::uint32_t node = 0;          // edge index, or kRootNode
  std::uint64_t recovered_at = 0;  // 1-based trace request index
  std::vector<WarmupWindow> windows;
};

/// The collected series plus roll-up helpers used by the property tests.
struct MetricsSeries {
  std::uint64_t window_requests = 0;  // configured window length
  std::uint64_t total_requests = 0;   // requests observed (incl. warm-up)
  std::vector<WindowSample> windows;

  /// Fault-injection series: mesh node count (edges + root, or partitions;
  /// 0 for uninstrumented runs) and the post-recovery warm-up curves.
  std::uint64_t fault_nodes = 0;
  std::vector<WarmupCurve> warmup_curves;

  /// Sum of the per-window overall counters; must equal the aggregate
  /// SimResult (requests/hits/bytes over measured traffic, evictions over
  /// the whole run).
  WindowCounters totals() const;
  /// Same roll-up per document class.
  std::array<WindowCounters, trace::kDocumentClassCount> class_totals() const;
  std::uint64_t total_bypasses() const;
};

/// The hooks a replay loop invokes. NullSink's are empty and inline — the
/// compiler removes them, keeping the uninstrumented build at zero cost.
/// The fault hooks are invoked only by the fault-aware loops (sim/faults);
/// plain replays never call them.
template <typename S>
concept StatsSink = requires(S sink, trace::DocumentClass cls,
                             std::uint64_t size,
                             cache::Cache::AccessKind kind, bool measured,
                             std::uint32_t node, FaultEventKind fault_kind) {
  sink.on_access(cls, size, kind, measured);
  sink.on_request_lost(cls, size, measured);
  sink.on_failover(measured);
  sink.on_probe_timeout();
  sink.on_fault_event(node, fault_kind);
  sink.on_node_state(node, node);
  sink.on_node_access(node, cls, size, measured, measured);
};

/// The zero-overhead default: every hook is an inline no-op.
class NullSink {
 public:
  void on_access(trace::DocumentClass /*cls*/, std::uint64_t /*size*/,
                 cache::Cache::AccessKind /*kind*/, bool /*measured*/) {}
  void on_request_lost(trace::DocumentClass /*cls*/, std::uint64_t /*size*/,
                       bool /*measured*/) {}
  void on_failover(bool /*measured*/) {}
  void on_probe_timeout() {}
  void on_fault_event(std::uint32_t /*node*/, FaultEventKind /*kind*/) {}
  void on_node_state(std::uint32_t /*up_nodes*/, std::uint32_t /*nodes*/) {}
  void on_node_access(std::uint32_t /*node*/, trace::DocumentClass /*cls*/,
                      std::uint64_t /*size*/, bool /*hit*/,
                      bool /*measured*/) {}
};

/// Collects the windowed time series. One sink instruments one run: call
/// begin_run() (installs the removal listener and the snapshot source),
/// replay, then end_run() (flushes the partial tail window and detaches).
/// begin_run resets the series, so a sink may be reused run-to-run.
class RecordingSink final : public cache::RemovalListener {
 public:
  /// Windows are measured in requests. The last window of a run may be
  /// shorter; its last_request tells.
  explicit RecordingSink(std::uint64_t window_requests = 10000);

  /// Attaches to a frontend: removal listener installed, snapshots pull
  /// from occupancy() + policy_probe().
  void begin_run(cache::CacheFrontend& frontend);
  /// Composite form: the caller installs this sink as RemovalListener on
  /// each underlying cache and supplies the snapshot closure.
  void begin_run(SnapshotFn snapshot);
  /// Flushes the tail window and detaches from the frontend (if attached).
  void end_run();

  /// Replay-loop hook: one call per trace request, after the access.
  /// Inline: this is the only RecordingSink code on the replay hot path,
  /// and an out-of-line call per request costs several percent on the
  /// dense-id loop (tens of ns per request). Window rolls stay cold.
  void on_access(trace::DocumentClass cls, std::uint64_t size,
                 cache::Cache::AccessKind kind, bool measured) {
    if (!window_open_) open_window();
    ++series_.total_requests;
    current_.last_request = series_.total_requests;

    if (measured) {
      WindowCounters& per_class =
          current_.per_class[static_cast<std::size_t>(cls)];
      current_.overall.requests += 1;
      current_.overall.requested_bytes += size;
      per_class.requests += 1;
      per_class.requested_bytes += size;
      switch (kind) {
        case cache::Cache::AccessKind::kHit:
          current_.overall.hits += 1;
          current_.overall.hit_bytes += size;
          per_class.hits += 1;
          per_class.hit_bytes += size;
          break;
        case cache::Cache::AccessKind::kBypass:
          current_.bypasses += 1;
          break;
        case cache::Cache::AccessKind::kMiss:
          break;
      }
    }

    if (series_.total_requests % series_.window_requests == 0) {
      close_window();
    }
  }

  // ---- fault-injection hooks (called by the fault-aware loops only) ----
  //
  // Per-request hooks (on_node_state, on_failover, on_probe_timeout,
  // on_node_access, on_fault_event) fire BEFORE the request's terminal
  // on_access / on_request_lost, which performs the window roll — so they
  // always land in the window that contains the request.

  /// Terminal hook for a request no node could serve (double fault). Rolls
  /// the request stream like on_access, but the request lands in `lost` —
  /// counted in requests/requested_bytes (overall and per class, keeping the
  /// class sums equal to the overall counters), never in hits.
  void on_request_lost(trace::DocumentClass cls, std::uint64_t size,
                       bool measured) {
    if (!window_open_) open_window();
    ++series_.total_requests;
    current_.last_request = series_.total_requests;
    if (measured) {
      WindowCounters& per_class =
          current_.per_class[static_cast<std::size_t>(cls)];
      current_.overall.requests += 1;
      current_.overall.requested_bytes += size;
      current_.overall.lost += 1;
      current_.overall.lost_bytes += size;
      per_class.requests += 1;
      per_class.requested_bytes += size;
      per_class.lost += 1;
      per_class.lost_bytes += size;
    }
    if (series_.total_requests % series_.window_requests == 0) {
      close_window();
    }
  }

  /// A request whose designated node was down and was routed around it.
  void on_failover(bool measured) {
    if (!window_open_) open_window();
    if (measured) current_.failovers += 1;
  }

  /// One timed-out sibling-probe attempt (counted regardless of warm-up:
  /// the timeout is a mesh event, not a request-outcome statistic).
  void on_probe_timeout() {
    if (!window_open_) open_window();
    current_.probe_timeouts += 1;
  }

  /// Availability accumulator: called once per request with the number of
  /// mesh nodes currently up.
  void on_node_state(std::uint32_t up_nodes, std::uint32_t nodes) {
    if (!window_open_) open_window();
    current_.node_up_sum += up_nodes;
    current_.node_samples += 1;
    if (nodes > series_.fault_nodes) series_.fault_nodes = nodes;
  }

  /// A state-changing schedule event was applied. kRecovery starts a
  /// warm-up curve for the node; kCrash finalizes a running one.
  void on_fault_event(std::uint32_t node, FaultEventKind kind);

  /// The per-node access feed behind the warm-up curves: which node served
  /// (or missed) this request. Only measured accesses advance the curve.
  void on_node_access(std::uint32_t node, trace::DocumentClass cls,
                      std::uint64_t size, bool hit, bool measured);

  /// RemovalListener: evictions/invalidations land in the current window.
  void on_removal(const cache::CacheObject& obj,
                  cache::RemovalCause cause) override;

  const MetricsSeries& series() const { return series_; }
  std::uint64_t window_requests() const { return series_.window_requests; }

  // ---- checkpointing ----
  //
  // Serializes the collected series, the in-flight window, and any running
  // warm-up trackers, so a resumed run emits windows bit-identical to an
  // uninterrupted one. restore_state must be called AFTER begin_run (which
  // resets the series and re-attaches the listener/snapshot source); the
  // configured window length must match the saved one.

  void save_state(util::StateWriter& w) const;
  void restore_state(util::StateReader& r);

 private:
  /// Warm-up curves longer than this are truncated (the transient the
  /// curves exist to show is over long before).
  static constexpr std::size_t kMaxWarmupWindows = 64;

  /// In-flight warm-up curve for one recovered node.
  struct WarmupTracker {
    WarmupCurve curve;
    WarmupWindow current;
    std::uint64_t accesses_in_window = 0;
    bool capped = false;  // hit kMaxWarmupWindows; ignore further accesses
  };

  void open_window();
  void close_window();
  /// Flushes a tracker's partial window and moves its curve to the series.
  void finish_warmup(WarmupTracker& tracker);
  /// Finalizes and removes the tracker for `node`, if one is running.
  void finish_warmup_for(std::uint32_t node);

  MetricsSeries series_;
  WindowSample current_;
  bool window_open_ = false;
  cache::CacheFrontend* attached_ = nullptr;
  SnapshotFn snapshot_;
  /// At most one live tracker per node; fault runs have few nodes, so a
  /// linear scan beats a map.
  std::vector<WarmupTracker> warmup_trackers_;
};

static_assert(StatsSink<NullSink>);
static_assert(StatsSink<RecordingSink>);

}  // namespace webcache::obs
