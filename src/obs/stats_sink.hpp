// Zero-cost event instrumentation for the replay loops.
//
// The simulator, hierarchy, and frontend replay loops are templated on a
// StatsSink. The default NullSink has empty inline hooks, so the
// uninstrumented instantiation is the pre-existing code path: bit-identical
// results, no measurable overhead (bench/obs_overhead proves both). The
// RecordingSink instantiation collects per-request-window time series —
// hit/byte-hit counters, evictions and evicted bytes (per document class),
// admission rejections, and an end-of-window snapshot of cache occupancy,
// the policy's heap size, the aging term L, and GD*'s online beta estimate
// — the dynamic behaviors behind the paper's aggregate Figures 1-3.
//
// Event feeds:
//   * request outcomes arrive from the replay loop (StatsSink::on_access);
//   * evictions/invalidations arrive through the cache's RemovalListener
//     seam (RecordingSink implements it; attach via
//     CacheFrontend::set_removal_listener or Cache::set_removal_listener);
//   * window-boundary snapshots pull from a SnapshotFn — a frontend's
//     occupancy() + policy_probe() by default, or a caller-provided
//     closure for composites (the hierarchy sums edges + root).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "cache/cache.hpp"
#include "cache/frontend.hpp"
#include "trace/document_class.hpp"

namespace webcache::obs {

/// End-of-window state snapshot: occupancy plus the policy probe.
struct Snapshot {
  std::uint64_t occupancy_bytes = 0;
  std::uint64_t occupancy_objects = 0;
  std::uint64_t heap_entries = 0;
  std::optional<double> aging;  // L (GDS family inflation, LFU-DA cache age)
  std::optional<double> beta;   // GD*'s online estimate
};

using SnapshotFn = std::function<Snapshot()>;

/// Builds the default snapshot closure for a frontend.
SnapshotFn snapshot_from(const cache::CacheFrontend& frontend);

/// Flow counters accumulated over one window (and, summed, over the run).
/// Request-side fields count measured requests only (warm-up excluded,
/// matching the aggregate SimResult); eviction-side fields count every
/// eviction including warm-up (matching SimResult::evictions).
struct WindowCounters {
  std::uint64_t requests = 0;
  std::uint64_t hits = 0;
  std::uint64_t requested_bytes = 0;
  std::uint64_t hit_bytes = 0;
  std::uint64_t evictions = 0;
  std::uint64_t evicted_bytes = 0;

  double hit_rate() const {
    return requests == 0 ? 0.0
                         : static_cast<double>(hits) /
                               static_cast<double>(requests);
  }
  double byte_hit_rate() const {
    return requested_bytes == 0 ? 0.0
                                : static_cast<double>(hit_bytes) /
                                      static_cast<double>(requested_bytes);
  }

  void add(const WindowCounters& other);
};

/// One window of the time series: flow counters (overall + per class),
/// admission rejections, and the end-of-window snapshot.
struct WindowSample {
  std::uint64_t first_request = 0;  // 1-based request index, inclusive
  std::uint64_t last_request = 0;

  WindowCounters overall;
  std::array<WindowCounters, trace::kDocumentClassCount> per_class{};

  std::uint64_t bypasses = 0;       // measured admission rejections
  std::uint64_t invalidations = 0;  // non-eviction removals (modifications)

  Snapshot state;  // taken when the window closed
};

/// The collected series plus roll-up helpers used by the property tests.
struct MetricsSeries {
  std::uint64_t window_requests = 0;  // configured window length
  std::uint64_t total_requests = 0;   // requests observed (incl. warm-up)
  std::vector<WindowSample> windows;

  /// Sum of the per-window overall counters; must equal the aggregate
  /// SimResult (requests/hits/bytes over measured traffic, evictions over
  /// the whole run).
  WindowCounters totals() const;
  /// Same roll-up per document class.
  std::array<WindowCounters, trace::kDocumentClassCount> class_totals() const;
  std::uint64_t total_bypasses() const;
};

/// The hooks a replay loop invokes. NullSink's are empty and inline — the
/// compiler removes them, keeping the uninstrumented build at zero cost.
template <typename S>
concept StatsSink = requires(S sink, trace::DocumentClass cls,
                             std::uint64_t size,
                             cache::Cache::AccessKind kind, bool measured) {
  sink.on_access(cls, size, kind, measured);
};

/// The zero-overhead default: every hook is an inline no-op.
class NullSink {
 public:
  void on_access(trace::DocumentClass /*cls*/, std::uint64_t /*size*/,
                 cache::Cache::AccessKind /*kind*/, bool /*measured*/) {}
};

/// Collects the windowed time series. One sink instruments one run: call
/// begin_run() (installs the removal listener and the snapshot source),
/// replay, then end_run() (flushes the partial tail window and detaches).
/// begin_run resets the series, so a sink may be reused run-to-run.
class RecordingSink final : public cache::RemovalListener {
 public:
  /// Windows are measured in requests. The last window of a run may be
  /// shorter; its last_request tells.
  explicit RecordingSink(std::uint64_t window_requests = 10000);

  /// Attaches to a frontend: removal listener installed, snapshots pull
  /// from occupancy() + policy_probe().
  void begin_run(cache::CacheFrontend& frontend);
  /// Composite form: the caller installs this sink as RemovalListener on
  /// each underlying cache and supplies the snapshot closure.
  void begin_run(SnapshotFn snapshot);
  /// Flushes the tail window and detaches from the frontend (if attached).
  void end_run();

  /// Replay-loop hook: one call per trace request, after the access.
  /// Inline: this is the only RecordingSink code on the replay hot path,
  /// and an out-of-line call per request costs several percent on the
  /// dense-id loop (tens of ns per request). Window rolls stay cold.
  void on_access(trace::DocumentClass cls, std::uint64_t size,
                 cache::Cache::AccessKind kind, bool measured) {
    if (!window_open_) open_window();
    ++series_.total_requests;
    current_.last_request = series_.total_requests;

    if (measured) {
      WindowCounters& per_class =
          current_.per_class[static_cast<std::size_t>(cls)];
      current_.overall.requests += 1;
      current_.overall.requested_bytes += size;
      per_class.requests += 1;
      per_class.requested_bytes += size;
      switch (kind) {
        case cache::Cache::AccessKind::kHit:
          current_.overall.hits += 1;
          current_.overall.hit_bytes += size;
          per_class.hits += 1;
          per_class.hit_bytes += size;
          break;
        case cache::Cache::AccessKind::kBypass:
          current_.bypasses += 1;
          break;
        case cache::Cache::AccessKind::kMiss:
          break;
      }
    }

    if (series_.total_requests % series_.window_requests == 0) {
      close_window();
    }
  }

  /// RemovalListener: evictions/invalidations land in the current window.
  void on_removal(const cache::CacheObject& obj,
                  cache::RemovalCause cause) override;

  const MetricsSeries& series() const { return series_; }
  std::uint64_t window_requests() const { return series_.window_requests; }

 private:
  void open_window();
  void close_window();

  MetricsSeries series_;
  WindowSample current_;
  bool window_open_ = false;
  cache::CacheFrontend* attached_ = nullptr;
  SnapshotFn snapshot_;
};

static_assert(StatsSink<NullSink>);
static_assert(StatsSink<RecordingSink>);

}  // namespace webcache::obs
