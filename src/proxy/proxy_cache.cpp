#include "proxy/proxy_cache.hpp"

#include "trace/cacheability.hpp"
#include "trace/document_class.hpp"
#include "trace/squid_log.hpp"

namespace webcache::proxy {

namespace {

sim::HitCounters& class_counters(ProxyStats& stats, trace::DocumentClass c) {
  return stats.per_class[static_cast<std::size_t>(c)];
}

}  // namespace

ProxyCache::ProxyCache(const ProxyCacheConfig& config)
    : config_(config),
      cache_(config.capacity_bytes, cache::make_policy(config.policy)) {
  cache_.set_removal_listener(this);
}

void ProxyCache::on_removal(const cache::CacheObject& obj,
                            cache::RemovalCause /*cause*/) {
  meta_.erase(obj.id);
}

Disposition ProxyCache::lookup(std::string_view url, std::uint64_t now_ms) {
  if (config_.filter_uncacheable && trace::is_dynamic_url(url)) {
    ++stats_.uncacheable;
    return Disposition::kUncacheable;
  }
  const cache::ObjectId id = trace::url_to_document_id(url);

  // Freshness check before the access is recorded: a stale copy must not
  // be refreshed in the replacement order.
  if (now_ms > 0) {
    const auto meta_it = meta_.find(id);
    if (meta_it != meta_.end() && meta_it->second.expires_at_ms > 0 &&
        now_ms >= meta_it->second.expires_at_ms && cache_.contains(id)) {
      const trace::DocumentClass doc_class = meta_it->second.doc_class;
      cache_.erase(id);  // removal listener drops the meta entry
      ++stats_.expirations;
      class_counters(stats_, doc_class).requests += 1;
      stats_.overall.requests += 1;
      return Disposition::kExpired;
    }
  }

  const bool hit = cache_.touch(id);

  // Attribute the access. On a miss the class/size are unknown until
  // store(), so the miss is attributed by URL extension with zero bytes;
  // store() fixes the byte accounting at fetch time.
  if (hit) {
    const Meta& meta = meta_.at(id);
    auto& cls = class_counters(stats_, meta.doc_class);
    cls.requests += 1;
    cls.hits += 1;
    cls.requested_bytes += meta.size;
    cls.hit_bytes += meta.size;
    stats_.overall.requests += 1;
    stats_.overall.hits += 1;
    stats_.overall.requested_bytes += meta.size;
    stats_.overall.hit_bytes += meta.size;
    return Disposition::kHit;
  }
  const trace::DocumentClass guessed = trace::classify_extension(url);
  class_counters(stats_, guessed).requests += 1;
  stats_.overall.requests += 1;
  return Disposition::kMiss;
}

bool ProxyCache::store(std::string_view url, std::uint64_t size,
                       std::string_view content_type, std::uint16_t status,
                       std::uint64_t ttl_ms, std::uint64_t now_ms) {
  if (config_.filter_uncacheable &&
      !trace::is_cacheable("GET", url, status)) {
    ++stats_.uncacheable;
    return false;
  }
  const cache::ObjectId id = trace::url_to_document_id(url);
  const trace::DocumentClass doc_class = trace::classify(content_type, url);

  // Byte accounting for the miss that triggered this fetch.
  class_counters(stats_, doc_class).requested_bytes += size;
  stats_.overall.requested_bytes += size;

  if (!cache_.put(id, size, doc_class)) return false;
  meta_[id] = Meta{doc_class, size, ttl_ms > 0 ? now_ms + ttl_ms : 0};
  ++stats_.stores;
  return true;
}

void ProxyCache::invalidate(std::string_view url) {
  const cache::ObjectId id = trace::url_to_document_id(url);
  if (cache_.contains(id)) {
    cache_.erase(id);
    meta_.erase(id);
    ++stats_.invalidations;
  }
}

bool ProxyCache::contains(std::string_view url) const {
  return cache_.contains(trace::url_to_document_id(url));
}

void ProxyCache::clear() {
  cache_.reset();
  meta_.clear();
}

}  // namespace webcache::proxy
