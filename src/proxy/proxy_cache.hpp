// ProxyCache — the adoptable online API.
//
// Everything else in this library is offline (trace-driven). ProxyCache is
// the piece a downstream proxy would embed: a URL-keyed cache front-end with
// a pluggable replacement policy and cost model, per-class statistics, and
// the same modification semantics the simulator models.
//
// Usage:
//   proxy::ProxyCache cache({.capacity_bytes = 1 << 30,
//                            .policy = "GD*(packet)"});
//   auto d = cache.lookup("http://example.com/logo.gif");
//   if (d == proxy::Disposition::kMiss) {
//     ... fetch from origin ...
//     cache.store("http://example.com/logo.gif", body_size, "image/gif");
//   }
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "cache/cache.hpp"
#include "cache/factory.hpp"
#include "sim/metrics.hpp"

namespace webcache::proxy {

enum class Disposition : std::uint8_t {
  kHit,
  kMiss,
  kExpired,      // resident but past its freshness lifetime (revalidate)
  kUncacheable,  // dynamic URL / non-GET / unsupported status
};

struct ProxyCacheConfig {
  std::uint64_t capacity_bytes = 1ULL << 30;
  /// Any name accepted by cache::policy_spec_from_name, e.g. "LRU",
  /// "LFU-DA", "GDS(1)", "GD*(packet)".
  std::string policy = "GD*(packet)";
  /// Apply the Section-2 cacheability heuristics to lookup/store URLs.
  bool filter_uncacheable = true;
};

struct ProxyStats {
  sim::HitCounters overall;
  std::array<sim::HitCounters, trace::kDocumentClassCount> per_class{};
  std::uint64_t uncacheable = 0;
  std::uint64_t stores = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t expirations = 0;  // lookups answered kExpired
};

class ProxyCache : private cache::RemovalListener {
 public:
  explicit ProxyCache(const ProxyCacheConfig& config);

  // The cache holds `this` as its removal listener; moving or copying would
  // leave it dangling. Heap-allocate if you need to hand the cache around.
  ProxyCache(const ProxyCache&) = delete;
  ProxyCache& operator=(const ProxyCache&) = delete;
  ProxyCache(ProxyCache&&) = delete;
  ProxyCache& operator=(ProxyCache&&) = delete;

  /// Checks residency and records the access. On a hit the replacement
  /// state is touched; on a miss the caller is expected to fetch the body
  /// and call store(). `now_ms` is the caller's clock for freshness
  /// checking (any monotone time base; pass 0 to ignore freshness): a
  /// resident document stored with a ttl that has elapsed is reported
  /// kExpired and dropped — the caller revalidates/refetches and store()s.
  Disposition lookup(std::string_view url, std::uint64_t now_ms = 0);

  /// Inserts (or refreshes) a document after a fetch. `content_type` may be
  /// empty, in which case the class is guessed from the URL extension.
  /// `ttl_ms` > 0 sets a freshness lifetime relative to `now_ms` (0 =
  /// fresh forever). Returns false when the document was not cached
  /// (uncacheable URL or larger than the whole cache).
  bool store(std::string_view url, std::uint64_t size,
             std::string_view content_type = {}, std::uint16_t status = 200,
             std::uint64_t ttl_ms = 0, std::uint64_t now_ms = 0);

  /// Drops a document (e.g. on a 404 or PUT observed for its URL).
  void invalidate(std::string_view url);

  bool contains(std::string_view url) const;

  const ProxyStats& stats() const { return stats_; }
  cache::Occupancy occupancy() const { return cache_.occupancy(); }
  std::uint64_t used_bytes() const { return cache_.used_bytes(); }
  std::uint64_t capacity_bytes() const { return cache_.capacity_bytes(); }
  std::string_view policy_name() const { return cache_.policy().name(); }

  void clear();

 private:
  /// Removal notification from the cache: drop the matching meta entry.
  void on_removal(const cache::CacheObject& obj,
                  cache::RemovalCause cause) override;

  ProxyCacheConfig config_;
  cache::Cache cache_;
  ProxyStats stats_;
  /// Class and size of resident documents, keyed like the cache, needed to
  /// attribute hit bytes on lookup (lookup has no size argument).
  struct Meta {
    trace::DocumentClass doc_class;
    std::uint64_t size;
    /// Absolute freshness deadline in the caller's time base; 0 = never.
    std::uint64_t expires_at_ms = 0;
  };
  std::unordered_map<cache::ObjectId, Meta> meta_;
};

}  // namespace webcache::proxy
