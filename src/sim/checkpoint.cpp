#include "sim/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <type_traits>
#include <utility>

#include "sim/checkpoint_impl.hpp"
#include "sim/kernel.hpp"
#include "sim/last_size.hpp"
#include "sim/replay_core.hpp"
#include "util/state_io.hpp"

namespace webcache::sim {

namespace fs = std::filesystem;

namespace {

constexpr char kMagic[4] = {'W', 'C', 'K', 'P'};
constexpr std::uint32_t kVersion = 1;
constexpr const char* kFileSuffix = ".wckp";

thread_local std::vector<std::string> g_resume_diagnostics;

}  // namespace

std::uint64_t detail::checkpoint_env_u64(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return 0;
  return std::strtoull(value, nullptr, 10);
}

std::string detail::checkpoint_file_name(std::uint64_t consumed) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "checkpoint-%020llu%s",
                static_cast<unsigned long long>(consumed), kFileSuffix);
  return buf;
}

namespace {

/// All checkpoint files in `dir`, sorted ascending by name (the zero-padded
/// request index makes lexicographic order chronological).
std::vector<fs::path> list_checkpoints(const std::string& dir) {
  std::vector<fs::path> files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("checkpoint-", 0) == 0 && name.size() > 5 &&
        name.compare(name.size() - 5, 5, kFileSuffix) == 0) {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::vector<std::uint8_t> read_file_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open file");
  }
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (in.bad()) throw std::runtime_error("read error");
  return bytes;
}

// Bounds-checked cursor over a raw checkpoint image (the container layer;
// section payloads go through util::StateReader instead).
struct ByteCursor {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;

  void need(std::size_t n, const char* what) const {
    if (pos + n > size) {
      throw std::runtime_error(std::string("truncated file reading ") + what);
    }
  }
  std::uint32_t u32(const char* what) {
    need(4, what);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data[pos + i]) << (8 * i);
    }
    pos += 4;
    return v;
  }
  std::uint64_t u64(const char* what) {
    need(8, what);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data[pos + i]) << (8 * i);
    }
    pos += 8;
    return v;
  }
};

}  // namespace

std::uint64_t fault_schedule_hash(const FaultSchedule& schedule) {
  util::StateWriter w;
  w.put_u64(schedule.events.size());
  for (const FaultEvent& e : schedule.events) {
    w.put_u64(e.at_request);
    w.put_u8(static_cast<std::uint8_t>(e.kind));
    w.put_u32(e.node);
  }
  w.put_u32(schedule.max_probe_retries);
  w.put_double(schedule.probe_timeout_rate);
  w.put_u64(schedule.seed);
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  for (const std::uint8_t b : w.bytes()) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h == 0 ? 1 : h;  // 0 is reserved for "no schedule"
}

const std::vector<std::string>& checkpoint_resume_diagnostics() {
  return g_resume_diagnostics;
}

namespace detail {

std::vector<std::uint8_t> encode_checkpoint(
    const std::vector<CheckpointSection>& sections) {
  util::StateWriter w;
  w.put_bytes(kMagic, sizeof(kMagic));
  w.put_u32(kVersion);
  w.put_u32(static_cast<std::uint32_t>(sections.size()));
  for (const CheckpointSection& s : sections) {
    w.put_u32(static_cast<std::uint32_t>(s.name.size()));
    w.put_bytes(s.name.data(), s.name.size());
    w.put_u64(s.payload.size());
    w.put_u32(util::crc32(s.payload.data(), s.payload.size()));
    w.put_bytes(s.payload.data(), s.payload.size());
  }
  return w.take();
}

std::vector<CheckpointSection> decode_checkpoint(
    const std::vector<std::uint8_t>& bytes) {
  ByteCursor c{bytes.data(), bytes.size()};
  c.need(sizeof(kMagic), "magic");
  if (std::memcmp(c.data, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("bad magic (not a WCKP checkpoint)");
  }
  c.pos += sizeof(kMagic);
  const std::uint32_t version = c.u32("version");
  if (version != kVersion) {
    throw std::runtime_error("unsupported checkpoint version " +
                             std::to_string(version));
  }
  const std::uint32_t count = c.u32("section count");
  std::vector<CheckpointSection> sections;
  sections.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t name_len = c.u32("section name length");
    if (name_len > 256) {
      throw std::runtime_error("section name length out of range");
    }
    c.need(name_len, "section name");
    std::string name(reinterpret_cast<const char*>(c.data + c.pos), name_len);
    c.pos += name_len;
    const std::uint64_t payload_len = c.u64("section length");
    const std::uint32_t stored_crc = c.u32("section CRC");
    if (payload_len > c.size - c.pos) {
      throw std::runtime_error("truncated section '" + name + "'");
    }
    std::vector<std::uint8_t> payload(
        c.data + c.pos, c.data + c.pos + static_cast<std::size_t>(payload_len));
    c.pos += static_cast<std::size_t>(payload_len);
    if (util::crc32(payload.data(), payload.size()) != stored_crc) {
      throw std::runtime_error("section '" + name + "': CRC mismatch");
    }
    sections.push_back({std::move(name), std::move(payload)});
  }
  if (c.pos != c.size) {
    throw std::runtime_error("trailing bytes after last section");
  }
  return sections;
}

void atomic_write_file(const std::string& path,
                       const std::vector<std::uint8_t>& bytes) {
  // Torn-write fault hook: on the k-th checkpoint write of this process,
  // truncate the temp file to half, rename it anyway, and die — simulating
  // a kernel/media failure that breaks the temp file *before* rename makes
  // it visible. The resulting file must be rejected on resume.
  static std::uint64_t write_number = 0;
  const std::uint64_t crash_at_write =
      checkpoint_env_u64("WEBCACHE_CHECKPOINT_CRASH_AT_WRITE");
  ++write_number;

  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) {
    throw std::runtime_error("checkpoint: cannot create '" + tmp +
                             "': " + std::strerror(errno));
  }
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      throw std::runtime_error("checkpoint: write to '" + tmp +
                               "' failed: " + std::strerror(err));
    }
    off += static_cast<std::size_t>(n);
  }
  if (crash_at_write != 0 && write_number == crash_at_write) {
    (void)::ftruncate(fd, static_cast<off_t>(bytes.size() / 2));
    (void)::fsync(fd);
    (void)::close(fd);
    (void)std::rename(tmp.c_str(), path.c_str());
    std::raise(SIGKILL);
  }
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("checkpoint: fsync of '" + tmp +
                             "' failed: " + std::strerror(err));
  }
  ::close(fd);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("checkpoint: rename '" + tmp + "' -> '" + path +
                             "' failed: " + std::strerror(errno));
  }
  // Persist the rename itself: fsync the containing directory.
  const std::string dir = fs::path(path).parent_path().string();
  const int dfd = ::open(dir.empty() ? "." : dir.c_str(),
                         O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    (void)::fsync(dfd);
    ::close(dfd);
  }
}

void save_sim_result(util::StateWriter& w, const SimResult& result) {
  const auto save_hits = [&w](const HitCounters& h) {
    w.put_u64(h.requests);
    w.put_u64(h.hits);
    w.put_u64(h.requested_bytes);
    w.put_u64(h.hit_bytes);
  };
  w.put_string(result.policy_name);
  w.put_u64(result.capacity_bytes);
  save_hits(result.overall);
  for (const HitCounters& h : result.per_class) save_hits(h);
  w.put_u64(result.warmup_requests);
  w.put_u64(result.measured_requests);
  w.put_u64(result.evictions);
  w.put_u64(result.bypasses);
  w.put_double(result.miss_latency_ms);
  w.put_double(result.all_miss_latency_ms);
  w.put_u64(result.modification_misses);
  w.put_u64(result.interrupted_transfers);
  w.put_u64(result.occupancy_series.size());
  for (const OccupancySample& s : result.occupancy_series) {
    w.put_u64(s.request_index);
    for (const std::uint64_t v : s.occupancy.objects) w.put_u64(v);
    for (const std::uint64_t v : s.occupancy.bytes) w.put_u64(v);
    w.put_u64(s.occupancy.total_objects);
    w.put_u64(s.occupancy.total_bytes);
  }
  w.put_u64(result.faults.events_applied);
  w.put_u64(result.faults.failovers);
  w.put_u64(result.faults.lost_requests);
  w.put_u64(result.faults.lost_bytes);
  w.put_u64(result.faults.probe_timeouts);
  w.put_u64(result.faults.origin_fetches);
}

SimResult restore_sim_result(util::StateReader& r) {
  const auto restore_hits = [&r](HitCounters& h) {
    h.requests = r.take_u64();
    h.hits = r.take_u64();
    h.requested_bytes = r.take_u64();
    h.hit_bytes = r.take_u64();
  };
  SimResult result;
  result.policy_name = r.take_string();
  result.capacity_bytes = r.take_u64();
  restore_hits(result.overall);
  for (HitCounters& h : result.per_class) restore_hits(h);
  result.warmup_requests = r.take_u64();
  result.measured_requests = r.take_u64();
  result.evictions = r.take_u64();
  result.bypasses = r.take_u64();
  result.miss_latency_ms = r.take_double();
  result.all_miss_latency_ms = r.take_double();
  result.modification_misses = r.take_u64();
  result.interrupted_transfers = r.take_u64();
  const std::uint64_t samples = r.take_u64();
  result.occupancy_series.reserve(static_cast<std::size_t>(samples));
  for (std::uint64_t i = 0; i < samples; ++i) {
    OccupancySample s;
    s.request_index = r.take_u64();
    for (std::uint64_t& v : s.occupancy.objects) v = r.take_u64();
    for (std::uint64_t& v : s.occupancy.bytes) v = r.take_u64();
    s.occupancy.total_objects = r.take_u64();
    s.occupancy.total_bytes = r.take_u64();
    result.occupancy_series.push_back(s);
  }
  result.faults.events_applied = r.take_u64();
  result.faults.failovers = r.take_u64();
  result.faults.lost_requests = r.take_u64();
  result.faults.lost_bytes = r.take_u64();
  result.faults.probe_timeouts = r.take_u64();
  result.faults.origin_fetches = r.take_u64();
  return result;
}

void save_fingerprint(util::StateWriter& w, const CheckpointFingerprint& fp) {
  w.put_string(fp.policy_description);
  w.put_u64(fp.capacity_bytes);
  w.put_double(fp.warmup_fraction);
  w.put_u8(fp.modification_rule);
  w.put_double(fp.modification_threshold);
  w.put_u32(fp.occupancy_samples);
  w.put_double(fp.latency_setup_ms);
  w.put_double(fp.latency_bytes_per_ms);
  w.put_bool(fp.densified);
  w.put_u64(fp.hot_capacity);
  w.put_u64(fp.window_requests);
  w.put_u64(fp.fault_hash);
  w.put_string(fp.trace_source);
  w.put_u64(fp.total_requests);
  w.put_u64(fp.seed);
}

CheckpointFingerprint restore_fingerprint(util::StateReader& r) {
  CheckpointFingerprint fp;
  fp.policy_description = r.take_string();
  fp.capacity_bytes = r.take_u64();
  fp.warmup_fraction = r.take_double();
  fp.modification_rule = r.take_u8();
  fp.modification_threshold = r.take_double();
  fp.occupancy_samples = r.take_u32();
  fp.latency_setup_ms = r.take_double();
  fp.latency_bytes_per_ms = r.take_double();
  fp.densified = r.take_bool();
  fp.hot_capacity = r.take_u64();
  fp.window_requests = r.take_u64();
  fp.fault_hash = r.take_u64();
  fp.trace_source = r.take_string();
  fp.total_requests = r.take_u64();
  fp.seed = r.take_u64();
  return fp;
}

void validate_fingerprint(const CheckpointFingerprint& expected,
                          const CheckpointFingerprint& found,
                          const std::string& file) {
  const auto mismatch = [&](const std::string& field,
                            const std::string& checkpoint_value,
                            const std::string& run_value) {
    throw std::runtime_error(
        "checkpoint resume: fingerprint mismatch in '" + file + "': " +
        field + " (checkpoint " + checkpoint_value + ", run " + run_value +
        ")");
  };
  const auto num = [](auto v) { return std::to_string(v); };
  if (found.policy_description != expected.policy_description) {
    mismatch("policy", "'" + found.policy_description + "'",
             "'" + expected.policy_description + "'");
  }
  if (found.capacity_bytes != expected.capacity_bytes) {
    mismatch("capacity_bytes", num(found.capacity_bytes),
             num(expected.capacity_bytes));
  }
  if (found.warmup_fraction != expected.warmup_fraction) {
    mismatch("warmup_fraction", num(found.warmup_fraction),
             num(expected.warmup_fraction));
  }
  if (found.modification_rule != expected.modification_rule) {
    mismatch("modification_rule", num(found.modification_rule),
             num(expected.modification_rule));
  }
  if (found.modification_threshold != expected.modification_threshold) {
    mismatch("modification_threshold", num(found.modification_threshold),
             num(expected.modification_threshold));
  }
  if (found.occupancy_samples != expected.occupancy_samples) {
    mismatch("occupancy_samples", num(found.occupancy_samples),
             num(expected.occupancy_samples));
  }
  if (found.latency_setup_ms != expected.latency_setup_ms) {
    mismatch("latency_setup_ms", num(found.latency_setup_ms),
             num(expected.latency_setup_ms));
  }
  if (found.latency_bytes_per_ms != expected.latency_bytes_per_ms) {
    mismatch("latency_bytes_per_ms", num(found.latency_bytes_per_ms),
             num(expected.latency_bytes_per_ms));
  }
  if (found.densified != expected.densified) {
    mismatch("densified", num(found.densified), num(expected.densified));
  }
  if (found.hot_capacity != expected.hot_capacity) {
    mismatch("hot_capacity", num(found.hot_capacity),
             num(expected.hot_capacity));
  }
  if (found.window_requests != expected.window_requests) {
    mismatch("window_requests", num(found.window_requests),
             num(expected.window_requests));
  }
  if (found.fault_hash != expected.fault_hash) {
    mismatch("fault_schedule", num(found.fault_hash),
             num(expected.fault_hash));
  }
  if (found.trace_source != expected.trace_source) {
    mismatch("trace_source", "'" + found.trace_source + "'",
             "'" + expected.trace_source + "'");
  }
  if (found.total_requests != expected.total_requests) {
    mismatch("total_requests", num(found.total_requests),
             num(expected.total_requests));
  }
  if (found.seed != expected.seed) {
    mismatch("seed", num(found.seed), num(expected.seed));
  }
}

const CheckpointSection* find_section(
    const std::vector<CheckpointSection>& sections, const std::string& name) {
  for (const CheckpointSection& s : sections) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const CheckpointSection& need_section(
    const std::vector<CheckpointSection>& sections, const std::string& name,
    const std::string& file) {
  const CheckpointSection* s = find_section(sections, name);
  if (s == nullptr) {
    throw std::runtime_error("checkpoint '" + file + "': missing section '" +
                             name + "'");
  }
  return *s;
}

std::optional<SelectedCheckpoint> select_resume_checkpoint(
    const std::string& dir) {
  g_resume_diagnostics.clear();
  std::error_code ec;
  if (!fs::exists(dir, ec)) return std::nullopt;
  std::vector<fs::path> files = list_checkpoints(dir);
  if (files.empty()) return std::nullopt;
  for (auto it = files.rbegin(); it != files.rend(); ++it) {
    try {
      std::vector<std::uint8_t> bytes = read_file_bytes(*it);
      SelectedCheckpoint selected;
      selected.sections = detail::decode_checkpoint(bytes);
      selected.file = it->filename().string();
      if (it != files.rbegin()) {
        // Fell back past damaged newer checkpoints; the run will redo the
        // small window since this older snapshot.
        g_resume_diagnostics.push_back("resuming from older checkpoint '" +
                                       selected.file + "'");
      }
      return selected;
    } catch (const std::exception& e) {
      g_resume_diagnostics.push_back("rejected '" + it->filename().string() +
                                     "': " + e.what());
    }
  }
  std::string all;
  for (const std::string& d : g_resume_diagnostics) {
    if (!all.empty()) all += "; ";
    all += d;
  }
  throw std::runtime_error("checkpoint resume: no usable checkpoint in '" +
                           dir + "' (" + all + ")");
}

void prune_checkpoints(const std::string& dir, std::size_t keep) {
  if (keep == 0) keep = 1;
  std::vector<fs::path> files = list_checkpoints(dir);
  std::error_code ec;
  while (files.size() > keep) {
    fs::remove(files.front(), ec);
    files.erase(files.begin());
  }
}

}  // namespace detail

CheckpointedRun simulate_stream_checkpointed(trace::RequestStream& stream,
                                             cache::CacheFrontend& frontend,
                                             const StreamCheckpointJob& job) {
  detail::checkpointed_precheck(job);
  const CheckpointFingerprint fp = detail::make_stream_fingerprint(
      frontend.description(), frontend.capacity_bytes(), stream, job);
  if (job.densified) {
    if (job.sink != nullptr) {
      return detail::dispatch_faults<true>(stream, frontend, job, fp,
                                           *job.sink);
    }
    obs::NullSink null;
    return detail::dispatch_faults<true>(stream, frontend, job, fp, null);
  }
  if (job.sink != nullptr) {
    return detail::dispatch_faults<false>(stream, frontend, job, fp,
                                          *job.sink);
  }
  obs::NullSink null;
  return detail::dispatch_faults<false>(stream, frontend, job, fp, null);
}

CheckpointedRun simulate_stream_checkpointed(trace::RequestStream& stream,
                                             std::uint64_t capacity_bytes,
                                             const cache::PolicySpec& policy,
                                             const StreamCheckpointJob& job) {
  // The kernel engine only supports plain jobs (no sink, no faults); an
  // instrumented or fault-injected job falls back to the virtual path —
  // routed_kernel then throws if the caller forced KernelMode::kOn.
  if (job.sink == nullptr && job.faults == nullptr) {
    if (auto kernel =
            detail::routed_kernel(capacity_bytes, policy, job.options)) {
      return kernel->run_stream_checkpointed(stream, job);
    }
  } else if (job.options.kernel == KernelMode::kOn) {
    throw std::invalid_argument(
        "KernelMode::kOn: checkpointed kernel replay supports neither a "
        "RecordingSink nor a FaultSchedule");
  }
  const std::uint64_t admission_limit =
      policy.kind == cache::PolicyKind::kLruThreshold
          ? policy.admission_threshold_bytes
          : 0;
  cache::SingleCacheFrontend frontend(
      capacity_bytes, cache::make_policy(policy), admission_limit);
  return simulate_stream_checkpointed(stream, frontend, job);
}

}  // namespace webcache::sim
