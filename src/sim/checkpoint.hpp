// Crash-safe checkpoint/resume for the streaming replay pipeline.
//
// A long replay is a deterministic state machine: (trace, frontend config,
// options, schedule, seed) fully determine every counter. simulate_stream_
// checkpointed() drives the same ReplayCore as simulate_stream(), but every
// `every` requests it serializes the complete run state — policy and object
// table (CacheFrontend::save_state), last-size tracker, online densifier
// mapping, metrics windows, accumulated SimResult, fault-schedule cursor
// position — into a versioned, per-section-CRC'd checkpoint file, written
// atomically (temp file + fsync + rename + directory fsync). A run killed
// at any instant — including mid-checkpoint-write — resumes from the newest
// valid checkpoint and finishes with counters, latency doubles and
// webcache.metrics.v1 windows bit-identical to an uninterrupted run
// (tests/cli/cli_crash_test.py kills and resumes real processes to pin
// this).
//
// Torn, truncated, bit-flipped or stale files are rejected with a named
// diagnostic (never silently restored): structural damage falls back to the
// next-older checkpoint, a fingerprint mismatch (different policy, trace,
// seed, options...) aborts the resume outright — resuming a run under a
// different configuration would produce confidently wrong numbers.
//
// File format (all integers little-endian):
//   magic "WCKP" | u32 version | u32 section_count
//   then per section:
//     u32 name_len | name bytes | u64 payload_len | u32 crc32(payload) |
//     payload
// Sections: "fingerprint", "result", "cache", "lastsize", and optionally
// "densifier" (densified runs) and "metrics" (instrumented runs).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cache/frontend.hpp"
#include "obs/stats_sink.hpp"
#include "sim/faults.hpp"
#include "sim/simulator.hpp"
#include "trace/online_densify.hpp"
#include "trace/request_stream.hpp"

namespace webcache::sim {

/// Run identity captured in every checkpoint and re-validated on resume.
/// Two runs with equal fingerprints replay the same deterministic state
/// machine, so a checkpoint from one may seed the other.
struct CheckpointFingerprint {
  std::string policy_description;  // CacheFrontend::description()
  std::uint64_t capacity_bytes = 0;
  double warmup_fraction = 0.0;
  std::uint8_t modification_rule = 0;
  double modification_threshold = 0.0;
  std::uint32_t occupancy_samples = 0;
  double latency_setup_ms = 0.0;
  double latency_bytes_per_ms = 0.0;
  bool densified = false;
  std::uint64_t hot_capacity = 0;     // densified runs only
  std::uint64_t window_requests = 0;  // 0 = uninstrumented run
  std::uint64_t fault_hash = 0;       // 0 = no fault schedule
  std::string trace_source;           // caller-chosen trace identity tag
  std::uint64_t total_requests = 0;
  std::uint64_t seed = 0;  // workload seed (0 when not applicable)
};

/// FNV-1a hash over the schedule's events and probe parameters; folded into
/// the fingerprint so a checkpoint can never resume under a different fault
/// scenario.
std::uint64_t fault_schedule_hash(const FaultSchedule& schedule);

struct CheckpointConfig {
  /// Directory holding the checkpoint ring; created if absent.
  std::string dir;
  /// Checkpoint cadence in requests (0 = never write; the run is then
  /// bit-identical to simulate_stream by construction — no per-request
  /// bookkeeping is added).
  std::uint64_t every = 0;
  /// Retention: newest `keep` checkpoint files survive, older ones are
  /// pruned after each successful write.
  std::size_t keep = 3;
  /// Resume from the newest valid checkpoint in `dir` (cold start when the
  /// directory holds none).
  bool resume = false;
  /// Trace identity recorded in the fingerprint (e.g. file path + record
  /// count, or a generator spec string).
  std::string trace_source;
  /// Workload seed recorded in the fingerprint.
  std::uint64_t seed = 0;
  /// Test seam: stop (after writing a final checkpoint, when `every` > 0)
  /// once this many requests have been replayed; 0 = run to the end. The
  /// in-process round-trip tests use it to split a run without killing the
  /// process.
  std::uint64_t stop_after_requests = 0;
};

struct CheckpointedRun {
  SimResult result;
  /// Request index the run resumed from (0 = cold start).
  std::uint64_t resumed_from = 0;
  std::uint64_t checkpoints_written = 0;
  /// True when stop_after_requests ended the run early (result is partial).
  bool stopped_early = false;
};

/// Optional collaborators for the checkpointed replay. The four
/// combinations of {densified, sink} x {faults, none} dispatch to the same
/// ReplayCore instantiations the plain simulate_stream overloads use.
struct StreamCheckpointJob {
  SimulatorOptions options{};
  CheckpointConfig checkpoint{};
  bool densified = false;
  trace::OnlineDensifier::Options densify_options{};
  obs::RecordingSink* sink = nullptr;      // optional instrumentation
  const FaultSchedule* faults = nullptr;   // optional fault scenario
};

/// The checkpointed streaming replay. With checkpoint.every == 0 and
/// checkpoint.resume == false this replays exactly like the matching
/// simulate_stream overload. Throws std::runtime_error on unusable
/// checkpoint state (fingerprint mismatch, or a resume where every
/// candidate file is corrupt); structurally invalid files are skipped with
/// a named reason (retrievable via checkpoint_resume_diagnostics() for the
/// last resume attempt on this thread).
CheckpointedRun simulate_stream_checkpointed(trace::RequestStream& stream,
                                             cache::CacheFrontend& frontend,
                                             const StreamCheckpointJob& job);

/// PolicySpec-taking form: consults the kernel registry (sim/kernel.hpp)
/// like simulate()/simulate_stream(). Kernel routing only applies to plain
/// jobs (no sink, no faults — the combinations the monomorphized engine
/// supports); instrumented or fault-injected jobs fall back to the virtual
/// path, and SimulatorOptions::kernel == kOn then throws. Checkpoints are
/// interchangeable between the kernel and virtual engines: both derive the
/// same fingerprint and serialize identical state.
CheckpointedRun simulate_stream_checkpointed(trace::RequestStream& stream,
                                             std::uint64_t capacity_bytes,
                                             const cache::PolicySpec& policy,
                                             const StreamCheckpointJob& job);

/// Diagnostics (file name + reason) for checkpoint files skipped during the
/// most recent resume attempt on this thread; empty when the newest file
/// validated cleanly.
const std::vector<std::string>& checkpoint_resume_diagnostics();

// ---- exposed for the corruption fuzz suite and the CLI ----

namespace detail {

/// One parsed checkpoint section.
struct CheckpointSection {
  std::string name;
  std::vector<std::uint8_t> payload;
};

/// Serializes sections into the WCKP container format.
std::vector<std::uint8_t> encode_checkpoint(
    const std::vector<CheckpointSection>& sections);

/// Parses and CRC-validates a WCKP image. Throws std::runtime_error with a
/// named diagnostic ("bad magic", "section 'cache': CRC mismatch", ...) on
/// any structural damage.
std::vector<CheckpointSection> decode_checkpoint(
    const std::vector<std::uint8_t>& bytes);

/// Atomically writes `bytes` to `path`: temp file in the same directory,
/// fsync, rename over the target, fsync the directory. Honors the
/// WEBCACHE_CHECKPOINT_CRASH_AT_WRITE torn-write fault hook.
void atomic_write_file(const std::string& path,
                       const std::vector<std::uint8_t>& bytes);

/// Serialize / restore a SimResult (used by the "result" section and by
/// tests).
void save_sim_result(util::StateWriter& w, const SimResult& result);
SimResult restore_sim_result(util::StateReader& r);

/// Serialize / validate a fingerprint. validate() throws std::runtime_error
/// naming the first mismatching field.
void save_fingerprint(util::StateWriter& w, const CheckpointFingerprint& fp);
CheckpointFingerprint restore_fingerprint(util::StateReader& r);
void validate_fingerprint(const CheckpointFingerprint& expected,
                          const CheckpointFingerprint& found,
                          const std::string& file);

}  // namespace detail

}  // namespace webcache::sim
