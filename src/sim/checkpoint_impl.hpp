// Templated body of the checkpointed streaming replay (sim/checkpoint.hpp).
//
// run_checkpointed() used to be a file-local template in checkpoint.cpp,
// instantiated only on cache::CacheFrontend. The monomorphized replay
// kernels (sim/kernel.hpp) re-instantiate the identical template on a
// concrete CacheConcrete<Policy>, so the checkpoint file format, the resume
// protocol and the crash hooks are shared by construction — a checkpoint
// written by either engine resumes under the other.
//
// Only the templates live here; the filesystem helpers (checkpoint
// selection, pruning, atomic writes) stay in checkpoint.cpp and are
// declared below.
#pragma once

#include <csignal>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <system_error>
#include <type_traits>
#include <vector>

#include "obs/stats_sink.hpp"
#include "sim/checkpoint.hpp"
#include "sim/faults.hpp"
#include "sim/last_size.hpp"
#include "sim/replay_core.hpp"
#include "trace/online_densify.hpp"
#include "trace/request_stream.hpp"
#include "util/state_io.hpp"

namespace webcache::sim::detail {

/// Environment-variable crash/fault hooks (0 when unset). Defined in
/// checkpoint.cpp.
std::uint64_t checkpoint_env_u64(const char* name);

/// Zero-padded "checkpoint-<consumed>.wckp" file name.
std::string checkpoint_file_name(std::uint64_t consumed);

/// Required-section lookup with a named diagnostic.
const CheckpointSection& need_section(
    const std::vector<CheckpointSection>& sections, const std::string& name,
    const std::string& file);

struct SelectedCheckpoint {
  std::string file;  // file name (not full path), for diagnostics
  std::vector<CheckpointSection> sections;
};

/// Newest structurally valid checkpoint in `dir`. Damaged files are skipped
/// with a recorded diagnostic; if files exist but none validate, throws —
/// the caller asked to resume and silently cold-starting would discard the
/// run they meant to continue.
std::optional<SelectedCheckpoint> select_resume_checkpoint(
    const std::string& dir);

/// Retention: keep the newest `keep` checkpoint files, drop older ones.
void prune_checkpoints(const std::string& dir, std::size_t keep);

/// The sparse last-size map cannot reserve for the whole stream (that is
/// the point of streaming); cap the up-front reservation and let it grow.
inline std::size_t stream_reserve_hint(std::uint64_t total_requests) {
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(total_requests, 1 << 20));
}

/// Shared entry validation for both checkpointed engines.
inline void checkpointed_precheck(const StreamCheckpointJob& job) {
  validate_options(job.options);
  if ((job.checkpoint.every != 0 || job.checkpoint.resume) &&
      job.checkpoint.dir.empty()) {
    throw std::invalid_argument(
        "simulate_stream_checkpointed: checkpoint dir required");
  }
}

/// Fingerprint of a checkpointed run. Identity is the *replayed state
/// machine*, not the engine: description/capacity instead of a frontend
/// reference so the kernel path (no CacheFrontend object) fingerprints
/// identically to the virtual path.
inline CheckpointFingerprint make_stream_fingerprint(
    std::string policy_description, std::uint64_t capacity_bytes,
    const trace::RequestStream& stream, const StreamCheckpointJob& job) {
  CheckpointFingerprint fp;
  fp.policy_description = std::move(policy_description);
  fp.capacity_bytes = capacity_bytes;
  fp.warmup_fraction = job.options.warmup_fraction;
  fp.modification_rule =
      static_cast<std::uint8_t>(job.options.modification_rule);
  fp.modification_threshold = job.options.modification_threshold;
  fp.occupancy_samples = job.options.occupancy_samples;
  fp.latency_setup_ms = job.options.latency_setup_ms;
  fp.latency_bytes_per_ms = job.options.latency_bytes_per_ms;
  fp.densified = job.densified;
  fp.hot_capacity = job.densified ? job.densify_options.hot_capacity : 0;
  fp.window_requests = job.sink != nullptr ? job.sink->window_requests() : 0;
  fp.fault_hash = job.faults != nullptr ? fault_schedule_hash(*job.faults) : 0;
  fp.trace_source = job.checkpoint.trace_source;
  fp.total_requests = stream.total_requests();
  fp.seed = job.checkpoint.seed;
  return fp;
}

template <bool Densified, typename Sink, typename Faults, typename Frontend>
CheckpointedRun run_checkpointed(trace::RequestStream& stream,
                                 Frontend& frontend,
                                 const StreamCheckpointJob& job,
                                 const CheckpointFingerprint& fp, Sink& sink,
                                 Faults* faults) {
  namespace fs = std::filesystem;
  constexpr bool kRecording = std::is_same_v<Sink, obs::RecordingSink>;
  using LastSize = std::conditional_t<Densified, GrowingDenseLastSize,
                                      SparseLastSize>;
  constexpr bool kFaulted = !std::is_same_v<Faults, NoFaultReplay>;

  const CheckpointConfig& config = job.checkpoint;
  auto last_size = [&] {
    if constexpr (Densified) {
      return LastSize{};
    } else {
      return LastSize(stream_reserve_hint(stream.total_requests()));
    }
  }();
  std::optional<trace::OnlineDensifier> densifier;
  if constexpr (Densified) densifier.emplace(job.densify_options);

  if constexpr (kRecording) sink.begin_run(frontend);
  ReplayCore<LastSize, Sink, Faults, Frontend> core(
      frontend, job.options, last_size, sink, stream.total_requests(), faults);

  CheckpointedRun out;
  std::uint64_t skip = 0;
  if (config.resume) {
    if (auto selected = select_resume_checkpoint(config.dir)) {
      const std::string& file = selected->file;
      const auto reader = [&](const CheckpointSection& s) {
        return util::StateReader(s.payload.data(), s.payload.size(), s.name);
      };
      {
        auto r = reader(need_section(selected->sections, "fingerprint", file));
        validate_fingerprint(fp, restore_fingerprint(r), file);
        r.expect_end();
      }
      std::uint64_t consumed = 0;
      {
        auto r = reader(need_section(selected->sections, "result", file));
        consumed = r.take_u64();
        core.restore(consumed, restore_sim_result(r));
        r.expect_end();
      }
      {
        auto r = reader(need_section(selected->sections, "cache", file));
        frontend.restore_state(r);
        r.expect_end();
      }
      {
        auto r = reader(need_section(selected->sections, "lastsize", file));
        last_size.restore_state(r);
        r.expect_end();
      }
      if constexpr (Densified) {
        auto r = reader(need_section(selected->sections, "densifier", file));
        densifier->restore_state(r);
        r.expect_end();
      }
      if constexpr (kRecording) {
        auto r = reader(need_section(selected->sections, "metrics", file));
        sink.restore_state(r);
        r.expect_end();
      }
      if constexpr (kFaulted) {
        // The schedule prefix is pure state: replay it without side effects
        // (the crashed-cache contents and the sink's event counters were
        // already restored above).
        faults->advance(consumed, [](std::uint32_t, obs::FaultEventKind) {});
      }
      skip = consumed;
      out.resumed_from = consumed;
      stream.reset();
    }
  }

  const std::uint64_t crash_at = checkpoint_env_u64("WEBCACHE_CRASH_AT_REQUEST");
  const auto write_checkpoint = [&] {
    std::vector<CheckpointSection> sections;
    const auto add = [&sections](const char* name, util::StateWriter&& w) {
      sections.push_back({name, w.take()});
    };
    {
      util::StateWriter w;
      save_fingerprint(w, fp);
      add("fingerprint", std::move(w));
    }
    {
      util::StateWriter w;
      w.put_u64(core.consumed());
      save_sim_result(w, core.result());
      add("result", std::move(w));
    }
    {
      util::StateWriter w;
      frontend.save_state(w);
      add("cache", std::move(w));
    }
    {
      util::StateWriter w;
      last_size.save_state(w);
      add("lastsize", std::move(w));
    }
    if constexpr (Densified) {
      util::StateWriter w;
      densifier->save_state(w);
      add("densifier", std::move(w));
    }
    if constexpr (kRecording) {
      util::StateWriter w;
      sink.save_state(w);
      add("metrics", std::move(w));
    }
    const fs::path path =
        fs::path(config.dir) / checkpoint_file_name(core.consumed());
    atomic_write_file(path.string(), encode_checkpoint(sections));
    prune_checkpoints(config.dir, config.keep);
    ++out.checkpoints_written;
  };

  if (config.every != 0) {
    std::error_code ec;
    fs::create_directories(config.dir, ec);
  }

  for (auto chunk = stream.next_chunk(); !chunk.empty();
       chunk = stream.next_chunk()) {
    for (const trace::Request& r : chunk) {
      if (skip > 0) {
        // Fast-forward after resume: requests up to the checkpoint were
        // already accounted; they must not touch the restored densifier or
        // last-size state again.
        --skip;
        continue;
      }
      if (crash_at != 0 && core.consumed() + 1 == crash_at) {
        std::raise(SIGKILL);
      }
      if constexpr (Densified) {
        trace::Request dense = r;
        dense.document = densifier->densify(r.document);
        core.step(dense);
      } else {
        core.step(r);
      }
      const std::uint64_t done = core.consumed();
      const bool stopping = config.stop_after_requests != 0 &&
                            done == config.stop_after_requests;
      if (config.every != 0 && (done % config.every == 0 || stopping)) {
        write_checkpoint();
      }
      if (stopping) {
        if constexpr (kRecording) sink.end_run();
        out.result = core.finish();
        out.stopped_early = true;
        return out;
      }
    }
  }
  if constexpr (kRecording) sink.end_run();
  out.result = core.finish();
  return out;
}

template <bool Densified, typename Sink, typename Frontend>
CheckpointedRun dispatch_faults(trace::RequestStream& stream,
                                Frontend& frontend,
                                const StreamCheckpointJob& job,
                                const CheckpointFingerprint& fp, Sink& sink) {
  if (job.faults != nullptr) {
    FaultRun run(*job.faults, frontend.fault_domains(), /*has_root=*/false);
    return run_checkpointed<Densified, Sink, FaultRun>(stream, frontend, job,
                                                       fp, sink, &run);
  }
  return run_checkpointed<Densified, Sink, NoFaultReplay>(stream, frontend,
                                                          job, fp, sink,
                                                          nullptr);
}

}  // namespace webcache::sim::detail
