#include "sim/faults.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "sim/last_size.hpp"
#include "sim/replay_core.hpp"

namespace webcache::sim {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kEdgeCrash:
      return "edge-crash";
    case FaultKind::kEdgeRecover:
      return "edge-recover";
    case FaultKind::kRootOutage:
      return "root-outage";
    case FaultKind::kRootRecover:
      return "root-recover";
    case FaultKind::kProbeDegrade:
      return "probe-degrade";
    case FaultKind::kProbeRestore:
      return "probe-restore";
  }
  return "?";
}

namespace {

[[noreturn]] void parse_fail(std::uint64_t line, const std::string& what) {
  throw std::invalid_argument("fault schedule line " + std::to_string(line) +
                              ": " + what);
}

bool parse_kind(const std::string& word, FaultKind& kind, bool& needs_node) {
  struct Entry {
    FaultKind kind;
    bool needs_node;
  };
  static const struct {
    const char* word;
    Entry entry;
  } kTable[] = {
      {"edge-crash", {FaultKind::kEdgeCrash, true}},
      {"edge-recover", {FaultKind::kEdgeRecover, true}},
      {"root-outage", {FaultKind::kRootOutage, false}},
      {"root-recover", {FaultKind::kRootRecover, false}},
      {"probe-degrade", {FaultKind::kProbeDegrade, true}},
      {"probe-restore", {FaultKind::kProbeRestore, true}},
  };
  for (const auto& row : kTable) {
    if (word == row.word) {
      kind = row.entry.kind;
      needs_node = row.entry.needs_node;
      return true;
    }
  }
  return false;
}

std::uint64_t parse_u64(const std::string& word, std::uint64_t line,
                        const char* what) {
  if (word.empty() ||
      !std::all_of(word.begin(), word.end(),
                   [](unsigned char c) { return std::isdigit(c) != 0; })) {
    parse_fail(line, std::string(what) + " must be a non-negative integer, "
                         "got '" + word + "'");
  }
  try {
    return std::stoull(word);
  } catch (const std::out_of_range&) {
    parse_fail(line, std::string(what) + " out of range: '" + word + "'");
  }
}

}  // namespace

FaultSchedule parse_fault_schedule(std::istream& in) {
  FaultSchedule schedule;
  std::string line;
  std::uint64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (const std::size_t hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream tokens(line);
    std::string first;
    if (!(tokens >> first)) continue;  // blank / comment-only line

    if (std::isdigit(static_cast<unsigned char>(first[0])) != 0) {
      FaultEvent event;
      event.at_request = parse_u64(first, line_number, "request index");
      if (event.at_request == 0) {
        parse_fail(line_number, "request index is 1-based, got 0");
      }
      std::string kind_word;
      if (!(tokens >> kind_word)) {
        parse_fail(line_number, "missing event kind");
      }
      bool needs_node = false;
      if (!parse_kind(kind_word, event.kind, needs_node)) {
        parse_fail(line_number, "unknown event kind '" + kind_word + "'");
      }
      std::string node_word;
      const bool has_node = static_cast<bool>(tokens >> node_word);
      if (needs_node && !has_node) {
        parse_fail(line_number,
                   std::string(to_string(event.kind)) + " needs a node index");
      }
      if (!needs_node && has_node) {
        parse_fail(line_number,
                   std::string(to_string(event.kind)) + " takes no node");
      }
      if (needs_node) {
        const std::uint64_t node =
            parse_u64(node_word, line_number, "node index");
        if (node > 0xfffffffeULL) {
          parse_fail(line_number, "node index out of range: '" + node_word +
                                      "'");
        }
        event.node = static_cast<std::uint32_t>(node);
      }
      std::string extra;
      if (tokens >> extra) {
        parse_fail(line_number, "trailing token '" + extra + "'");
      }
      schedule.events.push_back(event);
      continue;
    }

    // Directive line.
    std::string value;
    if (!(tokens >> value)) {
      parse_fail(line_number, "directive '" + first + "' needs a value");
    }
    std::string extra;
    if (tokens >> extra) {
      parse_fail(line_number, "trailing token '" + extra + "'");
    }
    if (first == "max-probe-retries") {
      const std::uint64_t v = parse_u64(value, line_number, first.c_str());
      if (v > 0xffffffffULL) {
        parse_fail(line_number, "max-probe-retries out of range");
      }
      schedule.max_probe_retries = static_cast<std::uint32_t>(v);
    } else if (first == "probe-timeout-rate") {
      double rate = 0.0;
      try {
        std::size_t consumed = 0;
        rate = std::stod(value, &consumed);
        if (consumed != value.size()) throw std::invalid_argument(value);
      } catch (const std::exception&) {
        parse_fail(line_number, "probe-timeout-rate must be a number, got '" +
                                    value + "'");
      }
      if (!(rate >= 0.0 && rate <= 1.0)) {
        parse_fail(line_number, "probe-timeout-rate must be in [0, 1]");
      }
      schedule.probe_timeout_rate = rate;
    } else if (first == "seed") {
      schedule.seed = parse_u64(value, line_number, "seed");
    } else {
      parse_fail(line_number, "unknown directive '" + first + "'");
    }
  }
  return schedule;
}

FaultSchedule load_fault_schedule_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open fault schedule: " + path);
  }
  return parse_fault_schedule(in);
}

FaultRun::FaultRun(const FaultSchedule& schedule, std::uint32_t node_count,
                   bool has_root)
    : events_(schedule.events),
      node_count_(node_count),
      has_root_(has_root),
      up_count_(node_count),
      max_probe_retries_(schedule.max_probe_retries),
      probe_timeout_rate_(schedule.probe_timeout_rate),
      seed_(schedule.seed),
      node_up_(node_count, 1),
      degraded_(node_count, 0) {
  if (node_count == 0) {
    throw std::invalid_argument("FaultRun: mesh has no nodes");
  }
  if (!(schedule.probe_timeout_rate >= 0.0 &&
        schedule.probe_timeout_rate <= 1.0)) {
    throw std::invalid_argument("FaultRun: probe_timeout_rate out of [0, 1]");
  }
  for (const FaultEvent& ev : events_) {
    if (ev.at_request == 0) {
      throw std::invalid_argument(
          "FaultRun: event request indices are 1-based");
    }
    const bool root_event = ev.kind == FaultKind::kRootOutage ||
                            ev.kind == FaultKind::kRootRecover;
    const bool probe_event = ev.kind == FaultKind::kProbeDegrade ||
                             ev.kind == FaultKind::kProbeRestore;
    if ((root_event || probe_event) && !has_root_) {
      throw std::invalid_argument(
          std::string("FaultRun: ") + to_string(ev.kind) +
          " event in a run without a root/sibling mesh (partitioned cache)");
    }
    if (!root_event && ev.node >= node_count_) {
      throw std::invalid_argument(
          std::string("FaultRun: ") + to_string(ev.kind) + " node " +
          std::to_string(ev.node) + " out of range (mesh has " +
          std::to_string(node_count_) + " nodes)");
    }
  }
  // Stable: same-index events keep schedule-file order.
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at_request < b.at_request;
                   });
}

namespace {

// Drives the shared per-request body (sim/replay_core.hpp) with the
// fault-domain bookkeeping compiled in: a down domain loses the request
// before the cache is consulted at all. Domains come from the frontend's
// fault seams (one for a plain cache, one per class partition for a
// PartitionedCache). The empty-schedule equivalence test in
// tests/sim/fault_equivalence_test.cpp holds this against the plain loop.
template <typename LastSize, obs::StatsSink Sink>
SimResult frontend_fault_loop(const trace::Trace& trace,
                              cache::CacheFrontend& cache,
                              const SimulatorOptions& options,
                              LastSize& last_size, FaultRun& faults,
                              Sink& sink) {
  detail::ReplayCore<LastSize, Sink, FaultRun> core(
      cache, options, last_size, sink, trace.requests.size(), &faults);
  for (const trace::Request& r : trace.requests) core.step(r);
  return core.finish();
}

using detail::validate_options;

FaultRun make_frontend_run(const cache::CacheFrontend& frontend,
                           const FaultSchedule& faults) {
  return FaultRun(faults, frontend.fault_domains(), /*has_root=*/false);
}

}  // namespace

SimResult simulate(const trace::Trace& trace, cache::CacheFrontend& frontend,
                   const SimulatorOptions& options,
                   const FaultSchedule& faults) {
  validate_options(options);
  FaultRun run = make_frontend_run(frontend, faults);
  detail::SparseLastSize last_size(trace.requests.size());
  obs::NullSink sink;
  return frontend_fault_loop(trace, frontend, options, last_size, run, sink);
}

SimResult simulate(const trace::DenseTrace& trace,
                   cache::CacheFrontend& frontend,
                   const SimulatorOptions& options,
                   const FaultSchedule& faults) {
  validate_options(options);
  FaultRun run = make_frontend_run(frontend, faults);
  frontend.reserve_dense_ids(trace.document_count());
  detail::DenseLastSize last_size(trace.document_count());
  obs::NullSink sink;
  return frontend_fault_loop(trace.trace, frontend, options, last_size, run,
                             sink);
}

SimResult simulate(const trace::Trace& trace, cache::CacheFrontend& frontend,
                   const SimulatorOptions& options, const FaultSchedule& faults,
                   obs::RecordingSink& sink) {
  validate_options(options);
  FaultRun run = make_frontend_run(frontend, faults);
  detail::SparseLastSize last_size(trace.requests.size());
  sink.begin_run(frontend);
  SimResult result =
      frontend_fault_loop(trace, frontend, options, last_size, run, sink);
  sink.end_run();
  return result;
}

SimResult simulate(const trace::DenseTrace& trace,
                   cache::CacheFrontend& frontend,
                   const SimulatorOptions& options, const FaultSchedule& faults,
                   obs::RecordingSink& sink) {
  validate_options(options);
  FaultRun run = make_frontend_run(frontend, faults);
  frontend.reserve_dense_ids(trace.document_count());
  detail::DenseLastSize last_size(trace.document_count());
  sink.begin_run(frontend);
  SimResult result = frontend_fault_loop(trace.trace, frontend, options,
                                         last_size, run, sink);
  sink.end_run();
  return result;
}

SimResult simulate(const trace::Trace& trace, cache::PartitionedCache& cache,
                   const SimulatorOptions& options,
                   const FaultSchedule& faults) {
  return simulate(trace, static_cast<cache::CacheFrontend&>(cache), options,
                  faults);
}

SimResult simulate(const trace::DenseTrace& trace,
                   cache::PartitionedCache& cache,
                   const SimulatorOptions& options,
                   const FaultSchedule& faults) {
  return simulate(trace, static_cast<cache::CacheFrontend&>(cache), options,
                  faults);
}

SimResult simulate(const trace::Trace& trace, cache::PartitionedCache& cache,
                   const SimulatorOptions& options, const FaultSchedule& faults,
                   obs::RecordingSink& sink) {
  return simulate(trace, static_cast<cache::CacheFrontend&>(cache), options,
                  faults, sink);
}

SimResult simulate(const trace::DenseTrace& trace,
                   cache::PartitionedCache& cache,
                   const SimulatorOptions& options, const FaultSchedule& faults,
                   obs::RecordingSink& sink) {
  return simulate(trace, static_cast<cache::CacheFrontend&>(cache), options,
                  faults, sink);
}

}  // namespace webcache::sim
