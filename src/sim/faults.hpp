// Deterministic fault injection for the cache mesh.
//
// A FaultSchedule is a list of timed node events — edge crash (contents
// lost, node down), edge recovery (cold restart), root outage/recovery,
// and probe-path degradation (sibling probes to a node time out, with
// bounded retry). Events are keyed by 1-based trace request index and
// applied immediately before that request enters the replay loop, so a run
// is a pure function of (trace, config, schedule): reproducible, and
// resumable from any request index by replaying the schedule prefix.
//
// Routing under faults (hierarchy):
//  * designated edge down  -> fail over to the siblings (when cooperation
//    is on; down siblings are skipped, degraded ones may time out), then to
//    the root; nothing is replicated at the dead edge;
//  * root down             -> edge misses are served straight from the
//    origin and still warm the edge cache;
//  * edge AND root down    -> the request is LOST (counted in the request
//    totals, never as a hit).
// A partitioned cache maps node i to document-class partition i; a down
// partition has no failover path inside one box, so its requests are lost.
//
// Probe timeouts are deterministic: a hash of (seed, request index,
// sibling, attempt) against probe_timeout_rate decides each attempt, and a
// sibling is skipped only after 1 + max_probe_retries attempts all time
// out.
//
// With an empty schedule every fault-aware entry point is bit-identical to
// its plain counterpart (tests/sim/fault_equivalence_test.cpp).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "cache/partitioned.hpp"
#include "obs/stats_sink.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"
#include "trace/dense_trace.hpp"
#include "trace/request.hpp"

namespace webcache::sim {

enum class FaultKind : std::uint8_t {
  kEdgeCrash,     // edge node fails: contents lost, node down
  kEdgeRecover,   // edge node restarts cold
  kRootOutage,    // root unreachable (its contents are lost with it)
  kRootRecover,   // root restarts cold
  kProbeDegrade,  // sibling probes to the node start timing out
  kProbeRestore,  // probe path to the node healthy again
};

/// The schedule-file keyword for a kind ("edge-crash", ...).
const char* to_string(FaultKind kind);

struct FaultEvent {
  /// 1-based trace request index; the event is applied immediately before
  /// this request. Indices past the end of the trace simply never fire.
  std::uint64_t at_request = 0;
  FaultKind kind = FaultKind::kEdgeCrash;
  /// Edge index (or partition/document-class index); ignored by root
  /// events.
  std::uint32_t node = 0;
};

/// A complete fault scenario. Events need not be pre-sorted; FaultRun
/// orders them (stably, so same-index events keep file order).
struct FaultSchedule {
  std::vector<FaultEvent> events;
  /// Retries after the first timed-out probe attempt: a degraded sibling
  /// is given 1 + max_probe_retries attempts per request.
  std::uint32_t max_probe_retries = 1;
  /// Probability that one probe attempt to a degraded sibling times out
  /// (1.0 = degraded siblings are unreachable; must be in [0, 1]).
  double probe_timeout_rate = 1.0;
  /// Seed for the deterministic probe-timeout hash.
  std::uint64_t seed = 0;

  bool empty() const { return events.empty(); }
};

/// Parses the text schedule format:
///
///   # comment                     (also trailing, after '#')
///   max-probe-retries 2           (directives, any order)
///   probe-timeout-rate 0.75
///   seed 42
///   500  edge-crash 0             (<at_request> <kind> [node])
///   800  edge-recover 0
///   1000 root-outage              (root events take no node)
///   1200 root-recover
///   600  probe-degrade 1
///   700  probe-restore 1
///
/// Malformed lines throw std::invalid_argument naming the line number and
/// reason.
FaultSchedule parse_fault_schedule(std::istream& in);

/// Loads and parses a schedule file (std::runtime_error if unreadable).
FaultSchedule load_fault_schedule_file(const std::string& path);

namespace detail {

// SplitMix64 finalizer — the same mixer the edge-assignment hash uses.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace detail

/// The runtime state machine a fault-aware replay loop drives: the sorted
/// schedule plus per-node up/degraded state. Construction validates the
/// schedule against the mesh shape (node indices in range; root and probe
/// events only where a root exists — a partitioned run has neither root
/// nor siblings) and throws std::invalid_argument otherwise.
class FaultRun {
 public:
  /// Replay loops select fault handling with `if constexpr` on this.
  static constexpr bool kEnabled = true;

  FaultRun(const FaultSchedule& schedule, std::uint32_t node_count,
           bool has_root);

  /// Applies every event scheduled at or before request `index` (1-based).
  /// No-op events (crashing a down node, recovering an up one, degrading a
  /// degraded one) are skipped silently; for each state-changing event,
  /// after the state flips, on_apply(node, obs::FaultEventKind) fires with
  /// node == obs::kRootNode for root events. The caller owns the caches and
  /// performs the actual Cache::crash() on kCrash.
  template <typename Fn>
  void advance(std::uint64_t index, Fn&& on_apply) {
    while (cursor_ < events_.size() && events_[cursor_].at_request <= index) {
      apply(events_[cursor_++], on_apply);
    }
  }

  bool node_up(std::uint32_t node) const { return node_up_[node] != 0; }
  bool root_up() const { return root_up_; }
  bool degraded(std::uint32_t node) const { return degraded_[node] != 0; }

  /// Mesh nodes currently up / in total (root included when present);
  /// feeds the availability metric.
  std::uint32_t up_nodes() const {
    return up_count_ + ((has_root_ && root_up_) ? 1u : 0u);
  }
  std::uint32_t total_nodes() const {
    return node_count_ + (has_root_ ? 1u : 0u);
  }

  /// Probe attempts a degraded sibling is given per request.
  std::uint32_t max_probe_attempts() const { return 1 + max_probe_retries_; }

  /// Whether one probe attempt times out — a pure function of
  /// (seed, request index, sibling, attempt), so runs are reproducible and
  /// resumable regardless of how requests interleave.
  bool probe_times_out(std::uint64_t index, std::uint32_t sibling,
                       std::uint32_t attempt) const {
    if (probe_timeout_rate_ >= 1.0) return true;
    if (probe_timeout_rate_ <= 0.0) return false;
    std::uint64_t h = detail::mix64(seed_ ^ detail::mix64(index));
    h = detail::mix64(h ^ ((static_cast<std::uint64_t>(sibling) << 32) |
                           attempt));
    // 53-bit mantissa -> uniform double in [0, 1).
    return static_cast<double>(h >> 11) * 0x1.0p-53 < probe_timeout_rate_;
  }

 private:
  template <typename Fn>
  void apply(const FaultEvent& ev, Fn&& on_apply) {
    switch (ev.kind) {
      case FaultKind::kEdgeCrash:
        if (node_up_[ev.node] == 0) return;
        node_up_[ev.node] = 0;
        --up_count_;
        on_apply(ev.node, obs::FaultEventKind::kCrash);
        return;
      case FaultKind::kEdgeRecover:
        if (node_up_[ev.node] != 0) return;
        node_up_[ev.node] = 1;
        ++up_count_;
        on_apply(ev.node, obs::FaultEventKind::kRecovery);
        return;
      case FaultKind::kRootOutage:
        if (!root_up_) return;
        root_up_ = false;
        on_apply(obs::kRootNode, obs::FaultEventKind::kCrash);
        return;
      case FaultKind::kRootRecover:
        if (root_up_) return;
        root_up_ = true;
        on_apply(obs::kRootNode, obs::FaultEventKind::kRecovery);
        return;
      case FaultKind::kProbeDegrade:
        if (degraded_[ev.node] != 0) return;
        degraded_[ev.node] = 1;
        on_apply(ev.node, obs::FaultEventKind::kDegrade);
        return;
      case FaultKind::kProbeRestore:
        if (degraded_[ev.node] == 0) return;
        degraded_[ev.node] = 0;
        on_apply(ev.node, obs::FaultEventKind::kRestore);
        return;
    }
  }

  std::vector<FaultEvent> events_;  // sorted by at_request (stable)
  std::size_t cursor_ = 0;
  std::uint32_t node_count_;
  bool has_root_;
  bool root_up_ = true;
  std::uint32_t up_count_;
  std::uint32_t max_probe_retries_;
  double probe_timeout_rate_;
  std::uint64_t seed_;
  // uint8_t, not bool: vector<bool> proxies cost on the per-request path.
  std::vector<std::uint8_t> node_up_;
  std::vector<std::uint8_t> degraded_;
};

// ---- fault-aware single-frontend replay ----
//
// Node i is fault domain i of the frontend (CacheFrontend::fault_domains):
// one domain for a plain cache, one per document-class partition for a
// PartitionedCache — so for partitioned caches node i is the partition of
// class i, exactly the PR-4 semantics. A crash drops the domain's contents
// (CacheFrontend::crash_domain); while down, the domain's requests are
// lost — a single box has no failover path. Root and probe events are
// rejected at construction. With an empty schedule the result is
// bit-identical to the plain simulate() overloads. Lost requests are
// excluded from the latency model (nothing was fetched for them).

SimResult simulate(const trace::Trace& trace, cache::CacheFrontend& frontend,
                   const SimulatorOptions& options,
                   const FaultSchedule& faults);

SimResult simulate(const trace::DenseTrace& trace,
                   cache::CacheFrontend& frontend,
                   const SimulatorOptions& options,
                   const FaultSchedule& faults);

SimResult simulate(const trace::Trace& trace, cache::CacheFrontend& frontend,
                   const SimulatorOptions& options, const FaultSchedule& faults,
                   obs::RecordingSink& sink);

SimResult simulate(const trace::DenseTrace& trace,
                   cache::CacheFrontend& frontend,
                   const SimulatorOptions& options, const FaultSchedule& faults,
                   obs::RecordingSink& sink);

// PartitionedCache overloads (kept for callers that name the concrete
// type): identical behavior to the CacheFrontend overloads above.

SimResult simulate(const trace::Trace& trace, cache::PartitionedCache& cache,
                   const SimulatorOptions& options,
                   const FaultSchedule& faults);

SimResult simulate(const trace::DenseTrace& trace,
                   cache::PartitionedCache& cache,
                   const SimulatorOptions& options,
                   const FaultSchedule& faults);

SimResult simulate(const trace::Trace& trace, cache::PartitionedCache& cache,
                   const SimulatorOptions& options, const FaultSchedule& faults,
                   obs::RecordingSink& sink);

SimResult simulate(const trace::DenseTrace& trace,
                   cache::PartitionedCache& cache,
                   const SimulatorOptions& options, const FaultSchedule& faults,
                   obs::RecordingSink& sink);

}  // namespace webcache::sim
