#include "sim/hierarchy.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include "cache/cache.hpp"
#include "obs/stats_sink.hpp"
#include "sim/last_size.hpp"

namespace webcache::sim {

namespace {

// SplitMix64 finalizer: decorrelates consecutive request indices.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

void count(HitCounters& counters, std::uint64_t bytes, bool hit) {
  counters.requests += 1;
  counters.requested_bytes += bytes;
  if (hit) {
    counters.hits += 1;
    counters.hit_bytes += bytes;
  }
}

void validate_config(const HierarchyConfig& config) {
  if (config.edge_count == 0) {
    throw std::invalid_argument("simulate_hierarchy: need at least one edge");
  }
  if (config.simulator.warmup_fraction < 0.0 ||
      config.simulator.warmup_fraction >= 1.0) {
    throw std::invalid_argument("simulate_hierarchy: bad warmup fraction");
  }
}

// Stand-in for FaultRun on plain (no-schedule) runs: kEnabled folds every
// fault branch away under `if constexpr`, and the constant-true node
// queries let the shared conditions ("edge_up && ...") optimize out. The
// NoFaults instantiation therefore IS the pre-fault loop — bit-identical
// results by construction (tests/sim/fault_equivalence_test.cpp then pins
// the FaultRun instantiation with an empty schedule to the same output).
struct NoFaults {
  static constexpr bool kEnabled = false;
  static constexpr bool node_up(std::uint32_t) { return true; }
  static constexpr bool root_up() { return true; }
  static constexpr bool degraded(std::uint32_t) { return false; }
};

// ICP sibling probe: scans the other edges and serves from the first one
// holding the document. Under faults, down siblings are skipped and a
// degraded sibling is consulted only if one of its bounded probe attempts
// does not time out. The caller decides about replication at the client's
// own edge.
template <typename F, obs::StatsSink Sink>
bool probe_siblings(const trace::Request& r, std::uint64_t index,
                    const HierarchyConfig& config, std::uint32_t edge_index,
                    std::vector<std::unique_ptr<cache::Cache>>& edges,
                    F& faults, Sink& sink, FaultStats& stats) {
  if (!config.sibling_cooperation) return false;
  bool sibling_hit = false;
  for (std::uint32_t e = 0; e < config.edge_count && !sibling_hit; ++e) {
    if (e == edge_index) continue;
    if constexpr (F::kEnabled) {
      if (!faults.node_up(e)) continue;
      if (faults.degraded(e)) {
        bool reachable = false;
        for (std::uint32_t attempt = 0;
             attempt < faults.max_probe_attempts() && !reachable; ++attempt) {
          if (faults.probe_times_out(index, e, attempt)) {
            sink.on_probe_timeout();
            ++stats.probe_timeouts;
          } else {
            reachable = true;
          }
        }
        if (!reachable) continue;  // unreachable this request; keep scanning
      }
    }
    if (edges[e]->contains(r.document)) {
      edges[e]->touch(r.document);  // the sibling serves the object
      sibling_hit = true;
    }
  }
  return sibling_hit;
}

// The replay loop, shared between the sparse and dense paths (only the
// last-size representation differs; the caches themselves were already
// switched by reserve_dense_ids before entry) and between plain and
// fault-injected runs (F = NoFaults folds all fault handling away).
template <typename LastSize, typename F, obs::StatsSink Sink>
HierarchyResult hierarchy_loop(const trace::Trace& trace,
                               const HierarchyConfig& config,
                               std::vector<std::unique_ptr<cache::Cache>>& edges,
                               cache::Cache& root, LastSize& last_size,
                               F& faults, Sink& sink) {
  HierarchyResult result;
  const std::uint64_t total = trace.requests.size();
  const auto warmup = static_cast<std::uint64_t>(std::floor(
      static_cast<double>(total) * config.simulator.warmup_fraction));

  std::uint64_t index = 0;
  for (const trace::Request& r : trace.requests) {
    ++index;
    const bool measured = index > warmup;
    const std::uint64_t size = r.transfer_size;

    if constexpr (F::kEnabled) {
      faults.advance(index,
                     [&](std::uint32_t node, obs::FaultEventKind kind) {
                       if (kind == obs::FaultEventKind::kCrash) {
                         if (node == obs::kRootNode) {
                           root.crash();
                         } else {
                           edges[node]->crash();
                         }
                       }
                       sink.on_fault_event(node, kind);
                       ++result.faults.events_applied;
                     });
      sink.on_node_state(faults.up_nodes(), faults.total_nodes());
    }

    // The last-size tracker follows the trace, not the caches: it records
    // what the origin served, so faults never change its view.
    detail::SizeChange change;
    if (std::uint64_t* previous = last_size.lookup(r.document, size)) {
      change = detail::classify_size_change(*previous, size, config.simulator);
      *previous = size;
    }

    const std::uint32_t edge_index =
        r.client != 0 ? edge_for_client(r.client, config.edge_count)
                      : edge_for_request(index, config.edge_count);
    cache::Cache& edge = *edges[edge_index];
    const bool edge_up = faults.node_up(edge_index);
    const bool root_up = faults.root_up();

    bool edge_hit = false;
    bool sibling_hit = false;
    bool root_hit = false;
    bool root_consulted = false;  // root.access happened for this request
    // Only read under `if constexpr (F::kEnabled)`; unused on plain runs.
    [[maybe_unused]] bool failover = false;
    [[maybe_unused]] bool origin_fetch = false;
    [[maybe_unused]] bool lost = false;
    [[maybe_unused]] const std::uint64_t probe_timeouts_before =
        result.faults.probe_timeouts;

    if (change.modified) {
      if (edge_up && root_up) {
        // The origin's copy changed: every cached copy along the path is
        // stale. Refetch through the root (a forced root miss) and cache
        // the new version at the client's edge.
        edge.erase(r.document);
        root.access(r.document, size, r.doc_class, /*force_miss=*/true);
        edge.put(r.document, size, r.doc_class);
        root_consulted = true;
      } else if constexpr (F::kEnabled) {
        if (edge_up) {
          // Root outage: the refetch comes straight from the origin and
          // still replaces the edge's stale copy.
          edge.erase(r.document);
          edge.put(r.document, size, r.doc_class);
          origin_fetch = true;
        } else if (root_up) {
          // Dead edge: the root takes the refetch for its clients.
          failover = true;
          root.access(r.document, size, r.doc_class, /*force_miss=*/true);
          root_consulted = true;
        } else {
          failover = true;
          lost = true;
        }
      }
    } else if (edge_up) {
      edge_hit = edge.touch(r.document);
      if (!edge_hit) {
        // ICP sibling probe before escalating to the parent.
        sibling_hit = probe_siblings(r, index, config, edge_index, edges,
                                     faults, sink, result.faults);
        if (sibling_hit) {
          if (config.replicate_on_sibling_hit) {
            edge.put(r.document, size, r.doc_class);
          }
        } else if (root_up) {
          root_hit = root.access(r.document, size, r.doc_class, false).kind ==
                     cache::Cache::AccessKind::kHit;
          root_consulted = true;
          // Whatever the root/origin returned is cached at the edge.
          edge.put(r.document, size, r.doc_class);
        } else if constexpr (F::kEnabled) {
          // Root outage: origin fetch, and the edge still warms.
          origin_fetch = true;
          edge.put(r.document, size, r.doc_class);
        }
      }
    } else if constexpr (F::kEnabled) {
      // The client's edge is down: route around it — siblings first (no
      // replication; there is no live edge to warm), then the root.
      failover = true;
      sibling_hit = probe_siblings(r, index, config, edge_index, edges,
                                   faults, sink, result.faults);
      if (!sibling_hit) {
        if (root_up) {
          root_hit = root.access(r.document, size, r.doc_class, false).kind ==
                     cache::Cache::AccessKind::kHit;
          root_consulted = true;
        } else {
          lost = true;
        }
      }
    }

    if constexpr (F::kEnabled) {
      if (failover) sink.on_failover(measured);
      // Per-node feeds for the warm-up curves.
      if (edge_up) {
        sink.on_node_access(edge_index, r.doc_class, size, edge_hit, measured);
      }
      if (root_consulted) {
        sink.on_node_access(obs::kRootNode, r.doc_class, size, root_hit,
                            measured);
      }
      if (lost) {
        sink.on_request_lost(r.doc_class, size, measured);
        if (measured) {
          count(result.offered, size, false);
          ++result.faults.failovers;
          ++result.faults.lost_requests;
          result.faults.lost_bytes += size;
        }
        continue;  // no per-level attribution: no level saw the request
      }
    }

    // The sink observes the client-offered stream: a "hit" is service by
    // any level (own edge, sibling, or root).
    sink.on_access(r.doc_class, size,
                   edge_hit || sibling_hit || root_hit
                       ? cache::Cache::AccessKind::kHit
                       : cache::Cache::AccessKind::kMiss,
                   measured);

    if (!measured) continue;

    if constexpr (F::kEnabled) {
      if (failover) ++result.faults.failovers;
      if (origin_fetch) ++result.faults.origin_fetches;
    }

    const double fetch_latency =
        config.simulator.latency_setup_ms +
        static_cast<double>(size) / config.simulator.latency_bytes_per_ms;
    result.all_miss_latency_ms += fetch_latency;
    // Edge-level service (own edge or sibling copy) is free; a request
    // rerouted to the root or the origin pays the fetch, plus the RTT of
    // every probe it burned on degraded siblings before escalating.
    if (!(edge_hit || sibling_hit)) result.miss_latency_ms += fetch_latency;
    if constexpr (F::kEnabled) {
      result.miss_latency_ms +=
          config.probe_rtt_ms *
          static_cast<double>(result.faults.probe_timeouts -
                              probe_timeouts_before);
    }

    const auto cls = static_cast<std::size_t>(r.doc_class);
    count(result.offered, size, edge_hit || sibling_hit || root_hit);
    if (edge_up) {  // constant-folds to taken on plain runs
      count(result.edge_per_class[cls], size, edge_hit);
      result.edge_hits.requests += 1;
      result.edge_hits.requested_bytes += size;
    }
    if (edge_hit) {
      result.edge_hits.hits += 1;
      result.edge_hits.hit_bytes += size;
    } else if (sibling_hit) {
      count(result.sibling_hits, size, true);
    } else if (root_consulted) {
      ++result.root_requests;
      count(result.root_hits, size, root_hit);
      count(result.root_per_class[cls], size, root_hit);
    }
    // Origin fetches during a root outage carry no level attribution
    // either: FaultStats::origin_fetches counts them.
  }

  result.root_evictions = root.eviction_count();
  for (const auto& e : edges) result.edge_evictions += e->eviction_count();
  return result;
}

std::vector<std::unique_ptr<cache::Cache>> make_edges(
    const HierarchyConfig& config) {
  std::vector<std::unique_ptr<cache::Cache>> edges;
  edges.reserve(config.edge_count);
  for (std::uint32_t e = 0; e < config.edge_count; ++e) {
    edges.push_back(std::make_unique<cache::Cache>(
        config.edge_capacity_bytes, cache::make_policy(config.edge_policy)));
  }
  return edges;
}

}  // namespace

std::uint32_t edge_for_request(std::uint64_t request_index,
                               std::uint32_t edge_count) {
  return static_cast<std::uint32_t>(mix(request_index) % edge_count);
}

std::uint32_t edge_for_client(std::uint32_t client, std::uint32_t edge_count) {
  return static_cast<std::uint32_t>(mix(client) % edge_count);
}

double HierarchyResult::edge_hit_rate() const {
  return offered.requests == 0
             ? 0.0
             : static_cast<double>(edge_hits.hits + sibling_hits.hits) /
                   static_cast<double>(offered.requests);
}

double HierarchyResult::root_hit_rate() const {
  return root_requests == 0 ? 0.0
                            : static_cast<double>(root_hits.hits) /
                                  static_cast<double>(root_requests);
}

double HierarchyResult::combined_hit_rate() const {
  return offered.requests == 0
             ? 0.0
             : static_cast<double>(edge_hits.hits + sibling_hits.hits +
                                   root_hits.hits) /
                   static_cast<double>(offered.requests);
}

double HierarchyResult::edge_byte_hit_rate() const {
  return offered.requested_bytes == 0
             ? 0.0
             : static_cast<double>(edge_hits.hit_bytes +
                                   sibling_hits.hit_bytes) /
                   static_cast<double>(offered.requested_bytes);
}

double HierarchyResult::root_byte_hit_rate() const {
  return root_hits.requested_bytes == 0
             ? 0.0
             : static_cast<double>(root_hits.hit_bytes) /
                   static_cast<double>(root_hits.requested_bytes);
}

double HierarchyResult::combined_byte_hit_rate() const {
  return offered.requested_bytes == 0
             ? 0.0
             : static_cast<double>(edge_hits.hit_bytes +
                                   sibling_hits.hit_bytes +
                                   root_hits.hit_bytes) /
                   static_cast<double>(offered.requested_bytes);
}

double HierarchyResult::origin_traffic_fraction() const {
  return 1.0 - combined_byte_hit_rate();
}

double HierarchyResult::latency_savings() const {
  return all_miss_latency_ms == 0.0
             ? 0.0
             : 1.0 - miss_latency_ms / all_miss_latency_ms;
}

namespace {

// Instrumented runs snapshot the whole mesh: occupancy and heap entries
// summed over edges + root; the aging/beta trace is the root's (the level
// the paper's GD*(packet) analysis concerns — edges each run their own
// estimator, probe them separately if needed).
void attach_sink(obs::RecordingSink& sink,
                 std::vector<std::unique_ptr<cache::Cache>>& edges,
                 cache::Cache& root) {
  sink.begin_run([&edges, &root] {
    obs::Snapshot snap;
    cache::Occupancy total = root.occupancy();
    snap.heap_entries = root.policy_probe().heap_entries;
    for (const auto& edge : edges) {
      const cache::Occupancy occ = edge->occupancy();
      total.total_bytes += occ.total_bytes;
      total.total_objects += occ.total_objects;
      snap.heap_entries += edge->policy_probe().heap_entries;
    }
    snap.occupancy_bytes = total.total_bytes;
    snap.occupancy_objects = total.total_objects;
    const cache::PolicyProbe probe = root.policy_probe();
    snap.aging = probe.aging;
    snap.beta = probe.beta;
    return snap;
  });
  for (const auto& edge : edges) edge->set_removal_listener(&sink);
  root.set_removal_listener(&sink);
}

}  // namespace

HierarchyResult simulate_hierarchy(const trace::Trace& trace,
                                   const HierarchyConfig& config) {
  validate_config(config);
  std::vector<std::unique_ptr<cache::Cache>> edges = make_edges(config);
  cache::Cache root(config.root_capacity_bytes,
                    cache::make_policy(config.root_policy));
  detail::SparseLastSize last_size(trace.requests.size());
  NoFaults no_faults;
  obs::NullSink sink;
  return hierarchy_loop(trace, config, edges, root, last_size, no_faults,
                        sink);
}

HierarchyResult simulate_hierarchy(const trace::DenseTrace& trace,
                                   const HierarchyConfig& config) {
  validate_config(config);
  std::vector<std::unique_ptr<cache::Cache>> edges = make_edges(config);
  cache::Cache root(config.root_capacity_bytes,
                    cache::make_policy(config.root_policy));
  // Each cache in the mesh sees a subset of the same dense universe, so
  // every one reserves the full bound.
  const std::uint64_t universe = trace.document_count();
  for (const auto& edge : edges) edge->reserve_dense_ids(universe);
  root.reserve_dense_ids(universe);
  detail::DenseLastSize last_size(universe);
  NoFaults no_faults;
  obs::NullSink sink;
  return hierarchy_loop(trace.trace, config, edges, root, last_size,
                        no_faults, sink);
}

HierarchyResult simulate_hierarchy(const trace::Trace& trace,
                                   const HierarchyConfig& config,
                                   obs::RecordingSink& sink) {
  validate_config(config);
  std::vector<std::unique_ptr<cache::Cache>> edges = make_edges(config);
  cache::Cache root(config.root_capacity_bytes,
                    cache::make_policy(config.root_policy));
  detail::SparseLastSize last_size(trace.requests.size());
  NoFaults no_faults;
  attach_sink(sink, edges, root);
  HierarchyResult result =
      hierarchy_loop(trace, config, edges, root, last_size, no_faults, sink);
  sink.end_run();
  return result;
}

HierarchyResult simulate_hierarchy(const trace::DenseTrace& trace,
                                   const HierarchyConfig& config,
                                   obs::RecordingSink& sink) {
  validate_config(config);
  std::vector<std::unique_ptr<cache::Cache>> edges = make_edges(config);
  cache::Cache root(config.root_capacity_bytes,
                    cache::make_policy(config.root_policy));
  const std::uint64_t universe = trace.document_count();
  for (const auto& edge : edges) edge->reserve_dense_ids(universe);
  root.reserve_dense_ids(universe);
  detail::DenseLastSize last_size(universe);
  NoFaults no_faults;
  attach_sink(sink, edges, root);
  HierarchyResult result = hierarchy_loop(trace.trace, config, edges, root,
                                          last_size, no_faults, sink);
  sink.end_run();
  return result;
}

// ---- fault-aware overloads ----

HierarchyResult simulate_hierarchy(const trace::Trace& trace,
                                   const HierarchyConfig& config,
                                   const FaultSchedule& faults) {
  validate_config(config);
  std::vector<std::unique_ptr<cache::Cache>> edges = make_edges(config);
  cache::Cache root(config.root_capacity_bytes,
                    cache::make_policy(config.root_policy));
  FaultRun run(faults, config.edge_count, /*has_root=*/true);
  detail::SparseLastSize last_size(trace.requests.size());
  obs::NullSink sink;
  return hierarchy_loop(trace, config, edges, root, last_size, run, sink);
}

HierarchyResult simulate_hierarchy(const trace::DenseTrace& trace,
                                   const HierarchyConfig& config,
                                   const FaultSchedule& faults) {
  validate_config(config);
  std::vector<std::unique_ptr<cache::Cache>> edges = make_edges(config);
  cache::Cache root(config.root_capacity_bytes,
                    cache::make_policy(config.root_policy));
  FaultRun run(faults, config.edge_count, /*has_root=*/true);
  const std::uint64_t universe = trace.document_count();
  for (const auto& edge : edges) edge->reserve_dense_ids(universe);
  root.reserve_dense_ids(universe);
  detail::DenseLastSize last_size(universe);
  obs::NullSink sink;
  return hierarchy_loop(trace.trace, config, edges, root, last_size, run,
                        sink);
}

HierarchyResult simulate_hierarchy(const trace::Trace& trace,
                                   const HierarchyConfig& config,
                                   const FaultSchedule& faults,
                                   obs::RecordingSink& sink) {
  validate_config(config);
  std::vector<std::unique_ptr<cache::Cache>> edges = make_edges(config);
  cache::Cache root(config.root_capacity_bytes,
                    cache::make_policy(config.root_policy));
  FaultRun run(faults, config.edge_count, /*has_root=*/true);
  detail::SparseLastSize last_size(trace.requests.size());
  attach_sink(sink, edges, root);
  HierarchyResult result =
      hierarchy_loop(trace, config, edges, root, last_size, run, sink);
  sink.end_run();
  return result;
}

HierarchyResult simulate_hierarchy(const trace::DenseTrace& trace,
                                   const HierarchyConfig& config,
                                   const FaultSchedule& faults,
                                   obs::RecordingSink& sink) {
  validate_config(config);
  std::vector<std::unique_ptr<cache::Cache>> edges = make_edges(config);
  cache::Cache root(config.root_capacity_bytes,
                    cache::make_policy(config.root_policy));
  FaultRun run(faults, config.edge_count, /*has_root=*/true);
  const std::uint64_t universe = trace.document_count();
  for (const auto& edge : edges) edge->reserve_dense_ids(universe);
  root.reserve_dense_ids(universe);
  detail::DenseLastSize last_size(universe);
  attach_sink(sink, edges, root);
  HierarchyResult result =
      hierarchy_loop(trace.trace, config, edges, root, last_size, run, sink);
  sink.end_run();
  return result;
}

}  // namespace webcache::sim
