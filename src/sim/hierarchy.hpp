// Two-level proxy hierarchy simulation.
//
// The paper distinguishes institutional proxies (constant cost, hit-rate
// objective) from backbone proxies (packet cost, byte-hit-rate objective)
// but studies each level in isolation. The hierarchy simulator composes
// them: N institutional (edge) proxies in front of one backbone (root)
// proxy. Every request is served by its edge; edge misses are forwarded to
// the root; root misses go to the origin. The root therefore sees the
// *filtered* stream — one-timers and whatever the edges fail to hold —
// which is exactly the workload the DFN/RTP traces were recorded on
// ("collected at a primary-level proxy cache in the core network").
//
// Client attachment: requests carrying a client id (the synthetic
// generator assigns them; the Squid preprocessor hashes client addresses)
// are routed to the edge serving that client, so one client's re-references
// always land on the same edge proxy. Requests without a client id (id 0,
// e.g. version-1 trace files) fall back to a deterministic hash of the
// request index — a uniform-mixing approximation.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/factory.hpp"
#include "sim/faults.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"
#include "trace/dense_trace.hpp"
#include "trace/request.hpp"

namespace webcache::sim {

struct HierarchyConfig {
  std::uint32_t edge_count = 4;
  std::uint64_t edge_capacity_bytes = 0;
  cache::PolicySpec edge_policy;   // typically a constant-cost scheme
  std::uint64_t root_capacity_bytes = 0;
  cache::PolicySpec root_policy;   // typically a packet-cost scheme
  SimulatorOptions simulator;      // warm-up + modification rule

  /// ICP-style sibling cooperation, as in the DFN cache mesh the paper's
  /// trace was recorded in: an edge miss first probes the sibling edges
  /// and serves from a sibling copy before escalating to the root.
  bool sibling_cooperation = false;
  /// On a sibling hit, also store the document at the client's own edge
  /// (the usual ICP fetch-and-cache behaviour).
  bool replicate_on_sibling_hit = true;

  /// Round-trip time (ms) charged to a request's latency for every sibling
  /// probe attempt that times out on its path — a rerouted fetch pays for
  /// the probes it burned before escalating. 0 keeps probe latency out of
  /// the model entirely; with a zero-timeout schedule the latency totals
  /// are bit-identical to a fault-free run either way
  /// (tests/sim/hierarchy_latency_test.cpp).
  double probe_rtt_ms = 0.0;
};

struct HierarchyResult {
  /// Measured request stream (after warm-up).
  HitCounters offered;                       // everything clients asked for
  HitCounters edge_hits;                     // served at the client's edge
  HitCounters sibling_hits;                  // served by a sibling edge
  HitCounters root_hits;                     // edge miss, served at root
  std::array<HitCounters, trace::kDocumentClassCount> edge_per_class{};
  std::array<HitCounters, trace::kDocumentClassCount> root_per_class{};

  std::uint64_t root_requests = 0;           // forwarded edge misses
  std::uint64_t edge_evictions = 0;
  std::uint64_t root_evictions = 0;

  /// Fault-injection counters; all zero unless the run carried a
  /// FaultSchedule. Lost requests are counted in offered.requests but never
  /// in any hit counter, and they carry no per-level attribution (no level
  /// saw them).
  FaultStats faults;

  /// Fraction of client requests served at the edge level (own edge plus
  /// siblings when cooperation is on).
  double edge_hit_rate() const;
  /// Fraction of *forwarded* requests served at the root (the root's own
  /// hit rate on its filtered stream).
  double root_hit_rate() const;
  /// Fraction of client requests served by either level.
  double combined_hit_rate() const;
  double edge_byte_hit_rate() const;
  double root_byte_hit_rate() const;
  double combined_byte_hit_rate() const;
  /// Bytes fetched from the origin per requested byte (lower is better;
  /// 1 - combined byte hit rate).
  double origin_traffic_fraction() const;

  /// Latency incurred over measured requests under the simulator's fetch
  /// model: requests served at the edge level (own edge or sibling) are
  /// free, anything rerouted to the root or the origin pays the fetch
  /// latency, and every timed-out sibling probe on a request's path adds
  /// HierarchyConfig::probe_rtt_ms. Lost requests are excluded (nothing
  /// was fetched for them).
  double miss_latency_ms = 0.0;
  /// What the same measured stream would cost with no cache mesh at all.
  double all_miss_latency_ms = 0.0;
  /// Latency the mesh saved: 1 - (incurred / all-miss latency).
  double latency_savings() const;
};

HierarchyResult simulate_hierarchy(const trace::Trace& trace,
                                   const HierarchyConfig& config);

/// Dense-id fast path: a trace run through trace::densify() carries the
/// document-count bound, so every edge cache and the root reserve the full
/// dense universe (object tables and policy indices become flat arrays) and
/// the per-request bookkeeping (last-size tracking) becomes a flat vector
/// indexed by dense id. Client ids are untouched by densify(), so requests
/// attach to exactly the same edges. Bit-identical HierarchyResults to the
/// sparse overload — same hits, same eviction order, same tie-breaking —
/// only faster.
HierarchyResult simulate_hierarchy(const trace::DenseTrace& trace,
                                   const HierarchyConfig& config);

/// Instrumented runs: the sink observes the client-offered stream (a "hit"
/// is service by any level), evictions from every cache in the mesh, and
/// per-window snapshots of mesh-wide occupancy/heap size with the *root's*
/// aging/beta trace. Results are bit-identical to the uninstrumented
/// overloads.
HierarchyResult simulate_hierarchy(const trace::Trace& trace,
                                   const HierarchyConfig& config,
                                   obs::RecordingSink& sink);
HierarchyResult simulate_hierarchy(const trace::DenseTrace& trace,
                                   const HierarchyConfig& config,
                                   obs::RecordingSink& sink);

// ---- fault-aware runs (sim/faults.hpp) ----
//
// Same replay under a FaultSchedule: edge crashes lose the edge's contents
// and divert its clients to the siblings (when cooperation is on; down
// siblings are skipped, degraded ones may time out with bounded retry) and
// then to the root; during a root outage edge misses are served from the
// origin and still warm the edge; an edge-down/root-down double fault
// loses the request (counted in offered.requests, never as a hit). With an
// empty schedule the result is bit-identical to the plain overloads
// (tests/sim/fault_equivalence_test.cpp). The instrumented forms
// additionally feed the sink's fault hooks: per-window availability,
// failovers, losses, and post-recovery warm-up curves.

HierarchyResult simulate_hierarchy(const trace::Trace& trace,
                                   const HierarchyConfig& config,
                                   const FaultSchedule& faults);
HierarchyResult simulate_hierarchy(const trace::DenseTrace& trace,
                                   const HierarchyConfig& config,
                                   const FaultSchedule& faults);
HierarchyResult simulate_hierarchy(const trace::Trace& trace,
                                   const HierarchyConfig& config,
                                   const FaultSchedule& faults,
                                   obs::RecordingSink& sink);
HierarchyResult simulate_hierarchy(const trace::DenseTrace& trace,
                                   const HierarchyConfig& config,
                                   const FaultSchedule& faults,
                                   obs::RecordingSink& sink);

/// The deterministic request -> edge assignment (exposed for tests):
/// by client id when present, by request index otherwise.
std::uint32_t edge_for_request(std::uint64_t request_index,
                               std::uint32_t edge_count);
std::uint32_t edge_for_client(std::uint32_t client, std::uint32_t edge_count);

}  // namespace webcache::sim
