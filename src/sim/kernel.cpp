#include "sim/kernel.hpp"

#include <stdexcept>

#include "sim/kernel_families.hpp"

namespace webcache::sim {

namespace {

using detail::KernelRegistry;

/// Function-local static: built once on first use, after all static
/// initialization, by explicit registrar calls (see kernel_families.hpp).
const KernelRegistry& registry() {
  static const KernelRegistry instance = [] {
    KernelRegistry r;
    detail::register_lru_family_kernels(r);
    detail::register_clock_family_kernels(r);
    detail::register_gds_family_kernels(r);
    return r;
  }();
  return instance;
}

}  // namespace

std::string kernel_name_of(const cache::PolicySpec& spec) {
  using cache::PolicyKind;
  switch (spec.kind) {
    case PolicyKind::kLru:
      return "LRU";
    case PolicyKind::kFifo:
      return "FIFO";
    case PolicyKind::kSize:
      return "SIZE";
    case PolicyKind::kLfu:
      return "LFU";
    case PolicyKind::kLfuDa:
      return "LFU-DA";
    case PolicyKind::kGds:
      return "GDS";
    case PolicyKind::kGdsf:
      return "GDSF";
    case PolicyKind::kGdStar:
      return "GD*";
    case PolicyKind::kLruThreshold:
      return "LRU-THOLD";
    case PolicyKind::kLruMin:
      return "LRU-MIN";
    case PolicyKind::kLruK:
      return "LRU-2";
    case PolicyKind::kGdStarPerClass:
      return "GD*C";
    case PolicyKind::kRandom:
      return "RANDOM";
    case PolicyKind::kClock:
      return "CLOCK";
    case PolicyKind::kDelayClock:
      return "DELAY-CLOCK";
    case PolicyKind::kProbLru:
      return "PROB-LRU";
    case PolicyKind::kDelayLru:
      return "DELAY-LRU";
    case PolicyKind::kBatchPromotion:
      return "BATCH-LRU";
  }
  throw std::invalid_argument("kernel_name_of: unknown policy kind");
}

std::unique_ptr<ReplayKernel> make_kernel(std::uint64_t capacity_bytes,
                                          const cache::PolicySpec& spec) {
  const auto it = registry().find(kernel_name_of(spec));
  if (it == registry().end()) return nullptr;
  return it->second(capacity_bytes, spec);
}

bool kernel_available(const cache::PolicySpec& spec) {
  return registry().count(kernel_name_of(spec)) != 0;
}

std::vector<std::string> registered_kernel_names() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, factory] : registry()) names.push_back(name);
  return names;  // std::map iteration is already sorted
}

std::unique_ptr<ReplayKernel> detail::routed_kernel(
    std::uint64_t capacity_bytes, const cache::PolicySpec& spec,
    const SimulatorOptions& options) {
  if (options.kernel == KernelMode::kOff) return nullptr;
  std::unique_ptr<ReplayKernel> kernel = make_kernel(capacity_bytes, spec);
  if (kernel == nullptr && options.kernel == KernelMode::kOn) {
    throw std::invalid_argument(
        "simulate: kernel=on but no monomorphized replay kernel is "
        "registered for policy '" +
        kernel_name_of(spec) + "'");
  }
  return kernel;
}

}  // namespace webcache::sim
