// Monomorphized replay kernels: the devirtualized fast path of the
// simulator.
//
// The regular entry points drive a cache::CacheFrontend, paying one virtual
// access() per request plus virtual policy hooks inside the container. A
// replay kernel instead instantiates the same ReplayCore on a concrete
// BasicCache<PolicyValue<Policy>> (sim/kernel_impl.hpp), so the container
// and the policy's hot hooks compile into the replay loop as direct,
// inlinable calls. Both engines execute the identical statements —
// bit-identical SimResults by construction; the kernel differential suite
// (tests/sim/kernel_differential_test.cpp) then verifies the construction
// for every registered policy.
//
// Selection is by canonical policy name in a registry populated at startup
// by the family translation units (kernel_lru.cpp, kernel_clock.cpp,
// kernel_gds.cpp). The PolicySpec-taking simulate / simulate_stream /
// simulate_stream_checkpointed overloads consult the registry through
// SimulatorOptions::kernel (kAuto / kOn / kOff); composite frontends
// (PartitionedCache, hierarchies) and unregistered policies transparently
// run the virtual path. Which engine ran is reported in
// SimResult::replay_kernel ("monomorphized" / "virtual").
//
// Fallback rules (documented in docs/API.md):
//   * frontend-taking overloads: always virtual (the caller already chose a
//     concrete frontend object);
//   * checkpointed runs with a RecordingSink or a FaultSchedule: always
//     virtual (the kernel instantiates only the plain checkpoint combos);
//   * KernelMode::kOn on an unregistered policy (or an ineligible
//     checkpointed job): std::invalid_argument.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/factory.hpp"
#include "obs/stats_sink.hpp"
#include "sim/checkpoint.hpp"
#include "sim/faults.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"
#include "trace/dense_trace.hpp"
#include "trace/online_densify.hpp"
#include "trace/request.hpp"
#include "trace/request_stream.hpp"

namespace webcache::sim {

/// One monomorphized replay engine for one (capacity, policy spec) pair.
/// Kernels are stateless between calls: every run_* constructs a fresh
/// concrete cache, replays cold, and returns the finished SimResult with
/// replay_kernel == "monomorphized". The single virtual hop per *run* is
/// this interface; everything per *request* is statically dispatched.
class ReplayKernel {
 public:
  virtual ~ReplayKernel() = default;

  // Materialized traces (sparse and dense ids), plain and instrumented.
  virtual SimResult run(const trace::Trace& trace,
                        const SimulatorOptions& options) = 0;
  virtual SimResult run(const trace::Trace& trace,
                        const SimulatorOptions& options,
                        obs::RecordingSink& sink) = 0;
  virtual SimResult run(const trace::DenseTrace& trace,
                        const SimulatorOptions& options) = 0;
  virtual SimResult run(const trace::DenseTrace& trace,
                        const SimulatorOptions& options,
                        obs::RecordingSink& sink) = 0;

  // Bounded-memory streams, mirroring the simulate_stream overload set.
  virtual SimResult run_stream(trace::RequestStream& stream,
                               const SimulatorOptions& options) = 0;
  virtual SimResult run_stream(trace::RequestStream& stream,
                               const SimulatorOptions& options,
                               obs::RecordingSink& sink) = 0;
  virtual SimResult run_stream(trace::RequestStream& stream,
                               const SimulatorOptions& options,
                               const FaultSchedule& faults) = 0;
  virtual SimResult run_stream(trace::RequestStream& stream,
                               const SimulatorOptions& options,
                               const FaultSchedule& faults,
                               obs::RecordingSink& sink) = 0;
  virtual SimResult run_stream_densified(
      trace::RequestStream& stream, const SimulatorOptions& options,
      trace::OnlineDensifier::Options densify) = 0;
  virtual SimResult run_stream_densified(
      trace::RequestStream& stream, const SimulatorOptions& options,
      obs::RecordingSink& sink, trace::OnlineDensifier::Options densify) = 0;

  /// Checkpointed streamed replay, same file format and resume protocol as
  /// the virtual engine (shared template, sim/checkpoint_impl.hpp) — a
  /// checkpoint written by either engine resumes under the other. Only
  /// plain jobs are kernel-eligible; throws std::invalid_argument when
  /// job.sink or job.faults is set (callers route those virtual).
  virtual CheckpointedRun run_stream_checkpointed(
      trace::RequestStream& stream, const StreamCheckpointJob& job) = 0;
};

/// Builds a kernel for the spec's policy, or nullptr when none is
/// registered (composites and deliberately unregistered policies — GD*C
/// keeps per-class heaps and stays virtual).
std::unique_ptr<ReplayKernel> make_kernel(std::uint64_t capacity_bytes,
                                          const cache::PolicySpec& spec);

/// Whether make_kernel would succeed for this spec.
bool kernel_available(const cache::PolicySpec& spec);

/// Canonical policy names with a registered kernel, sorted.
std::vector<std::string> registered_kernel_names();

/// The registry key for a spec: the policy family's canonical base name
/// ("LRU", "GDSF", "DELAY-CLOCK", ...). Parameters (cost model, thresholds,
/// seeds) configure the same concrete policy type and do not change the
/// key.
std::string kernel_name_of(const cache::PolicySpec& spec);

namespace detail {

/// KernelMode routing shared by the PolicySpec-taking entry points:
/// nullptr means "run the virtual path". Throws std::invalid_argument for
/// KernelMode::kOn when the spec has no registered kernel.
std::unique_ptr<ReplayKernel> routed_kernel(std::uint64_t capacity_bytes,
                                            const cache::PolicySpec& spec,
                                            const SimulatorOptions& options);

}  // namespace detail

}  // namespace webcache::sim
