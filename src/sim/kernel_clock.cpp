// Monomorphized kernels for the lazy-promotion / RANDOM family: CLOCK and
// DELAY-CLOCK, RANDOM, and the three cheap-hit LRU variants.
#include "cache/clock.hpp"
#include "cache/lazy_lru.hpp"
#include "cache/random.hpp"
#include "sim/kernel_families.hpp"
#include "sim/kernel_impl.hpp"

namespace webcache::sim::detail {

void register_clock_family_kernels(KernelRegistry& registry) {
  registry.emplace(
      "RANDOM", [](std::uint64_t capacity, const cache::PolicySpec& spec) {
        return make_kernel_impl(capacity, spec,
                                [](const cache::PolicySpec& s) {
                                  return cache::RandomPolicy(s.random_seed);
                                });
      });
  registry.emplace(
      "CLOCK", [](std::uint64_t capacity, const cache::PolicySpec& spec) {
        return make_kernel_impl(capacity, spec, [](const cache::PolicySpec&) {
          return cache::ClockPolicy();
        });
      });
  registry.emplace(
      "DELAY-CLOCK",
      [](std::uint64_t capacity, const cache::PolicySpec& spec) {
        return make_kernel_impl(capacity, spec,
                                [](const cache::PolicySpec& s) {
                                  return cache::DelayClockPolicy(
                                      s.clock_counter_max);
                                });
      });
  registry.emplace(
      "PROB-LRU", [](std::uint64_t capacity, const cache::PolicySpec& spec) {
        return make_kernel_impl(
            capacity, spec, [](const cache::PolicySpec& s) {
              return cache::ProbLruPolicy(s.promote_probability,
                                          s.random_seed);
            });
      });
  registry.emplace(
      "DELAY-LRU", [](std::uint64_t capacity, const cache::PolicySpec& spec) {
        return make_kernel_impl(capacity, spec,
                                [](const cache::PolicySpec& s) {
                                  return cache::DelayLruPolicy(
                                      s.promote_interval);
                                });
      });
  registry.emplace(
      "BATCH-LRU", [](std::uint64_t capacity, const cache::PolicySpec& spec) {
        return make_kernel_impl(capacity, spec,
                                [](const cache::PolicySpec& s) {
                                  return cache::BatchPromotionPolicy(
                                      s.promotion_batch);
                                });
      });
}

}  // namespace webcache::sim::detail
