// Internal: the kernel registry's shape and the per-family registrar
// functions. Registration is by explicit call from kernel.cpp — not by
// static initializers — so kernels survive static-library linking (an
// unreferenced TU with a self-registering global would be dropped by the
// archiver; an explicitly called registrar cannot be).
#pragma once

#include <map>
#include <memory>
#include <string>

#include "cache/factory.hpp"
#include "sim/kernel.hpp"

namespace webcache::sim::detail {

using KernelFactory = std::unique_ptr<ReplayKernel> (*)(
    std::uint64_t capacity_bytes, const cache::PolicySpec& spec);

/// Canonical policy base name -> kernel factory. std::less<> for
/// string_view lookups.
using KernelRegistry = std::map<std::string, KernelFactory, std::less<>>;

// One registrar per family translation unit; called once from kernel.cpp.
void register_lru_family_kernels(KernelRegistry& registry);    // kernel_lru.cpp
void register_clock_family_kernels(KernelRegistry& registry);  // kernel_clock.cpp
void register_gds_family_kernels(KernelRegistry& registry);    // kernel_gds.cpp

}  // namespace webcache::sim::detail
