// Monomorphized kernels for the GreedyDual family: GDS, GDSF, GD* (every
// cost model — the model is a constructor parameter of the same concrete
// type, so one instantiation covers GDS(1)/GDS(packet)/GDS(latency)).
//
// GD*C (per-class GD*) is deliberately NOT registered: it keeps one heap
// per document class behind extra indirection and is the honest
// representative of the virtual fallback path in the differential suite.
#include "cache/gds.hpp"
#include "cache/gdsf.hpp"
#include "cache/gdstar.hpp"
#include "sim/kernel_families.hpp"
#include "sim/kernel_impl.hpp"

namespace webcache::sim::detail {

void register_gds_family_kernels(KernelRegistry& registry) {
  registry.emplace(
      "GDS", [](std::uint64_t capacity, const cache::PolicySpec& spec) {
        return make_kernel_impl(capacity, spec,
                                [](const cache::PolicySpec& s) {
                                  return cache::GdsPolicy(s.cost_model);
                                });
      });
  registry.emplace(
      "GDSF", [](std::uint64_t capacity, const cache::PolicySpec& spec) {
        return make_kernel_impl(capacity, spec,
                                [](const cache::PolicySpec& s) {
                                  return cache::GdsfPolicy(s.cost_model);
                                });
      });
  registry.emplace(
      "GD*", [](std::uint64_t capacity, const cache::PolicySpec& spec) {
        return make_kernel_impl(
            capacity, spec, [](const cache::PolicySpec& s) {
              return cache::GdStarPolicy(s.cost_model, s.fixed_beta);
            });
      });
}

}  // namespace webcache::sim::detail
