// Implementation machinery behind sim/kernel.hpp: the concrete cache shape
// and the kernel template the family translation units instantiate.
//
// Included only by kernel_*.cpp — each family TU instantiates KernelImpl
// for its policies, keeping per-policy template bloat out of every other
// object file and splitting the compile cost across TUs.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "cache/cache.hpp"
#include "cache/factory.hpp"
#include "obs/stats_sink.hpp"
#include "sim/checkpoint_impl.hpp"
#include "sim/faults.hpp"
#include "sim/kernel.hpp"
#include "sim/last_size.hpp"
#include "sim/replay_core.hpp"
#include "trace/online_densify.hpp"

namespace webcache::sim::detail {

/// Non-virtual mirror of cache::SingleCacheFrontend over a monomorphized
/// BasicCache<PolicyValue<P>>. Method-for-method identical semantics —
/// including description() returning the policy name, so checkpoint
/// fingerprints from the two engines interoperate — but every call here is
/// a direct (inlinable) call into the concrete container.
template <typename P>
class CacheConcrete {
 public:
  CacheConcrete(std::uint64_t capacity_bytes, P policy,
                std::uint64_t admission_limit_bytes)
      : cache_(capacity_bytes, cache::PolicyValue<P>{std::move(policy)}) {
    if (admission_limit_bytes > 0) {
      cache_.set_admission_limit(admission_limit_bytes);
    }
  }

  cache::AccessOutcome access(cache::ObjectId id, std::uint64_t size,
                              trace::DocumentClass doc_class,
                              bool force_miss) {
    return cache_.access(id, size, doc_class, force_miss);
  }
  void reserve_dense_ids(std::uint64_t universe) {
    cache_.reserve_dense_ids(universe);
  }
  bool contains(cache::ObjectId id) const { return cache_.contains(id); }
  cache::Occupancy occupancy() const { return cache_.occupancy(); }
  std::uint64_t eviction_count() const { return cache_.eviction_count(); }
  std::uint64_t capacity_bytes() const { return cache_.capacity_bytes(); }
  std::string description() const {
    return std::string(cache_.policy().name());
  }
  void set_removal_listener(cache::RemovalListener* listener) {
    cache_.set_removal_listener(listener);
  }
  cache::PolicyProbe policy_probe() const { return cache_.policy_probe(); }

  // Fault-domain shape of a single box (SingleCacheFrontend semantics).
  std::uint32_t fault_domains() const { return 1; }
  std::uint32_t fault_domain_of(trace::DocumentClass /*cls*/) const {
    return 0;
  }
  void crash_domain(std::uint32_t domain) {
    if (domain != 0) {
      throw std::logic_error("CacheConcrete: only fault domain 0");
    }
    cache_.crash();
  }

  void save_state(util::StateWriter& w) const { cache_.save_state(w); }
  void restore_state(util::StateReader& r) { cache_.restore_state(r); }

  void prefetch(cache::ObjectId id) const { cache_.prefetch(id); }
  void prefetch_object(cache::ObjectId id) const {
    cache_.prefetch_object(id);
  }

 private:
  cache::BasicCache<cache::PolicyValue<P>> cache_;
};

/// Chunk-lookahead distances for the software prefetch of dense-mode
/// object-table state. Two depths: the slot cell first (direct array
/// index), then — closer in — the slab entry it maps to. Both are pure
/// hints; sparse-mode caches turn them into no-ops.
inline constexpr std::size_t kPrefetchSlotAhead = 16;
inline constexpr std::size_t kPrefetchObjectAhead = 8;

/// Replays an indexable span of requests with lookahead prefetch. The
/// lookahead never crosses the span end, so chunked and whole-trace drains
/// issue identical accesses in identical order (prefetch has no
/// architectural effect — bit-identity is untouched).
template <typename CacheT, typename Core>
void step_span(std::span<const trace::Request> requests, CacheT& cache,
               Core& core) {
  const std::size_t n = requests.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i + kPrefetchSlotAhead < n) {
      cache.prefetch(requests[i + kPrefetchSlotAhead].document);
    }
    if (i + kPrefetchObjectAhead < n) {
      cache.prefetch_object(requests[i + kPrefetchObjectAhead].document);
    }
    core.step(requests[i]);
  }
}

/// The monomorphized engine for one concrete policy type. Maker is a
/// stateless callable PolicySpec -> P; each run builds a fresh cache, so a
/// kernel can be reused for independent cold-start runs.
template <typename P, typename Maker>
class KernelImpl final : public ReplayKernel {
 public:
  KernelImpl(std::uint64_t capacity_bytes, cache::PolicySpec spec, Maker make)
      : capacity_(capacity_bytes), spec_(std::move(spec)), make_(make) {}

  SimResult run(const trace::Trace& trace,
                const SimulatorOptions& options) override {
    validate_options(options);
    CacheT cache = fresh_cache();
    SparseLastSize last_size(trace.requests.size());
    obs::NullSink sink;
    return finish_run(run_trace(trace.requests, cache, options, last_size,
                                sink, nullptr));
  }

  SimResult run(const trace::Trace& trace, const SimulatorOptions& options,
                obs::RecordingSink& sink) override {
    validate_options(options);
    CacheT cache = fresh_cache();
    SparseLastSize last_size(trace.requests.size());
    attach(sink, cache);
    SimResult result =
        run_trace(trace.requests, cache, options, last_size, sink, nullptr);
    sink.end_run();
    return finish_run(std::move(result));
  }

  SimResult run(const trace::DenseTrace& trace,
                const SimulatorOptions& options) override {
    validate_options(options);
    CacheT cache = fresh_cache();
    cache.reserve_dense_ids(trace.document_count());
    DenseLastSize last_size(trace.document_count());
    obs::NullSink sink;
    return finish_run(run_trace(trace.trace.requests, cache, options,
                                last_size, sink, nullptr));
  }

  SimResult run(const trace::DenseTrace& trace,
                const SimulatorOptions& options,
                obs::RecordingSink& sink) override {
    validate_options(options);
    CacheT cache = fresh_cache();
    cache.reserve_dense_ids(trace.document_count());
    DenseLastSize last_size(trace.document_count());
    attach(sink, cache);
    SimResult result = run_trace(trace.trace.requests, cache, options,
                                 last_size, sink, nullptr);
    sink.end_run();
    return finish_run(std::move(result));
  }

  SimResult run_stream(trace::RequestStream& stream,
                       const SimulatorOptions& options) override {
    validate_options(options);
    CacheT cache = fresh_cache();
    SparseLastSize last_size(stream_reserve_hint(stream.total_requests()));
    obs::NullSink sink;
    return finish_run(
        run_streamed(stream, cache, options, last_size, sink, nullptr));
  }

  SimResult run_stream(trace::RequestStream& stream,
                       const SimulatorOptions& options,
                       obs::RecordingSink& sink) override {
    validate_options(options);
    CacheT cache = fresh_cache();
    SparseLastSize last_size(stream_reserve_hint(stream.total_requests()));
    attach(sink, cache);
    SimResult result =
        run_streamed(stream, cache, options, last_size, sink, nullptr);
    sink.end_run();
    return finish_run(std::move(result));
  }

  SimResult run_stream(trace::RequestStream& stream,
                       const SimulatorOptions& options,
                       const FaultSchedule& faults) override {
    validate_options(options);
    CacheT cache = fresh_cache();
    FaultRun fault_run(faults, cache.fault_domains(), /*has_root=*/false);
    SparseLastSize last_size(stream_reserve_hint(stream.total_requests()));
    obs::NullSink sink;
    return finish_run(
        run_streamed(stream, cache, options, last_size, sink, &fault_run));
  }

  SimResult run_stream(trace::RequestStream& stream,
                       const SimulatorOptions& options,
                       const FaultSchedule& faults,
                       obs::RecordingSink& sink) override {
    validate_options(options);
    CacheT cache = fresh_cache();
    FaultRun fault_run(faults, cache.fault_domains(), /*has_root=*/false);
    SparseLastSize last_size(stream_reserve_hint(stream.total_requests()));
    attach(sink, cache);
    SimResult result =
        run_streamed(stream, cache, options, last_size, sink, &fault_run);
    sink.end_run();
    return finish_run(std::move(result));
  }

  SimResult run_stream_densified(
      trace::RequestStream& stream, const SimulatorOptions& options,
      trace::OnlineDensifier::Options densify) override {
    validate_options(options);
    CacheT cache = fresh_cache();
    GrowingDenseLastSize last_size;
    obs::NullSink sink;
    return finish_run(
        run_streamed_densified(stream, cache, options, last_size, sink,
                               densify));
  }

  SimResult run_stream_densified(
      trace::RequestStream& stream, const SimulatorOptions& options,
      obs::RecordingSink& sink,
      trace::OnlineDensifier::Options densify) override {
    validate_options(options);
    CacheT cache = fresh_cache();
    GrowingDenseLastSize last_size;
    attach(sink, cache);
    SimResult result = run_streamed_densified(stream, cache, options,
                                              last_size, sink, densify);
    sink.end_run();
    return finish_run(std::move(result));
  }

  CheckpointedRun run_stream_checkpointed(
      trace::RequestStream& stream, const StreamCheckpointJob& job) override {
    if (job.sink != nullptr || job.faults != nullptr) {
      throw std::invalid_argument(
          "ReplayKernel: checkpointed runs with a sink or fault schedule run "
          "the virtual path");
    }
    checkpointed_precheck(job);
    CacheT cache = fresh_cache();
    const CheckpointFingerprint fp = make_stream_fingerprint(
        cache.description(), cache.capacity_bytes(), stream, job);
    obs::NullSink null;
    CheckpointedRun out =
        job.densified
            ? run_checkpointed<true, obs::NullSink, NoFaultReplay>(
                  stream, cache, job, fp, null, nullptr)
            : run_checkpointed<false, obs::NullSink, NoFaultReplay>(
                  stream, cache, job, fp, null, nullptr);
    out.result.replay_kernel = "monomorphized";
    return out;
  }

 private:
  using CacheT = CacheConcrete<P>;

  CacheT fresh_cache() const {
    const std::uint64_t admission =
        spec_.kind == cache::PolicyKind::kLruThreshold
            ? spec_.admission_threshold_bytes
            : 0;
    return CacheT(capacity_, make_(spec_), admission);
  }

  /// Composite-form sink attachment (CacheConcrete is not a CacheFrontend):
  /// snapshot closure mirroring obs::snapshot_from, listener installed by
  /// hand. The closure captures the run-local cache and is replaced by the
  /// next begin_run.
  void attach(obs::RecordingSink& sink, CacheT& cache) {
    sink.begin_run([&cache] {
      obs::Snapshot snap;
      const cache::Occupancy occ = cache.occupancy();
      snap.occupancy_bytes = occ.total_bytes;
      snap.occupancy_objects = occ.total_objects;
      const cache::PolicyProbe probe = cache.policy_probe();
      snap.heap_entries = probe.heap_entries;
      snap.aging = probe.aging;
      snap.beta = probe.beta;
      return snap;
    });
    cache.set_removal_listener(&sink);
  }

  static SimResult finish_run(SimResult result) {
    result.replay_kernel = "monomorphized";
    return result;
  }

  template <typename LastSize, typename Sink>
  SimResult run_trace(const std::vector<trace::Request>& requests,
                      CacheT& cache, const SimulatorOptions& options,
                      LastSize& last_size, Sink& sink,
                      std::nullptr_t /*no_faults*/) {
    ReplayCore<LastSize, Sink, NoFaultReplay, CacheT> core(
        cache, options, last_size, sink, requests.size());
    step_span(std::span<const trace::Request>(requests), cache, core);
    return core.finish();
  }

  template <typename LastSize, typename Sink>
  SimResult run_streamed(trace::RequestStream& stream, CacheT& cache,
                         const SimulatorOptions& options, LastSize& last_size,
                         Sink& sink, FaultRun* faults) {
    if (faults != nullptr) {
      ReplayCore<LastSize, Sink, FaultRun, CacheT> core(
          cache, options, last_size, sink, stream.total_requests(), faults);
      for (auto chunk = stream.next_chunk(); !chunk.empty();
           chunk = stream.next_chunk()) {
        step_span(chunk, cache, core);
      }
      return core.finish();
    }
    ReplayCore<LastSize, Sink, NoFaultReplay, CacheT> core(
        cache, options, last_size, sink, stream.total_requests());
    for (auto chunk = stream.next_chunk(); !chunk.empty();
         chunk = stream.next_chunk()) {
      step_span(chunk, cache, core);
    }
    return core.finish();
  }

  template <typename LastSize, typename Sink>
  SimResult run_streamed_densified(trace::RequestStream& stream, CacheT& cache,
                                   const SimulatorOptions& options,
                                   LastSize& last_size, Sink& sink,
                                   trace::OnlineDensifier::Options densify) {
    trace::OnlineDensifier densifier(densify);
    ReplayCore<LastSize, Sink, NoFaultReplay, CacheT> core(
        cache, options, last_size, sink, stream.total_requests());
    // Two-pass chunks: densify into a scratch buffer first (the densifier
    // advances in exactly the per-request order the fused loop would use),
    // then replay the scratch span — which makes the dense ids available
    // for the lookahead prefetch.
    std::vector<trace::Request> scratch;
    for (auto chunk = stream.next_chunk(); !chunk.empty();
         chunk = stream.next_chunk()) {
      scratch.clear();
      scratch.reserve(chunk.size());
      for (const trace::Request& r : chunk) {
        trace::Request dense = r;
        dense.document = densifier.densify(r.document);
        scratch.push_back(dense);
      }
      step_span(std::span<const trace::Request>(scratch), cache, core);
    }
    return core.finish();
  }

  std::uint64_t capacity_;
  cache::PolicySpec spec_;
  Maker make_;
};

/// Deduces the policy type from the maker and builds the kernel.
template <typename Maker>
std::unique_ptr<ReplayKernel> make_kernel_impl(std::uint64_t capacity_bytes,
                                               const cache::PolicySpec& spec,
                                               Maker maker) {
  using P = decltype(maker(spec));
  return std::make_unique<KernelImpl<P, Maker>>(capacity_bytes, spec, maker);
}

}  // namespace webcache::sim::detail
