// Monomorphized kernels for the recency/frequency list family: LRU and its
// admission/size variants, FIFO, SIZE, and the LFU pair. One TU so the
// eight KernelImpl instantiations compile here and nowhere else.
#include "cache/fifo.hpp"
#include "cache/lfu.hpp"
#include "cache/lfu_da.hpp"
#include "cache/lru.hpp"
#include "cache/lru_k.hpp"
#include "cache/lru_variants.hpp"
#include "cache/size_policy.hpp"
#include "sim/kernel_families.hpp"
#include "sim/kernel_impl.hpp"

namespace webcache::sim::detail {

void register_lru_family_kernels(KernelRegistry& registry) {
  registry.emplace(
      "LRU", [](std::uint64_t capacity, const cache::PolicySpec& spec) {
        return make_kernel_impl(capacity, spec, [](const cache::PolicySpec&) {
          return cache::LruPolicy();
        });
      });
  registry.emplace(
      "FIFO", [](std::uint64_t capacity, const cache::PolicySpec& spec) {
        return make_kernel_impl(capacity, spec, [](const cache::PolicySpec&) {
          return cache::FifoPolicy();
        });
      });
  registry.emplace(
      "SIZE", [](std::uint64_t capacity, const cache::PolicySpec& spec) {
        return make_kernel_impl(capacity, spec, [](const cache::PolicySpec&) {
          return cache::SizePolicy();
        });
      });
  registry.emplace(
      "LFU", [](std::uint64_t capacity, const cache::PolicySpec& spec) {
        return make_kernel_impl(capacity, spec, [](const cache::PolicySpec&) {
          return cache::LfuPolicy();
        });
      });
  registry.emplace(
      "LFU-DA", [](std::uint64_t capacity, const cache::PolicySpec& spec) {
        return make_kernel_impl(capacity, spec, [](const cache::PolicySpec&) {
          return cache::LfuDaPolicy();
        });
      });
  // LRU-THOLD is plain LRU under an admission limit; the limit itself is
  // applied by CacheConcrete from the spec, mirroring the virtual path.
  registry.emplace(
      "LRU-THOLD", [](std::uint64_t capacity, const cache::PolicySpec& spec) {
        return make_kernel_impl(capacity, spec,
                                [](const cache::PolicySpec& s) {
                                  return cache::LruThresholdPolicy(
                                      s.admission_threshold_bytes);
                                });
      });
  registry.emplace(
      "LRU-MIN", [](std::uint64_t capacity, const cache::PolicySpec& spec) {
        return make_kernel_impl(capacity, spec, [](const cache::PolicySpec&) {
          return cache::LruMinPolicy();
        });
      });
  registry.emplace(
      "LRU-2", [](std::uint64_t capacity, const cache::PolicySpec& spec) {
        return make_kernel_impl(capacity, spec, [](const cache::PolicySpec&) {
          return cache::LruKPolicy();
        });
      });
}

}  // namespace webcache::sim::detail
