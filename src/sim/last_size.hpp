// Per-document size tracking shared by the trace-replay loops (single-cache
// simulator and hierarchy simulator).
//
// The paper's document-modification rule needs the previously recorded
// transfer size of every document, across the whole run (warm-up included).
// Two interchangeable representations: a hash map for arbitrary ids and a
// flat vector for densified traces. lookup() returns the stored previous
// size (for the caller to inspect and overwrite), or nullptr on the
// document's first appearance, which it records.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"
#include "trace/request.hpp"
#include "util/state_io.hpp"

namespace webcache::sim::detail {

struct SizeChange {
  bool modified = false;
  bool interrupted = false;
};

inline SizeChange classify_size_change(std::uint64_t previous,
                                       std::uint64_t current,
                                       const SimulatorOptions& options) {
  SizeChange change;
  if (previous == current) return change;
  switch (options.modification_rule) {
    case ModificationRule::kAnyChange:
      change.modified = true;
      return change;
    case ModificationRule::kNever:
      return change;
    case ModificationRule::kThreshold:
      break;
  }
  const double prev = static_cast<double>(previous);
  const double relative =
      std::abs(static_cast<double>(current) - prev) / std::max(prev, 1.0);
  if (relative < options.modification_threshold) {
    change.modified = true;
  } else {
    change.interrupted = true;
  }
  return change;
}

class SparseLastSize {
 public:
  explicit SparseLastSize(std::size_t expected) {
    last_.reserve(expected / 2 + 16);
  }
  std::uint64_t* lookup(trace::DocumentId document, std::uint64_t size) {
    const auto [it, inserted] = last_.try_emplace(document, size);
    return inserted ? nullptr : &it->second;
  }

  /// Checkpointing: entries sorted by document id (deterministic bytes).
  void save_state(util::StateWriter& w) const {
    std::vector<std::pair<trace::DocumentId, std::uint64_t>> items(
        last_.begin(), last_.end());
    std::sort(items.begin(), items.end());
    w.put_u64(items.size());
    for (const auto& [id, size] : items) {
      w.put_u64(id);
      w.put_u64(size);
    }
  }
  void restore_state(util::StateReader& r) {
    const std::uint64_t n = r.take_u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      const trace::DocumentId id = r.take_u64();
      last_[id] = r.take_u64();
    }
  }

 private:
  std::unordered_map<trace::DocumentId, std::uint64_t> last_;
};

class DenseLastSize {
 public:
  explicit DenseLastSize(std::uint64_t universe)
      : last_(static_cast<std::size_t>(universe), kUnseen) {}
  std::uint64_t* lookup(trace::DocumentId document, std::uint64_t size) {
    std::uint64_t& slot = last_[static_cast<std::size_t>(document)];
    if (slot == kUnseen) {
      slot = size;
      return nullptr;
    }
    return &slot;
  }

 private:
  // No real transfer size reaches 2^64 - 1 bytes, so the sentinel is safe.
  static constexpr std::uint64_t kUnseen =
      std::numeric_limits<std::uint64_t>::max();
  std::vector<std::uint64_t> last_;
};

/// Flat-vector tracker for online-densified streams: the id universe is not
/// known up front, but OnlineDensifier hands out ids sequentially, so the
/// vector grows amortized-O(1) as new documents appear. Identical lookup
/// semantics to DenseLastSize.
class GrowingDenseLastSize {
 public:
  std::uint64_t* lookup(trace::DocumentId document, std::uint64_t size) {
    const auto idx = static_cast<std::size_t>(document);
    if (idx >= last_.size()) last_.resize(idx + 1, kUnseen);
    std::uint64_t& slot = last_[idx];
    if (slot == kUnseen) {
      slot = size;
      return nullptr;
    }
    return &slot;
  }

  /// Checkpointing: the raw vector, sentinels included (the length is the
  /// high-water dense id and part of the state).
  void save_state(util::StateWriter& w) const {
    w.put_u64(last_.size());
    for (const std::uint64_t v : last_) w.put_u64(v);
  }
  void restore_state(util::StateReader& r) {
    const std::uint64_t n = r.take_u64();
    last_.clear();
    last_.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) last_.push_back(r.take_u64());
  }

 private:
  static constexpr std::uint64_t kUnseen =
      std::numeric_limits<std::uint64_t>::max();
  std::vector<std::uint64_t> last_;
};

}  // namespace webcache::sim::detail
