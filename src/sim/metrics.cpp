#include "sim/metrics.hpp"

namespace webcache::sim {

double HitCounters::hit_rate() const {
  return requests == 0
             ? 0.0
             : static_cast<double>(hits) / static_cast<double>(requests);
}

double HitCounters::byte_hit_rate() const {
  return requested_bytes == 0 ? 0.0
                              : static_cast<double>(hit_bytes) /
                                    static_cast<double>(requested_bytes);
}

double SimResult::latency_savings() const {
  return all_miss_latency_ms <= 0.0
             ? 0.0
             : 1.0 - miss_latency_ms / all_miss_latency_ms;
}

double SimResult::mean_latency_ms() const {
  return measured_requests == 0
             ? 0.0
             : miss_latency_ms / static_cast<double>(measured_requests);
}

void HitCounters::merge(const HitCounters& other) {
  requests += other.requests;
  hits += other.hits;
  requested_bytes += other.requested_bytes;
  hit_bytes += other.hit_bytes;
}

}  // namespace webcache::sim
