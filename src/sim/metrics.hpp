// Simulation metrics: per-class and overall hit/byte-hit counters, plus the
// occupancy time series behind the paper's Figure 1.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "cache/cache.hpp"
#include "trace/request.hpp"

namespace webcache::sim {

struct HitCounters {
  std::uint64_t requests = 0;
  std::uint64_t hits = 0;
  std::uint64_t requested_bytes = 0;
  std::uint64_t hit_bytes = 0;

  /// "the hit rate on images is calculated as the ratio between the number
  ///  of hits on images and the number of requested images" (Section 4.1).
  double hit_rate() const;
  double byte_hit_rate() const;

  void merge(const HitCounters& other);
};

struct OccupancySample {
  std::uint64_t request_index = 0;  // position in the trace (1-based)
  cache::Occupancy occupancy;
};

/// Aggregate fault-injection counters (sim/faults.hpp). The request-side
/// fields (failovers, lost, origin fetches) count measured requests only,
/// matching the other counters; events_applied and probe_timeouts are mesh
/// events and count across the whole run, warm-up included. Runs without a
/// fault schedule leave everything zero.
struct FaultStats {
  /// Schedule events that changed node state (no-op events — crashing an
  /// already-down node, recovering an up one — are skipped and not counted).
  std::uint64_t events_applied = 0;
  /// Requests whose designated node was down and that were routed around it
  /// (sibling / root / origin), successfully or not.
  std::uint64_t failovers = 0;
  /// Requests lost to double faults: designated edge down AND root down (or
  /// partition down, where there is no failover path) and no sibling copy.
  std::uint64_t lost_requests = 0;
  std::uint64_t lost_bytes = 0;
  /// Timed-out sibling-probe attempts (each bounded retry counts once).
  std::uint64_t probe_timeouts = 0;
  /// Root-outage edge misses served straight from the origin; these still
  /// warm the edge cache.
  std::uint64_t origin_fetches = 0;
};

struct SimResult {
  std::string policy_name;
  std::uint64_t capacity_bytes = 0;

  HitCounters overall;
  std::array<HitCounters, trace::kDocumentClassCount> per_class{};

  std::uint64_t warmup_requests = 0;
  std::uint64_t measured_requests = 0;
  std::uint64_t evictions = 0;
  std::uint64_t bypasses = 0;

  /// Origin-fetch latency accumulated over measured misses/bypasses, under
  /// the simulator's latency model (cache hits are counted as free). The
  /// institutional-proxy objective the paper states ("reducing end user
  /// latency") made quantitative.
  double miss_latency_ms = 0.0;
  /// Latency the cache saved: 1 - (incurred / all-miss latency).
  double latency_savings() const;
  /// What the same request stream would have cost with no cache at all.
  double all_miss_latency_ms = 0.0;
  /// Mean response latency per measured request.
  double mean_latency_ms() const;
  /// Requests counted as misses by the document-modification rule while the
  /// document was resident.
  std::uint64_t modification_misses = 0;
  /// Requests whose size change was classified as an interrupted transfer.
  std::uint64_t interrupted_transfers = 0;

  std::vector<OccupancySample> occupancy_series;

  /// Fault-injection counters; all zero unless the run carried a
  /// FaultSchedule (sim/faults.hpp). Lost requests are counted in
  /// overall.requests but never in hits, so
  /// hits + (requests - hits - lost) + lost == requests by construction.
  FaultStats faults;

  /// Which replay engine produced this result: "virtual" (the polymorphic
  /// CacheFrontend path) or "monomorphized" (a registered replay kernel,
  /// sim/kernel.hpp). Diagnostic only — both engines emit bit-identical
  /// counters, and the field is never serialized into checkpoints (kernel
  /// and virtual checkpoints stay interchangeable).
  std::string replay_kernel = "virtual";

  const HitCounters& of(trace::DocumentClass c) const {
    return per_class[static_cast<std::size_t>(c)];
  }
};

}  // namespace webcache::sim
