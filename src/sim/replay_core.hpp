// Step-wise core of the replay loops.
//
// simulate() (simulator.cpp), the fault-aware simulate() overloads
// (faults.cpp) and the streaming entry points (streaming.cpp) all advance a
// cache frontend one request at a time and account the identical SimResult
// fields. ReplayCore is that per-request body factored into begin/step/
// finish form, so a chunked stream drives exactly the same instructions as
// a materialized for-loop — the streamed results are bit-identical by
// construction, not by parallel maintenance of two loops (the
// streaming-equivalence suite then checks the construction).
//
// The Faults parameter follows the sink pattern: the NoFaultReplay
// instantiation compiles the fault-domain checks away entirely, so the
// plain replay is still the pre-fault code path.
//
// The CacheT parameter is the monomorphization seam (sim/kernel.hpp): the
// default cache::CacheFrontend instantiation dispatches access() virtually
// as before, while a kernel instantiates the core on a concrete
// CacheConcrete<Policy> so the container and policy code inline into
// step(). Both run the same statements — bit-identity by construction.
#pragma once

#include <cmath>
#include <cstdint>
#include <type_traits>

#include "cache/frontend.hpp"
#include "obs/stats_sink.hpp"
#include "sim/last_size.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"
#include "trace/request.hpp"

namespace webcache::sim::detail {

/// Tag selecting the fault-free replay (no per-request fault bookkeeping is
/// even compiled in).
struct NoFaultReplay {};

template <typename LastSize, obs::StatsSink Sink,
          typename Faults = NoFaultReplay,
          typename CacheT = cache::CacheFrontend>
class ReplayCore {
  static constexpr bool kFaulted = !std::is_same_v<Faults, NoFaultReplay>;

 public:
  /// `total_requests` must be the whole run's length (streams know it up
  /// front) — it places the warm-up boundary and the occupancy stride
  /// exactly where a materialized replay would. `faults` must outlive the
  /// core and is ignored by the NoFaultReplay instantiation.
  ReplayCore(CacheT& cache, const SimulatorOptions& options,
             LastSize& last_size, Sink& sink, std::uint64_t total_requests,
             Faults* faults = nullptr)
      : cache_(cache),
        options_(options),
        last_size_(last_size),
        sink_(sink),
        faults_(faults) {
    result_.policy_name = cache.description();
    result_.capacity_bytes = cache.capacity_bytes();
    warmup_ = static_cast<std::uint64_t>(std::floor(
        static_cast<double>(total_requests) * options.warmup_fraction));
    result_.warmup_requests = warmup_;
    result_.measured_requests = total_requests - warmup_;
    occupancy_stride_ =
        options.occupancy_samples > 0
            ? std::max<std::uint64_t>(1, total_requests /
                                             options.occupancy_samples)
            : 0;
    occupancy_countdown_ = occupancy_stride_;
  }

  void step(const trace::Request& r) {
    ++index_;
    const bool measured = index_ > warmup_;
    // The paper's simulator sees only the size recorded in the trace.
    const std::uint64_t size = r.transfer_size;

    if constexpr (kFaulted) {
      faults_->advance(index_,
                       [&](std::uint32_t node, obs::FaultEventKind kind) {
                         if (kind == obs::FaultEventKind::kCrash) {
                           cache_.crash_domain(node);
                         }
                         sink_.on_fault_event(node, kind);
                         ++result_.faults.events_applied;
                       });
      sink_.on_node_state(faults_->up_nodes(), faults_->total_nodes());
    }

    SizeChange change;
    if (std::uint64_t* previous = last_size_.lookup(r.document, size)) {
      change = classify_size_change(*previous, size, options_);
      *previous = size;
    }

    if constexpr (kFaulted) {
      const std::uint32_t node = cache_.fault_domain_of(r.doc_class);
      if (!faults_->node_up(node)) {
        sink_.on_request_lost(r.doc_class, size, measured);
        if (measured) {
          HitCounters& cls =
              result_.per_class[static_cast<std::size_t>(r.doc_class)];
          cls.requests += 1;
          cls.requested_bytes += size;
          result_.overall.requests += 1;
          result_.overall.requested_bytes += size;
          ++result_.faults.lost_requests;
          result_.faults.lost_bytes += size;
          // Trace-side stat; a crashed partition is empty, so the resident-
          // copy modification counter cannot apply.
          if (change.interrupted) result_.interrupted_transfers += 1;
        }
        sample_occupancy();
        return;
      }
      const auto outcome =
          cache_.access(r.document, size, r.doc_class, change.modified);
      result_.evictions += outcome.evictions;
      sink_.on_node_access(node, r.doc_class, size,
                           outcome.kind == cache::AccessKind::kHit, measured);
      account(r, size, change, outcome, measured);
    } else {
      const auto outcome =
          cache_.access(r.document, size, r.doc_class, change.modified);
      result_.evictions += outcome.evictions;
      account(r, size, change, outcome, measured);
    }
    sample_occupancy();
  }

  SimResult finish() { return std::move(result_); }

  // ---- checkpointing ----
  //
  // The core's own state is just the request index and the accumulating
  // SimResult; warmup_ and occupancy_stride_ are recomputed identically
  // from (total_requests, options) on resume.

  std::uint64_t consumed() const { return index_; }
  const SimResult& result() const { return result_; }
  void restore(std::uint64_t index, SimResult result) {
    index_ = index;
    result_ = std::move(result);
    // Re-place the occupancy countdown where an uninterrupted run would be
    // after `index` steps: the next sample fires at the next stride
    // multiple (index % stride == 0 means one full stride away).
    if (occupancy_stride_ > 0) {
      const std::uint64_t into = index_ % occupancy_stride_;
      occupancy_countdown_ = occupancy_stride_ - into;
    }
  }

 private:
  void account(const trace::Request& r, std::uint64_t size,
               const SizeChange& change, const cache::AccessOutcome& outcome,
               bool measured) {
    sink_.on_access(r.doc_class, size, outcome.kind, measured);
    if (!measured) return;
    HitCounters& cls =
        result_.per_class[static_cast<std::size_t>(r.doc_class)];
    cls.requests += 1;
    cls.requested_bytes += size;
    result_.overall.requests += 1;
    result_.overall.requested_bytes += size;
    const double fetch_latency =
        options_.latency_setup_ms +
        static_cast<double>(size) / options_.latency_bytes_per_ms;
    result_.all_miss_latency_ms += fetch_latency;
    switch (outcome.kind) {
      case cache::AccessKind::kHit:
        cls.hits += 1;
        cls.hit_bytes += size;
        result_.overall.hits += 1;
        result_.overall.hit_bytes += size;
        break;
      case cache::AccessKind::kBypass:
        result_.bypasses += 1;
        result_.miss_latency_ms += fetch_latency;
        break;
      case cache::AccessKind::kMiss:
        result_.miss_latency_ms += fetch_latency;
        break;
    }
    if (change.modified && outcome.was_resident) {
      result_.modification_misses += 1;
    }
    if (change.interrupted) result_.interrupted_transfers += 1;
  }

  void sample_occupancy() {
    // Countdown instead of `index_ % stride == 0`: one decrement and a
    // predictable branch per request instead of a 64-bit division.
    if (occupancy_stride_ == 0) return;
    if (--occupancy_countdown_ != 0) return;
    occupancy_countdown_ = occupancy_stride_;
    result_.occupancy_series.push_back(
        OccupancySample{index_, cache_.occupancy()});
  }

  CacheT& cache_;
  const SimulatorOptions& options_;
  LastSize& last_size_;
  Sink& sink_;
  Faults* faults_;
  SimResult result_;
  std::uint64_t warmup_ = 0;
  std::uint64_t occupancy_stride_ = 0;
  std::uint64_t occupancy_countdown_ = 0;
  std::uint64_t index_ = 0;
};

}  // namespace webcache::sim::detail
