#include "sim/replication.hpp"

#include <cmath>
#include <stdexcept>

#include "synth/generator.hpp"

namespace webcache::sim {

double MetricSummary::ci95_half_width() const {
  if (stats.count() < 2) return 0.0;
  return 1.96 * stats.stddev() / std::sqrt(static_cast<double>(stats.count()));
}

bool clearly_separated(const MetricSummary& a, const MetricSummary& b) {
  return std::abs(a.mean() - b.mean()) >
         a.ci95_half_width() + b.ci95_half_width();
}

std::vector<ReplicatedResult> run_replicated(
    const synth::WorkloadProfile& profile,
    const std::vector<cache::PolicySpec>& policies,
    const ReplicationConfig& config) {
  if (config.replications == 0) {
    throw std::invalid_argument("run_replicated: need at least one replica");
  }
  if (policies.empty()) {
    throw std::invalid_argument("run_replicated: no policies");
  }
  if (config.cache_fraction <= 0.0) {
    throw std::invalid_argument("run_replicated: cache fraction must be > 0");
  }

  std::vector<ReplicatedResult> results(policies.size());

  for (std::uint32_t rep = 0; rep < config.replications; ++rep) {
    synth::GeneratorOptions gen;
    gen.seed = config.base_seed + rep;
    const trace::Trace replica =
        synth::TraceGenerator(profile, gen).generate();
    const auto capacity = static_cast<std::uint64_t>(
        static_cast<double>(replica.overall_size_bytes()) *
        config.cache_fraction);

    for (std::size_t p = 0; p < policies.size(); ++p) {
      const SimResult run =
          simulate(replica, capacity, policies[p], config.simulator);
      ReplicatedResult& agg = results[p];
      agg.policy_name = run.policy_name;
      agg.hit_rate.stats.add(run.overall.hit_rate());
      agg.byte_hit_rate.stats.add(run.overall.byte_hit_rate());
      for (std::size_t c = 0; c < trace::kDocumentClassCount; ++c) {
        agg.class_hit_rate[c].stats.add(run.per_class[c].hit_rate());
        agg.class_byte_hit_rate[c].stats.add(run.per_class[c].byte_hit_rate());
      }
    }
  }
  return results;
}

}  // namespace webcache::sim
