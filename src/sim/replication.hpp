// Multi-seed replication: the statistical-rigor layer missing from most
// single-trace cache studies. Re-generates the synthetic workload under K
// different seeds, repeats a simulation (or a full sweep) on each replica,
// and reports mean / stddev / min / max per metric — so a "GD* beats GDS by
// 2 points" conclusion can be checked against seed noise.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/factory.hpp"
#include "sim/simulator.hpp"
#include "synth/profile.hpp"
#include "util/stats.hpp"

namespace webcache::sim {

struct ReplicationConfig {
  std::uint32_t replications = 5;
  std::uint64_t base_seed = 42;  // replica i uses base_seed + i
  double cache_fraction = 0.04;  // of each replica's overall size
  SimulatorOptions simulator;
};

/// Aggregate of one metric across replicas.
struct MetricSummary {
  util::StreamingStats stats;

  double mean() const { return stats.mean(); }
  double stddev() const { return stats.stddev(); }
  double min() const { return stats.min(); }
  double max() const { return stats.max(); }
  std::uint64_t samples() const { return stats.count(); }
  /// Half-width of a normal-approximation 95% confidence interval.
  double ci95_half_width() const;
};

struct ReplicatedResult {
  std::string policy_name;
  MetricSummary hit_rate;
  MetricSummary byte_hit_rate;
  std::array<MetricSummary, trace::kDocumentClassCount> class_hit_rate;
  std::array<MetricSummary, trace::kDocumentClassCount> class_byte_hit_rate;

  const MetricSummary& class_hr(trace::DocumentClass c) const {
    return class_hit_rate[static_cast<std::size_t>(c)];
  }
};

/// Runs every policy over `replications` independently generated replicas
/// of the profile (same statistical parameters, different seeds). Results
/// are ordered like `policies`.
std::vector<ReplicatedResult> run_replicated(
    const synth::WorkloadProfile& profile,
    const std::vector<cache::PolicySpec>& policies,
    const ReplicationConfig& config);

/// True when the two metric summaries are separated by at least the sum of
/// their 95% CI half-widths (a conservative "the difference is real").
bool clearly_separated(const MetricSummary& a, const MetricSummary& b);

}  // namespace webcache::sim
