#include "sim/reporter.hpp"

#include <algorithm>
#include <cctype>
#include <functional>
#include <iomanip>
#include <ostream>

#include "util/format.hpp"

namespace webcache::sim {

namespace {

constexpr double kMB = 1024.0 * 1024.0;

std::vector<std::string> policy_header(const SweepResult& sweep) {
  std::vector<std::string> header = {"Cache (MB)", "Cache (%)"};
  if (!sweep.points.empty()) {
    for (const SimResult& r : sweep.points.front().results) {
      header.push_back(r.policy_name);
    }
  }
  return header;
}

void add_sweep_rows(util::Table& table, const SweepResult& sweep,
                    const std::function<double(const SimResult&)>& metric) {
  for (const SweepPoint& point : sweep.points) {
    std::vector<std::string> row;
    row.push_back(util::fmt_fixed(
        static_cast<double>(point.capacity_bytes) / kMB, 1));
    row.push_back(util::fmt_fixed(point.cache_fraction * 100.0, 1));
    for (const SimResult& r : point.results) {
      row.push_back(util::fmt_fixed(metric(r), 4));
    }
    table.add_row(row);
  }
}

}  // namespace

util::Table render_sweep_panel(const SweepResult& sweep,
                               trace::DocumentClass doc_class, Metric metric,
                               const std::string& title) {
  util::Table table(title);
  table.set_header(policy_header(sweep));
  add_sweep_rows(table, sweep, [=](const SimResult& r) {
    const HitCounters& c = r.of(doc_class);
    return metric == Metric::kHitRate ? c.hit_rate() : c.byte_hit_rate();
  });
  return table;
}

util::Table render_sweep_overall(const SweepResult& sweep, Metric metric,
                                 const std::string& title) {
  util::Table table(title);
  table.set_header(policy_header(sweep));
  add_sweep_rows(table, sweep, [=](const SimResult& r) {
    return metric == Metric::kHitRate ? r.overall.hit_rate()
                                      : r.overall.byte_hit_rate();
  });
  return table;
}

util::Table render_occupancy_series(const SimResult& result, bool bytes,
                                    const std::string& title) {
  util::Table table(title);
  std::vector<std::string> header = {"Requests"};
  for (const auto c : trace::kAllDocumentClasses) {
    header.emplace_back(trace::to_string(c));
  }
  table.set_header(header);
  for (const OccupancySample& sample : result.occupancy_series) {
    std::vector<std::string> row = {util::fmt_count(sample.request_index)};
    for (const auto c : trace::kAllDocumentClasses) {
      const double fraction = bytes ? sample.occupancy.byte_fraction(c)
                                    : sample.occupancy.object_fraction(c);
      row.push_back(util::fmt_percent(fraction, 2));
    }
    table.add_row(row);
  }
  return table;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

void write_optional(std::ostream& os, const std::optional<double>& value) {
  if (value.has_value()) {
    os << *value;
  } else {
    os << "null";
  }
}

void write_hit_counters_json(std::ostream& os, const HitCounters& c) {
  os << "{\"requests\": " << c.requests << ", \"hits\": " << c.hits
     << ", \"requested_bytes\": " << c.requested_bytes
     << ", \"hit_bytes\": " << c.hit_bytes
     << ", \"hit_rate\": " << c.hit_rate()
     << ", \"byte_hit_rate\": " << c.byte_hit_rate() << "}";
}

void write_window_counters_json(std::ostream& os,
                                const obs::WindowCounters& c) {
  os << "{\"requests\": " << c.requests << ", \"hits\": " << c.hits
     << ", \"requested_bytes\": " << c.requested_bytes
     << ", \"hit_bytes\": " << c.hit_bytes
     << ", \"evictions\": " << c.evictions
     << ", \"evicted_bytes\": " << c.evicted_bytes << "}";
}

}  // namespace

std::string class_slug(trace::DocumentClass c) {
  std::string slug(trace::to_string(c));
  std::transform(slug.begin(), slug.end(), slug.begin(), [](unsigned char ch) {
    return ch == ' ' ? '_' : static_cast<char>(std::tolower(ch));
  });
  return slug;
}

void write_metrics_json(std::ostream& os, const SimResult& result,
                        const obs::MetricsSeries& series) {
  os << std::setprecision(12);
  os << "{\n"
     << "  \"schema\": \"webcache.metrics.v1\",\n"
     << "  \"policy\": \"" << json_escape(result.policy_name) << "\",\n"
     << "  \"capacity_bytes\": " << result.capacity_bytes << ",\n"
     << "  \"window_requests\": " << series.window_requests << ",\n"
     << "  \"total_requests\": " << series.total_requests << ",\n"
     << "  \"warmup_requests\": " << result.warmup_requests << ",\n"
     << "  \"measured_requests\": " << result.measured_requests << ",\n";

  os << "  \"aggregate\": {\n    \"overall\": ";
  write_hit_counters_json(os, result.overall);
  os << ",\n    \"evictions\": " << result.evictions
     << ",\n    \"bypasses\": " << result.bypasses
     << ",\n    \"modification_misses\": " << result.modification_misses
     << ",\n    \"per_class\": {";
  bool first = true;
  for (const auto cls : trace::kAllDocumentClasses) {
    os << (first ? "\n" : ",\n") << "      \"" << class_slug(cls) << "\": ";
    write_hit_counters_json(os, result.of(cls));
    first = false;
  }
  os << "\n    }\n  },\n";

  os << "  \"windows\": [";
  for (std::size_t i = 0; i < series.windows.size(); ++i) {
    const obs::WindowSample& w = series.windows[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"first_request\": "
       << w.first_request << ", \"last_request\": " << w.last_request
       << ",\n     \"overall\": ";
    write_window_counters_json(os, w.overall);
    os << ",\n     \"hit_rate\": " << w.overall.hit_rate()
       << ", \"byte_hit_rate\": " << w.overall.byte_hit_rate()
       << ", \"bypasses\": " << w.bypasses
       << ", \"invalidations\": " << w.invalidations
       << ",\n     \"occupancy_bytes\": " << w.state.occupancy_bytes
       << ", \"occupancy_objects\": " << w.state.occupancy_objects
       << ", \"heap_entries\": " << w.state.heap_entries << ", \"aging\": ";
    write_optional(os, w.state.aging);
    os << ", \"beta\": ";
    write_optional(os, w.state.beta);
    os << ",\n     \"per_class\": {";
    bool first_cls = true;
    for (const auto cls : trace::kAllDocumentClasses) {
      os << (first_cls ? "" : ", ") << "\"" << class_slug(cls) << "\": ";
      write_window_counters_json(
          os, w.per_class[static_cast<std::size_t>(cls)]);
      first_cls = false;
    }
    os << "}}";
  }
  os << "\n  ]\n}\n";
}

void write_metrics_csv(std::ostream& os, const obs::MetricsSeries& series) {
  os << std::setprecision(12);
  os << "first_request,last_request,requests,hits,requested_bytes,hit_bytes,"
        "hit_rate,byte_hit_rate,evictions,evicted_bytes,bypasses,"
        "invalidations,occupancy_bytes,occupancy_objects,heap_entries,aging,"
        "beta";
  for (const auto cls : trace::kAllDocumentClasses) {
    const std::string slug = class_slug(cls);
    for (const char* field :
         {"requests", "hits", "requested_bytes", "hit_bytes", "evictions",
          "evicted_bytes"}) {
      os << "," << slug << "_" << field;
    }
  }
  os << "\n";
  for (const obs::WindowSample& w : series.windows) {
    os << w.first_request << "," << w.last_request << ","
       << w.overall.requests << "," << w.overall.hits << ","
       << w.overall.requested_bytes << "," << w.overall.hit_bytes << ","
       << w.overall.hit_rate() << "," << w.overall.byte_hit_rate() << ","
       << w.overall.evictions << "," << w.overall.evicted_bytes << ","
       << w.bypasses << "," << w.invalidations << ","
       << w.state.occupancy_bytes << "," << w.state.occupancy_objects << ","
       << w.state.heap_entries << ",";
    if (w.state.aging) os << *w.state.aging;
    os << ",";
    if (w.state.beta) os << *w.state.beta;
    for (const obs::WindowCounters& c : w.per_class) {
      os << "," << c.requests << "," << c.hits << "," << c.requested_bytes
         << "," << c.hit_bytes << "," << c.evictions << ","
         << c.evicted_bytes;
    }
    os << "\n";
  }
}

util::Table render_sweep_diagnostics(const SweepResult& sweep,
                                     const std::string& title) {
  util::Table table(title);
  std::vector<std::string> header = {"Cache (MB)", "Policy", "Evictions",
                                     "Mod. misses", "Interrupts", "Bypasses"};
  table.set_header(header);
  for (const SweepPoint& point : sweep.points) {
    for (const SimResult& r : point.results) {
      table.add_row({util::fmt_fixed(
                         static_cast<double>(point.capacity_bytes) / kMB, 1),
                     r.policy_name, util::fmt_count(r.evictions),
                     util::fmt_count(r.modification_misses),
                     util::fmt_count(r.interrupted_transfers),
                     util::fmt_count(r.bypasses)});
    }
  }
  return table;
}

}  // namespace webcache::sim
