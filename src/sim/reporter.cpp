#include "sim/reporter.hpp"

#include <algorithm>
#include <cctype>
#include <functional>
#include <iomanip>
#include <ostream>

#include "util/format.hpp"

namespace webcache::sim {

namespace {

constexpr double kMB = 1024.0 * 1024.0;

std::vector<std::string> policy_header(const SweepResult& sweep) {
  std::vector<std::string> header = {"Cache (MB)", "Cache (%)"};
  if (!sweep.points.empty()) {
    for (const SimResult& r : sweep.points.front().results) {
      header.push_back(r.policy_name);
    }
  }
  return header;
}

void add_sweep_rows(util::Table& table, const SweepResult& sweep,
                    const std::function<double(const SimResult&)>& metric) {
  for (const SweepPoint& point : sweep.points) {
    std::vector<std::string> row;
    row.push_back(util::fmt_fixed(
        static_cast<double>(point.capacity_bytes) / kMB, 1));
    row.push_back(util::fmt_fixed(point.cache_fraction * 100.0, 1));
    for (const SimResult& r : point.results) {
      row.push_back(util::fmt_fixed(metric(r), 4));
    }
    table.add_row(row);
  }
}

}  // namespace

util::Table render_sweep_panel(const SweepResult& sweep,
                               trace::DocumentClass doc_class, Metric metric,
                               const std::string& title) {
  util::Table table(title);
  table.set_header(policy_header(sweep));
  add_sweep_rows(table, sweep, [=](const SimResult& r) {
    const HitCounters& c = r.of(doc_class);
    return metric == Metric::kHitRate ? c.hit_rate() : c.byte_hit_rate();
  });
  return table;
}

util::Table render_sweep_overall(const SweepResult& sweep, Metric metric,
                                 const std::string& title) {
  util::Table table(title);
  table.set_header(policy_header(sweep));
  add_sweep_rows(table, sweep, [=](const SimResult& r) {
    return metric == Metric::kHitRate ? r.overall.hit_rate()
                                      : r.overall.byte_hit_rate();
  });
  return table;
}

util::Table render_occupancy_series(const SimResult& result, bool bytes,
                                    const std::string& title) {
  util::Table table(title);
  std::vector<std::string> header = {"Requests"};
  for (const auto c : trace::kAllDocumentClasses) {
    header.emplace_back(trace::to_string(c));
  }
  table.set_header(header);
  for (const OccupancySample& sample : result.occupancy_series) {
    std::vector<std::string> row = {util::fmt_count(sample.request_index)};
    for (const auto c : trace::kAllDocumentClasses) {
      const double fraction = bytes ? sample.occupancy.byte_fraction(c)
                                    : sample.occupancy.object_fraction(c);
      row.push_back(util::fmt_percent(fraction, 2));
    }
    table.add_row(row);
  }
  return table;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

void write_optional(std::ostream& os, const std::optional<double>& value) {
  if (value.has_value()) {
    os << *value;
  } else {
    os << "null";
  }
}

void write_hit_counters_json(std::ostream& os, const HitCounters& c) {
  os << "{\"requests\": " << c.requests << ", \"hits\": " << c.hits
     << ", \"requested_bytes\": " << c.requested_bytes
     << ", \"hit_bytes\": " << c.hit_bytes
     << ", \"hit_rate\": " << c.hit_rate()
     << ", \"byte_hit_rate\": " << c.byte_hit_rate() << "}";
}

void write_window_counters_json(std::ostream& os,
                                const obs::WindowCounters& c) {
  os << "{\"requests\": " << c.requests << ", \"hits\": " << c.hits
     << ", \"requested_bytes\": " << c.requested_bytes
     << ", \"hit_bytes\": " << c.hit_bytes
     << ", \"evictions\": " << c.evictions
     << ", \"evicted_bytes\": " << c.evicted_bytes
     << ", \"lost\": " << c.lost << ", \"lost_bytes\": " << c.lost_bytes
     << "}";
}

void write_fault_stats_json(std::ostream& os, const FaultStats& f) {
  os << "{\"events_applied\": " << f.events_applied
     << ", \"failovers\": " << f.failovers
     << ", \"lost_requests\": " << f.lost_requests
     << ", \"lost_bytes\": " << f.lost_bytes
     << ", \"probe_timeouts\": " << f.probe_timeouts
     << ", \"origin_fetches\": " << f.origin_fetches << "}";
}

// The node id in warm-up curves: "root" for the hierarchy root, the edge
// (or partition/document-class) index otherwise.
void write_node_json(std::ostream& os, std::uint32_t node) {
  if (node == obs::kRootNode) {
    os << "\"root\"";
  } else {
    os << node;
  }
}

// Emits the fault series ("fault_nodes" + "warmup_curves") and the
// "windows" array — the part of the document shared by the single-cache
// and hierarchy exporters. Window records carry the fault feed
// (failovers/probe_timeouts/fault_events/availability) additively;
// availability is null on uninstrumented runs.
void write_series_json(std::ostream& os, const obs::MetricsSeries& series) {
  os << "  \"fault_nodes\": " << series.fault_nodes << ",\n"
     << "  \"warmup_curves\": [";
  for (std::size_t i = 0; i < series.warmup_curves.size(); ++i) {
    const obs::WarmupCurve& curve = series.warmup_curves[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"node\": ";
    write_node_json(os, curve.node);
    os << ", \"recovered_at\": " << curve.recovered_at
       << ", \"windows\": [";
    for (std::size_t w = 0; w < curve.windows.size(); ++w) {
      const obs::WarmupWindow& win = curve.windows[w];
      os << (w == 0 ? "\n" : ",\n") << "      {\"overall\": ";
      write_window_counters_json(os, win.overall);
      os << ", \"hit_rate\": " << win.overall.hit_rate()
         << ",\n       \"per_class\": {";
      bool first_cls = true;
      for (const auto cls : trace::kAllDocumentClasses) {
        os << (first_cls ? "" : ", ") << "\"" << class_slug(cls) << "\": ";
        write_window_counters_json(
            os, win.per_class[static_cast<std::size_t>(cls)]);
        first_cls = false;
      }
      os << "}}";
    }
    os << (curve.windows.empty() ? "]}" : "\n    ]}");
  }
  os << (series.warmup_curves.empty() ? "],\n" : "\n  ],\n");

  os << "  \"windows\": [";
  for (std::size_t i = 0; i < series.windows.size(); ++i) {
    const obs::WindowSample& w = series.windows[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"first_request\": "
       << w.first_request << ", \"last_request\": " << w.last_request
       << ",\n     \"overall\": ";
    write_window_counters_json(os, w.overall);
    os << ",\n     \"hit_rate\": " << w.overall.hit_rate()
       << ", \"byte_hit_rate\": " << w.overall.byte_hit_rate()
       << ", \"bypasses\": " << w.bypasses
       << ", \"invalidations\": " << w.invalidations
       << ",\n     \"failovers\": " << w.failovers
       << ", \"probe_timeouts\": " << w.probe_timeouts
       << ", \"fault_events\": " << w.fault_events << ", \"availability\": ";
    write_optional(os, w.availability(series.fault_nodes));
    os << ",\n     \"occupancy_bytes\": " << w.state.occupancy_bytes
       << ", \"occupancy_objects\": " << w.state.occupancy_objects
       << ", \"heap_entries\": " << w.state.heap_entries << ", \"aging\": ";
    write_optional(os, w.state.aging);
    os << ", \"beta\": ";
    write_optional(os, w.state.beta);
    os << ",\n     \"per_class\": {";
    bool first_cls = true;
    for (const auto cls : trace::kAllDocumentClasses) {
      os << (first_cls ? "" : ", ") << "\"" << class_slug(cls) << "\": ";
      write_window_counters_json(
          os, w.per_class[static_cast<std::size_t>(cls)]);
      first_cls = false;
    }
    os << "}}";
  }
  os << "\n  ]\n";
}

}  // namespace

std::string class_slug(trace::DocumentClass c) {
  std::string slug(trace::to_string(c));
  std::transform(slug.begin(), slug.end(), slug.begin(), [](unsigned char ch) {
    return ch == ' ' ? '_' : static_cast<char>(std::tolower(ch));
  });
  return slug;
}

void write_metrics_json(std::ostream& os, const SimResult& result,
                        const obs::MetricsSeries& series) {
  os << std::setprecision(12);
  os << "{\n"
     << "  \"schema\": \"webcache.metrics.v1\",\n"
     << "  \"policy\": \"" << json_escape(result.policy_name) << "\",\n"
     << "  \"capacity_bytes\": " << result.capacity_bytes << ",\n"
     << "  \"window_requests\": " << series.window_requests << ",\n"
     << "  \"total_requests\": " << series.total_requests << ",\n"
     << "  \"warmup_requests\": " << result.warmup_requests << ",\n"
     << "  \"measured_requests\": " << result.measured_requests << ",\n";

  os << "  \"aggregate\": {\n    \"overall\": ";
  write_hit_counters_json(os, result.overall);
  os << ",\n    \"evictions\": " << result.evictions
     << ",\n    \"bypasses\": " << result.bypasses
     << ",\n    \"modification_misses\": " << result.modification_misses
     << ",\n    \"faults\": ";
  write_fault_stats_json(os, result.faults);
  os << ",\n    \"per_class\": {";
  bool first = true;
  for (const auto cls : trace::kAllDocumentClasses) {
    os << (first ? "\n" : ",\n") << "      \"" << class_slug(cls) << "\": ";
    write_hit_counters_json(os, result.of(cls));
    first = false;
  }
  os << "\n    }\n  },\n";

  write_series_json(os, series);
  os << "}\n";
}

void write_hierarchy_metrics_json(std::ostream& os,
                                  const HierarchyResult& result,
                                  const obs::MetricsSeries& series) {
  os << std::setprecision(12);
  os << "{\n"
     << "  \"schema\": \"webcache.metrics.v1\",\n"
     << "  \"mode\": \"hierarchy\",\n"
     << "  \"window_requests\": " << series.window_requests << ",\n"
     << "  \"total_requests\": " << series.total_requests << ",\n";

  os << "  \"aggregate\": {\n    \"offered\": ";
  write_hit_counters_json(os, result.offered);
  os << ",\n    \"edge\": ";
  write_hit_counters_json(os, result.edge_hits);
  os << ",\n    \"sibling\": ";
  write_hit_counters_json(os, result.sibling_hits);
  os << ",\n    \"root\": ";
  write_hit_counters_json(os, result.root_hits);
  os << ",\n    \"root_requests\": " << result.root_requests
     << ",\n    \"edge_evictions\": " << result.edge_evictions
     << ",\n    \"root_evictions\": " << result.root_evictions
     << ",\n    \"combined_hit_rate\": " << result.combined_hit_rate()
     << ",\n    \"combined_byte_hit_rate\": "
     << result.combined_byte_hit_rate()
     << ",\n    \"faults\": ";
  write_fault_stats_json(os, result.faults);
  os << ",\n    \"edge_per_class\": {";
  bool first = true;
  for (const auto cls : trace::kAllDocumentClasses) {
    os << (first ? "\n" : ",\n") << "      \"" << class_slug(cls) << "\": ";
    write_hit_counters_json(
        os, result.edge_per_class[static_cast<std::size_t>(cls)]);
    first = false;
  }
  os << "\n    },\n    \"root_per_class\": {";
  first = true;
  for (const auto cls : trace::kAllDocumentClasses) {
    os << (first ? "\n" : ",\n") << "      \"" << class_slug(cls) << "\": ";
    write_hit_counters_json(
        os, result.root_per_class[static_cast<std::size_t>(cls)]);
    first = false;
  }
  os << "\n    }\n  },\n";

  write_series_json(os, series);
  os << "}\n";
}

void write_metrics_csv(std::ostream& os, const obs::MetricsSeries& series) {
  os << std::setprecision(12);
  os << "first_request,last_request,requests,hits,requested_bytes,hit_bytes,"
        "hit_rate,byte_hit_rate,evictions,evicted_bytes,bypasses,"
        "invalidations,lost,lost_bytes,failovers,probe_timeouts,"
        "fault_events,availability,occupancy_bytes,occupancy_objects,"
        "heap_entries,aging,beta";
  for (const auto cls : trace::kAllDocumentClasses) {
    const std::string slug = class_slug(cls);
    for (const char* field :
         {"requests", "hits", "requested_bytes", "hit_bytes", "evictions",
          "evicted_bytes", "lost"}) {
      os << "," << slug << "_" << field;
    }
  }
  os << "\n";
  for (const obs::WindowSample& w : series.windows) {
    os << w.first_request << "," << w.last_request << ","
       << w.overall.requests << "," << w.overall.hits << ","
       << w.overall.requested_bytes << "," << w.overall.hit_bytes << ","
       << w.overall.hit_rate() << "," << w.overall.byte_hit_rate() << ","
       << w.overall.evictions << "," << w.overall.evicted_bytes << ","
       << w.bypasses << "," << w.invalidations << "," << w.overall.lost
       << "," << w.overall.lost_bytes << "," << w.failovers << ","
       << w.probe_timeouts << "," << w.fault_events << ",";
    if (const auto avail = w.availability(series.fault_nodes)) os << *avail;
    os << "," << w.state.occupancy_bytes << "," << w.state.occupancy_objects
       << "," << w.state.heap_entries << ",";
    if (w.state.aging) os << *w.state.aging;
    os << ",";
    if (w.state.beta) os << *w.state.beta;
    for (const obs::WindowCounters& c : w.per_class) {
      os << "," << c.requests << "," << c.hits << "," << c.requested_bytes
         << "," << c.hit_bytes << "," << c.evictions << ","
         << c.evicted_bytes << "," << c.lost;
    }
    os << "\n";
  }
}

void write_sweep_json(std::ostream& os, const SweepResult& sweep) {
  os << std::setprecision(17);
  os << "{\n"
     << "  \"schema\": \"webcache.sweep.v1\",\n"
     << "  \"overall_size_bytes\": " << sweep.overall_size_bytes << ",\n";
  // Additive extension: only sampled sweeps carry the sampling block and
  // per-cell error bars, so exact sweeps stay byte-identical to the
  // pre-sampling writer.
  if (sweep.sampled) {
    os << "  \"sampling\": {\"rate\": " << sweep.sample_rate
       << ", \"seed\": " << sweep.sample_seed << "},\n";
  }
  os << "  \"points\": [";
  for (std::size_t p = 0; p < sweep.points.size(); ++p) {
    const SweepPoint& point = sweep.points[p];
    os << (p == 0 ? "\n" : ",\n")
       << "    {\"cache_fraction\": " << point.cache_fraction
       << ", \"capacity_bytes\": " << point.capacity_bytes
       << ",\n     \"policies\": [";
    for (std::size_t i = 0; i < point.results.size(); ++i) {
      const SimResult& r = point.results[i];
      os << (i == 0 ? "\n" : ",\n") << "      {\"policy\": \""
         << json_escape(r.policy_name) << "\",\n       \"overall\": ";
      write_hit_counters_json(os, r.overall);
      os << ",\n       \"evictions\": " << r.evictions
         << ", \"modification_misses\": " << r.modification_misses
         << ", \"interrupted_transfers\": " << r.interrupted_transfers
         << ", \"bypasses\": " << r.bypasses
         << ",\n       \"mean_latency_ms\": " << r.mean_latency_ms();
      if (i < point.estimates.size() && point.estimates[i].sampled) {
        os << ",\n       \"sampled\": true, \"hit_rate_error\": "
           << point.estimates[i].hit_rate_error
           << ", \"byte_hit_rate_error\": "
           << point.estimates[i].byte_hit_rate_error;
      }
      os << ",\n       \"per_class\": {";
      bool first_cls = true;
      for (const auto cls : trace::kAllDocumentClasses) {
        os << (first_cls ? "" : ", ") << "\"" << class_slug(cls) << "\": ";
        write_hit_counters_json(os, r.of(cls));
        first_cls = false;
      }
      os << "}}";
    }
    os << (point.results.empty() ? "]}" : "\n    ]}");
  }
  os << (sweep.points.empty() ? "]\n" : "\n  ]\n") << "}\n";
}

util::Table render_sweep_diagnostics(const SweepResult& sweep,
                                     const std::string& title) {
  util::Table table(title);
  std::vector<std::string> header = {"Cache (MB)", "Policy", "Evictions",
                                     "Mod. misses", "Interrupts", "Bypasses"};
  table.set_header(header);
  for (const SweepPoint& point : sweep.points) {
    for (const SimResult& r : point.results) {
      table.add_row({util::fmt_fixed(
                         static_cast<double>(point.capacity_bytes) / kMB, 1),
                     r.policy_name, util::fmt_count(r.evictions),
                     util::fmt_count(r.modification_misses),
                     util::fmt_count(r.interrupted_transfers),
                     util::fmt_count(r.bypasses)});
    }
  }
  return table;
}

}  // namespace webcache::sim
