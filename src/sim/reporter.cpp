#include "sim/reporter.hpp"

#include <functional>

#include "util/format.hpp"

namespace webcache::sim {

namespace {

constexpr double kMB = 1024.0 * 1024.0;

std::vector<std::string> policy_header(const SweepResult& sweep) {
  std::vector<std::string> header = {"Cache (MB)", "Cache (%)"};
  if (!sweep.points.empty()) {
    for (const SimResult& r : sweep.points.front().results) {
      header.push_back(r.policy_name);
    }
  }
  return header;
}

void add_sweep_rows(util::Table& table, const SweepResult& sweep,
                    const std::function<double(const SimResult&)>& metric) {
  for (const SweepPoint& point : sweep.points) {
    std::vector<std::string> row;
    row.push_back(util::fmt_fixed(
        static_cast<double>(point.capacity_bytes) / kMB, 1));
    row.push_back(util::fmt_fixed(point.cache_fraction * 100.0, 1));
    for (const SimResult& r : point.results) {
      row.push_back(util::fmt_fixed(metric(r), 4));
    }
    table.add_row(row);
  }
}

}  // namespace

util::Table render_sweep_panel(const SweepResult& sweep,
                               trace::DocumentClass doc_class, Metric metric,
                               const std::string& title) {
  util::Table table(title);
  table.set_header(policy_header(sweep));
  add_sweep_rows(table, sweep, [=](const SimResult& r) {
    const HitCounters& c = r.of(doc_class);
    return metric == Metric::kHitRate ? c.hit_rate() : c.byte_hit_rate();
  });
  return table;
}

util::Table render_sweep_overall(const SweepResult& sweep, Metric metric,
                                 const std::string& title) {
  util::Table table(title);
  table.set_header(policy_header(sweep));
  add_sweep_rows(table, sweep, [=](const SimResult& r) {
    return metric == Metric::kHitRate ? r.overall.hit_rate()
                                      : r.overall.byte_hit_rate();
  });
  return table;
}

util::Table render_occupancy_series(const SimResult& result, bool bytes,
                                    const std::string& title) {
  util::Table table(title);
  std::vector<std::string> header = {"Requests"};
  for (const auto c : trace::kAllDocumentClasses) {
    header.emplace_back(trace::to_string(c));
  }
  table.set_header(header);
  for (const OccupancySample& sample : result.occupancy_series) {
    std::vector<std::string> row = {util::fmt_count(sample.request_index)};
    for (const auto c : trace::kAllDocumentClasses) {
      const double fraction = bytes ? sample.occupancy.byte_fraction(c)
                                    : sample.occupancy.object_fraction(c);
      row.push_back(util::fmt_percent(fraction, 2));
    }
    table.add_row(row);
  }
  return table;
}

util::Table render_sweep_diagnostics(const SweepResult& sweep,
                                     const std::string& title) {
  util::Table table(title);
  std::vector<std::string> header = {"Cache (MB)", "Policy", "Evictions",
                                     "Mod. misses", "Interrupts", "Bypasses"};
  table.set_header(header);
  for (const SweepPoint& point : sweep.points) {
    for (const SimResult& r : point.results) {
      table.add_row({util::fmt_fixed(
                         static_cast<double>(point.capacity_bytes) / kMB, 1),
                     r.policy_name, util::fmt_count(r.evictions),
                     util::fmt_count(r.modification_misses),
                     util::fmt_count(r.interrupted_transfers),
                     util::fmt_count(r.bypasses)});
    }
  }
  return table;
}

}  // namespace webcache::sim
