// Renderers for simulation results: the hit-rate / byte-hit-rate series of
// Figures 2/3 (one table per document type and metric, columns = policies,
// rows = cache sizes) and the occupancy series of Figure 1.
#pragma once

#include <string>
#include <vector>

#include "sim/sweep.hpp"
#include "util/table.hpp"

namespace webcache::sim {

enum class Metric { kHitRate, kByteHitRate };

/// One figure panel: the chosen metric for one document class across the
/// sweep. Pass std::nullopt-like sentinel kOverall via overall=true.
util::Table render_sweep_panel(const SweepResult& sweep,
                               trace::DocumentClass doc_class, Metric metric,
                               const std::string& title);

/// The overall (all classes combined) panel.
util::Table render_sweep_overall(const SweepResult& sweep, Metric metric,
                                 const std::string& title);

/// Figure 1 panel: fraction of cached documents (or bytes) per class along
/// the run for one simulation result.
util::Table render_occupancy_series(const SimResult& result, bool bytes,
                                    const std::string& title);

/// Auxiliary diagnostics per sweep point (evictions, modification misses).
util::Table render_sweep_diagnostics(const SweepResult& sweep,
                                     const std::string& title);

}  // namespace webcache::sim
