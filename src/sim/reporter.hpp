// Renderers for simulation results: the hit-rate / byte-hit-rate series of
// Figures 2/3 (one table per document type and metric, columns = policies,
// rows = cache sizes) and the occupancy series of Figure 1.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/stats_sink.hpp"
#include "sim/hierarchy.hpp"
#include "sim/sweep.hpp"
#include "util/table.hpp"

namespace webcache::sim {

enum class Metric { kHitRate, kByteHitRate };

/// One figure panel: the chosen metric for one document class across the
/// sweep. Pass std::nullopt-like sentinel kOverall via overall=true.
util::Table render_sweep_panel(const SweepResult& sweep,
                               trace::DocumentClass doc_class, Metric metric,
                               const std::string& title);

/// The overall (all classes combined) panel.
util::Table render_sweep_overall(const SweepResult& sweep, Metric metric,
                                 const std::string& title);

/// Figure 1 panel: fraction of cached documents (or bytes) per class along
/// the run for one simulation result.
util::Table render_occupancy_series(const SimResult& result, bool bytes,
                                    const std::string& title);

/// Auxiliary diagnostics per sweep point (evictions, modification misses).
util::Table render_sweep_diagnostics(const SweepResult& sweep,
                                     const std::string& title);

// ---- instrumented-run export (obs layer) ----

/// Stable machine key for a document class ("images", "html",
/// "multi_media", "application", "other"); used in the metrics JSON/CSV.
std::string class_slug(trace::DocumentClass c);

/// Serializes an instrumented run — the aggregate SimResult plus the
/// windowed time series — as a single JSON document, schema
/// "webcache.metrics.v1": run header, aggregate overall/per-class hit
/// counters, and one record per window (flow counters per class, admission
/// rejections, occupancy/heap snapshot, aging L and beta traces; absent
/// probes serialize as null). Validated by the CLI smoke test and the
/// golden harness.
void write_metrics_json(std::ostream& os, const SimResult& result,
                        const obs::MetricsSeries& series);

/// Hierarchy runs: same schema and windows array, "mode": "hierarchy", and
/// a level-split aggregate (offered/edge/sibling/root counters plus the
/// fault totals). Warm-up curves name edges by index and the root "root".
void write_hierarchy_metrics_json(std::ostream& os,
                                  const HierarchyResult& result,
                                  const obs::MetricsSeries& series);

/// Flat CSV: one row per window, per-class columns prefixed with the class
/// slug; absent aging/beta (and availability on fault-free runs) are empty
/// cells.
void write_metrics_csv(std::ostream& os, const obs::MetricsSeries& series);

/// Serializes a full cache-size sweep as one JSON document, schema
/// "webcache.sweep.v1": one record per sweep point (fraction, capacity in
/// bytes) with one entry per policy column carrying the overall and
/// per-class hit counters plus the eviction/modification diagnostics.
/// Consumed by the CLI's `sweep --curve-out=FILE` and its smoke test; the
/// numbers are exact counters, so two runs that simulated identically
/// produce byte-identical documents.
void write_sweep_json(std::ostream& os, const SweepResult& sweep);

}  // namespace webcache::sim
