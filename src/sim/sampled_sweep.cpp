#include "sim/sampled_sweep.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>
#include <unordered_map>

#include "sim/faults.hpp"  // detail::mix64
#include "sim/last_size.hpp"
#include "sim/stack_sweep.hpp"

namespace webcache::sim {

namespace {

constexpr double kTwoPow64 = 18446744073709551616.0;

std::uint64_t sampling_hash(std::uint64_t seed, trace::DocumentId doc) {
  return detail::mix64(seed ^ detail::mix64(doc));
}

// Byte sums over recency slots; smaller slot = more recent (slots are
// allocated counting down). Negative updates ride on unsigned wraparound —
// sums of live weights always fit.
class ByteFenwick {
 public:
  explicit ByteFenwick(std::uint64_t slots) : tree_(slots + 1, 0) {}

  void add(std::uint64_t slot, std::uint64_t delta) {
    for (; slot < tree_.size(); slot += slot & (~slot + 1)) {
      tree_[slot] += delta;
    }
  }
  void sub(std::uint64_t slot, std::uint64_t bytes) {
    add(slot, std::uint64_t{0} - bytes);
  }

  /// Sum of bytes over slots [1, slot].
  std::uint64_t prefix(std::uint64_t slot) const {
    std::uint64_t sum = 0;
    for (; slot > 0; slot &= slot - 1) sum += tree_[slot];
    return sum;
  }

 private:
  std::vector<std::uint64_t> tree_;
};

struct DocState {
  std::uint64_t slot = 0;
  std::uint64_t stored = 0;     // bytes accounted in the recency stack
  std::uint64_t last_size = 0;  // previous transfer size (modification rule)
  std::uint64_t hash = 0;       // sampling hash (adaptive eviction key)
  double w_acc = 0.0;           // measured request weight of this document
  double wb_acc = 0.0;          // measured byte weight of this document
};

// Conservative absolute-error estimate for a weighted proportion. SHARDS
// samples whole documents, so the sampling unit is the document cluster,
// not the request: n_eff is the Kish effective count over per-document
// total weights, which collapses toward 1 when a few hot documents carry
// most of the traffic. On top of the 99% normal bound over n_eff, the
// coverage deviation |scaled sampled mass / true mass - 1| is added with a
// safety factor: the stream sees every request, so when the sample over-
// or under-represents traffic (a hot document drawn in or left out), the
// realized mass error measures exactly the distortion that shifts the
// ratio estimate. A continuity term and a fixed model-bias allowance for
// the stack-inclusion approximation close the bound.
double error_bound(double p, double n_eff, double coverage_dev) {
  if (!(n_eff > 1.0)) return 1.0;
  constexpr double kZ = 2.576;
  constexpr double kVarFloor = 0.01;    // keeps near-0/1 points honest
  constexpr double kCoverage = 1.5;     // ratio-shift safety factor
  constexpr double kModelBias = 0.006;  // eviction-boundary approximation
  const double var = std::max(p * (1.0 - p), kVarFloor);
  const double e = kZ * std::sqrt(var / n_eff) + kCoverage * coverage_dev +
                   4.0 / n_eff + kModelBias;
  return std::min(1.0, e);
}

std::uint64_t to_count(double w) {
  return w <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(w));
}

}  // namespace

SampledSweep::SampledSweep(SampledSweepConfig config)
    : config_(std::move(config)) {
  if (config_.capacities.empty()) {
    throw std::invalid_argument("sampled sweep: no capacities");
  }
  if (!(config_.sample_rate > 0.0) || config_.sample_rate > 1.0) {
    throw std::invalid_argument("sampled sweep: sample_rate out of (0, 1]");
  }
  if (config_.simulator.warmup_fraction < 0.0 ||
      config_.simulator.warmup_fraction >= 1.0) {
    throw std::invalid_argument("simulate: warmup_fraction out of [0, 1)");
  }
  if (config_.simulator.modification_threshold <= 0.0 ||
      config_.simulator.modification_threshold >= 1.0) {
    throw std::invalid_argument(
        "simulate: modification_threshold out of (0, 1)");
  }
  if (!StackSweep::options_stack_safe(config_.simulator)) {
    throw std::invalid_argument(
        "sampled sweep: options are not stack-safe (occupancy sampling "
        "needs per-capacity cache state)");
  }
}

std::uint64_t SampledSweep::estimated_exact_footprint_bytes(
    std::uint64_t total_requests) {
  // StackSweep keeps Fenwick trees over one recency slot per request plus
  // per-document bookkeeping; ~40 bytes per request is the honest order of
  // magnitude (measured: 8-fraction DFN ladder).
  return 40 * total_requests;
}

SampledCurve SampledSweep::run(const trace::Trace& trace) const {
  trace::MemoryRequestStream stream(trace);
  return run(stream);
}

SampledCurve SampledSweep::run(trace::RequestStream& stream) const {
  const std::size_t k = config_.capacities.size();
  SampledCurve curve;
  curve.configured_rate = config_.sample_rate;
  curve.hash_seed = config_.hash_seed;
  curve.total_requests = stream.total_requests();
  curve.warmup_requests = static_cast<std::uint64_t>(
      std::floor(static_cast<double>(curve.total_requests) *
                 config_.simulator.warmup_fraction));

  if (config_.sample_rate == 1.0 && config_.max_sampled_documents == 0) {
    // Degenerate exact mode: materialize and delegate to the one-pass
    // engine; every point is the true value with zero error. (With an
    // adaptive cap the bounded-memory property is the whole point, so that
    // combination stays on the sampled engine below.)
    trace::Trace trace;
    trace.requests.reserve(
        static_cast<std::size_t>(stream.total_requests()));
    for (auto chunk = stream.next_chunk(); !chunk.empty();
         chunk = stream.next_chunk()) {
      trace.requests.insert(trace.requests.end(), chunk.begin(), chunk.end());
    }
    StackSweep exact(config_.capacities, config_.simulator);
    curve.results = exact.run(trace);
    curve.points.reserve(k);
    for (std::size_t i = 0; i < k; ++i) {
      const SimResult& r = curve.results[i];
      SampledPoint p;
      p.capacity_bytes = config_.capacities[i];
      p.hit_rate = r.overall.hit_rate();
      p.byte_hit_rate = r.overall.byte_hit_rate();
      p.est_requests = static_cast<double>(r.overall.requests);
      p.est_hits = static_cast<double>(r.overall.hits);
      p.est_requested_bytes = static_cast<double>(r.overall.requested_bytes);
      p.est_hit_bytes = static_cast<double>(r.overall.hit_bytes);
      curve.points.push_back(p);
    }
    curve.effective_rate = 1.0;
    curve.exact = true;
    curve.sampled_requests = curve.total_requests;
    curve.sampled_documents = trace.distinct_documents();
    return curve;
  }

  // ---- sampled one-pass estimator ----
  std::uint64_t threshold;
  if (config_.sample_rate >= 1.0) {
    // rate 1.0 with an adaptive cap: start tracking everything and let the
    // cap drive the threshold down. (The double->u64 cast of 2^64 itself
    // would overflow.)
    threshold = std::numeric_limits<std::uint64_t>::max();
  } else {
    threshold = static_cast<std::uint64_t>(config_.sample_rate * kTwoPow64);
    if (threshold == 0) threshold = 1;
  }

  std::unordered_map<trace::DocumentId, DocState> docs;
  // Max-heap on (hash, doc) for adaptive threshold lowering; entries are
  // dropped lazily once their document leaves the table.
  using HeapEntry = std::pair<std::uint64_t, trace::DocumentId>;
  std::priority_queue<HeapEntry> by_hash;

  std::uint64_t slot_space = 1 << 16;
  std::uint64_t cursor = slot_space;  // next slot = cursor--, 0 => renumber
  ByteFenwick fen(slot_space);

  const auto renumber = [&]() {
    // Gather live docs most-recent-first (ascending slot), regrow the slot
    // space, and pack them at the top so cursor gets a fresh run of slots.
    std::vector<std::pair<std::uint64_t, trace::DocumentId>> live;
    live.reserve(docs.size());
    for (const auto& [id, st] : docs) live.emplace_back(st.slot, id);
    std::sort(live.begin(), live.end());
    const std::uint64_t n = live.size();
    slot_space = std::max<std::uint64_t>(1 << 16, 4 * n + 1024);
    fen = ByteFenwick(slot_space);
    std::uint64_t next = slot_space - n + 1;
    for (const auto& [old_slot, id] : live) {
      DocState& st = docs[id];
      st.slot = next++;
      fen.add(st.slot, st.stored);
    }
    cursor = slot_space - n;
  };

  const auto alloc_slot = [&]() {
    if (cursor == 0) renumber();
    return cursor--;
  };

  const std::uint64_t warmup = curve.warmup_requests;
  const SimulatorOptions& opt = config_.simulator;

  // Weighted accumulators. Global ones are capacity-independent; hits and
  // miss latency are per capacity.
  double req_w = 0, req_bytes_w = 0, all_lat_w = 0, interrupted_w = 0;
  std::array<double, trace::kDocumentClassCount> cls_req_w{},
      cls_req_bytes_w{};
  std::vector<double> hits_w(k, 0.0), hit_bytes_w(k, 0.0),
      miss_lat_w(k, 0.0), mod_miss_w(k, 0.0);
  std::vector<std::array<double, trace::kDocumentClassCount>> cls_hits_w(k),
      cls_hit_bytes_w(k);
  for (auto& a : cls_hits_w) a.fill(0.0);
  for (auto& a : cls_hit_bytes_w) a.fill(0.0);
  // Per-DOCUMENT Kish terms for the error bounds: each sampled document
  // contributes its total measured weight once (folded on eviction or at
  // end of run), because documents — not requests — are the sampling unit.
  double doc_w = 0, doc_w2 = 0, doc_wb = 0, doc_wb2 = 0;
  // True measured totals — the stream sees every request, so the scaled
  // sampled mass can be compared against the real one (coverage).
  double true_reqs = 0, true_bytes = 0;
  const auto fold_doc = [&](const DocState& st) {
    doc_w += st.w_acc;
    doc_w2 += st.w_acc * st.w_acc;
    doc_wb += st.wb_acc;
    doc_wb2 += st.wb_acc * st.wb_acc;
  };

  std::uint64_t index = 0;
  std::uint64_t sampled_refs = 0;
  std::uint64_t peak_tracked = 0;

  for (auto chunk = stream.next_chunk(); !chunk.empty();
       chunk = stream.next_chunk()) {
    for (const trace::Request& r : chunk) {
      ++index;
      const bool measured = index > warmup;
      const std::uint64_t size = r.transfer_size;
      if (measured) {
        true_reqs += 1.0;
        true_bytes += static_cast<double>(size);
      }
      const std::uint64_t h = sampling_hash(config_.hash_seed, r.document);
      if (h >= threshold) continue;
      ++sampled_refs;
      const double rate_now =
          static_cast<double>(threshold) / kTwoPow64;
      const double w = 1.0 / rate_now;

      auto it = docs.find(r.document);
      const bool seen = it != docs.end();

      detail::SizeChange change;
      double eff_dist = 0.0;
      bool resident_proxy = false;
      if (seen) {
        DocState& st = it->second;
        change = detail::classify_size_change(st.last_size, size, opt);
        st.last_size = size;
        // Bytes of strictly more recently used sampled documents, scaled
        // up by the sampling rate to estimate the full-trace distance.
        const std::uint64_t below = fen.prefix(st.slot) - st.stored;
        eff_dist = static_cast<double>(below) / rate_now;
        resident_proxy = true;
        // Move to front with the new size.
        fen.sub(st.slot, st.stored);
        st.slot = alloc_slot();
        st.stored = size;
        fen.add(st.slot, size);
      } else {
        DocState st;
        st.slot = alloc_slot();
        st.stored = size;
        st.last_size = size;
        st.hash = h;
        fen.add(st.slot, size);
        docs.emplace(r.document, st);
        by_hash.emplace(h, r.document);

        if (config_.max_sampled_documents > 0 &&
            docs.size() > config_.max_sampled_documents) {
          // Rate-adaptive eviction: drop the max-hash documents and lower
          // the threshold to the largest surviving hash. An evicted hash
          // is >= every later threshold, so the document can never return
          // and its Kish contribution folds exactly once.
          while (docs.size() > config_.max_sampled_documents ||
                 (!by_hash.empty() && by_hash.top().first >= threshold)) {
            const auto [eh, edoc] = by_hash.top();
            by_hash.pop();
            auto eit = docs.find(edoc);
            if (eit == docs.end() || eit->second.hash != eh) continue;
            fen.sub(eit->second.slot, eit->second.stored);
            fold_doc(eit->second);
            docs.erase(eit);
            threshold = std::min(threshold, eh);
          }
        }
        peak_tracked = std::max<std::uint64_t>(peak_tracked, docs.size());
      }

      if (measured) {
        const double wb = w * static_cast<double>(size);
        if (auto wit = docs.find(r.document); wit != docs.end()) {
          wit->second.w_acc += w;
          wit->second.wb_acc += wb;
        } else {
          // The insert above can evict the new document itself (its hash
          // was the new maximum); its single-request cluster folds here.
          doc_w += w;
          doc_w2 += w * w;
          doc_wb += wb;
          doc_wb2 += wb * wb;
        }
        req_w += w;
        req_bytes_w += wb;
        const auto cls = static_cast<std::size_t>(r.doc_class);
        cls_req_w[cls] += w;
        cls_req_bytes_w[cls] += wb;
        const double fetch_latency =
            opt.latency_setup_ms +
            static_cast<double>(size) / opt.latency_bytes_per_ms;
        all_lat_w += w * fetch_latency;
        if (change.interrupted) interrupted_w += w;
        for (std::size_t i = 0; i < k; ++i) {
          const double cap = static_cast<double>(config_.capacities[i]);
          const bool fits =
              seen && eff_dist + static_cast<double>(size) <= cap;
          const bool hit = fits && !change.modified;
          if (hit) {
            hits_w[i] += w;
            hit_bytes_w[i] += wb;
            cls_hits_w[i][cls] += w;
            cls_hit_bytes_w[i][cls] += wb;
          } else {
            miss_lat_w[i] += w * fetch_latency;
            if (change.modified && resident_proxy && fits) {
              mod_miss_w[i] += w;
            }
          }
        }
      }
    }
  }

  curve.effective_rate = static_cast<double>(threshold) / kTwoPow64;
  curve.sampled_requests = sampled_refs;
  curve.sampled_documents = peak_tracked;

  for (const auto& [id, st] : docs) fold_doc(st);
  const double n_eff = doc_w2 > 0.0 ? (doc_w * doc_w) / doc_w2 : 0.0;
  const double n_eff_b = doc_wb2 > 0.0 ? (doc_wb * doc_wb) / doc_wb2 : 0.0;
  const double cov_dev =
      true_reqs > 0.0 ? std::abs(req_w / true_reqs - 1.0) : 0.0;
  const double cov_dev_b =
      true_bytes > 0.0 ? std::abs(req_bytes_w / true_bytes - 1.0) : 0.0;

  curve.points.reserve(k);
  curve.results.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    SampledPoint p;
    p.capacity_bytes = config_.capacities[i];
    p.est_requests = req_w;
    p.est_hits = hits_w[i];
    p.est_requested_bytes = req_bytes_w;
    p.est_hit_bytes = hit_bytes_w[i];
    p.hit_rate = req_w > 0.0 ? hits_w[i] / req_w : 0.0;
    p.byte_hit_rate = req_bytes_w > 0.0 ? hit_bytes_w[i] / req_bytes_w : 0.0;
    p.hit_rate_error = error_bound(p.hit_rate, n_eff, cov_dev);
    p.byte_hit_rate_error = error_bound(p.byte_hit_rate, n_eff_b, cov_dev_b);
    curve.points.push_back(p);

    SimResult res;
    res.policy_name = "LRU";
    res.capacity_bytes = config_.capacities[i];
    res.warmup_requests = curve.warmup_requests;
    res.measured_requests = curve.total_requests - curve.warmup_requests;
    res.overall.requests = to_count(req_w);
    res.overall.hits = to_count(hits_w[i]);
    res.overall.requested_bytes = to_count(req_bytes_w);
    res.overall.hit_bytes = to_count(hit_bytes_w[i]);
    for (std::size_t c = 0; c < trace::kDocumentClassCount; ++c) {
      res.per_class[c].requests = to_count(cls_req_w[c]);
      res.per_class[c].hits = to_count(cls_hits_w[i][c]);
      res.per_class[c].requested_bytes = to_count(cls_req_bytes_w[c]);
      res.per_class[c].hit_bytes = to_count(cls_hit_bytes_w[i][c]);
    }
    res.all_miss_latency_ms = all_lat_w;
    res.miss_latency_ms = miss_lat_w[i];
    res.modification_misses = to_count(mod_miss_w[i]);
    res.interrupted_transfers = to_count(interrupted_w);
    curve.results.push_back(std::move(res));
  }
  return curve;
}

}  // namespace webcache::sim
