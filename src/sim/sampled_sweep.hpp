// SHARDS-style spatially sampled miss-ratio curves.
//
// StackSweep answers a whole LRU capacity ladder exactly in one pass, but
// its recency structures grow with the trace. SampledSweep trades exactness
// for bounded memory: a document is tracked iff
//
//     hash(document) < rate * 2^64
//
// (spatial sampling — every reference to a sampled document is seen, every
// other document is invisible), reuse distances measured over the sampled
// population are scaled by 1/rate, and per-reference statistics are
// weighted by 1/rate. Memory is O(sampled documents), independent of trace
// length, so miss-ratio curves for 10^8-10^9-request streams fit in a few
// MB at rate 0.01. Each capacity point carries a conservative expected-
// error estimate (99% normal bound over the effective sample size, plus a
// small-sample and a model-bias term — the stack-inclusion criterion
// ignores eviction-boundary effects that the exact engine models).
//
// The standard rate-adaptive variant caps the tracked population
// (`max_sampled_documents`): when the cap is exceeded, the documents with
// the largest hash values are dropped and the threshold lowers to the
// largest surviving hash, so the effective rate adapts to the stream's
// cardinality. References are weighted by the rate in force when they were
// processed.
//
// rate == 1.0 degenerates to the exact one-pass engine: run() delegates to
// StackSweep and the points carry zero error — unless max_sampled_documents
// is set, in which case the cap keeps the sampled engine engaged (bounded
// memory is the point of the cap).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sim/metrics.hpp"
#include "sim/simulator.hpp"
#include "trace/request.hpp"
#include "trace/request_stream.hpp"

namespace webcache::sim {

struct SampledSweepConfig {
  /// Capacity ladder; any order, may repeat. Results come back in order.
  std::vector<std::uint64_t> capacities;

  /// Same option validation as simulate(); must be stack-safe
  /// (occupancy_samples == 0) — occupancy snapshots need per-capacity cache
  /// state neither one-pass engine materializes.
  SimulatorOptions simulator;

  /// Fraction of the document space tracked, in (0, 1]. 1.0 = exact
  /// (delegates to StackSweep).
  double sample_rate = 0.01;

  /// Seed mixed into the sampling hash. Fixed seed => bit-reproducible
  /// curves; varying it gives independent replicates.
  std::uint64_t hash_seed = 0x5348415244530001ULL;

  /// 0 = fixed-rate sampling. Otherwise the rate-adaptive cap on tracked
  /// documents described above.
  std::size_t max_sampled_documents = 0;
};

/// One capacity point of the sampled curve.
struct SampledPoint {
  std::uint64_t capacity_bytes = 0;

  /// Estimated hit / byte-hit rates over the measured window.
  double hit_rate = 0.0;
  double byte_hit_rate = 0.0;

  /// Conservative expected absolute error of the estimates (0 when exact).
  double hit_rate_error = 0.0;
  double byte_hit_rate_error = 0.0;

  /// 1/rate-weighted counter estimates backing the rates.
  double est_requests = 0.0;
  double est_hits = 0.0;
  double est_requested_bytes = 0.0;
  double est_hit_bytes = 0.0;
};

struct SampledCurve {
  /// Points parallel the config's capacity ladder.
  std::vector<SampledPoint> points;

  /// Full SimResults for the ladder: exact ones when rate == 1.0, scaled
  /// counter estimates otherwise (eviction/bypass diagnostics are 0 in
  /// sampled runs — the estimator never materializes per-capacity caches).
  std::vector<SimResult> results;

  double configured_rate = 0.0;
  /// Final rate after adaptive threshold lowering (== configured_rate when
  /// max_sampled_documents is 0 or never exceeded).
  double effective_rate = 0.0;
  std::uint64_t hash_seed = 0;
  bool exact = false;

  std::uint64_t total_requests = 0;
  std::uint64_t warmup_requests = 0;
  std::uint64_t sampled_requests = 0;
  /// Peak number of documents tracked at once — the bounded-memory figure;
  /// never exceeds max_sampled_documents when the adaptive cap is set.
  std::uint64_t sampled_documents = 0;
};

class SampledSweep {
 public:
  /// Throws std::invalid_argument on an empty ladder, a rate outside
  /// (0, 1], or options that fail validation / are not stack-safe.
  explicit SampledSweep(SampledSweepConfig config);

  /// One pass over the stream (consumed; reset() to reuse). At rate 1.0
  /// the stream is materialized and delegated to StackSweep — exactness
  /// requires the full recency order, so the bounded-memory property only
  /// holds for rate < 1.
  SampledCurve run(trace::RequestStream& stream) const;

  /// Convenience over a materialized trace.
  SampledCurve run(const trace::Trace& trace) const;

  const SampledSweepConfig& config() const { return config_; }

  /// Rough peak-memory estimate for running the *exact* StackSweep over a
  /// trace of this many requests (recency slots + per-document state).
  /// run_sweep's kAuto routing samples when this exceeds the budget.
  static std::uint64_t estimated_exact_footprint_bytes(
      std::uint64_t total_requests);

 private:
  SampledSweepConfig config_;
};

}  // namespace webcache::sim
