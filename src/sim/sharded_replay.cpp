#include "sim/sharded_replay.hpp"

#include <array>
#include <cmath>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cache/frontend.hpp"
#include "sim/faults.hpp"  // detail::mix64
#include "sim/last_size.hpp"
#include "util/parallel.hpp"

namespace webcache::sim {

namespace {

using detail::SizeChange;
using detail::classify_size_change;

// Internal dense ids are 32-bit so the recency core's intrusive list fits
// in two u32 per document; kNil doubles as "no neighbor" and as the bound
// above which the engine falls back to serial simulate().
constexpr std::uint32_t kNil = 0xffffffffu;

// Per-request outcome byte emitted by the resolve stage.
enum : std::uint8_t {
  kOutHit = 0,
  kOutMiss = 1,
  kOutBypass = 2,
  kOutMissInvalidated = 3,    // modification drop, then insert
  kOutBypassInvalidated = 4,  // modification drop, then admission reject
};

// Per-request flags byte emitted by the annotate stage.
enum : std::uint8_t { kFlagModified = 1, kFlagInterrupted = 2 };

using detail::validate_options;

std::uint64_t admission_limit_of(const cache::PolicySpec& policy) {
  return policy.kind == cache::PolicyKind::kLruThreshold
             ? policy.admission_threshold_bytes
             : 0;
}

std::uint64_t warmup_of(std::uint64_t total, const SimulatorOptions& options) {
  return static_cast<std::uint64_t>(
      std::floor(static_cast<double>(total) * options.warmup_fraction));
}

std::uint32_t shard_of(std::uint64_t key, std::uint32_t shards) {
  return static_cast<std::uint32_t>(detail::mix64(key) % shards);
}

// One request as its shard sees it: the trace index keeps the global order
// recoverable, so annotate/account stages write per-request slots without
// any cross-shard coordination.
struct ShardEntry {
  std::uint64_t doc = 0;   // trace document id (sparse or dense)
  std::uint64_t size = 0;  // transfer size
  std::uint64_t index = 0; // 0-based global request index
  trace::DocumentClass cls = trace::DocumentClass::kOther;
};

// Stage 1: carve the per-shard request queues in one partitioning pass.
// Exact mode shards by trace document id; approx mode shards by the
// pre-densification id (original != nullptr), so sparse and dense replays
// of the same trace land every document in the same shard.
std::vector<std::vector<ShardEntry>> carve_queues(
    const trace::Trace& trace, std::uint32_t shards,
    const std::vector<trace::DocumentId>* original) {
  std::vector<std::uint64_t> counts(shards, 0);
  for (const trace::Request& r : trace.requests) {
    const std::uint64_t key =
        original ? (*original)[static_cast<std::size_t>(r.document)]
                 : r.document;
    ++counts[shard_of(key, shards)];
  }
  std::vector<std::vector<ShardEntry>> queues(shards);
  for (std::uint32_t s = 0; s < shards; ++s) {
    queues[s].reserve(static_cast<std::size_t>(counts[s]));
  }
  std::uint64_t index = 0;
  for (const trace::Request& r : trace.requests) {
    const std::uint64_t key =
        original ? (*original)[static_cast<std::size_t>(r.document)]
                 : r.document;
    queues[shard_of(key, shards)].push_back(
        ShardEntry{r.document, r.transfer_size, index, r.doc_class});
    ++index;
  }
  return queues;
}

// ---- exact mode -----------------------------------------------------------

// Stage-2 output: the per-request annotations the serial resolve consumes.
struct ExactAnnotations {
  std::vector<std::uint8_t> flags;   // kFlagModified | kFlagInterrupted
  std::vector<std::uint32_t> docid;  // dense internal document id
  std::uint64_t doc_count = 0;       // bound on docid values (exclusive)
};

// Stage 2, sparse traces: each document's whole history lives in one shard,
// so the per-document last-size chain (the serial loop's SparseLastSize)
// resolves shard-locally, and each shard densifies its documents into a
// local id range lifted to a global range by prefix-sum base offsets.
// classify_size_change is outcome-independent (the serial loop overwrites
// *previous unconditionally), which is what makes this stage parallel.
ExactAnnotations annotate_sparse(const trace::Trace& trace,
                                 const std::vector<std::vector<ShardEntry>>& queues,
                                 const SimulatorOptions& options,
                                 std::uint32_t threads) {
  ExactAnnotations out;
  const std::size_t n = trace.requests.size();
  out.flags.assign(n, 0);
  out.docid.assign(n, 0);

  std::vector<std::uint32_t> shard_docs(queues.size(), 0);
  util::parallel_for(queues.size(), threads, [&](std::size_t s) {
    struct DocState {
      std::uint32_t local;
      std::uint64_t last_size;
    };
    std::unordered_map<std::uint64_t, DocState> docs;
    docs.reserve(queues[s].size() / 2 + 16);
    std::uint32_t next_local = 0;
    for (const ShardEntry& e : queues[s]) {
      auto [it, inserted] = docs.try_emplace(e.doc, DocState{next_local, e.size});
      if (inserted) {
        ++next_local;
      } else {
        const SizeChange change =
            classify_size_change(it->second.last_size, e.size, options);
        it->second.last_size = e.size;
        out.flags[e.index] =
            static_cast<std::uint8_t>((change.modified ? kFlagModified : 0) |
                                      (change.interrupted ? kFlagInterrupted : 0));
      }
      out.docid[e.index] = it->second.local;
    }
    shard_docs[s] = next_local;
  });

  std::vector<std::uint64_t> base(queues.size(), 0);
  std::uint64_t total_docs = 0;
  for (std::size_t s = 0; s < queues.size(); ++s) {
    base[s] = total_docs;
    total_docs += shard_docs[s];
  }
  out.doc_count = total_docs;
  util::parallel_for(queues.size(), threads, [&](std::size_t s) {
    const auto offset = static_cast<std::uint32_t>(base[s]);
    if (offset == 0) return;
    for (const ShardEntry& e : queues[s]) out.docid[e.index] += offset;
  });
  return out;
}

// Stage 2, dense traces: ids are already dense, so only the size chains
// resolve here. One shared flat DenseLastSize is safe: each document (and
// therefore each slot) is touched by exactly one shard.
ExactAnnotations annotate_dense(const trace::Trace& trace,
                                std::uint64_t universe,
                                const std::vector<std::vector<ShardEntry>>& queues,
                                const SimulatorOptions& options,
                                std::uint32_t threads) {
  ExactAnnotations out;
  const std::size_t n = trace.requests.size();
  out.flags.assign(n, 0);
  out.docid.assign(n, 0);
  out.doc_count = universe;

  detail::DenseLastSize last_size(universe);
  util::parallel_for(queues.size(), threads, [&](std::size_t s) {
    for (const ShardEntry& e : queues[s]) {
      out.docid[e.index] = static_cast<std::uint32_t>(e.doc);
      if (std::uint64_t* previous = last_size.lookup(e.doc, e.size)) {
        const SizeChange change =
            classify_size_change(*previous, e.size, options);
        *previous = e.size;
        out.flags[e.index] =
            static_cast<std::uint8_t>((change.modified ? kFlagModified : 0) |
                                      (change.interrupted ? kFlagInterrupted : 0));
      }
    }
  });
  return out;
}

// Stage 3: the lean serial recency core. Flat arrays over dense internal
// ids, an intrusive doubly-linked recency list (insert at head; LRU moves
// to head on hit, FIFO does not; the victim is the tail), and the exact
// Cache::access decision order: hit check, modification drop, admission
// check, demand eviction, insert. Stored size is recorded on insert and
// never refreshed by hits — the byte-LRU semantics the serial simulator
// has. Emits one outcome byte per request for the accounting stage.
//
// Policies outside the LRU/FIFO list specialization (RANDOM, CLOCK,
// DELAY-CLOCK) run through a real ReplacementPolicy instance over the
// dense slab instead of the intrusive list: the core replays the serial
// container's exact hook order (on_hit / choose_victim / on_evict /
// on_erase / on_insert), so any policy whose evolution depends only on
// that call sequence — never on id numbering or object metadata — is
// bit-identical to simulate(). That is precisely the exact_eligible()
// contract; the promotion-mutating lazy-LRU variants stay approx-only
// not because the serial replay here would diverge, but because their
// hit path writes the recency structure, which is the property the
// exact engine's eligibility rule is documenting.
class ExactCore {
 public:
  ExactCore(std::uint64_t doc_count, std::uint64_t capacity_bytes,
            std::uint64_t admission_limit, const cache::PolicySpec& spec)
      : capacity_bytes_(capacity_bytes),
        admission_limit_(admission_limit),
        move_on_hit_(spec.kind != cache::PolicyKind::kFifo),
        // Only LruPolicy reports its order as heap_entries; FIFO and
        // LRU-Threshold have no policy_probe override, so serial snapshots
        // show 0 for them and ours must too.
        probe_heap_(spec.kind == cache::PolicyKind::kLru),
        stored_(static_cast<std::size_t>(doc_count), 0),
        cls_(static_cast<std::size_t>(doc_count), 0),
        resident_(static_cast<std::size_t>(doc_count), 0),
        prev_(static_cast<std::size_t>(doc_count), kNil),
        next_(static_cast<std::size_t>(doc_count), kNil) {
    if (spec.kind == cache::PolicyKind::kRandom ||
        spec.kind == cache::PolicyKind::kClock ||
        spec.kind == cache::PolicyKind::kDelayClock) {
      policy_ = cache::make_policy(spec);
      policy_->reserve_ids(doc_count);
    }
  }

  template <typename Sink>
  void replay(const trace::Trace& trace,
              const std::vector<std::uint32_t>& docid,
              const std::vector<std::uint8_t>& flags, std::uint64_t warmup,
              std::vector<std::uint8_t>& outcomes, Sink& sink) {
    const std::size_t n = trace.requests.size();
    for (std::size_t i = 0; i < n; ++i) {
      const trace::Request& r = trace.requests[i];
      const std::uint64_t size = r.transfer_size;
      const std::uint32_t d = docid[i];
      std::uint8_t out;
      if (resident_[d] != 0 && (flags[i] & kFlagModified) == 0) {
        if (policy_) {
          policy_->on_hit(hook_object(d));
        } else if (move_on_hit_) {
          move_to_front(d);
        }
        out = kOutHit;
      } else {
        bool invalidated = false;
        if (resident_[d] != 0) {
          remove(d, cache::RemovalCause::kInvalidation, sink);
          invalidated = true;
        }
        if (size <= capacity_bytes_ &&
            (admission_limit_ == 0 || size <= admission_limit_)) {
          while (used_bytes_ + size > capacity_bytes_) {
            ++evictions_;
            const std::uint32_t victim =
                policy_ ? static_cast<std::uint32_t>(
                              policy_->choose_victim(size))
                        : tail_;
            remove(victim, cache::RemovalCause::kEviction, sink);
          }
          stored_[d] = size;
          cls_[d] = static_cast<std::uint8_t>(r.doc_class);
          resident_[d] = 1;
          used_bytes_ += size;
          ++resident_objects_;
          if (policy_) {
            policy_->on_insert(hook_object(d));
          } else {
            push_front(d);
          }
          out = invalidated ? kOutMissInvalidated : kOutMiss;
        } else {
          out = invalidated ? kOutBypassInvalidated : kOutBypass;
        }
      }
      outcomes[i] = out;
      sink.on_access(r.doc_class, size, access_kind(out),
                     static_cast<std::uint64_t>(i) + 1 > warmup);
    }
  }

  std::uint64_t evictions() const { return evictions_; }

  obs::Snapshot snapshot() const {
    obs::Snapshot s;
    s.occupancy_bytes = used_bytes_;
    s.occupancy_objects = resident_objects_;
    if (policy_) {
      const cache::PolicyProbe probe = policy_->probe();
      s.heap_entries = probe.heap_entries;
      s.aging = probe.aging;
      s.beta = probe.beta;
    } else {
      s.heap_entries = probe_heap_ ? resident_objects_ : 0;
    }
    return s;
  }

  static cache::Cache::AccessKind access_kind(std::uint8_t out) {
    switch (out) {
      case kOutHit:
        return cache::Cache::AccessKind::kHit;
      case kOutBypass:
      case kOutBypassInvalidated:
        return cache::Cache::AccessKind::kBypass;
      default:
        return cache::Cache::AccessKind::kMiss;
    }
  }

 private:
  // The hook argument the serial container would pass; the exact-eligible
  // policies read only the id (that is what makes them exact-eligible), so
  // access-clock metadata is deliberately left at its defaults.
  cache::CacheObject hook_object(std::uint32_t d) const {
    cache::CacheObject obj;
    obj.id = d;
    obj.size = stored_[d];
    obj.doc_class = static_cast<trace::DocumentClass>(cls_[d]);
    return obj;
  }

  template <typename Sink>
  void remove(std::uint32_t d, cache::RemovalCause cause, Sink& sink) {
    used_bytes_ -= stored_[d];
    resident_[d] = 0;
    --resident_objects_;
    if (policy_) {
      if (cause == cache::RemovalCause::kEviction) {
        policy_->on_evict(d);
      } else {
        policy_->on_erase(d);
      }
    } else {
      unlink(d);
    }
    if constexpr (!std::is_same_v<std::remove_cvref_t<Sink>, obs::NullSink>) {
      cache::CacheObject obj;
      obj.id = d;
      obj.size = stored_[d];
      obj.doc_class = static_cast<trace::DocumentClass>(cls_[d]);
      sink.on_removal(obj, cause);
    }
  }

  void push_front(std::uint32_t d) {
    prev_[d] = kNil;
    next_[d] = head_;
    if (head_ != kNil) prev_[head_] = d;
    head_ = d;
    if (tail_ == kNil) tail_ = d;
  }

  void unlink(std::uint32_t d) {
    if (prev_[d] != kNil) {
      next_[prev_[d]] = next_[d];
    } else {
      head_ = next_[d];
    }
    if (next_[d] != kNil) {
      prev_[next_[d]] = prev_[d];
    } else {
      tail_ = prev_[d];
    }
    prev_[d] = kNil;
    next_[d] = kNil;
  }

  void move_to_front(std::uint32_t d) {
    if (head_ == d) return;
    unlink(d);
    push_front(d);
  }

  std::uint64_t capacity_bytes_;
  std::uint64_t admission_limit_;
  bool move_on_hit_;
  bool probe_heap_;
  std::uint64_t used_bytes_ = 0;
  std::uint64_t resident_objects_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint32_t head_ = kNil;
  std::uint32_t tail_ = kNil;
  std::vector<std::uint64_t> stored_;
  std::vector<std::uint8_t> cls_;
  std::vector<std::uint8_t> resident_;
  std::vector<std::uint32_t> prev_;
  std::vector<std::uint32_t> next_;
  // Set only for the policy-backed kinds; null keeps the intrusive-list
  // fast path for LRU / FIFO / LRU-THOLD.
  std::unique_ptr<cache::ReplacementPolicy> policy_;
};

// Stage-4 output: one shard's integer counters.
struct ShardTotals {
  std::array<HitCounters, trace::kDocumentClassCount> per_class{};
  std::uint64_t bypasses = 0;
  std::uint64_t modification_misses = 0;
  std::uint64_t interrupted_transfers = 0;
};

void account_shard(const std::vector<ShardEntry>& queue,
                   const std::vector<std::uint8_t>& outcomes,
                   const std::vector<std::uint8_t>& flags,
                   std::uint64_t warmup, ShardTotals& totals) {
  for (const ShardEntry& e : queue) {
    if (e.index + 1 <= warmup) continue;
    HitCounters& cls = totals.per_class[static_cast<std::size_t>(e.cls)];
    cls.requests += 1;
    cls.requested_bytes += e.size;
    const std::uint8_t out = outcomes[e.index];
    if (out == kOutHit) {
      cls.hits += 1;
      cls.hit_bytes += e.size;
    } else if (out == kOutBypass || out == kOutBypassInvalidated) {
      totals.bypasses += 1;
    }
    if (out == kOutMissInvalidated || out == kOutBypassInvalidated) {
      totals.modification_misses += 1;
    }
    if ((flags[e.index] & kFlagInterrupted) != 0) {
      totals.interrupted_transfers += 1;
    }
  }
}

// The latency doubles must accumulate in trace order to be bit-identical
// to the serial loop (FP addition is not associative), so one accounting
// task walks the measured tail sequentially — two accumulators fed the
// same value sequence as the serial loop's.
void account_latency(const trace::Trace& trace,
                     const std::vector<std::uint8_t>& outcomes,
                     std::uint64_t warmup, const SimulatorOptions& options,
                     double& miss_latency_ms, double& all_miss_latency_ms) {
  double miss = 0.0;
  double all_miss = 0.0;
  const std::size_t n = trace.requests.size();
  for (std::size_t i = static_cast<std::size_t>(warmup); i < n; ++i) {
    const double fetch_latency =
        options.latency_setup_ms +
        static_cast<double>(trace.requests[i].transfer_size) /
            options.latency_bytes_per_ms;
    all_miss += fetch_latency;
    if (outcomes[i] != kOutHit) miss += fetch_latency;
  }
  miss_latency_ms = miss;
  all_miss_latency_ms = all_miss;
}

// ---- approx mode ----------------------------------------------------------

// Splits `capacity` proportionally to `weights` (128-bit exact floor, the
// remainder distributed one byte at a time over the non-zero-weight shards
// in index order — deterministic, and off by at most shards-1 before the
// remainder pass). All weights zero gives everything to shard 0.
std::vector<std::uint64_t> proportional_quotas(
    std::uint64_t capacity, const std::vector<std::uint64_t>& weights) {
  std::vector<std::uint64_t> quotas(weights.size(), 0);
  unsigned __int128 total = 0;
  for (const std::uint64_t w : weights) total += w;
  if (total == 0) {
    quotas[0] = capacity;
    return quotas;
  }
  std::uint64_t assigned = 0;
  for (std::size_t s = 0; s < weights.size(); ++s) {
    quotas[s] = static_cast<std::uint64_t>(
        static_cast<unsigned __int128>(capacity) * weights[s] / total);
    assigned += quotas[s];
  }
  std::uint64_t rest = capacity - assigned;
  for (std::size_t s = 0; rest > 0; s = (s + 1) % weights.size()) {
    if (weights[s] == 0) continue;
    ++quotas[s];
    --rest;
  }
  return quotas;
}

struct ApproxShardState {
  std::unique_ptr<cache::SingleCacheFrontend> frontend;
  std::unique_ptr<detail::SparseLastSize> sparse_last;  // sparse traces only
  std::size_t cursor = 0;           // next unprocessed queue position
  std::uint64_t demand_bytes = 0;   // cumulative requested bytes processed
  ShardTotals totals;
  double miss_latency_ms = 0.0;
  double all_miss_latency_ms = 0.0;
};

}  // namespace

// ---- ShardedReplay --------------------------------------------------------

ShardedReplay::ShardedReplay(std::uint64_t capacity_bytes,
                             const cache::PolicySpec& policy,
                             const SimulatorOptions& options,
                             const ShardedConfig& config)
    : capacity_bytes_(capacity_bytes),
      policy_(policy),
      options_(options),
      threads_(util::resolve_threads(config.threads)),
      mode_(config.mode),
      rebalance_interval_(config.rebalance_interval) {
  validate_options(options);
  if (options.occupancy_samples != 0) {
    throw std::invalid_argument(
        "ShardedReplay: occupancy sampling is not supported "
        "(occupancy_samples must be 0)");
  }
  if (mode_ == ShardedMode::kExact && !exact_eligible(policy, options)) {
    throw std::invalid_argument(
        "ShardedReplay: policy has a heap-ordered or promotion-mutating hit "
        "path; exact mode covers LRU/FIFO/LRU-THOLD/RANDOM/CLOCK/DELAY-CLOCK "
        "only — use the approximate mode (ShardedMode::kApprox)");
  }
  shards_ = config.shards != 0
                ? config.shards
                : (mode_ == ShardedMode::kExact ? threads_
                                                : kDefaultApproxShards);
  // Exact output is shard-count invariant (always == serial), so a 1-thread
  // auto-shard run takes the plain serial path with zero overhead. Approx
  // output depends on the shard count, so it only delegates when a single
  // shard makes the pipeline literally serial.
  serial_delegate_ = mode_ == ShardedMode::kExact
                         ? (threads_ <= 1 && shards_ <= 1)
                         : shards_ <= 1;
}

bool ShardedReplay::exact_eligible(const cache::PolicySpec& policy,
                                   const SimulatorOptions& options) {
  // LRU/FIFO/LRU-THOLD run on the intrusive-list fast path; RANDOM, CLOCK
  // and DELAY-CLOCK run a real policy instance inside the serial resolve
  // stage. All five qualify because their hit path never reorders the
  // eviction structure (RANDOM/CLOCK touch a counter or nothing), so the
  // replayed hook sequence is id-numbering independent. The lazy-LRU
  // promotion variants (PROB-LRU, DELAY-LRU, BATCH-LRU) mutate the
  // recency list on hits and stay approx-only.
  const bool eligible = policy.kind == cache::PolicyKind::kLru ||
                        policy.kind == cache::PolicyKind::kFifo ||
                        policy.kind == cache::PolicyKind::kLruThreshold ||
                        policy.kind == cache::PolicyKind::kRandom ||
                        policy.kind == cache::PolicyKind::kClock ||
                        policy.kind == cache::PolicyKind::kDelayClock;
  return eligible && options.occupancy_samples == 0;
}

namespace {

// Drives the five-stage exact pipeline. `universe` > 0 marks a dense trace.
template <typename Sink>
SimResult run_exact_pipeline(const trace::Trace& trace, std::uint64_t universe,
                             std::uint64_t capacity_bytes,
                             const cache::PolicySpec& policy,
                             const SimulatorOptions& options,
                             std::uint32_t threads, std::uint32_t shards,
                             Sink& sink) {
  const std::uint64_t total = trace.requests.size();
  const std::uint64_t warmup = warmup_of(total, options);

  const std::vector<std::vector<ShardEntry>> queues =
      carve_queues(trace, shards, nullptr);
  const ExactAnnotations ann =
      universe > 0 ? annotate_dense(trace, universe, queues, options, threads)
                   : annotate_sparse(trace, queues, options, threads);

  ExactCore core(ann.doc_count, capacity_bytes, admission_limit_of(policy),
                 policy);
  std::vector<std::uint8_t> outcomes(trace.requests.size(), 0);
  constexpr bool kInstrumented =
      std::is_same_v<std::remove_cvref_t<Sink>, obs::RecordingSink>;
  if constexpr (kInstrumented) {
    sink.begin_run([&core] { return core.snapshot(); });
  }
  core.replay(trace, ann.docid, ann.flags, warmup, outcomes, sink);
  if constexpr (kInstrumented) {
    sink.end_run();
  }

  std::vector<ShardTotals> totals(shards);
  double miss_latency_ms = 0.0;
  double all_miss_latency_ms = 0.0;
  util::parallel_for(static_cast<std::size_t>(shards) + 1, threads,
                     [&](std::size_t task) {
                       if (task < shards) {
                         account_shard(queues[task], outcomes, ann.flags,
                                       warmup, totals[task]);
                       } else {
                         account_latency(trace, outcomes, warmup, options,
                                         miss_latency_ms, all_miss_latency_ms);
                       }
                     });

  SimResult result;
  result.policy_name = cache::make_policy(policy)->name();
  result.capacity_bytes = capacity_bytes;
  result.warmup_requests = warmup;
  result.measured_requests = total - warmup;
  result.evictions = core.evictions();
  result.miss_latency_ms = miss_latency_ms;
  result.all_miss_latency_ms = all_miss_latency_ms;
  for (const ShardTotals& t : totals) {
    for (std::size_t c = 0; c < trace::kDocumentClassCount; ++c) {
      result.per_class[c].merge(t.per_class[c]);
    }
    result.bypasses += t.bypasses;
    result.modification_misses += t.modification_misses;
    result.interrupted_transfers += t.interrupted_transfers;
  }
  // The serial loop bumps the class counter and the overall counter on the
  // same request, so the overall block is exactly the class sum.
  for (const HitCounters& c : result.per_class) result.overall.merge(c);
  return result;
}

// Approx mode: per-shard caches over proportional byte quotas, optionally
// rebalanced at deterministic request-index epochs. `universe` > 0 marks a
// dense trace; `original` maps dense ids back for shard placement.
SimResult run_approx_pipeline(const trace::Trace& trace, std::uint64_t universe,
                              const std::vector<trace::DocumentId>* original,
                              std::uint64_t capacity_bytes,
                              const cache::PolicySpec& policy,
                              const SimulatorOptions& options,
                              std::uint32_t threads, std::uint32_t shards,
                              std::uint64_t rebalance_interval) {
  const std::uint64_t total = trace.requests.size();
  const std::uint64_t warmup = warmup_of(total, options);

  const std::vector<std::vector<ShardEntry>> queues =
      carve_queues(trace, shards, original);

  // Static quotas follow the full-trace demand; with rebalancing they
  // follow the demand seen so far, re-split at every epoch boundary.
  std::vector<std::uint64_t> demand(shards, 0);
  for (std::uint32_t s = 0; s < shards; ++s) {
    for (const ShardEntry& e : queues[s]) demand[s] += e.size;
  }
  const std::vector<std::uint64_t> initial_quotas = proportional_quotas(
      capacity_bytes, rebalance_interval > 0
                          ? std::vector<std::uint64_t>(shards, 1)
                          : demand);

  const std::uint64_t admission_limit = admission_limit_of(policy);
  std::vector<ApproxShardState> states(shards);
  for (std::uint32_t s = 0; s < shards; ++s) {
    states[s].frontend = std::make_unique<cache::SingleCacheFrontend>(
        initial_quotas[s], cache::make_policy(policy), admission_limit);
    if (universe > 0) {
      states[s].frontend->reserve_dense_ids(universe);
    } else {
      states[s].sparse_last =
          std::make_unique<detail::SparseLastSize>(queues[s].size());
    }
  }
  // Dense traces share one flat last-size table; each document's slot is
  // touched by exactly one shard, so parallel access is race-free.
  detail::DenseLastSize dense_last(universe);

  // Replays one shard's queue up to (not including) global request index
  // `end`. Writes only shard-local state.
  auto process = [&](std::size_t s, std::uint64_t end) {
    ApproxShardState& st = states[s];
    const std::vector<ShardEntry>& queue = queues[s];
    while (st.cursor < queue.size() && queue[st.cursor].index < end) {
      const ShardEntry& e = queue[st.cursor];
      ++st.cursor;
      st.demand_bytes += e.size;
      SizeChange change;
      std::uint64_t* previous = universe > 0
                                    ? dense_last.lookup(e.doc, e.size)
                                    : st.sparse_last->lookup(e.doc, e.size);
      if (previous != nullptr) {
        change = classify_size_change(*previous, e.size, options);
        *previous = e.size;
      }
      const auto outcome =
          st.frontend->access(e.doc, e.size, e.cls, change.modified);
      if (e.index + 1 > warmup) {
        HitCounters& cls = st.totals.per_class[static_cast<std::size_t>(e.cls)];
        cls.requests += 1;
        cls.requested_bytes += e.size;
        const double fetch_latency =
            options.latency_setup_ms +
            static_cast<double>(e.size) / options.latency_bytes_per_ms;
        st.all_miss_latency_ms += fetch_latency;
        switch (outcome.kind) {
          case cache::Cache::AccessKind::kHit:
            cls.hits += 1;
            cls.hit_bytes += e.size;
            break;
          case cache::Cache::AccessKind::kBypass:
            st.totals.bypasses += 1;
            st.miss_latency_ms += fetch_latency;
            break;
          case cache::Cache::AccessKind::kMiss:
            st.miss_latency_ms += fetch_latency;
            break;
        }
        if (change.modified && outcome.was_resident) {
          st.totals.modification_misses += 1;
        }
        if (change.interrupted) st.totals.interrupted_transfers += 1;
      }
    }
  };

  if (rebalance_interval == 0) {
    util::parallel_for(shards, threads, [&](std::size_t s) {
      process(s, total);
    });
  } else {
    for (std::uint64_t start = 0; start < total;
         start += rebalance_interval) {
      const std::uint64_t end = std::min(total, start + rebalance_interval);
      util::parallel_for(shards, threads,
                         [&](std::size_t s) { process(s, end); });
      if (end == total) break;
      // Serial barrier: re-split the budget over the demand observed so
      // far; shrunk shards evict down (counted as ordinary evictions).
      std::vector<std::uint64_t> seen(shards, 0);
      for (std::uint32_t s = 0; s < shards; ++s) {
        seen[s] = states[s].demand_bytes;
      }
      const std::vector<std::uint64_t> quotas =
          proportional_quotas(capacity_bytes, seen);
      for (std::uint32_t s = 0; s < shards; ++s) {
        states[s].frontend->cache().resize(quotas[s]);
      }
    }
  }

  SimResult result;
  result.policy_name = cache::make_policy(policy)->name();
  result.capacity_bytes = capacity_bytes;
  result.warmup_requests = warmup;
  result.measured_requests = total - warmup;
  for (const ApproxShardState& st : states) {
    result.evictions += st.frontend->eviction_count();
    for (std::size_t c = 0; c < trace::kDocumentClassCount; ++c) {
      result.per_class[c].merge(st.totals.per_class[c]);
    }
    result.bypasses += st.totals.bypasses;
    result.modification_misses += st.totals.modification_misses;
    result.interrupted_transfers += st.totals.interrupted_transfers;
    // Shard-index order keeps the FP sums deterministic (and therefore
    // thread-count invariant); they are NOT the serial trace-order sums.
    result.miss_latency_ms += st.miss_latency_ms;
    result.all_miss_latency_ms += st.all_miss_latency_ms;
  }
  for (const HitCounters& c : result.per_class) result.overall.merge(c);
  return result;
}

}  // namespace

SimResult ShardedReplay::run(const trace::Trace& trace) const {
  if (serial_delegate_) {
    return simulate(trace, capacity_bytes_, policy_, options_);
  }
  if (mode_ == ShardedMode::kApprox) {
    return run_approx_pipeline(trace, 0, nullptr, capacity_bytes_, policy_,
                               options_, threads_, shards_,
                               rebalance_interval_);
  }
  if (trace.requests.size() >= kNil) {
    return simulate(trace, capacity_bytes_, policy_, options_);
  }
  obs::NullSink sink;
  return run_exact_pipeline(trace, 0, capacity_bytes_, policy_, options_,
                            threads_, shards_, sink);
}

SimResult ShardedReplay::run(const trace::DenseTrace& trace) const {
  if (serial_delegate_) {
    return simulate(trace, capacity_bytes_, policy_, options_);
  }
  if (mode_ == ShardedMode::kApprox) {
    return run_approx_pipeline(trace.trace, trace.document_count(),
                               &trace.original_ids, capacity_bytes_, policy_,
                               options_, threads_, shards_,
                               rebalance_interval_);
  }
  if (trace.trace.requests.size() >= kNil || trace.document_count() >= kNil) {
    return simulate(trace, capacity_bytes_, policy_, options_);
  }
  obs::NullSink sink;
  return run_exact_pipeline(trace.trace, trace.document_count(),
                            capacity_bytes_, policy_, options_, threads_,
                            shards_, sink);
}

SimResult ShardedReplay::run(const trace::Trace& trace,
                             obs::RecordingSink& sink) const {
  if (mode_ == ShardedMode::kApprox) {
    throw std::invalid_argument(
        "ShardedReplay: the approximate mode has no single-timeline metrics "
        "stream; instrumented runs need ShardedMode::kExact");
  }
  if (serial_delegate_ || trace.requests.size() >= kNil) {
    return simulate(trace, capacity_bytes_, policy_, options_, sink);
  }
  return run_exact_pipeline(trace, 0, capacity_bytes_, policy_, options_,
                            threads_, shards_, sink);
}

SimResult ShardedReplay::run(const trace::DenseTrace& trace,
                             obs::RecordingSink& sink) const {
  if (mode_ == ShardedMode::kApprox) {
    throw std::invalid_argument(
        "ShardedReplay: the approximate mode has no single-timeline metrics "
        "stream; instrumented runs need ShardedMode::kExact");
  }
  if (serial_delegate_ || trace.trace.requests.size() >= kNil ||
      trace.document_count() >= kNil) {
    return simulate(trace, capacity_bytes_, policy_, options_, sink);
  }
  return run_exact_pipeline(trace.trace, trace.document_count(),
                            capacity_bytes_, policy_, options_, threads_,
                            shards_, sink);
}

SimResult simulate_sharded(const trace::Trace& trace,
                           std::uint64_t capacity_bytes,
                           const cache::PolicySpec& policy,
                           const SimulatorOptions& options,
                           const ShardedConfig& config) {
  return ShardedReplay(capacity_bytes, policy, options, config).run(trace);
}

SimResult simulate_sharded(const trace::DenseTrace& trace,
                           std::uint64_t capacity_bytes,
                           const cache::PolicySpec& policy,
                           const SimulatorOptions& options,
                           const ShardedConfig& config) {
  return ShardedReplay(capacity_bytes, policy, options, config).run(trace);
}

SimResult simulate_sharded(const trace::Trace& trace,
                           std::uint64_t capacity_bytes,
                           const cache::PolicySpec& policy,
                           const SimulatorOptions& options,
                           const ShardedConfig& config,
                           obs::RecordingSink& sink) {
  return ShardedReplay(capacity_bytes, policy, options, config)
      .run(trace, sink);
}

SimResult simulate_sharded(const trace::DenseTrace& trace,
                           std::uint64_t capacity_bytes,
                           const cache::PolicySpec& policy,
                           const SimulatorOptions& options,
                           const ShardedConfig& config,
                           obs::RecordingSink& sink) {
  return ShardedReplay(capacity_bytes, policy, options, config)
      .run(trace, sink);
}

}  // namespace webcache::sim
