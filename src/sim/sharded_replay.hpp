// Parallel sharded replay of a single cache (ROADMAP: the per-cell
// throughput unlock). The object space is hash-sharded across worker
// threads; per-shard request queues are carved from the trace in one
// partitioning pass, and per-shard partial results merge deterministically,
// so the output is a pure function of (trace, policy, options, shard
// count) — identical for any thread count.
//
// Two modes:
//
//  * kExact (read-only-hit-path policies: LRU, FIFO, LRU-Threshold, plus
//    RANDOM, CLOCK and DELAY-CLOCK, whose hit path touches at most a
//    per-object counter and never reorders the eviction structure —
//    those three replay a real policy instance inside the serial resolve
//    stage). Byte-LRU demand
//    eviction is inherently sequential — a hit never refreshes the stored
//    size, so the eviction boundary depends on every prior outcome — but
//    everything *around* that core is outcome-independent and shards
//    perfectly. The engine pipelines:
//      1. partition: carve per-shard queues (one serial pass);
//      2. annotate (parallel per shard): per-document last-size chains
//         resolve the modification/interruption flags, and sparse document
//         ids densify into shard-local ranges — each document's history
//         lives entirely in its shard;
//      3. resolve (serial): a lean flat-array recency core consumes the
//         annotations and emits one outcome byte per request plus the
//         eviction count — no hashing, no classification, no accounting;
//      4. account (parallel per shard, plus one trace-order latency task
//         that reproduces the serial double-accumulation order exactly);
//      5. merge: field-wise integer sums.
//    The merged SimResult is pinned bit-identical to simulate() by the
//    differential suite (tests/sim/sharded_replay_test.cpp), and the
//    instrumented overload drives a RecordingSink in trace order, so
//    webcache.metrics.v1 roll-ups are bit-identical too.
//
//  * kApprox (any PolicySpec; explicit opt-in). Heap-ordered policies
//    (GDS/GDSF/GD*/LFU-DA) keep one global priority order that cannot be
//    sharded exactly, so each shard runs its own Cache over a byte quota
//    proportional to the shard's requested bytes, optionally rebalanced at
//    deterministic request-index epochs (Cache::resize). Results diverge
//    from simulate() — hit rates stay close (bounded by a property test)
//    but are NOT bit-identical — which is why run_sweep and the CLI only
//    take this path behind an explicit opt-in.
//
// Exactness preconditions (mode kExact):
//   policy.kind           in {kLru, kFifo, kLruThreshold}
//   occupancy_samples     == 0 (the engine has no mid-replay cache object)
//   distinct documents    < 2^32 - 1 (falls back to serial simulate())
#pragma once

#include <cstdint>

#include "cache/factory.hpp"
#include "obs/stats_sink.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"
#include "trace/dense_trace.hpp"
#include "trace/request.hpp"

namespace webcache::sim {

enum class ShardedMode : std::uint8_t {
  kExact,   // read-only-hit-path policies; bit-identical to simulate()
  kApprox,  // any policy; per-shard byte quotas (documented divergence)
};

struct ShardedConfig {
  /// Worker threads; 0 = std::thread::hardware_concurrency(). Results
  /// never depend on this value.
  std::uint32_t threads = 0;
  /// Shard count; 0 = auto (kExact: one per thread — outputs are
  /// shard-count invariant anyway; kApprox: kDefaultApproxShards, pinned
  /// independent of threads because quota placement IS observable there).
  std::uint32_t shards = 0;
  ShardedMode mode = ShardedMode::kExact;
  /// kApprox only: recompute the per-shard byte quotas every this many
  /// trace requests (deterministic request-index epochs; shrunk shards
  /// evict down via Cache::resize). 0 = static quotas.
  std::uint64_t rebalance_interval = 0;
};

class ShardedReplay {
 public:
  /// Default shard count for kApprox (fixed so results do not depend on
  /// the machine's core count).
  static constexpr std::uint32_t kDefaultApproxShards = 8;

  /// Validates options (throws std::invalid_argument on occupancy
  /// sampling, or on an exact-mode request for a policy outside the
  /// read-only-hit-path set — see exact_eligible()).
  ShardedReplay(std::uint64_t capacity_bytes, const cache::PolicySpec& policy,
                const SimulatorOptions& options, const ShardedConfig& config);

  /// Whether kExact supports this (policy, options) pair.
  static bool exact_eligible(const cache::PolicySpec& policy,
                             const SimulatorOptions& options);

  /// threads <= 1 with auto shards delegates to the plain serial
  /// simulate() — the exact same code path, no queue or merge overhead
  /// (asserted by the cli_sharded smoke and the bench N=1 overhead cell).
  SimResult run(const trace::Trace& trace) const;
  SimResult run(const trace::DenseTrace& trace) const;

  /// Instrumented replay: kExact drives the sink in trace order, so the
  /// collected series is bit-identical to the serial instrumented run for
  /// any thread count. kApprox throws std::invalid_argument (per-shard
  /// interleaving has no faithful single-timeline metrics stream).
  SimResult run(const trace::Trace& trace, obs::RecordingSink& sink) const;
  SimResult run(const trace::DenseTrace& trace,
                obs::RecordingSink& sink) const;

 private:
  std::uint64_t capacity_bytes_;
  cache::PolicySpec policy_;
  SimulatorOptions options_;
  std::uint32_t threads_;  // resolved (never 0)
  std::uint32_t shards_;   // resolved (never 0)
  ShardedMode mode_;
  std::uint64_t rebalance_interval_;
  bool serial_delegate_;  // threads <= 1 and shards <= 1
};

/// Convenience wrapper mirroring the simulate() free functions.
SimResult simulate_sharded(const trace::Trace& trace,
                           std::uint64_t capacity_bytes,
                           const cache::PolicySpec& policy,
                           const SimulatorOptions& options = {},
                           const ShardedConfig& config = {});

SimResult simulate_sharded(const trace::DenseTrace& trace,
                           std::uint64_t capacity_bytes,
                           const cache::PolicySpec& policy,
                           const SimulatorOptions& options = {},
                           const ShardedConfig& config = {});

SimResult simulate_sharded(const trace::Trace& trace,
                           std::uint64_t capacity_bytes,
                           const cache::PolicySpec& policy,
                           const SimulatorOptions& options,
                           const ShardedConfig& config,
                           obs::RecordingSink& sink);

SimResult simulate_sharded(const trace::DenseTrace& trace,
                           std::uint64_t capacity_bytes,
                           const cache::PolicySpec& policy,
                           const SimulatorOptions& options,
                           const ShardedConfig& config,
                           obs::RecordingSink& sink);

}  // namespace webcache::sim
