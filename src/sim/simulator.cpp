#include "sim/simulator.hpp"

#include <cmath>
#include <stdexcept>

#include "obs/stats_sink.hpp"
#include "sim/kernel.hpp"
#include "sim/last_size.hpp"
#include "sim/replay_core.hpp"

namespace webcache::sim {

namespace {

using detail::validate_options;

// Templated on the sink so the NullSink instantiation *is* the pre-obs
// loop: the empty inline hook compiles away and results stay bit-identical
// (tests/obs/obs_equivalence_test.cpp; bench/obs_overhead measures it).
// The per-request body lives in detail::ReplayCore, shared with the
// fault-aware loop (faults.cpp) and the streaming entry points
// (streaming.cpp).
template <typename LastSize, obs::StatsSink Sink>
SimResult simulate_loop(const trace::Trace& trace, cache::CacheFrontend& cache,
                        const SimulatorOptions& options, LastSize& last_size,
                        Sink& sink) {
  detail::ReplayCore<LastSize, Sink> core(cache, options, last_size, sink,
                                          trace.requests.size());
  for (const trace::Request& r : trace.requests) core.step(r);
  return core.finish();
}

}  // namespace

SimResult simulate(const trace::Trace& trace, std::uint64_t capacity_bytes,
                   const cache::PolicySpec& policy,
                   const SimulatorOptions& options) {
  if (auto kernel = detail::routed_kernel(capacity_bytes, policy, options)) {
    return kernel->run(trace, options);
  }
  const std::uint64_t admission_limit =
      policy.kind == cache::PolicyKind::kLruThreshold
          ? policy.admission_threshold_bytes
          : 0;
  return simulate(trace, capacity_bytes, cache::make_policy(policy), options,
                  admission_limit);
}

SimResult simulate(const trace::Trace& trace, std::uint64_t capacity_bytes,
                   std::unique_ptr<cache::ReplacementPolicy> policy,
                   const SimulatorOptions& options,
                   std::uint64_t admission_limit_bytes) {
  cache::SingleCacheFrontend frontend(capacity_bytes, std::move(policy),
                                      admission_limit_bytes);
  return simulate(trace, frontend, options);
}

SimResult simulate(const trace::Trace& trace, cache::CacheFrontend& cache,
                   const SimulatorOptions& options) {
  validate_options(options);
  detail::SparseLastSize last_size(trace.requests.size());
  obs::NullSink sink;
  return simulate_loop(trace, cache, options, last_size, sink);
}

SimResult simulate(const trace::DenseTrace& trace,
                   cache::CacheFrontend& frontend,
                   const SimulatorOptions& options) {
  validate_options(options);
  frontend.reserve_dense_ids(trace.document_count());
  detail::DenseLastSize last_size(trace.document_count());
  obs::NullSink sink;
  return simulate_loop(trace.trace, frontend, options, last_size, sink);
}

SimResult simulate(const trace::Trace& trace, cache::CacheFrontend& frontend,
                   const SimulatorOptions& options, obs::RecordingSink& sink) {
  validate_options(options);
  detail::SparseLastSize last_size(trace.requests.size());
  sink.begin_run(frontend);
  SimResult result = simulate_loop(trace, frontend, options, last_size, sink);
  sink.end_run();
  return result;
}

SimResult simulate(const trace::DenseTrace& trace,
                   cache::CacheFrontend& frontend,
                   const SimulatorOptions& options, obs::RecordingSink& sink) {
  validate_options(options);
  frontend.reserve_dense_ids(trace.document_count());
  detail::DenseLastSize last_size(trace.document_count());
  sink.begin_run(frontend);
  SimResult result =
      simulate_loop(trace.trace, frontend, options, last_size, sink);
  sink.end_run();
  return result;
}

namespace {

std::uint64_t admission_limit_of(const cache::PolicySpec& policy) {
  return policy.kind == cache::PolicyKind::kLruThreshold
             ? policy.admission_threshold_bytes
             : 0;
}

}  // namespace

SimResult simulate(const trace::Trace& trace, std::uint64_t capacity_bytes,
                   const cache::PolicySpec& policy,
                   const SimulatorOptions& options, obs::RecordingSink& sink) {
  if (auto kernel = detail::routed_kernel(capacity_bytes, policy, options)) {
    return kernel->run(trace, options, sink);
  }
  cache::SingleCacheFrontend frontend(capacity_bytes,
                                      cache::make_policy(policy),
                                      admission_limit_of(policy));
  return simulate(trace, frontend, options, sink);
}

SimResult simulate(const trace::DenseTrace& trace, std::uint64_t capacity_bytes,
                   const cache::PolicySpec& policy,
                   const SimulatorOptions& options, obs::RecordingSink& sink) {
  if (auto kernel = detail::routed_kernel(capacity_bytes, policy, options)) {
    return kernel->run(trace, options, sink);
  }
  cache::SingleCacheFrontend frontend(capacity_bytes,
                                      cache::make_policy(policy),
                                      admission_limit_of(policy));
  return simulate(trace, frontend, options, sink);
}

SimResult simulate(const trace::DenseTrace& trace, std::uint64_t capacity_bytes,
                   const cache::PolicySpec& policy,
                   const SimulatorOptions& options) {
  if (auto kernel = detail::routed_kernel(capacity_bytes, policy, options)) {
    return kernel->run(trace, options);
  }
  const std::uint64_t admission_limit =
      policy.kind == cache::PolicyKind::kLruThreshold
          ? policy.admission_threshold_bytes
          : 0;
  return simulate(trace, capacity_bytes, cache::make_policy(policy), options,
                  admission_limit);
}

SimResult simulate(const trace::DenseTrace& trace, std::uint64_t capacity_bytes,
                   std::unique_ptr<cache::ReplacementPolicy> policy,
                   const SimulatorOptions& options,
                   std::uint64_t admission_limit_bytes) {
  cache::SingleCacheFrontend frontend(capacity_bytes, std::move(policy),
                                      admission_limit_bytes);
  return simulate(trace, frontend, options);
}

}  // namespace webcache::sim
