#include "sim/simulator.hpp"

#include <cmath>
#include <stdexcept>

#include "obs/stats_sink.hpp"
#include "sim/last_size.hpp"

namespace webcache::sim {

namespace {

using detail::SizeChange;
using detail::classify_size_change;

void validate_options(const SimulatorOptions& options) {
  if (options.warmup_fraction < 0.0 || options.warmup_fraction >= 1.0) {
    throw std::invalid_argument("simulate: warmup_fraction out of [0, 1)");
  }
  if (options.modification_threshold <= 0.0 ||
      options.modification_threshold >= 1.0) {
    throw std::invalid_argument(
        "simulate: modification_threshold out of (0, 1)");
  }
}

// Templated on the sink so the NullSink instantiation *is* the pre-obs
// loop: the empty inline hook compiles away and results stay bit-identical
// (tests/obs/obs_equivalence_test.cpp; bench/obs_overhead measures it).
template <typename LastSize, obs::StatsSink Sink>
SimResult simulate_loop(const trace::Trace& trace, cache::CacheFrontend& cache,
                        const SimulatorOptions& options, LastSize& last_size,
                        Sink& sink) {
  SimResult result;
  result.policy_name = cache.description();
  result.capacity_bytes = cache.capacity_bytes();

  const std::uint64_t total = trace.requests.size();
  const auto warmup = static_cast<std::uint64_t>(
      std::floor(static_cast<double>(total) * options.warmup_fraction));
  result.warmup_requests = warmup;
  result.measured_requests = total - warmup;

  const std::uint64_t occupancy_stride =
      options.occupancy_samples > 0
          ? std::max<std::uint64_t>(1, total / options.occupancy_samples)
          : 0;

  std::uint64_t index = 0;
  for (const trace::Request& r : trace.requests) {
    ++index;
    const bool measured = index > warmup;
    // The paper's simulator sees only the size recorded in the trace.
    const std::uint64_t size = r.transfer_size;

    SizeChange change;
    if (std::uint64_t* previous = last_size.lookup(r.document, size)) {
      change = classify_size_change(*previous, size, options);
      *previous = size;
    }

    const bool was_resident = cache.contains(r.document);
    const auto outcome =
        cache.access(r.document, size, r.doc_class, change.modified);
    result.evictions += outcome.evictions;
    sink.on_access(r.doc_class, size, outcome.kind, measured);

    if (measured) {
      HitCounters& cls = result.per_class[static_cast<std::size_t>(r.doc_class)];
      cls.requests += 1;
      cls.requested_bytes += size;
      result.overall.requests += 1;
      result.overall.requested_bytes += size;
      const double fetch_latency =
          options.latency_setup_ms +
          static_cast<double>(size) / options.latency_bytes_per_ms;
      result.all_miss_latency_ms += fetch_latency;
      switch (outcome.kind) {
        case cache::Cache::AccessKind::kHit:
          cls.hits += 1;
          cls.hit_bytes += size;
          result.overall.hits += 1;
          result.overall.hit_bytes += size;
          break;
        case cache::Cache::AccessKind::kBypass:
          result.bypasses += 1;
          result.miss_latency_ms += fetch_latency;
          break;
        case cache::Cache::AccessKind::kMiss:
          result.miss_latency_ms += fetch_latency;
          break;
      }
      if (change.modified && was_resident) result.modification_misses += 1;
      if (change.interrupted) result.interrupted_transfers += 1;
    }

    if (occupancy_stride > 0 && index % occupancy_stride == 0) {
      result.occupancy_series.push_back(
          OccupancySample{index, cache.occupancy()});
    }
  }
  return result;
}

}  // namespace

SimResult simulate(const trace::Trace& trace, std::uint64_t capacity_bytes,
                   const cache::PolicySpec& policy,
                   const SimulatorOptions& options) {
  const std::uint64_t admission_limit =
      policy.kind == cache::PolicyKind::kLruThreshold
          ? policy.admission_threshold_bytes
          : 0;
  return simulate(trace, capacity_bytes, cache::make_policy(policy), options,
                  admission_limit);
}

SimResult simulate(const trace::Trace& trace, std::uint64_t capacity_bytes,
                   std::unique_ptr<cache::ReplacementPolicy> policy,
                   const SimulatorOptions& options,
                   std::uint64_t admission_limit_bytes) {
  cache::SingleCacheFrontend frontend(capacity_bytes, std::move(policy),
                                      admission_limit_bytes);
  return simulate(trace, frontend, options);
}

SimResult simulate(const trace::Trace& trace, cache::CacheFrontend& cache,
                   const SimulatorOptions& options) {
  validate_options(options);
  detail::SparseLastSize last_size(trace.requests.size());
  obs::NullSink sink;
  return simulate_loop(trace, cache, options, last_size, sink);
}

SimResult simulate(const trace::DenseTrace& trace,
                   cache::CacheFrontend& frontend,
                   const SimulatorOptions& options) {
  validate_options(options);
  frontend.reserve_dense_ids(trace.document_count());
  detail::DenseLastSize last_size(trace.document_count());
  obs::NullSink sink;
  return simulate_loop(trace.trace, frontend, options, last_size, sink);
}

SimResult simulate(const trace::Trace& trace, cache::CacheFrontend& frontend,
                   const SimulatorOptions& options, obs::RecordingSink& sink) {
  validate_options(options);
  detail::SparseLastSize last_size(trace.requests.size());
  sink.begin_run(frontend);
  SimResult result = simulate_loop(trace, frontend, options, last_size, sink);
  sink.end_run();
  return result;
}

SimResult simulate(const trace::DenseTrace& trace,
                   cache::CacheFrontend& frontend,
                   const SimulatorOptions& options, obs::RecordingSink& sink) {
  validate_options(options);
  frontend.reserve_dense_ids(trace.document_count());
  detail::DenseLastSize last_size(trace.document_count());
  sink.begin_run(frontend);
  SimResult result =
      simulate_loop(trace.trace, frontend, options, last_size, sink);
  sink.end_run();
  return result;
}

namespace {

std::uint64_t admission_limit_of(const cache::PolicySpec& policy) {
  return policy.kind == cache::PolicyKind::kLruThreshold
             ? policy.admission_threshold_bytes
             : 0;
}

}  // namespace

SimResult simulate(const trace::Trace& trace, std::uint64_t capacity_bytes,
                   const cache::PolicySpec& policy,
                   const SimulatorOptions& options, obs::RecordingSink& sink) {
  cache::SingleCacheFrontend frontend(capacity_bytes,
                                      cache::make_policy(policy),
                                      admission_limit_of(policy));
  return simulate(trace, frontend, options, sink);
}

SimResult simulate(const trace::DenseTrace& trace, std::uint64_t capacity_bytes,
                   const cache::PolicySpec& policy,
                   const SimulatorOptions& options, obs::RecordingSink& sink) {
  cache::SingleCacheFrontend frontend(capacity_bytes,
                                      cache::make_policy(policy),
                                      admission_limit_of(policy));
  return simulate(trace, frontend, options, sink);
}

SimResult simulate(const trace::DenseTrace& trace, std::uint64_t capacity_bytes,
                   const cache::PolicySpec& policy,
                   const SimulatorOptions& options) {
  const std::uint64_t admission_limit =
      policy.kind == cache::PolicyKind::kLruThreshold
          ? policy.admission_threshold_bytes
          : 0;
  return simulate(trace, capacity_bytes, cache::make_policy(policy), options,
                  admission_limit);
}

SimResult simulate(const trace::DenseTrace& trace, std::uint64_t capacity_bytes,
                   std::unique_ptr<cache::ReplacementPolicy> policy,
                   const SimulatorOptions& options,
                   std::uint64_t admission_limit_bytes) {
  cache::SingleCacheFrontend frontend(capacity_bytes, std::move(policy),
                                      admission_limit_bytes);
  return simulate(trace, frontend, options);
}

}  // namespace webcache::sim
