// Trace-driven simulator of a single caching proxy (paper, Section 4.1).
//
// Faithful to the paper's methodology:
//  * the first warmup_fraction of the requests fill the cache and are
//    excluded from all statistics ("we use 10% of the total requests
//    recorded in a trace to fill the cache");
//  * per document, the size recorded in the trace is tracked across
//    successive requests: a change of less than modification_threshold is a
//    *document modification* and counts as a miss (the resident copy is
//    invalidated), a larger change is an *interrupted transfer* and leaves
//    the resident copy valid. The kAnyChange rule reproduces the treatment
//    of Jin & Bestavros instead (every size change is a modification) for
//    the ablation benchmark;
//  * hit rate and byte hit rate are accounted per document type.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>

#include "cache/factory.hpp"
#include "cache/frontend.hpp"
#include "obs/stats_sink.hpp"
#include "sim/metrics.hpp"
#include "trace/dense_trace.hpp"
#include "trace/request.hpp"

namespace webcache::sim {

enum class ModificationRule {
  /// < threshold relative size change => modification; >= => interruption.
  kThreshold,
  /// Any size change is a modification ([7], [8]'s treatment; ablation).
  kAnyChange,
  /// Size changes never invalidate (lower bound; ablation).
  kNever,
};

/// Replay-engine selection for the PolicySpec-taking entry points
/// (sim/kernel.hpp). Frontend-taking overloads always run the virtual path
/// — the caller already committed to a concrete frontend object.
enum class KernelMode : std::uint8_t {
  /// Use a monomorphized kernel when one is registered for the policy,
  /// fall back to the virtual path otherwise. The default: results are
  /// bit-identical either way, the kernel is just faster.
  kAuto,
  /// Require a kernel; throw std::invalid_argument when the policy has
  /// none registered (benchmarks and tests pin the engine this way).
  kOn,
  /// Always run the virtual path.
  kOff,
};

struct SimulatorOptions {
  double warmup_fraction = 0.10;
  ModificationRule modification_rule = ModificationRule::kThreshold;
  double modification_threshold = 0.05;
  /// Number of equally spaced occupancy snapshots to record (0 = none).
  std::uint32_t occupancy_samples = 0;

  /// Origin-fetch latency model used for the SimResult latency metrics
  /// (setup plus transfer at fixed bandwidth; matches LatencyCostModel's
  /// defaults). Accounting only — it never influences replacement.
  double latency_setup_ms = 150.0;
  double latency_bytes_per_ms = 400.0;

  /// Which replay engine the spec-taking entry points use. Not part of the
  /// checkpoint fingerprint: both engines replay the identical state
  /// machine, so kernel and virtual checkpoints are interchangeable.
  KernelMode kernel = KernelMode::kAuto;
};

namespace detail {

/// Shared option validation for every replay entry point.
inline void validate_options(const SimulatorOptions& options) {
  if (options.warmup_fraction < 0.0 || options.warmup_fraction >= 1.0) {
    throw std::invalid_argument("simulate: warmup_fraction out of [0, 1)");
  }
  if (options.modification_threshold <= 0.0 ||
      options.modification_threshold >= 1.0) {
    throw std::invalid_argument(
        "simulate: modification_threshold out of (0, 1)");
  }
}

}  // namespace detail

/// Runs one policy at one cache size over the trace. LRU-Threshold specs
/// additionally install their admission limit on the cache.
SimResult simulate(const trace::Trace& trace, std::uint64_t capacity_bytes,
                   const cache::PolicySpec& policy,
                   const SimulatorOptions& options = {});

/// Same, with a caller-constructed policy — the path for policies that need
/// out-of-band state, e.g. the clairvoyant OPT bound built from the trace:
///
///   simulate(trace, capacity,
///            std::make_unique<cache::OptPolicy>(trace.requests), options);
///
/// admission_limit_bytes > 0 installs Cache::set_admission_limit.
SimResult simulate(const trace::Trace& trace, std::uint64_t capacity_bytes,
                   std::unique_ptr<cache::ReplacementPolicy> policy,
                   const SimulatorOptions& options = {},
                   std::uint64_t admission_limit_bytes = 0);

/// The most general form: drives any CacheFrontend (a composite cache such
/// as cache::PartitionedCache, or an adapted plain Cache) over the trace.
/// The frontend arrives in whatever state the caller left it — pass a fresh
/// one for a cold-start experiment.
SimResult simulate(const trace::Trace& trace, cache::CacheFrontend& frontend,
                   const SimulatorOptions& options = {});

/// Dense-id fast path: a trace run through trace::densify() carries the
/// document-count bound, so the cache's object table, the policy's index
/// structures, and the simulator's last-size tracker all become flat arrays
/// instead of hash maps. Emits bit-identical SimResults to the sparse
/// overloads (same hits, same evictions, same tie-breaking) — only faster.
SimResult simulate(const trace::DenseTrace& trace, std::uint64_t capacity_bytes,
                   const cache::PolicySpec& policy,
                   const SimulatorOptions& options = {});

SimResult simulate(const trace::DenseTrace& trace, std::uint64_t capacity_bytes,
                   std::unique_ptr<cache::ReplacementPolicy> policy,
                   const SimulatorOptions& options = {},
                   std::uint64_t admission_limit_bytes = 0);

/// Dense frontend path: the frontend (e.g. a cache::PartitionedCache)
/// reserves the trace's dense universe — every underlying cache switches to
/// flat arrays — and the last-size tracker becomes a flat vector. The
/// frontend must be empty (CacheFrontend::reserve_dense_ids throws
/// std::logic_error otherwise). Bit-identical to the sparse frontend
/// overload.
SimResult simulate(const trace::DenseTrace& trace,
                   cache::CacheFrontend& frontend,
                   const SimulatorOptions& options = {});

// ---- instrumented runs (obs layer) ----
//
// Same replay, with a RecordingSink collecting the windowed time series
// (obs/stats_sink.hpp). The final SimResult is bit-identical to the
// uninstrumented overloads — the sink only observes. The sink's series()
// is valid after return; sinks are reusable (begin_run resets).

SimResult simulate(const trace::Trace& trace, cache::CacheFrontend& frontend,
                   const SimulatorOptions& options, obs::RecordingSink& sink);

SimResult simulate(const trace::DenseTrace& trace,
                   cache::CacheFrontend& frontend,
                   const SimulatorOptions& options, obs::RecordingSink& sink);

SimResult simulate(const trace::Trace& trace, std::uint64_t capacity_bytes,
                   const cache::PolicySpec& policy,
                   const SimulatorOptions& options, obs::RecordingSink& sink);

SimResult simulate(const trace::DenseTrace& trace, std::uint64_t capacity_bytes,
                   const cache::PolicySpec& policy,
                   const SimulatorOptions& options, obs::RecordingSink& sink);

}  // namespace webcache::sim
