#include "sim/stack_sweep.hpp"

#include <bit>
#include <cmath>
#include <cstddef>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "sim/last_size.hpp"

namespace webcache::sim {

namespace {

using detail::SizeChange;
using detail::classify_size_change;

// Recency positions: the i-th request (1-based) owns slot M+1-i, so later
// requests sit at *smaller* slots and the prefix [1..x] is always the x
// most recent positions. Only a document's most recent access occupies its
// slot; older slots of the same document carry weight zero.
using Slot = std::uint32_t;

/// Fenwick tree over slots 1..n with signed 64-bit sums. One instance
/// carries the canonical byte weights (every live document's size as of its
/// most recent request), one carries live-document counts, and each
/// capacity lazily grows a third for its stored-size deltas (see below).
class Fenwick {
 public:
  explicit Fenwick(Slot n) : tree_(static_cast<std::size_t>(n) + 1, 0), n_(n) {}

  void add(Slot i, std::int64_t v) {
    for (; i <= n_; i += i & (~i + 1)) tree_[i] += v;
  }

  std::int64_t prefix(Slot i) const {
    std::int64_t sum = 0;
    for (; i > 0; i -= i & (~i + 1)) sum += tree_[i];
    return sum;
  }

  /// Internal node i covers the range (i - lowbit(i), i]; used by the
  /// joint bit-descend in find_boundary.
  std::int64_t node(Slot i) const { return tree_[i]; }

  Slot size() const { return n_; }

 private:
  std::vector<std::int64_t> tree_;
  Slot n_;
};

/// Largest x <= bound with bytes.prefix(x) + delta.prefix(x) <= budget,
/// plus that combined prefix sum. Every combined weight inside [1..bound]
/// is a resident document's stored size (>= 0) — stale deltas of evicted
/// documents always sit beyond the boundary — so the combined prefix is
/// monotone there and the classic bit-descend applies, extended to walk
/// both trees at once and to skip steps that would cross the bound.
struct Boundary {
  Slot pos = 0;
  std::int64_t bytes = 0;
};

Boundary find_boundary(const Fenwick& bytes, const Fenwick* delta, Slot bound,
                       std::int64_t budget) {
  Boundary out;
  if (bound == 0) return out;
  for (Slot step = std::bit_floor(bytes.size()); step > 0; step >>= 1) {
    const Slot next = out.pos + step;
    if (next > bound) continue;
    const std::int64_t candidate = out.bytes + bytes.node(next) +
                                   (delta != nullptr ? delta->node(next) : 0);
    if (candidate <= budget) {
      out.pos = next;
      out.bytes = candidate;
    }
  }
  return out;
}

/// Per-capacity simulation state. `boundary` is the recency slot of the
/// least recent resident: a document is resident at this capacity iff its
/// current slot is <= boundary (the stack inclusion property makes the
/// resident set a recency prefix). `used` mirrors Cache::used_bytes().
///
/// Stored sizes can diverge from the canonical (most recent request) size:
/// a hit never updates the resident copy, so an interrupted transfer leaves
/// the old size in caches where the document was resident while a smaller
/// cache — where it missed — stores the new size. Each capacity tracks its
/// own `stored - canonical` deltas in a lazy Fenwick (slot-indexed, summed
/// with the canonical tree during eviction searches) plus a map for O(1)
/// per-document removal on the next access.
struct CapacityState {
  std::uint64_t capacity = 0;
  Slot boundary = 0;
  std::uint64_t used = 0;
  std::unique_ptr<Fenwick> delta;
  std::unordered_map<trace::DocumentId, std::int64_t> diverged;
};

struct DocState {
  Slot slot = 0;
  std::uint64_t last_size = 0;
};

class SparseDocTable {
 public:
  explicit SparseDocTable(std::size_t expected) {
    docs_.reserve(expected / 2 + 16);
  }
  DocState* get(trace::DocumentId document, bool& first_seen) {
    const auto [it, inserted] = docs_.try_emplace(document);
    first_seen = inserted;
    return &it->second;
  }

 private:
  std::unordered_map<trace::DocumentId, DocState> docs_;
};

class DenseDocTable {
 public:
  explicit DenseDocTable(std::uint64_t universe)
      : docs_(static_cast<std::size_t>(universe), DocState{0, kUnseen}) {}
  DocState* get(trace::DocumentId document, bool& first_seen) {
    DocState& state = docs_[static_cast<std::size_t>(document)];
    first_seen = state.last_size == kUnseen;
    if (first_seen) state.last_size = 0;
    return &state;
  }

 private:
  // No real transfer size reaches 2^64 - 1 bytes, so the sentinel is safe.
  static constexpr std::uint64_t kUnseen =
      std::numeric_limits<std::uint64_t>::max();
  std::vector<DocState> docs_{};
};

template <typename DocTable>
std::vector<SimResult> run_stack(const trace::Trace& trace,
                                 const std::vector<std::uint64_t>& capacities,
                                 const SimulatorOptions& options,
                                 DocTable& docs) {
  const std::uint64_t total = trace.requests.size();
  if (total >= std::numeric_limits<Slot>::max() - 1) {
    throw std::invalid_argument(
        "stack_sweep: trace exceeds the 2^32 - 2 request slot limit");
  }
  const std::uint64_t largest = StackSweep::max_transfer_size(trace);
  for (const std::uint64_t capacity : capacities) {
    if (capacity < largest) {
      throw std::invalid_argument(
          "stack_sweep: capacity " + std::to_string(capacity) +
          " below the trace's largest transfer size " +
          std::to_string(largest) + " (such documents bypass and break the "
          "stack inclusion property)");
    }
  }

  const auto warmup = static_cast<std::uint64_t>(
      std::floor(static_cast<double>(total) * options.warmup_fraction));

  std::vector<SimResult> results(capacities.size());
  std::vector<CapacityState> caps(capacities.size());
  for (std::size_t k = 0; k < capacities.size(); ++k) {
    results[k].policy_name = "LRU";
    results[k].capacity_bytes = capacities[k];
    results[k].warmup_requests = warmup;
    results[k].measured_requests = total - warmup;
    caps[k].capacity = capacities[k];
  }

  const Slot slots = static_cast<Slot>(total);
  Fenwick bytes(slots);
  Fenwick counts(slots);

  std::uint64_t index = 0;
  for (const trace::Request& r : trace.requests) {
    ++index;
    const bool measured = index > warmup;
    const std::uint64_t size = r.transfer_size;
    const Slot ns = static_cast<Slot>(total - index + 1);
    const double fetch_latency =
        options.latency_setup_ms +
        static_cast<double>(size) / options.latency_bytes_per_ms;

    bool first_seen = false;
    DocState* doc = docs.get(r.document, first_seen);
    Slot ps = 0;
    std::uint64_t canonical_old = 0;
    SizeChange change;
    if (!first_seen) {
      ps = doc->slot;
      canonical_old = doc->last_size;
      change = classify_size_change(canonical_old, size, options);
      bytes.add(ps, -static_cast<std::int64_t>(canonical_old));
      counts.add(ps, -1);
    }

    for (std::size_t k = 0; k < caps.size(); ++k) {
      CapacityState& cap = caps[k];
      SimResult& res = results[k];

      // Clear this capacity's stale stored-size delta (if any) before the
      // residency decision; residency itself depends only on the slot.
      std::int64_t delta_old = 0;
      if (!first_seen && cap.delta != nullptr) {
        const auto it = cap.diverged.find(r.document);
        if (it != cap.diverged.end()) {
          delta_old = it->second;
          cap.diverged.erase(it);
          cap.delta->add(ps, -delta_old);
        }
      }

      const bool resident = !first_seen && ps <= cap.boundary;
      const bool hit = resident && !change.modified;

      if (measured) {
        HitCounters& cls =
            res.per_class[static_cast<std::size_t>(r.doc_class)];
        cls.requests += 1;
        cls.requested_bytes += size;
        res.overall.requests += 1;
        res.overall.requested_bytes += size;
        res.all_miss_latency_ms += fetch_latency;
        if (hit) {
          cls.hits += 1;
          cls.hit_bytes += size;
          res.overall.hits += 1;
          res.overall.hit_bytes += size;
        } else {
          res.miss_latency_ms += fetch_latency;
        }
        if (change.modified && resident) res.modification_misses += 1;
        if (change.interrupted) res.interrupted_transfers += 1;
      }

      if (hit) {
        // The resident copy keeps its stored size; only its slot moves to
        // the front. When the trace size changed (interrupted transfer),
        // record the divergence at the new slot.
        const std::int64_t stored_old =
            static_cast<std::int64_t>(canonical_old) + delta_old;
        const std::int64_t new_delta =
            stored_old - static_cast<std::int64_t>(size);
        if (new_delta != 0) {
          if (cap.delta == nullptr) cap.delta = std::make_unique<Fenwick>(slots);
          cap.delta->add(ns, new_delta);
          cap.diverged.emplace(r.document, new_delta);
        }
        // ns is the smallest slot so far, so boundary and used stay put.
        continue;
      }

      if (resident) {
        // Modification: the stale copy is invalidated before re-fetch.
        cap.used -= static_cast<std::uint64_t>(
            static_cast<std::int64_t>(canonical_old) + delta_old);
      }
      if (cap.used + size > cap.capacity) {
        // Evict the recency tail until the new document fits — exactly
        // Cache::evict_until_fits's strict `used + size > capacity` loop,
        // answered in O(log N) by the joint bit-descend.
        const auto budget =
            static_cast<std::int64_t>(cap.capacity - size);
        const Boundary kept =
            find_boundary(bytes, cap.delta.get(), cap.boundary, budget);
        res.evictions += static_cast<std::uint64_t>(
            counts.prefix(cap.boundary) - counts.prefix(kept.pos));
        cap.boundary = kept.pos;
        cap.used = static_cast<std::uint64_t>(kept.bytes);
      }
      cap.used += size;
      if (cap.boundary < ns) cap.boundary = ns;
    }

    bytes.add(ns, static_cast<std::int64_t>(size));
    counts.add(ns, 1);
    doc->slot = ns;
    doc->last_size = size;
  }
  return results;
}

void validate(const std::vector<std::uint64_t>& capacities,
              const SimulatorOptions& options) {
  if (capacities.empty()) {
    throw std::invalid_argument("stack_sweep: no capacities configured");
  }
  if (options.warmup_fraction < 0.0 || options.warmup_fraction >= 1.0) {
    throw std::invalid_argument("simulate: warmup_fraction out of [0, 1)");
  }
  if (options.modification_threshold <= 0.0 ||
      options.modification_threshold >= 1.0) {
    throw std::invalid_argument(
        "simulate: modification_threshold out of (0, 1)");
  }
  if (!StackSweep::options_stack_safe(options)) {
    throw std::invalid_argument(
        "stack_sweep: options are not stack-safe (occupancy sampling needs "
        "per-capacity cache state; use the per-cell grid)");
  }
}

}  // namespace

StackSweep::StackSweep(std::vector<std::uint64_t> capacities,
                       SimulatorOptions options)
    : capacities_(std::move(capacities)), options_(options) {
  validate(capacities_, options_);
}

std::vector<SimResult> StackSweep::run(const trace::Trace& trace) const {
  SparseDocTable docs(trace.requests.size());
  return run_stack(trace, capacities_, options_, docs);
}

std::vector<SimResult> StackSweep::run(const trace::DenseTrace& trace) const {
  DenseDocTable docs(trace.document_count());
  return run_stack(trace.trace, capacities_, options_, docs);
}

bool StackSweep::options_stack_safe(const SimulatorOptions& options) {
  return options.occupancy_samples == 0;
}

std::uint64_t StackSweep::max_transfer_size(const trace::Trace& trace) {
  std::uint64_t largest = 0;
  for (const trace::Request& r : trace.requests) {
    if (r.transfer_size > largest) largest = r.transfer_size;
  }
  return largest;
}

}  // namespace webcache::sim
