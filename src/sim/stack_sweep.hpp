// One-pass multi-capacity LRU simulation via byte-weighted stack analysis.
//
// LRU is a stack algorithm: as long as every request fits in the cache, the
// resident set at any capacity is a prefix of one global recency order, so a
// single pass over the trace can answer hit/miss at *every* capacity
// simultaneously. StackSweep maintains that order in a Fenwick tree
// augmented with byte sums (O(log N) per request) and replays the
// simulator's exact semantics — warm-up boundary, modification-rule
// invalidations, interrupted transfers that leave a stale stored size, and
// the strict `used + size > capacity` eviction trigger — producing
// SimResults bit-identical to per-capacity sim::simulate() with an LRU
// policy, for a whole capacity ladder in one trace traversal.
//
// Exactness preconditions (enforced; see also run_sweep's automatic
// fallback):
//  * the replacement policy is plain LRU (no admission limit, no cost
//    model) — callers select LRU columns before invoking this;
//  * options are stack-safe: occupancy_samples == 0 (occupancy snapshots
//    depend on per-capacity cache state the one-pass engine does not
//    materialize). All modification rules and warm-up fractions are safe;
//  * every capacity is at least the trace's largest transfer size.
//    A document larger than the cache bypasses (is never stored), which
//    breaks the stack inclusion property across capacities; run() throws
//    std::invalid_argument so callers fall back to the per-cell grid for
//    such capacities.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/metrics.hpp"
#include "sim/simulator.hpp"
#include "trace/dense_trace.hpp"
#include "trace/request.hpp"

namespace webcache::sim {

class StackSweep {
 public:
  /// Capacities may be in any order and may repeat; results come back in
  /// the same order. Throws std::invalid_argument on an empty ladder, on
  /// options that fail simulate()'s validation, or on options that are not
  /// stack-safe (options_stack_safe).
  StackSweep(std::vector<std::uint64_t> capacities, SimulatorOptions options);

  /// One pass over the trace; SimResult i corresponds to capacities()[i]
  /// and equals simulate(trace, capacities()[i], LRU, options)
  /// bit-for-bit. Throws std::invalid_argument when any capacity is
  /// smaller than the trace's largest transfer size (see header comment)
  /// or the trace exceeds 2^32 - 2 requests.
  std::vector<SimResult> run(const trace::Trace& trace) const;

  /// Dense-id fast path: the per-document last-access table becomes a flat
  /// array indexed by dense id. Bit-identical to the sparse overload.
  std::vector<SimResult> run(const trace::DenseTrace& trace) const;

  const std::vector<std::uint64_t>& capacities() const { return capacities_; }

  /// True when `options` meet the one-pass exactness preconditions.
  static bool options_stack_safe(const SimulatorOptions& options);

  /// The smallest capacity run() accepts for this trace.
  static std::uint64_t max_transfer_size(const trace::Trace& trace);

 private:
  std::vector<std::uint64_t> capacities_;
  SimulatorOptions options_;
};

}  // namespace webcache::sim
