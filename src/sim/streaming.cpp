#include "sim/streaming.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/kernel.hpp"
#include "sim/last_size.hpp"
#include "sim/replay_core.hpp"

namespace webcache::sim {

namespace {

using detail::validate_options;

std::uint64_t admission_limit_of(const cache::PolicySpec& policy) {
  return policy.kind == cache::PolicyKind::kLruThreshold
             ? policy.admission_threshold_bytes
             : 0;
}

// The sparse last-size map cannot reserve for the whole stream (that is the
// point of streaming); cap the up-front reservation and let it grow.
std::size_t reserve_hint(std::uint64_t total_requests) {
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(total_requests, 1 << 20));
}

template <typename Core>
SimResult drain(trace::RequestStream& stream, Core& core) {
  for (auto chunk = stream.next_chunk(); !chunk.empty();
       chunk = stream.next_chunk()) {
    for (const trace::Request& r : chunk) core.step(r);
  }
  return core.finish();
}

template <typename Core>
SimResult drain_densified(trace::RequestStream& stream, Core& core,
                          trace::OnlineDensifier& densifier) {
  for (auto chunk = stream.next_chunk(); !chunk.empty();
       chunk = stream.next_chunk()) {
    for (const trace::Request& r : chunk) {
      trace::Request dense = r;
      dense.document = densifier.densify(r.document);
      core.step(dense);
    }
  }
  return core.finish();
}

}  // namespace

SimResult simulate_stream(trace::RequestStream& stream,
                          cache::CacheFrontend& frontend,
                          const SimulatorOptions& options) {
  validate_options(options);
  detail::SparseLastSize last_size(reserve_hint(stream.total_requests()));
  obs::NullSink sink;
  detail::ReplayCore<detail::SparseLastSize, obs::NullSink> core(
      frontend, options, last_size, sink, stream.total_requests());
  return drain(stream, core);
}

SimResult simulate_stream(trace::RequestStream& stream,
                          std::uint64_t capacity_bytes,
                          const cache::PolicySpec& policy,
                          const SimulatorOptions& options) {
  if (auto kernel = detail::routed_kernel(capacity_bytes, policy, options)) {
    return kernel->run_stream(stream, options);
  }
  cache::SingleCacheFrontend frontend(
      capacity_bytes, cache::make_policy(policy), admission_limit_of(policy));
  return simulate_stream(stream, frontend, options);
}

SimResult simulate_stream(trace::RequestStream& stream,
                          std::uint64_t capacity_bytes,
                          const cache::PolicySpec& policy,
                          const SimulatorOptions& options,
                          obs::RecordingSink& sink) {
  if (auto kernel = detail::routed_kernel(capacity_bytes, policy, options)) {
    return kernel->run_stream(stream, options, sink);
  }
  cache::SingleCacheFrontend frontend(
      capacity_bytes, cache::make_policy(policy), admission_limit_of(policy));
  return simulate_stream(stream, frontend, options, sink);
}

SimResult simulate_stream(trace::RequestStream& stream,
                          std::uint64_t capacity_bytes,
                          const cache::PolicySpec& policy,
                          const SimulatorOptions& options,
                          const FaultSchedule& faults) {
  if (auto kernel = detail::routed_kernel(capacity_bytes, policy, options)) {
    return kernel->run_stream(stream, options, faults);
  }
  cache::SingleCacheFrontend frontend(
      capacity_bytes, cache::make_policy(policy), admission_limit_of(policy));
  return simulate_stream(stream, frontend, options, faults);
}

SimResult simulate_stream(trace::RequestStream& stream,
                          std::uint64_t capacity_bytes,
                          const cache::PolicySpec& policy,
                          const SimulatorOptions& options,
                          const FaultSchedule& faults,
                          obs::RecordingSink& sink) {
  if (auto kernel = detail::routed_kernel(capacity_bytes, policy, options)) {
    return kernel->run_stream(stream, options, faults, sink);
  }
  cache::SingleCacheFrontend frontend(
      capacity_bytes, cache::make_policy(policy), admission_limit_of(policy));
  return simulate_stream(stream, frontend, options, faults, sink);
}

SimResult simulate_stream(trace::RequestStream& stream,
                          cache::CacheFrontend& frontend,
                          const SimulatorOptions& options,
                          obs::RecordingSink& sink) {
  validate_options(options);
  detail::SparseLastSize last_size(reserve_hint(stream.total_requests()));
  sink.begin_run(frontend);
  detail::ReplayCore<detail::SparseLastSize, obs::RecordingSink> core(
      frontend, options, last_size, sink, stream.total_requests());
  SimResult result = drain(stream, core);
  sink.end_run();
  return result;
}

SimResult simulate_stream(trace::RequestStream& stream,
                          cache::CacheFrontend& frontend,
                          const SimulatorOptions& options,
                          const FaultSchedule& faults) {
  validate_options(options);
  FaultRun run(faults, frontend.fault_domains(), /*has_root=*/false);
  detail::SparseLastSize last_size(reserve_hint(stream.total_requests()));
  obs::NullSink sink;
  detail::ReplayCore<detail::SparseLastSize, obs::NullSink, FaultRun> core(
      frontend, options, last_size, sink, stream.total_requests(), &run);
  return drain(stream, core);
}

SimResult simulate_stream(trace::RequestStream& stream,
                          cache::CacheFrontend& frontend,
                          const SimulatorOptions& options,
                          const FaultSchedule& faults,
                          obs::RecordingSink& sink) {
  validate_options(options);
  FaultRun run(faults, frontend.fault_domains(), /*has_root=*/false);
  detail::SparseLastSize last_size(reserve_hint(stream.total_requests()));
  sink.begin_run(frontend);
  detail::ReplayCore<detail::SparseLastSize, obs::RecordingSink, FaultRun>
      core(frontend, options, last_size, sink, stream.total_requests(), &run);
  SimResult result = drain(stream, core);
  sink.end_run();
  return result;
}

SimResult simulate_stream_densified(
    trace::RequestStream& stream, cache::CacheFrontend& frontend,
    const SimulatorOptions& options,
    trace::OnlineDensifier::Options densify_options) {
  validate_options(options);
  trace::OnlineDensifier densifier(densify_options);
  detail::GrowingDenseLastSize last_size;
  obs::NullSink sink;
  detail::ReplayCore<detail::GrowingDenseLastSize, obs::NullSink> core(
      frontend, options, last_size, sink, stream.total_requests());
  return drain_densified(stream, core, densifier);
}

SimResult simulate_stream_densified(
    trace::RequestStream& stream, cache::CacheFrontend& frontend,
    const SimulatorOptions& options, obs::RecordingSink& sink,
    trace::OnlineDensifier::Options densify_options) {
  validate_options(options);
  trace::OnlineDensifier densifier(densify_options);
  detail::GrowingDenseLastSize last_size;
  sink.begin_run(frontend);
  detail::ReplayCore<detail::GrowingDenseLastSize, obs::RecordingSink> core(
      frontend, options, last_size, sink, stream.total_requests());
  SimResult result = drain_densified(stream, core, densifier);
  sink.end_run();
  return result;
}

SimResult simulate_stream_densified(
    trace::RequestStream& stream, std::uint64_t capacity_bytes,
    const cache::PolicySpec& policy, const SimulatorOptions& options,
    trace::OnlineDensifier::Options densify_options) {
  if (auto kernel = detail::routed_kernel(capacity_bytes, policy, options)) {
    return kernel->run_stream_densified(stream, options, densify_options);
  }
  cache::SingleCacheFrontend frontend(
      capacity_bytes, cache::make_policy(policy), admission_limit_of(policy));
  return simulate_stream_densified(stream, frontend, options,
                                   densify_options);
}

SimResult simulate_stream_densified(
    trace::RequestStream& stream, std::uint64_t capacity_bytes,
    const cache::PolicySpec& policy, const SimulatorOptions& options,
    obs::RecordingSink& sink, trace::OnlineDensifier::Options densify_options) {
  if (auto kernel = detail::routed_kernel(capacity_bytes, policy, options)) {
    return kernel->run_stream_densified(stream, options, sink,
                                        densify_options);
  }
  cache::SingleCacheFrontend frontend(
      capacity_bytes, cache::make_policy(policy), admission_limit_of(policy));
  return simulate_stream_densified(stream, frontend, options, sink,
                                   densify_options);
}

}  // namespace webcache::sim
