// Bounded-memory replay over a RequestStream.
//
// simulate_stream() drives the same per-request core as simulate()
// (sim/replay_core.hpp) chunk by chunk, so its SimResult is bit-identical
// to materializing the stream into a Trace and calling simulate() — at
// O(chunk + cache-state) memory instead of O(trace). Warm-up boundaries,
// metrics windows and fault schedules all key off the global request index,
// so they behave identically when they straddle chunk boundaries
// (tests/sim/streaming_equivalence_test.cpp pins all of it).
//
// The densified variants run the online bounded renumbering
// (trace::OnlineDensifier) in front of the cache, giving streamed replays
// the dense-id fast path without the full-trace densify() pass.
#pragma once

#include <cstdint>

#include "cache/factory.hpp"
#include "cache/frontend.hpp"
#include "obs/stats_sink.hpp"
#include "sim/faults.hpp"
#include "sim/simulator.hpp"
#include "trace/online_densify.hpp"
#include "trace/request_stream.hpp"

namespace webcache::sim {

/// Streams the requests through the frontend; the stream is consumed (call
/// stream.reset() to replay it again).
SimResult simulate_stream(trace::RequestStream& stream,
                          cache::CacheFrontend& frontend,
                          const SimulatorOptions& options = {});

/// Convenience form mirroring simulate(trace, capacity, policy): builds a
/// SingleCacheFrontend (LRU-Threshold specs install their admission limit).
/// PolicySpec-taking overloads consult the kernel registry
/// (SimulatorOptions::kernel, sim/kernel.hpp) and run monomorphized when a
/// kernel is registered; frontend-taking overloads always run virtual.
SimResult simulate_stream(trace::RequestStream& stream,
                          std::uint64_t capacity_bytes,
                          const cache::PolicySpec& policy,
                          const SimulatorOptions& options = {});

SimResult simulate_stream(trace::RequestStream& stream,
                          std::uint64_t capacity_bytes,
                          const cache::PolicySpec& policy,
                          const SimulatorOptions& options,
                          obs::RecordingSink& sink);

SimResult simulate_stream(trace::RequestStream& stream,
                          std::uint64_t capacity_bytes,
                          const cache::PolicySpec& policy,
                          const SimulatorOptions& options,
                          const FaultSchedule& faults);

SimResult simulate_stream(trace::RequestStream& stream,
                          std::uint64_t capacity_bytes,
                          const cache::PolicySpec& policy,
                          const SimulatorOptions& options,
                          const FaultSchedule& faults,
                          obs::RecordingSink& sink);

/// Instrumented run: the RecordingSink collects the same windowed series a
/// materialized instrumented simulate() would.
SimResult simulate_stream(trace::RequestStream& stream,
                          cache::CacheFrontend& frontend,
                          const SimulatorOptions& options,
                          obs::RecordingSink& sink);

/// Fault-aware run: events key off the global 1-based request index, so a
/// schedule is applied identically however the stream is chunked.
SimResult simulate_stream(trace::RequestStream& stream,
                          cache::CacheFrontend& frontend,
                          const SimulatorOptions& options,
                          const FaultSchedule& faults);

SimResult simulate_stream(trace::RequestStream& stream,
                          cache::CacheFrontend& frontend,
                          const SimulatorOptions& options,
                          const FaultSchedule& faults,
                          obs::RecordingSink& sink);

/// Dense fast path for streams: document ids are renumbered online through
/// a bounded OnlineDensifier before they reach the frontend, and the
/// last-size tracker is a flat growing vector. Bit-identical to the sparse
/// simulate_stream (document identity is only compared for equality; ties
/// break by insertion sequence — the same invariance the materialized dense
/// path relies on).
SimResult simulate_stream_densified(
    trace::RequestStream& stream, cache::CacheFrontend& frontend,
    const SimulatorOptions& options = {},
    trace::OnlineDensifier::Options densify_options = {});

SimResult simulate_stream_densified(
    trace::RequestStream& stream, cache::CacheFrontend& frontend,
    const SimulatorOptions& options, obs::RecordingSink& sink,
    trace::OnlineDensifier::Options densify_options = {});

/// PolicySpec-taking densified forms, kernel-routed like the plain ones.
SimResult simulate_stream_densified(
    trace::RequestStream& stream, std::uint64_t capacity_bytes,
    const cache::PolicySpec& policy, const SimulatorOptions& options = {},
    trace::OnlineDensifier::Options densify_options = {});

SimResult simulate_stream_densified(
    trace::RequestStream& stream, std::uint64_t capacity_bytes,
    const cache::PolicySpec& policy, const SimulatorOptions& options,
    obs::RecordingSink& sink,
    trace::OnlineDensifier::Options densify_options = {});

}  // namespace webcache::sim
