#include "sim/sweep.hpp"

#include <atomic>
#include <cmath>
#include <exception>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "sim/sampled_sweep.hpp"
#include "sim/sharded_replay.hpp"
#include "sim/stack_sweep.hpp"
#include "util/parallel.hpp"

namespace webcache::sim {

namespace {

using CellRunner =
    std::function<SimResult(std::uint64_t capacity_bytes, std::size_t column)>;

// Lays out the (fraction x column) grid: capacities from fractions of the
// trace's overall size, one empty SimResult per cell.
SweepResult layout_grid(std::uint64_t overall_size_bytes,
                        const std::vector<double>& fractions,
                        std::size_t columns) {
  if (fractions.empty()) {
    throw std::invalid_argument("run_sweep: no cache fractions configured");
  }

  SweepResult sweep;
  sweep.overall_size_bytes = overall_size_bytes;
  for (const double fraction : fractions) {
    if (fraction <= 0.0) {
      throw std::invalid_argument("run_sweep: cache fraction must be > 0");
    }
    SweepPoint point;
    point.cache_fraction = fraction;
    point.capacity_bytes = static_cast<std::uint64_t>(std::llround(
        static_cast<double>(sweep.overall_size_bytes) * fraction));
    if (point.capacity_bytes == 0) point.capacity_bytes = 1;
    point.results.resize(columns);
    sweep.points.push_back(std::move(point));
  }
  return sweep;
}

// Fills every cell not marked in `skip` with run_cell(capacity, column),
// either inline or on a worker pool. Every cell is an independent
// simulation, so results are bit-identical for any thread count.
void fill_grid(SweepResult& sweep, std::size_t columns,
               std::uint32_t config_threads, const std::vector<char>& skip,
               const CellRunner& run_cell) {
  std::vector<std::size_t> pending;
  pending.reserve(sweep.points.size() * columns);
  for (std::size_t cell = 0; cell < sweep.points.size() * columns; ++cell) {
    if (skip.empty() || skip[cell] == 0) pending.push_back(cell);
  }

  auto fill_cell = [&](std::size_t cell) {
    const std::size_t p = cell % columns;
    const std::size_t f = cell / columns;
    sweep.points[f].results[p] =
        run_cell(sweep.points[f].capacity_bytes, p);
  };

  std::uint32_t threads = config_threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = static_cast<std::uint32_t>(
      std::min<std::size_t>(threads, pending.size()));

  if (threads <= 1) {
    for (const std::size_t cell : pending) fill_cell(cell);
    return;
  }

  // Workers must never let an exception escape (std::terminate); the first
  // captured failure is rethrown on the calling thread after the join.
  std::atomic<std::size_t> next{0};
  std::exception_ptr failure;
  std::mutex failure_mutex;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::uint32_t w = 0; w < threads; ++w) {
    workers.emplace_back([&] {
      try {
        for (std::size_t i = next.fetch_add(1); i < pending.size();
             i = next.fetch_add(1)) {
          fill_cell(pending[i]);
        }
      } catch (...) {
        const std::lock_guard<std::mutex> lock(failure_mutex);
        if (!failure) failure = std::current_exception();
        // Drain the remaining cells so sibling workers finish promptly.
        next.store(pending.size());
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  if (failure) std::rethrow_exception(failure);
}

const trace::Trace& raw_trace(const trace::Trace& trace) { return trace; }
const trace::Trace& raw_trace(const trace::DenseTrace& trace) {
  return trace.trace;
}

// One-pass LRU fast path: fills every stack-eligible (capacity x LRU
// policy) cell from a single StackSweep pass and returns the skip mask for
// fill_grid. Eligibility mirrors StackSweep's exactness preconditions —
// stack-safe options, plain-LRU column, capacity at least the largest
// transfer size — so the prefilled cells are bit-identical to what the
// grid would have computed; everything else stays on the grid.
template <typename TraceT>
std::vector<char> apply_one_pass(const TraceT& trace,
                                 const SweepConfig& config,
                                 SweepResult& sweep) {
  const std::size_t columns = config.policies.size();
  std::vector<char> skip(sweep.points.size() * columns, 0);
  if (config.one_pass == OnePassMode::kOff) return skip;
  if (!StackSweep::options_stack_safe(config.simulator)) return skip;

  std::vector<std::size_t> lru_columns;
  for (std::size_t p = 0; p < columns; ++p) {
    if (config.policies[p].kind == cache::PolicyKind::kLru) {
      lru_columns.push_back(p);
    }
  }
  if (lru_columns.empty()) return skip;

  const std::uint64_t largest =
      StackSweep::max_transfer_size(raw_trace(trace));
  std::vector<std::uint64_t> capacities;
  std::vector<std::size_t> rows;
  for (std::size_t f = 0; f < sweep.points.size(); ++f) {
    if (sweep.points[f].capacity_bytes >= largest) {
      capacities.push_back(sweep.points[f].capacity_bytes);
      rows.push_back(f);
    }
  }
  if (capacities.empty()) return skip;

  const StackSweep stack(std::move(capacities), config.simulator);
  const std::vector<SimResult> results = stack.run(trace);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (const std::size_t p : lru_columns) {
      sweep.points[rows[i]].results[p] = results[i];
      skip[rows[i] * columns + p] = 1;
    }
  }
  return skip;
}

// Whether this sweep routes its LRU columns through the SHARDS-sampled
// engine instead of the exact one (see SamplingMode). kAuto compares the
// exact engine's estimated footprint against the configured budget.
bool sampling_engaged(const SweepConfig& config,
                      std::uint64_t total_requests) {
  if (config.sampling == SamplingMode::kOff) return false;
  if (config.sample_rate >= 1.0) return false;
  if (!config.faults.empty()) return false;
  if (!StackSweep::options_stack_safe(config.simulator)) return false;
  if (config.sampling == SamplingMode::kOn) return true;
  return config.sample_memory_budget_bytes > 0 &&
         SampledSweep::estimated_exact_footprint_bytes(total_requests) >
             config.sample_memory_budget_bytes;
}

// SHARDS-sampled fill of every (capacity x LRU) cell in one pass; returns
// the skip mask for fill_grid and records per-cell error estimates. The
// sampled engine has no largest-transfer precondition, so every row's LRU
// cell is covered — non-LRU columns stay on the exact grid.
template <typename TraceT>
std::vector<char> apply_sampling(const TraceT& trace,
                                 const SweepConfig& config,
                                 SweepResult& sweep) {
  const std::size_t columns = config.policies.size();
  std::vector<char> skip(sweep.points.size() * columns, 0);

  std::vector<std::size_t> lru_columns;
  for (std::size_t p = 0; p < columns; ++p) {
    if (config.policies[p].kind == cache::PolicyKind::kLru) {
      lru_columns.push_back(p);
    }
  }
  if (lru_columns.empty()) return skip;

  SampledSweepConfig sampled;
  for (const SweepPoint& point : sweep.points) {
    sampled.capacities.push_back(point.capacity_bytes);
  }
  sampled.simulator = config.simulator;
  sampled.sample_rate = config.sample_rate;
  sampled.hash_seed = config.sample_seed;
  const SampledCurve curve =
      SampledSweep(std::move(sampled)).run(raw_trace(trace));

  for (SweepPoint& point : sweep.points) point.estimates.resize(columns);
  for (std::size_t f = 0; f < sweep.points.size(); ++f) {
    for (const std::size_t p : lru_columns) {
      sweep.points[f].results[p] = curve.results[f];
      CellEstimate& est = sweep.points[f].estimates[p];
      est.sampled = true;
      est.hit_rate_error = curve.points[f].hit_rate_error;
      est.byte_hit_rate_error = curve.points[f].byte_hit_rate_error;
      skip[f * columns + p] = 1;
    }
  }
  sweep.sampled = true;
  sweep.sample_rate = config.sample_rate;
  sweep.sample_seed = config.sample_seed;
  return skip;
}

void validate_policies(const SweepConfig& config) {
  if (config.policies.empty()) {
    throw std::invalid_argument("run_sweep: no policies configured");
  }
}

void validate_frontends(const FrontendSweepConfig& config) {
  if (config.frontends.empty()) {
    throw std::invalid_argument("run_sweep: no frontends configured");
  }
  for (const FrontendFactory& factory : config.frontends) {
    if (!factory) {
      throw std::invalid_argument("run_sweep: null frontend factory");
    }
  }
}

std::unique_ptr<cache::CacheFrontend> build_frontend(
    const FrontendSweepConfig& config, std::size_t column,
    std::uint64_t capacity) {
  std::unique_ptr<cache::CacheFrontend> frontend =
      config.frontends[column](capacity);
  if (!frontend) {
    throw std::invalid_argument("run_sweep: frontend factory returned null");
  }
  return frontend;
}

std::uint64_t admission_limit_of(const cache::PolicySpec& policy) {
  return policy.kind == cache::PolicyKind::kLruThreshold
             ? policy.admission_threshold_bytes
             : 0;
}

template <typename TraceT>
SweepResult run_policy_sweep(const TraceT& trace, const SweepConfig& config) {
  validate_policies(config);
  const std::size_t columns = config.policies.size();
  SweepResult sweep = layout_grid(raw_trace(trace).overall_size_bytes(),
                                  config.cache_fractions, columns);

  // Fault-aware sweep: every cell replays the schedule against a fresh
  // single-cache frontend (node 0 = the whole cache). Fault replay is
  // strictly sequential, so the one-pass and sharded fast paths are off;
  // the grid itself still parallelizes across cells.
  if (!config.faults.empty()) {
    fill_grid(sweep, columns, config.threads, {},
              [&](std::uint64_t capacity, std::size_t p) {
                const cache::PolicySpec& spec = config.policies[p];
                cache::SingleCacheFrontend frontend(
                    capacity, cache::make_policy(spec),
                    admission_limit_of(spec));
                return simulate(trace, frontend, config.simulator,
                                config.faults);
              });
    return sweep;
  }

  // Sampling replaces the exact one-pass prefill for LRU columns when
  // engaged; the two never mix on one sweep (exact cells would sit next to
  // approximate ones in the same column).
  const std::vector<char> skip =
      sampling_engaged(config, raw_trace(trace).requests.size())
          ? apply_sampling(trace, config, sweep)
          : apply_one_pass(trace, config, sweep);

  // Leftover-thread routing: when the grid has fewer pending cells than
  // worker threads, the spare threads move inside the cells through the
  // sharded replay engine. Only exact-eligible cells take the sharded
  // path, so the sweep stays bit-identical to the serial grid.
  std::size_t pending = 0;
  for (const char s : skip) {
    if (s == 0) ++pending;
  }
  const std::uint32_t resolved = util::resolve_threads(config.threads);
  const std::uint32_t per_cell_threads =
      pending > 0 ? static_cast<std::uint32_t>(std::min<std::uint64_t>(
                        resolved / pending, 0xffffffffu))
                  : 0;

  fill_grid(sweep, columns, config.threads, skip,
            [&](std::uint64_t capacity, std::size_t p) {
              if (per_cell_threads >= 2 &&
                  ShardedReplay::exact_eligible(config.policies[p],
                                                config.simulator)) {
                ShardedConfig sharded;
                sharded.threads = per_cell_threads;
                return simulate_sharded(trace, capacity, config.policies[p],
                                        config.simulator, sharded);
              }
              return simulate(trace, capacity, config.policies[p],
                              config.simulator);
            });
  return sweep;
}

template <typename TraceT>
SweepResult run_frontend_sweep(const TraceT& trace,
                               const FrontendSweepConfig& config) {
  validate_frontends(config);
  SweepResult sweep =
      layout_grid(raw_trace(trace).overall_size_bytes(),
                  config.cache_fractions, config.frontends.size());
  fill_grid(sweep, config.frontends.size(), config.threads, {},
            [&](std::uint64_t capacity, std::size_t p) {
              const auto frontend = build_frontend(config, p, capacity);
              if (!config.faults.empty()) {
                return simulate(trace, *frontend, config.simulator,
                                config.faults);
              }
              return simulate(trace, *frontend, config.simulator);
            });
  return sweep;
}

}  // namespace

SweepResult run_sweep(const trace::Trace& trace, const SweepConfig& config) {
  return run_policy_sweep(trace, config);
}

SweepResult run_sweep(const trace::DenseTrace& trace,
                      const SweepConfig& config) {
  return run_policy_sweep(trace, config);
}

SweepResult run_sweep(const trace::Trace& trace,
                      const FrontendSweepConfig& config) {
  return run_frontend_sweep(trace, config);
}

SweepResult run_sweep(const trace::DenseTrace& trace,
                      const FrontendSweepConfig& config) {
  return run_frontend_sweep(trace, config);
}

}  // namespace webcache::sim
