#include "sim/sweep.hpp"

#include <atomic>
#include <cmath>
#include <exception>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace webcache::sim {

namespace {

// Shared grid driver: lays out the (fraction x policy) grid, then fills the
// cells with run_cell(f, p), either inline or on a worker pool. Every cell
// is an independent simulation, so results are bit-identical for any thread
// count.
SweepResult run_grid(
    std::uint64_t overall_size_bytes, const SweepConfig& config,
    const std::function<SimResult(std::uint64_t capacity_bytes,
                                  const cache::PolicySpec&)>& run_cell) {
  if (config.policies.empty()) {
    throw std::invalid_argument("run_sweep: no policies configured");
  }
  if (config.cache_fractions.empty()) {
    throw std::invalid_argument("run_sweep: no cache fractions configured");
  }

  SweepResult sweep;
  sweep.overall_size_bytes = overall_size_bytes;

  // Lay out the full grid first so worker threads can fill cells in place
  // without synchronizing on the containers.
  for (const double fraction : config.cache_fractions) {
    if (fraction <= 0.0) {
      throw std::invalid_argument("run_sweep: cache fraction must be > 0");
    }
    SweepPoint point;
    point.cache_fraction = fraction;
    point.capacity_bytes = static_cast<std::uint64_t>(std::llround(
        static_cast<double>(sweep.overall_size_bytes) * fraction));
    if (point.capacity_bytes == 0) point.capacity_bytes = 1;
    point.results.resize(config.policies.size());
    sweep.points.push_back(std::move(point));
  }

  const std::size_t cells = sweep.points.size() * config.policies.size();
  auto fill_cell = [&](std::size_t cell) {
    const std::size_t p = cell % config.policies.size();
    const std::size_t f = cell / config.policies.size();
    sweep.points[f].results[p] =
        run_cell(sweep.points[f].capacity_bytes, config.policies[p]);
  };

  std::uint32_t threads = config.threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = static_cast<std::uint32_t>(std::min<std::size_t>(threads, cells));

  if (threads <= 1) {
    for (std::size_t cell = 0; cell < cells; ++cell) fill_cell(cell);
    return sweep;
  }

  // Workers must never let an exception escape (std::terminate); the first
  // captured failure is rethrown on the calling thread after the join.
  std::atomic<std::size_t> next{0};
  std::exception_ptr failure;
  std::mutex failure_mutex;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::uint32_t w = 0; w < threads; ++w) {
    workers.emplace_back([&] {
      try {
        for (std::size_t cell = next.fetch_add(1); cell < cells;
             cell = next.fetch_add(1)) {
          fill_cell(cell);
        }
      } catch (...) {
        const std::lock_guard<std::mutex> lock(failure_mutex);
        if (!failure) failure = std::current_exception();
        // Drain the remaining cells so sibling workers finish promptly.
        next.store(cells);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  if (failure) std::rethrow_exception(failure);
  return sweep;
}

}  // namespace

SweepResult run_sweep(const trace::Trace& trace, const SweepConfig& config) {
  return run_grid(trace.overall_size_bytes(), config,
                  [&](std::uint64_t capacity, const cache::PolicySpec& policy) {
                    return simulate(trace, capacity, policy, config.simulator);
                  });
}

SweepResult run_sweep(const trace::DenseTrace& trace,
                      const SweepConfig& config) {
  return run_grid(trace.trace.overall_size_bytes(), config,
                  [&](std::uint64_t capacity, const cache::PolicySpec& policy) {
                    return simulate(trace, capacity, policy, config.simulator);
                  });
}

}  // namespace webcache::sim
