#include "sim/sweep.hpp"

#include <atomic>
#include <cmath>
#include <exception>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace webcache::sim {

namespace {

// Shared grid driver: lays out the (fraction x column) grid, then fills the
// cells with run_cell(capacity, column), either inline or on a worker pool.
// Every cell is an independent simulation, so results are bit-identical for
// any thread count.
SweepResult run_grid(
    std::uint64_t overall_size_bytes, const std::vector<double>& fractions,
    std::size_t columns, std::uint32_t config_threads,
    const std::function<SimResult(std::uint64_t capacity_bytes,
                                  std::size_t column)>& run_cell) {
  if (fractions.empty()) {
    throw std::invalid_argument("run_sweep: no cache fractions configured");
  }

  SweepResult sweep;
  sweep.overall_size_bytes = overall_size_bytes;

  // Lay out the full grid first so worker threads can fill cells in place
  // without synchronizing on the containers.
  for (const double fraction : fractions) {
    if (fraction <= 0.0) {
      throw std::invalid_argument("run_sweep: cache fraction must be > 0");
    }
    SweepPoint point;
    point.cache_fraction = fraction;
    point.capacity_bytes = static_cast<std::uint64_t>(std::llround(
        static_cast<double>(sweep.overall_size_bytes) * fraction));
    if (point.capacity_bytes == 0) point.capacity_bytes = 1;
    point.results.resize(columns);
    sweep.points.push_back(std::move(point));
  }

  const std::size_t cells = sweep.points.size() * columns;
  auto fill_cell = [&](std::size_t cell) {
    const std::size_t p = cell % columns;
    const std::size_t f = cell / columns;
    sweep.points[f].results[p] =
        run_cell(sweep.points[f].capacity_bytes, p);
  };

  std::uint32_t threads = config_threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = static_cast<std::uint32_t>(std::min<std::size_t>(threads, cells));

  if (threads <= 1) {
    for (std::size_t cell = 0; cell < cells; ++cell) fill_cell(cell);
    return sweep;
  }

  // Workers must never let an exception escape (std::terminate); the first
  // captured failure is rethrown on the calling thread after the join.
  std::atomic<std::size_t> next{0};
  std::exception_ptr failure;
  std::mutex failure_mutex;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::uint32_t w = 0; w < threads; ++w) {
    workers.emplace_back([&] {
      try {
        for (std::size_t cell = next.fetch_add(1); cell < cells;
             cell = next.fetch_add(1)) {
          fill_cell(cell);
        }
      } catch (...) {
        const std::lock_guard<std::mutex> lock(failure_mutex);
        if (!failure) failure = std::current_exception();
        // Drain the remaining cells so sibling workers finish promptly.
        next.store(cells);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  if (failure) std::rethrow_exception(failure);
  return sweep;
}

void validate_policies(const SweepConfig& config) {
  if (config.policies.empty()) {
    throw std::invalid_argument("run_sweep: no policies configured");
  }
}

void validate_frontends(const FrontendSweepConfig& config) {
  if (config.frontends.empty()) {
    throw std::invalid_argument("run_sweep: no frontends configured");
  }
  for (const FrontendFactory& factory : config.frontends) {
    if (!factory) {
      throw std::invalid_argument("run_sweep: null frontend factory");
    }
  }
}

std::unique_ptr<cache::CacheFrontend> build_frontend(
    const FrontendSweepConfig& config, std::size_t column,
    std::uint64_t capacity) {
  std::unique_ptr<cache::CacheFrontend> frontend =
      config.frontends[column](capacity);
  if (!frontend) {
    throw std::invalid_argument("run_sweep: frontend factory returned null");
  }
  return frontend;
}

}  // namespace

SweepResult run_sweep(const trace::Trace& trace, const SweepConfig& config) {
  validate_policies(config);
  return run_grid(trace.overall_size_bytes(), config.cache_fractions,
                  config.policies.size(), config.threads,
                  [&](std::uint64_t capacity, std::size_t p) {
                    return simulate(trace, capacity, config.policies[p],
                                    config.simulator);
                  });
}

SweepResult run_sweep(const trace::DenseTrace& trace,
                      const SweepConfig& config) {
  validate_policies(config);
  return run_grid(trace.trace.overall_size_bytes(), config.cache_fractions,
                  config.policies.size(), config.threads,
                  [&](std::uint64_t capacity, std::size_t p) {
                    return simulate(trace, capacity, config.policies[p],
                                    config.simulator);
                  });
}

SweepResult run_sweep(const trace::Trace& trace,
                      const FrontendSweepConfig& config) {
  validate_frontends(config);
  return run_grid(trace.overall_size_bytes(), config.cache_fractions,
                  config.frontends.size(), config.threads,
                  [&](std::uint64_t capacity, std::size_t p) {
                    const auto frontend = build_frontend(config, p, capacity);
                    return simulate(trace, *frontend, config.simulator);
                  });
}

SweepResult run_sweep(const trace::DenseTrace& trace,
                      const FrontendSweepConfig& config) {
  validate_frontends(config);
  return run_grid(trace.trace.overall_size_bytes(), config.cache_fractions,
                  config.frontends.size(), config.threads,
                  [&](std::uint64_t capacity, std::size_t p) {
                    const auto frontend = build_frontend(config, p, capacity);
                    return simulate(trace, *frontend, config.simulator);
                  });
}

}  // namespace webcache::sim
