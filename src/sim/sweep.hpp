// Cache-size sweep driver: runs a set of policies over a ladder of cache
// sizes expressed as fractions of the trace's overall size — exactly how
// the paper's Figures 2/3 parameterize the x-axis ("Cache sizes are chosen
// from about 0.5% to about 40% of overall trace size").
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cache/factory.hpp"
#include "cache/frontend.hpp"
#include "sim/faults.hpp"
#include "sim/simulator.hpp"
#include "trace/request.hpp"

namespace webcache::sim {

/// Whether run_sweep may route LRU columns through the one-pass
/// stack-analysis engine (sim/stack_sweep.hpp) instead of one grid cell per
/// capacity. The fast path is exact — results are bit-identical to the
/// grid — so kAuto and kOn behave the same: every stack-eligible
/// (capacity x LRU) cell takes the one-pass engine and everything else
/// (non-LRU policies, occupancy sampling, capacities smaller than the
/// largest transfer) falls back to the per-cell grid. kOff forces the grid
/// everywhere (the differential baseline).
enum class OnePassMode {
  kAuto,
  kOn,
  kOff,
};

/// Whether run_sweep may route LRU columns through the SHARDS-sampled
/// one-pass engine (sim/sampled_sweep.hpp) instead of the exact one. Unlike
/// the one-pass toggle, sampling is an *approximation* — cells carry error
/// estimates — so kAuto only engages it above a memory budget:
///  * kAuto: sample LRU columns when sample_memory_budget_bytes > 0 and the
///    exact engine's estimated footprint for this trace exceeds it;
///    otherwise stay exact.
///  * kOn: always sample LRU columns (at sample_rate).
///  * kOff: never sample.
/// Non-LRU columns, non-stack-safe options, fault schedules, and
/// sample_rate == 1.0 always take the exact paths.
enum class SamplingMode {
  kAuto,
  kOn,
  kOff,
};

struct SweepConfig {
  /// Cache sizes as fractions of the trace's overall (distinct-document)
  /// size; the paper's ladder by default.
  std::vector<double> cache_fractions = {0.005, 0.01, 0.02, 0.04,
                                         0.08,  0.16, 0.40};
  std::vector<cache::PolicySpec> policies;
  SimulatorOptions simulator;
  /// Worker threads for the (fraction x policy) grid. Every cell is an
  /// independent simulation, so results are bit-identical for any thread
  /// count; 0 = std::thread::hardware_concurrency(). When there are more
  /// threads than grid cells, the leftover threads go *inside* exact-
  /// eligible cells via the sharded replay engine (sim/sharded_replay.hpp)
  /// — still bit-identical, the exact mode guarantees it.
  std::uint32_t threads = 1;
  /// One-pass LRU fast path (see OnePassMode). Never changes results.
  OnePassMode one_pass = OnePassMode::kAuto;
  /// Fault schedule applied to every grid cell (each cell runs the
  /// fault-aware replay against a fresh single-cache frontend; node 0 is
  /// the whole cache). Non-empty schedules disable the one-pass and
  /// sharded fast paths — fault replay is strictly sequential. An empty
  /// schedule is bit-identical to not passing one.
  FaultSchedule faults;
  /// SHARDS sampling of LRU columns (see SamplingMode).
  SamplingMode sampling = SamplingMode::kAuto;
  /// Sampled fraction of the document space, in (0, 1]. 1.0 is exact and
  /// equivalent to kOff.
  double sample_rate = 0.01;
  /// Seed of the sampling hash; fixed seed => reproducible curves.
  std::uint64_t sample_seed = 0x5348415244530001ULL;
  /// kAuto's trigger: sample when the exact one-pass engine would need more
  /// than this many bytes (0 = never sample in auto mode).
  std::uint64_t sample_memory_budget_bytes = 0;
};

/// Per-cell sampling annotation (parallel to SweepPoint::results when the
/// sweep sampled anything; empty otherwise). Exact cells keep sampled ==
/// false and zero errors.
struct CellEstimate {
  bool sampled = false;
  double hit_rate_error = 0.0;
  double byte_hit_rate_error = 0.0;
};

struct SweepPoint {
  double cache_fraction = 0.0;
  std::uint64_t capacity_bytes = 0;
  std::vector<SimResult> results;  // one per policy, config order
  std::vector<CellEstimate> estimates;  // per policy; empty if fully exact
};

struct SweepResult {
  std::uint64_t overall_size_bytes = 0;  // the trace's total distinct bytes
  std::vector<SweepPoint> points;        // ascending cache size
  /// True when any cell was filled by the SHARDS-sampled engine; the rate
  /// and seed then echo the run's sampling parameters.
  bool sampled = false;
  double sample_rate = 0.0;
  std::uint64_t sample_seed = 0;
};

SweepResult run_sweep(const trace::Trace& trace, const SweepConfig& config);

/// Dense-id fast path: every grid cell runs the array-backed simulate()
/// overload. Bit-identical to the sparse overload and to any thread count.
SweepResult run_sweep(const trace::DenseTrace& trace,
                      const SweepConfig& config);

/// Builds a cold composite cache for one grid cell. Called once per
/// (fraction x variant) cell with that cell's capacity in bytes; the sweep
/// replays the trace against the returned frontend from empty.
using FrontendFactory =
    std::function<std::unique_ptr<cache::CacheFrontend>(std::uint64_t)>;

/// Sweep over composite caches (e.g. cache::PartitionedCache shares) that a
/// PolicySpec cannot describe: the grid is (cache fraction x frontend
/// variant) instead of (cache fraction x policy).
struct FrontendSweepConfig {
  std::vector<double> cache_fractions = {0.005, 0.01, 0.02, 0.04,
                                         0.08,  0.16, 0.40};
  /// One column per composite-cache variant, in presentation order.
  std::vector<FrontendFactory> frontends;
  SimulatorOptions simulator;
  /// Worker threads for the grid; 0 = std::thread::hardware_concurrency().
  std::uint32_t threads = 1;
  /// Fault schedule applied to every grid cell; node i is fault domain i
  /// of the cell's frontend (a PartitionedCache exposes one domain per
  /// document class). An empty schedule is bit-identical to not passing
  /// one.
  FaultSchedule faults;
};

SweepResult run_sweep(const trace::Trace& trace,
                      const FrontendSweepConfig& config);

/// Dense-id fast path: each cell's frontend reserves the dense universe
/// (CacheFrontend::reserve_dense_ids) before replay. Bit-identical to the
/// sparse overload and to any thread count.
SweepResult run_sweep(const trace::DenseTrace& trace,
                      const FrontendSweepConfig& config);

}  // namespace webcache::sim
