#include "synth/generator.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "util/distributions.hpp"
#include "util/fenwick.hpp"

namespace webcache::synth {

namespace {

/// Mutable per-class generation state.
struct ClassState {
  ClassPopulation population;
  const ClassProfile* profile = nullptr;

  std::vector<std::uint32_t> remaining;    // per-doc unused reference budget
  std::vector<std::uint64_t> current_size; // mutates on modification
  std::vector<bool> seen;                  // first request vs re-reference
  std::unique_ptr<util::FenwickTree> weights;
  std::unique_ptr<util::PowerLawGapDistribution> gap_dist;

  // History ring of recently emitted document indices.
  std::vector<std::uint32_t> history;
  std::size_t history_head = 0;   // next write slot
  std::uint64_t emitted = 0;      // total class requests emitted

  bool empty() const { return population.document_count() == 0; }

  void init(std::size_t history_capacity) {
    const std::size_t n = population.document_count();
    remaining.assign(population.reference_counts.begin(),
                     population.reference_counts.end());
    current_size = population.sizes;
    seen.assign(n, false);
    std::vector<double> w(n);
    for (std::size_t i = 0; i < n; ++i) {
      w[i] = static_cast<double>(remaining[i]);
    }
    weights = std::make_unique<util::FenwickTree>(w);
    const std::size_t cap = std::min<std::size_t>(history_capacity, n * 4 + 16);
    history.assign(cap, 0);
    gap_dist = std::make_unique<util::PowerLawGapDistribution>(
        cap, std::max(0.05, profile->beta));
  }

  std::uint64_t history_length() const {
    return std::min<std::uint64_t>(emitted, history.size());
  }

  std::uint32_t history_at_gap(std::uint64_t gap) const {
    // gap = 1 means the most recently emitted document.
    const std::size_t cap = history.size();
    const std::size_t idx = (history_head + cap - (gap % cap)) % cap;
    return history[idx];
  }

  void push_history(std::uint32_t doc) {
    history[history_head] = doc;
    history_head = (history_head + 1) % history.size();
    ++emitted;
  }

  /// Picks the document for the next class request and consumes one unit of
  /// its reference budget.
  std::uint32_t pick(util::Rng& rng) {
    std::optional<std::uint32_t> chosen;
    if (history_length() > 0 && rng.chance(profile->correlation_probability)) {
      std::uint64_t gap = gap_dist->sample(rng);
      gap = std::min<std::uint64_t>(gap, history_length());
      const std::uint32_t candidate = history_at_gap(gap);
      if (remaining[candidate] > 0) chosen = candidate;
    }
    if (!chosen) {
      const double u = rng.uniform() * weights->total();
      chosen = static_cast<std::uint32_t>(weights->find(u));
    }
    --remaining[*chosen];
    weights->add(*chosen, -1.0);
    push_history(*chosen);
    return *chosen;
  }
};

/// The shared per-request emit body: picks a document, applies the
/// modification / interarrival / interrupt rules, and returns the request.
/// Both generate() and the streaming generator call this with their own RNG
/// substreams; the statement order is exactly the one generate() always had,
/// so the materialized output (and its golden fixtures) is unchanged.
trace::Request next_request(ClassState& st, double mean_interarrival_ms,
                            const util::ZipfDistribution& client_dist,
                            util::Rng& rng_requests, util::Rng& rng_time,
                            util::Rng& rng_clients, double& clock_ms) {
  const ClassProfile& cp = *st.profile;
  const std::uint32_t doc = st.pick(rng_requests);

  // Document modification: only meaningful on a re-reference; the origin
  // changed the body, size drifts by < 5% (paper's modification rule).
  if (st.seen[doc] && rng_requests.chance(cp.modification_probability)) {
    const double factor = 1.0 + rng_requests.uniform(-0.049, 0.049);
    const auto perturbed = static_cast<std::uint64_t>(std::max(
        64.0, std::round(static_cast<double>(st.current_size[doc]) * factor)));
    // Guarantee an actual change so the simulator sees a modification.
    st.current_size[doc] =
        perturbed == st.current_size[doc] ? perturbed + 1 : perturbed;
  }
  st.seen[doc] = true;

  clock_ms += rng_time.exponential(1.0 / mean_interarrival_ms);

  trace::Request r;
  r.timestamp_ms = static_cast<std::uint64_t>(clock_ms);
  r.document = st.population.document_id(doc);
  r.client = static_cast<std::uint32_t>(client_dist.sample(rng_clients));
  r.doc_class = cp.doc_class;
  r.status = 200;
  r.document_size = st.current_size[doc];
  r.transfer_size = r.document_size;
  const double p_int =
      effective_interrupt_probability(cp.interrupt_probability, r.document_size);
  if (rng_requests.chance(p_int)) {
    const double frac = rng_requests.uniform(0.05, 0.90);
    r.transfer_size = std::max<std::uint64_t>(
        64, static_cast<std::uint64_t>(
                static_cast<double>(r.document_size) * frac));
  }
  return r;
}

/// Streaming counterpart of generate(): identical population construction
/// and per-request body, but the class interleaving is drawn online without
/// replacement (each request picks a class with probability proportional to
/// its remaining request budget — the sequential view of the token shuffle)
/// instead of materializing and shuffling one token per request. Memory is
/// O(distinct documents + chunk), independent of total_requests, which is
/// what makes 10^8-10^9-request workloads drivable. Chunk size never enters
/// any draw, so the stream is chunk-size invariant by construction.
class GeneratorStream final : public trace::RequestStream {
 public:
  GeneratorStream(const WorkloadProfile& profile, GeneratorOptions options,
                  std::size_t chunk_records)
      : profile_(profile),
        options_(options),
        chunk_records_(chunk_records == 0 ? std::size_t{1} << 16
                                          : chunk_records) {
    init();
  }

  std::uint64_t total_requests() const override { return total_; }

  std::span<const trace::Request> next_chunk() override {
    if (total_remaining_ == 0) return {};
    buffer_.clear();
    const std::uint64_t n =
        std::min<std::uint64_t>(chunk_records_, total_remaining_);
    buffer_.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::size_t token = draw_class();
      buffer_.push_back(next_request(states_[token],
                                     profile_.mean_interarrival_ms,
                                     *client_dist_, *rng_requests_, *rng_time_,
                                     *rng_clients_, clock_ms_));
    }
    return {buffer_.data(), buffer_.size()};
  }

  void reset() override { init(); }

 private:
  /// (Re)builds the whole generation state from (profile, seed). Fork order
  /// matches generate() so the substreams stay comparable across modes.
  void init() {
    util::Rng master(options_.seed);
    util::Rng rng_population = master.fork("population");
    rng_tokens_.emplace(master.fork("tokens"));
    rng_requests_.emplace(master.fork("requests"));
    rng_time_.emplace(master.fork("time"));

    std::uint64_t docs_assigned = 0;
    std::uint64_t reqs_assigned = 0;
    total_ = 0;
    for (std::size_t ci = 0; ci < trace::kDocumentClassCount; ++ci) {
      const ClassProfile& cp = profile_.classes[ci];
      states_[ci] = ClassState{};
      states_[ci].profile = &profile_.classes[ci];
      std::uint64_t docs = static_cast<std::uint64_t>(std::llround(
          static_cast<double>(profile_.distinct_documents) *
          cp.distinct_fraction));
      std::uint64_t reqs = static_cast<std::uint64_t>(std::llround(
          static_cast<double>(profile_.total_requests) * cp.request_fraction));
      if (ci + 1 == trace::kDocumentClassCount) {
        docs = profile_.distinct_documents - docs_assigned;
        reqs = profile_.total_requests - reqs_assigned;
      }
      docs_assigned += docs;
      reqs_assigned += reqs;
      if (docs > 0 && reqs < docs) reqs = docs;
      states_[ci].population = build_population(cp, docs, reqs, rng_population);
      if (!states_[ci].empty()) states_[ci].init(options_.history_capacity);
      remaining_reqs_[ci] =
          states_[ci].empty() ? 0 : states_[ci].population.request_count();
      total_ += remaining_reqs_[ci];
    }
    total_remaining_ = total_;

    std::uint32_t client_count = options_.clients;
    if (client_count == 0) {
      client_count = static_cast<std::uint32_t>(
          std::max<std::uint64_t>(16, profile_.total_requests / 2000));
    }
    client_dist_.emplace(client_count, 1.0);
    rng_clients_.emplace(master.fork("clients"));
    clock_ms_ = 0.0;
  }

  /// Online without-replacement class draw: the next token is class ci with
  /// probability remaining_reqs_[ci] / total_remaining_.
  std::size_t draw_class() {
    const double u =
        rng_tokens_->uniform() * static_cast<double>(total_remaining_);
    double acc = 0.0;
    std::size_t token = trace::kDocumentClassCount;
    for (std::size_t ci = 0; ci < trace::kDocumentClassCount; ++ci) {
      acc += static_cast<double>(remaining_reqs_[ci]);
      if (u < acc && remaining_reqs_[ci] > 0) {
        token = ci;
        break;
      }
    }
    if (token == trace::kDocumentClassCount) {
      // Floating-point edge (u landed on the accumulated total): take the
      // last class that still has budget.
      for (std::size_t ci = trace::kDocumentClassCount; ci-- > 0;) {
        if (remaining_reqs_[ci] > 0) {
          token = ci;
          break;
        }
      }
    }
    --remaining_reqs_[token];
    --total_remaining_;
    return token;
  }

  WorkloadProfile profile_;
  GeneratorOptions options_;
  std::size_t chunk_records_;

  std::array<ClassState, trace::kDocumentClassCount> states_;
  std::array<std::uint64_t, trace::kDocumentClassCount> remaining_reqs_{};
  std::uint64_t total_ = 0;
  std::uint64_t total_remaining_ = 0;

  std::optional<util::Rng> rng_tokens_;
  std::optional<util::Rng> rng_requests_;
  std::optional<util::Rng> rng_time_;
  std::optional<util::Rng> rng_clients_;
  std::optional<util::ZipfDistribution> client_dist_;
  double clock_ms_ = 0.0;

  std::vector<trace::Request> buffer_;
};

}  // namespace

double effective_interrupt_probability(double base_probability,
                                       std::uint64_t size) {
  constexpr double kRampBytes = 512.0 * 1024.0;
  return base_probability *
         std::min(1.0, static_cast<double>(size) / kRampBytes);
}

TraceGenerator::TraceGenerator(WorkloadProfile profile,
                               GeneratorOptions options)
    : profile_(std::move(profile)), options_(options) {
  profile_.validate();
  if (options_.history_capacity == 0) {
    throw std::invalid_argument("TraceGenerator: history_capacity must be > 0");
  }
}

trace::Trace TraceGenerator::generate() {
  util::Rng master(options_.seed);
  util::Rng rng_population = master.fork("population");
  util::Rng rng_tokens = master.fork("tokens");
  util::Rng rng_requests = master.fork("requests");
  util::Rng rng_time = master.fork("time");

  // ---- build per-class populations with exact budgets ----
  std::array<ClassState, trace::kDocumentClassCount> states;
  std::uint64_t docs_assigned = 0;
  std::uint64_t reqs_assigned = 0;
  for (std::size_t ci = 0; ci < trace::kDocumentClassCount; ++ci) {
    const ClassProfile& cp = profile_.classes[ci];
    states[ci].profile = &cp;
    std::uint64_t docs = static_cast<std::uint64_t>(std::llround(
        static_cast<double>(profile_.distinct_documents) * cp.distinct_fraction));
    std::uint64_t reqs = static_cast<std::uint64_t>(std::llround(
        static_cast<double>(profile_.total_requests) * cp.request_fraction));
    // The last class absorbs rounding so totals match the profile exactly.
    if (ci + 1 == trace::kDocumentClassCount) {
      docs = profile_.distinct_documents - docs_assigned;
      reqs = profile_.total_requests - reqs_assigned;
    }
    docs_assigned += docs;
    reqs_assigned += reqs;
    if (docs > 0 && reqs < docs) reqs = docs;  // generator invariant
    states[ci].population = build_population(cp, docs, reqs, rng_population);
    if (!states[ci].empty()) states[ci].init(options_.history_capacity);
  }

  // ---- exact class interleaving: one token per request, shuffled ----
  std::vector<std::uint8_t> tokens;
  tokens.reserve(reqs_assigned);
  for (std::size_t ci = 0; ci < trace::kDocumentClassCount; ++ci) {
    const std::uint64_t reqs = states[ci].empty()
                                   ? 0
                                   : states[ci].population.request_count();
    tokens.insert(tokens.end(), reqs, static_cast<std::uint8_t>(ci));
  }
  std::shuffle(tokens.begin(), tokens.end(), rng_tokens.engine());

  // ---- client population ----
  std::uint32_t client_count = options_.clients;
  if (client_count == 0) {
    client_count = static_cast<std::uint32_t>(
        std::max<std::uint64_t>(16, profile_.total_requests / 2000));
  }
  const util::ZipfDistribution client_dist(client_count, 1.0);
  util::Rng rng_clients = master.fork("clients");

  // ---- emit the request stream ----
  trace::Trace trace_out;
  trace_out.requests.reserve(tokens.size());
  double clock_ms = 0.0;
  for (const std::uint8_t token : tokens) {
    trace_out.requests.push_back(
        next_request(states[token], profile_.mean_interarrival_ms, client_dist,
                     rng_requests, rng_time, rng_clients, clock_ms));
  }
  return trace_out;
}

std::unique_ptr<trace::RequestStream> TraceGenerator::stream(
    std::size_t chunk_records) const {
  return std::make_unique<GeneratorStream>(profile_, options_, chunk_records);
}

}  // namespace webcache::synth
