#include "synth/generator.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <vector>

#include "util/distributions.hpp"
#include "util/fenwick.hpp"

namespace webcache::synth {

namespace {

/// Mutable per-class generation state.
struct ClassState {
  ClassPopulation population;
  const ClassProfile* profile = nullptr;

  std::vector<std::uint32_t> remaining;    // per-doc unused reference budget
  std::vector<std::uint64_t> current_size; // mutates on modification
  std::vector<bool> seen;                  // first request vs re-reference
  std::unique_ptr<util::FenwickTree> weights;
  std::unique_ptr<util::PowerLawGapDistribution> gap_dist;

  // History ring of recently emitted document indices.
  std::vector<std::uint32_t> history;
  std::size_t history_head = 0;   // next write slot
  std::uint64_t emitted = 0;      // total class requests emitted

  bool empty() const { return population.document_count() == 0; }

  void init(std::size_t history_capacity) {
    const std::size_t n = population.document_count();
    remaining.assign(population.reference_counts.begin(),
                     population.reference_counts.end());
    current_size = population.sizes;
    seen.assign(n, false);
    std::vector<double> w(n);
    for (std::size_t i = 0; i < n; ++i) {
      w[i] = static_cast<double>(remaining[i]);
    }
    weights = std::make_unique<util::FenwickTree>(w);
    const std::size_t cap = std::min<std::size_t>(history_capacity, n * 4 + 16);
    history.assign(cap, 0);
    gap_dist = std::make_unique<util::PowerLawGapDistribution>(
        cap, std::max(0.05, profile->beta));
  }

  std::uint64_t history_length() const {
    return std::min<std::uint64_t>(emitted, history.size());
  }

  std::uint32_t history_at_gap(std::uint64_t gap) const {
    // gap = 1 means the most recently emitted document.
    const std::size_t cap = history.size();
    const std::size_t idx = (history_head + cap - (gap % cap)) % cap;
    return history[idx];
  }

  void push_history(std::uint32_t doc) {
    history[history_head] = doc;
    history_head = (history_head + 1) % history.size();
    ++emitted;
  }

  /// Picks the document for the next class request and consumes one unit of
  /// its reference budget.
  std::uint32_t pick(util::Rng& rng) {
    std::optional<std::uint32_t> chosen;
    if (history_length() > 0 && rng.chance(profile->correlation_probability)) {
      std::uint64_t gap = gap_dist->sample(rng);
      gap = std::min<std::uint64_t>(gap, history_length());
      const std::uint32_t candidate = history_at_gap(gap);
      if (remaining[candidate] > 0) chosen = candidate;
    }
    if (!chosen) {
      const double u = rng.uniform() * weights->total();
      chosen = static_cast<std::uint32_t>(weights->find(u));
    }
    --remaining[*chosen];
    weights->add(*chosen, -1.0);
    push_history(*chosen);
    return *chosen;
  }
};

}  // namespace

double effective_interrupt_probability(double base_probability,
                                       std::uint64_t size) {
  constexpr double kRampBytes = 512.0 * 1024.0;
  return base_probability *
         std::min(1.0, static_cast<double>(size) / kRampBytes);
}

TraceGenerator::TraceGenerator(WorkloadProfile profile,
                               GeneratorOptions options)
    : profile_(std::move(profile)), options_(options) {
  profile_.validate();
  if (options_.history_capacity == 0) {
    throw std::invalid_argument("TraceGenerator: history_capacity must be > 0");
  }
}

trace::Trace TraceGenerator::generate() {
  util::Rng master(options_.seed);
  util::Rng rng_population = master.fork("population");
  util::Rng rng_tokens = master.fork("tokens");
  util::Rng rng_requests = master.fork("requests");
  util::Rng rng_time = master.fork("time");

  // ---- build per-class populations with exact budgets ----
  std::array<ClassState, trace::kDocumentClassCount> states;
  std::uint64_t docs_assigned = 0;
  std::uint64_t reqs_assigned = 0;
  for (std::size_t ci = 0; ci < trace::kDocumentClassCount; ++ci) {
    const ClassProfile& cp = profile_.classes[ci];
    states[ci].profile = &cp;
    std::uint64_t docs = static_cast<std::uint64_t>(std::llround(
        static_cast<double>(profile_.distinct_documents) * cp.distinct_fraction));
    std::uint64_t reqs = static_cast<std::uint64_t>(std::llround(
        static_cast<double>(profile_.total_requests) * cp.request_fraction));
    // The last class absorbs rounding so totals match the profile exactly.
    if (ci + 1 == trace::kDocumentClassCount) {
      docs = profile_.distinct_documents - docs_assigned;
      reqs = profile_.total_requests - reqs_assigned;
    }
    docs_assigned += docs;
    reqs_assigned += reqs;
    if (docs > 0 && reqs < docs) reqs = docs;  // generator invariant
    states[ci].population = build_population(cp, docs, reqs, rng_population);
    if (!states[ci].empty()) states[ci].init(options_.history_capacity);
  }

  // ---- exact class interleaving: one token per request, shuffled ----
  std::vector<std::uint8_t> tokens;
  tokens.reserve(reqs_assigned);
  for (std::size_t ci = 0; ci < trace::kDocumentClassCount; ++ci) {
    const std::uint64_t reqs = states[ci].empty()
                                   ? 0
                                   : states[ci].population.request_count();
    tokens.insert(tokens.end(), reqs, static_cast<std::uint8_t>(ci));
  }
  std::shuffle(tokens.begin(), tokens.end(), rng_tokens.engine());

  // ---- client population ----
  std::uint32_t client_count = options_.clients;
  if (client_count == 0) {
    client_count = static_cast<std::uint32_t>(
        std::max<std::uint64_t>(16, profile_.total_requests / 2000));
  }
  const util::ZipfDistribution client_dist(client_count, 1.0);
  util::Rng rng_clients = master.fork("clients");

  // ---- emit the request stream ----
  trace::Trace trace_out;
  trace_out.requests.reserve(tokens.size());
  double clock_ms = 0.0;
  for (const std::uint8_t token : tokens) {
    ClassState& st = states[token];
    const ClassProfile& cp = *st.profile;
    const std::uint32_t doc = st.pick(rng_requests);

    // Document modification: only meaningful on a re-reference; the origin
    // changed the body, size drifts by < 5% (paper's modification rule).
    if (st.seen[doc] && rng_requests.chance(cp.modification_probability)) {
      const double factor = 1.0 + rng_requests.uniform(-0.049, 0.049);
      const auto perturbed = static_cast<std::uint64_t>(std::max(
          64.0, std::round(static_cast<double>(st.current_size[doc]) * factor)));
      // Guarantee an actual change so the simulator sees a modification.
      st.current_size[doc] =
          perturbed == st.current_size[doc] ? perturbed + 1 : perturbed;
    }
    st.seen[doc] = true;

    clock_ms += rng_time.exponential(1.0 / profile_.mean_interarrival_ms);

    trace::Request r;
    r.timestamp_ms = static_cast<std::uint64_t>(clock_ms);
    r.document = st.population.document_id(doc);
    r.client = static_cast<std::uint32_t>(client_dist.sample(rng_clients));
    r.doc_class = cp.doc_class;
    r.status = 200;
    r.document_size = st.current_size[doc];
    r.transfer_size = r.document_size;
    const double p_int =
        effective_interrupt_probability(cp.interrupt_probability, r.document_size);
    if (rng_requests.chance(p_int)) {
      const double frac = rng_requests.uniform(0.05, 0.90);
      r.transfer_size = std::max<std::uint64_t>(
          64, static_cast<std::uint64_t>(
                  static_cast<double>(r.document_size) * frac));
    }
    trace_out.requests.push_back(r);
  }
  return trace_out;
}

}  // namespace webcache::synth
