// The two-source synthetic request engine.
//
// Temporal locality in web request streams has two distinct sources (Jin &
// Bestavros; paper Section 2): long-term *popularity* (some documents are
// hot) and short-term *temporal correlation* (a re-reference is likely soon
// after a reference, with gap probability ~ n^-beta). The generator models
// them explicitly, per document class:
//
//   for each request slot of class c:
//     with probability correlation_probability:
//       draw a gap g ~ PowerLaw(beta_c) and re-reference the document seen
//       g class-requests ago (falling back to the popularity source if that
//       document's reference budget is exhausted)
//     otherwise:
//       draw a document proportionally to its remaining Zipf reference
//       count (weighted sampling without replacement via a Fenwick tree)
//
// Class interleaving uses an exact token shuffle, so the per-class request
// counts match the profile exactly. Document modifications (< 5% size
// perturbation) and interrupted transfers (transfer < document size, more
// likely for large documents) are injected per Section 4.1 of the paper.
#pragma once

#include <cstdint>
#include <memory>

#include "synth/population.hpp"
#include "synth/profile.hpp"
#include "trace/request.hpp"
#include "trace/request_stream.hpp"
#include "util/rng.hpp"

namespace webcache::synth {

struct GeneratorOptions {
  std::uint64_t seed = 42;
  /// Per-class history ring for correlation draws; also the maximum
  /// temporal-correlation gap (in class requests).
  std::size_t history_capacity = 32768;
  /// Size of the client population; requests are attributed to clients via
  /// a Zipf(1.0) draw (heavy browsers exist). 0 = auto:
  /// max(16, total_requests / 2000). Document choice is independent of the
  /// client (shared popularity), a deliberate simplification.
  std::uint32_t clients = 0;
};

class TraceGenerator {
 public:
  explicit TraceGenerator(WorkloadProfile profile, GeneratorOptions options = {});

  /// Materializes the full trace. Deterministic in (profile, options.seed).
  trace::Trace generate();

  /// Streaming generation: yields the workload in bounded chunks without
  /// ever materializing it, so benches can drive 10^8-10^9-request runs at
  /// O(distinct documents) memory. Deterministic in (profile, options.seed)
  /// and invariant to chunk_records; reset() replays the identical stream.
  ///
  /// The class interleaving is drawn online without replacement (each
  /// request picks a class proportionally to its remaining budget) instead
  /// of generate()'s materialized token shuffle, so per-class totals still
  /// match the profile exactly but the interleaving is a different —
  /// equally valid — sample than generate()'s. generate() itself is
  /// untouched; golden fixtures depend on its byte-identical output.
  std::unique_ptr<trace::RequestStream> stream(
      std::size_t chunk_records = 1 << 16) const;

  const WorkloadProfile& profile() const { return profile_; }

 private:
  WorkloadProfile profile_;
  GeneratorOptions options_;
};

/// Effective interruption probability for a document of `size` bytes:
/// the class's base probability scaled by min(1, size / 512 KiB), so small
/// documents are almost never aborted while multi-megabyte transfers are
/// interrupted at close to the base rate (paper, Section 4.1: "users are
/// likely to interrupt transfers due to large transfer times").
double effective_interrupt_probability(double base_probability,
                                       std::uint64_t size);

}  // namespace webcache::synth
