#include "synth/mix_shift.hpp"

#include <stdexcept>

namespace webcache::synth {

namespace {

/// Scales entry c of the mix by factors[c] and renormalizes the rest so the
/// total stays 1. `get` selects the fraction field.
template <typename Get>
void rescale(WorkloadProfile& profile,
             const std::array<double, trace::kDocumentClassCount>& factors,
             Get get) {
  double boosted = 0.0;
  double unscaled = 0.0;
  for (std::size_t c = 0; c < trace::kDocumentClassCount; ++c) {
    const double fraction = get(profile.classes[c]);
    if (factors[c] != 1.0) {
      boosted += fraction * factors[c];
    } else {
      unscaled += fraction;
    }
  }
  if (boosted >= 1.0) {
    throw std::invalid_argument(
        "shift_class_mix: boosted classes exceed the whole mix");
  }
  if (unscaled <= 0.0) {
    throw std::invalid_argument(
        "shift_class_mix: nothing left to absorb the shift");
  }
  const double squeeze = (1.0 - boosted) / unscaled;
  for (std::size_t c = 0; c < trace::kDocumentClassCount; ++c) {
    double& fraction = get(profile.classes[c]);
    fraction *= factors[c] != 1.0 ? factors[c] : squeeze;
  }
}

}  // namespace

WorkloadProfile shift_class_mix(
    const WorkloadProfile& base,
    const std::array<double, trace::kDocumentClassCount>& factors) {
  for (const double f : factors) {
    if (f <= 0.0) {
      throw std::invalid_argument("shift_class_mix: factors must be > 0");
    }
  }
  WorkloadProfile shifted = base;
  rescale(shifted, factors,
          [](ClassProfile& c) -> double& { return c.distinct_fraction; });
  rescale(shifted, factors,
          [](ClassProfile& c) -> double& { return c.request_fraction; });
  shifted.validate();
  return shifted;
}

WorkloadProfile future_workload(const WorkloadProfile& base, double growth) {
  std::array<double, trace::kDocumentClassCount> factors;
  factors.fill(1.0);
  factors[static_cast<std::size_t>(trace::DocumentClass::kMultiMedia)] =
      growth;
  factors[static_cast<std::size_t>(trace::DocumentClass::kApplication)] =
      growth;
  WorkloadProfile shifted = shift_class_mix(base, factors);
  shifted.name = base.name + "+mm/app x" + std::to_string(growth);
  return shifted;
}

}  // namespace webcache::synth
