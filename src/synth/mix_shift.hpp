// Workload evolution: shifting the class mix of a profile.
//
// The paper's motivation (Section 1): "Due to the rapidly increasing
// popularity of digital audio and video documents and the sustained growth
// of application documents in the web, we conjecture that in future
// workloads the percentage of requests to such documents will be
// substantially larger than in current request streams." This utility
// constructs such future workloads from a calibrated present-day profile:
// chosen classes' document and request shares are scaled by a factor, the
// remaining classes absorb the change proportionally, and all of the
// profile's internal constraints (sums to one, at least one request per
// document) are preserved.
#pragma once

#include <array>

#include "synth/profile.hpp"

namespace webcache::synth {

/// Multiplies the distinct-document and request fractions of each class by
/// its factor (1.0 = unchanged) and renormalizes the remaining classes so
/// both mixes still sum to one. Throws std::invalid_argument when a factor
/// is non-positive, when the boosted classes would exceed the whole mix, or
/// when the result fails WorkloadProfile::validate().
WorkloadProfile shift_class_mix(
    const WorkloadProfile& base,
    const std::array<double, trace::kDocumentClassCount>& factors);

/// The paper's conjecture as a one-knob scenario: multiply the multi-media
/// and application shares by `growth` (> 0), shrinking images/HTML/other
/// proportionally.
WorkloadProfile future_workload(const WorkloadProfile& base, double growth);

}  // namespace webcache::synth
