#include "synth/population.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>

#include "util/distributions.hpp"

namespace webcache::synth {

std::uint64_t ClassPopulation::request_count() const {
  std::uint64_t total = 0;
  for (std::uint32_t c : reference_counts) total += c;
  return total;
}

std::uint64_t ClassPopulation::total_bytes() const {
  std::uint64_t total = 0;
  for (std::uint64_t s : sizes) total += s;
  return total;
}

trace::DocumentId ClassPopulation::document_id(std::uint64_t i) const {
  // Top byte tags the class so ids are globally unique across classes; the
  // +1 keeps id 0 unused.
  return (static_cast<std::uint64_t>(static_cast<std::uint8_t>(doc_class)) + 1)
             << 56 |
         (i + 1);
}

std::vector<std::uint32_t> zipf_reference_counts(std::uint64_t documents,
                                                 std::uint64_t requests,
                                                 double alpha) {
  if (documents == 0) return {};
  if (requests < documents) {
    throw std::invalid_argument(
        "zipf_reference_counts: need at least one request per document");
  }

  const auto sum_for = [&](double scale) -> double {
    double total = 0.0;
    for (std::uint64_t i = 1; i <= documents; ++i) {
      total += std::max(1.0, scale * std::pow(static_cast<double>(i), -alpha));
    }
    return total;
  };

  // Binary-search the Zipf scale. sum_for is monotone in the scale, between
  // documents (scale -> 0) and unbounded (scale -> inf).
  const double target = static_cast<double>(requests);
  double lo = 0.0;
  double hi = target;  // count(1) = hi alone already exceeds the target
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = (lo + hi) / 2.0;
    if (sum_for(mid) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double scale = (lo + hi) / 2.0;

  std::vector<std::uint32_t> counts(documents);
  std::uint64_t assigned = 0;
  for (std::uint64_t i = 0; i < documents; ++i) {
    const double raw =
        std::max(1.0, scale * std::pow(static_cast<double>(i + 1), -alpha));
    const auto c = static_cast<std::uint32_t>(std::llround(raw));
    counts[i] = std::max<std::uint32_t>(1, c);
    assigned += counts[i];
  }

  // Distribute the rounding remainder over the head of the distribution
  // (or shave it off, never below one reference).
  if (assigned < requests) {
    std::uint64_t deficit = requests - assigned;
    std::uint64_t i = 0;
    while (deficit > 0) {
      ++counts[i % documents];
      --deficit;
      ++i;
    }
  } else if (assigned > requests) {
    std::uint64_t surplus = assigned - requests;
    std::uint64_t i = 0;
    while (surplus > 0 && i < documents) {
      if (counts[i] > 1) {
        --counts[i];
        --surplus;
      } else {
        ++i;
      }
    }
    if (surplus > 0) {
      throw std::logic_error("zipf_reference_counts: cannot meet budget");
    }
  }
  return counts;
}

std::vector<std::uint64_t> draw_sizes(const ClassProfile& profile,
                                      std::uint64_t documents,
                                      util::Rng& rng) {
  std::vector<std::uint64_t> sizes(documents);
  const util::LognormalSizeDistribution body(profile.size_mean_bytes,
                                             profile.size_median_bytes);
  std::optional<util::BoundedParetoDistribution> tail;
  if (profile.tail_fraction > 0.0) {
    tail.emplace(profile.tail_shape, profile.tail_lo_bytes,
                 profile.tail_hi_bytes);
  }
  for (auto& size : sizes) {
    const double raw = (tail && rng.chance(profile.tail_fraction))
                           ? tail->sample(rng)
                           : body.sample(rng);
    size = static_cast<std::uint64_t>(std::max(64.0, std::ceil(raw)));
  }
  return sizes;
}

ClassPopulation build_population(const ClassProfile& profile,
                                 std::uint64_t class_documents,
                                 std::uint64_t class_requests, util::Rng& rng) {
  ClassPopulation pop;
  pop.doc_class = profile.doc_class;
  if (class_documents == 0) return pop;
  pop.reference_counts =
      zipf_reference_counts(class_documents, class_requests, profile.alpha);
  pop.sizes = draw_sizes(profile, class_documents, rng);
  return pop;
}

}  // namespace webcache::synth
