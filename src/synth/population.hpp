// Per-class document populations: exact Zipf reference counts plus sizes.
//
// Rather than drawing requests from a Zipf urn (which only hits distinct-
// document targets in expectation), the generator follows the ProWGen
// approach: assign every document an exact reference count
//     count(rank) = max(1, C * rank^-alpha)
// with C solved so the counts sum to the class's request budget. This gives
// the trace the paper's Table-2/3 rows *exactly* — every document referenced
// at least once, heavy one-timer plateau, alpha-sloped head.
#pragma once

#include <cstdint>
#include <vector>

#include "synth/profile.hpp"
#include "trace/request.hpp"
#include "util/rng.hpp"

namespace webcache::synth {

/// The built population of one document class.
struct ClassPopulation {
  trace::DocumentClass doc_class = trace::DocumentClass::kOther;

  /// Reference count per document, descending in rank; sums to the class's
  /// request budget. Index i is document rank i+1.
  std::vector<std::uint32_t> reference_counts;

  /// Document size in bytes per document (same indexing).
  std::vector<std::uint64_t> sizes;

  std::uint64_t document_count() const { return reference_counts.size(); }
  std::uint64_t request_count() const;
  std::uint64_t total_bytes() const;

  /// Globally unique DocumentId for rank index i (class tag in the top byte).
  trace::DocumentId document_id(std::uint64_t i) const;
};

/// Solves for the Zipf scale C such that sum_i max(1, C * i^-alpha) equals
/// `requests` over `documents` ranks (within rounding), then materializes
/// the counts and distributes the rounding remainder over the top ranks.
/// Requires requests >= documents >= 1.
std::vector<std::uint32_t> zipf_reference_counts(std::uint64_t documents,
                                                 std::uint64_t requests,
                                                 double alpha);

/// Draws document sizes per the class profile (lognormal body, optional
/// bounded-Pareto tail), independent of rank. Sizes are floored at 64 bytes.
std::vector<std::uint64_t> draw_sizes(const ClassProfile& profile,
                                      std::uint64_t documents,
                                      util::Rng& rng);

/// Builds one class population from its profile slice of the workload.
/// Returns an empty population when the class has a zero share.
ClassPopulation build_population(const ClassProfile& profile,
                                 std::uint64_t class_documents,
                                 std::uint64_t class_requests, util::Rng& rng);

}  // namespace webcache::synth
