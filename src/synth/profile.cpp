#include "synth/profile.hpp"

#include <cmath>
#include <stdexcept>

namespace webcache::synth {

using trace::DocumentClass;

namespace {

constexpr double kKB = 1024.0;
constexpr double kMB = 1024.0 * 1024.0;

void check(bool ok, const std::string& what) {
  if (!ok) throw std::invalid_argument("WorkloadProfile: " + what);
}

}  // namespace

WorkloadProfile WorkloadProfile::scaled(double scale) const {
  check(scale > 0.0, "scale must be > 0");
  WorkloadProfile out = *this;
  out.distinct_documents = static_cast<std::uint64_t>(
      std::llround(static_cast<double>(distinct_documents) * scale));
  out.total_requests = static_cast<std::uint64_t>(
      std::llround(static_cast<double>(total_requests) * scale));
  return out;
}

void WorkloadProfile::validate() const {
  check(distinct_documents > 0, "distinct_documents must be > 0");
  check(total_requests > 0, "total_requests must be > 0");
  check(mean_interarrival_ms > 0.0, "mean_interarrival_ms must be > 0");

  double distinct_sum = 0.0;
  double request_sum = 0.0;
  for (const ClassProfile& c : classes) {
    distinct_sum += c.distinct_fraction;
    request_sum += c.request_fraction;
    const std::string cls(trace::to_string(c.doc_class));
    check(c.distinct_fraction >= 0.0, cls + ": negative distinct fraction");
    check(c.request_fraction >= 0.0, cls + ": negative request fraction");
    if (c.distinct_fraction == 0.0) continue;
    check(c.size_median_bytes > 0.0, cls + ": median size must be > 0");
    check(c.size_mean_bytes >= c.size_median_bytes,
          cls + ": mean size must be >= median");
    check(c.alpha >= 0.0 && c.alpha <= 2.0, cls + ": alpha out of range");
    check(c.beta >= 0.0 && c.beta <= 3.0, cls + ": beta out of range");
    check(c.correlation_probability >= 0.0 && c.correlation_probability < 1.0,
          cls + ": correlation probability out of [0, 1)");
    check(c.modification_probability >= 0.0 && c.modification_probability < 1.0,
          cls + ": modification probability out of [0, 1)");
    check(c.interrupt_probability >= 0.0 && c.interrupt_probability < 1.0,
          cls + ": interrupt probability out of [0, 1)");
    if (c.tail_fraction > 0.0) {
      check(c.tail_fraction < 1.0, cls + ": tail fraction out of [0, 1)");
      check(c.tail_lo_bytes > 0.0 && c.tail_hi_bytes > c.tail_lo_bytes,
            cls + ": invalid Pareto tail bounds");
      check(c.tail_shape > 0.0, cls + ": Pareto shape must be > 0");
    }
    // The exact-count generator gives every document at least one request.
    const double docs =
        static_cast<double>(distinct_documents) * c.distinct_fraction;
    const double reqs =
        static_cast<double>(total_requests) * c.request_fraction;
    check(reqs + 0.5 >= docs,
          cls + ": request fraction too small for its document fraction");
  }
  check(std::abs(distinct_sum - 1.0) < 1e-6, "distinct fractions must sum to 1");
  check(std::abs(request_sum - 1.0) < 1e-6, "request fractions must sum to 1");
}

// ---------------------------------------------------------------- DFN
//
// Calibration provenance (paper, Section 2):
//  * Table 1: 2,987,565 distinct documents; 6,718,210 total requests
//    (2.25 requests per distinct document).
//  * Prose: "HTML and image documents together account for about 95% of
//    documents seen and of requests received"; multimedia distinct share
//    0.23% and request share 0.14% (Section 4.4 comparison); HTML request
//    share 21.2%; requested-data shares: images 30.8%, application 34.8%
//    (Section 4.4), multimedia + application > 40% combined.
//  * Size columns of Table 4 were not recoverable from the available text;
//    means/medians below are set to the values reported for the same
//    classes in Arlitt, Friedrich & Jin (Perf. Eval. 39, 2000) and Mahanti,
//    Williamson & Eager (IEEE Network 14(3), 2000), adjusted so that the
//    *emergent* requested-data shares match the paper's percentages
//    (verified by bench/table2_dfn_breakdown).
//  * alpha/beta follow the prose ordering: alpha largest for images,
//    smallest for multimedia/application; beta inverse (images nearly
//    uncorrelated, multimedia/application highly correlated).
WorkloadProfile WorkloadProfile::DFN() {
  WorkloadProfile p;
  p.name = "DFN";
  p.distinct_documents = 2'987'565;
  p.total_requests = 6'718'210;
  p.mean_interarrival_ms = 386.0;  // ~30 days of trace at full scale

  ClassProfile images;
  images.doc_class = DocumentClass::kImage;
  images.distinct_fraction = 0.720;
  images.request_fraction = 0.725;
  images.size_mean_bytes = 7.8 * kKB;
  images.size_median_bytes = 3.0 * kKB;
  images.tail_fraction = 0.004;
  images.tail_shape = 1.3;
  images.tail_lo_bytes = 64 * kKB;
  images.tail_hi_bytes = 4 * kMB;
  images.alpha = 0.86;
  images.beta = 0.38;
  images.correlation_probability = 0.12;
  images.modification_probability = 0.001;
  images.interrupt_probability = 0.004;

  ClassProfile html;
  html.doc_class = DocumentClass::kHtml;
  html.distinct_fraction = 0.228;
  html.request_fraction = 0.212;
  html.size_mean_bytes = 14.0 * kKB;
  html.size_median_bytes = 5.5 * kKB;
  html.tail_fraction = 0.01;
  html.tail_shape = 1.3;
  html.tail_lo_bytes = 96 * kKB;
  html.tail_hi_bytes = 8 * kMB;
  html.alpha = 0.72;
  html.beta = 0.55;
  html.correlation_probability = 0.22;
  html.modification_probability = 0.012;
  html.interrupt_probability = 0.004;

  ClassProfile multimedia;
  multimedia.doc_class = DocumentClass::kMultiMedia;
  multimedia.distinct_fraction = 0.0023;
  multimedia.request_fraction = 0.0014;  // fewer requests than documents in
                                         // relative terms: mostly one-timers
  multimedia.size_mean_bytes = 750.0 * kKB;
  multimedia.size_median_bytes = 250.0 * kKB;
  multimedia.tail_fraction = 0.04;
  multimedia.tail_shape = 1.1;
  multimedia.tail_lo_bytes = 4 * kMB;
  multimedia.tail_hi_bytes = 64 * kMB;
  multimedia.alpha = 0.52;
  multimedia.beta = 0.92;
  multimedia.correlation_probability = 0.50;
  multimedia.modification_probability = 0.0005;
  multimedia.interrupt_probability = 0.18;

  ClassProfile application;
  application.doc_class = DocumentClass::kApplication;
  application.distinct_fraction = 0.0180;
  application.request_fraction = 0.0220;
  application.size_mean_bytes = 140.0 * kKB;
  application.size_median_bytes = 12.0 * kKB;  // large mean, small median
  application.tail_fraction = 0.02;
  application.tail_shape = 1.15;
  application.tail_lo_bytes = 2 * kMB;
  application.tail_hi_bytes = 48 * kMB;
  application.alpha = 0.58;
  application.beta = 0.85;
  application.correlation_probability = 0.55;
  application.modification_probability = 0.001;
  application.interrupt_probability = 0.12;

  ClassProfile other;
  other.doc_class = DocumentClass::kOther;
  other.distinct_fraction = 1.0 - (0.720 + 0.228 + 0.0023 + 0.0180);
  other.request_fraction = 1.0 - (0.725 + 0.212 + 0.0014 + 0.0220);
  other.size_mean_bytes = 35.0 * kKB;
  other.size_median_bytes = 7.0 * kKB;
  other.alpha = 0.68;
  other.beta = 0.55;
  other.correlation_probability = 0.20;
  other.modification_probability = 0.002;
  other.interrupt_probability = 0.01;

  p.of(DocumentClass::kImage) = images;
  p.of(DocumentClass::kHtml) = html;
  p.of(DocumentClass::kMultiMedia) = multimedia;
  p.of(DocumentClass::kApplication) = application;
  p.of(DocumentClass::kOther) = other;
  p.validate();
  return p;
}

// ---------------------------------------------------------------- RTP
//
// Calibration provenance (paper, Sections 2 and 4.4):
//  * Table 1: 2,227,339 distinct documents; ~4,144,900 total requests.
//  * "the RTP trace contains a significantly higher percentage of distinct
//    multi media documents and percentage of requests to multi media
//    documents (i.e., 0.41% versus 0.23% and 0.33% versus 0.14%)";
//    "a smaller percentage of requested data to image and application
//    documents than the DFN trace (i.e., 19.7% versus 30.8% and 21.9%
//    versus 34.8%)"; "a higher percentage of requests to HTML documents
//    (i.e., 44.2% versus 21.2%)".
//  * "GD* suffers from the small slope alpha of the popularity distribution
//    in the RTP trace" -> all alphas reduced relative to DFN.
//  * "The slopes beta ... for HTML, multi media, and application documents
//    are much bigger than the overall slope ..., which is dominated by the
//    slope of image documents" -> per-type betas raised for HTML/MM/app.
WorkloadProfile WorkloadProfile::RTP() {
  WorkloadProfile p;
  p.name = "RTP";
  p.distinct_documents = 2'227'339;
  p.total_requests = 4'144'900;
  p.mean_interarrival_ms = 584.0;

  ClassProfile images;
  images.doc_class = DocumentClass::kImage;
  images.distinct_fraction = 0.640;
  images.request_fraction = 0.478;
  images.size_mean_bytes = 5.9 * kKB;
  images.size_median_bytes = 2.8 * kKB;
  images.tail_fraction = 0.004;
  images.tail_shape = 1.3;
  images.tail_lo_bytes = 64 * kKB;
  images.tail_hi_bytes = 4 * kMB;
  images.alpha = 0.66;
  images.beta = 0.45;
  images.correlation_probability = 0.15;
  images.modification_probability = 0.001;
  images.interrupt_probability = 0.004;

  ClassProfile html;
  html.doc_class = DocumentClass::kHtml;
  html.distinct_fraction = 0.310;
  html.request_fraction = 0.442;
  html.size_mean_bytes = 9.6 * kKB;
  html.size_median_bytes = 4.5 * kKB;
  html.tail_fraction = 0.01;
  html.tail_shape = 1.3;
  html.tail_lo_bytes = 96 * kKB;
  html.tail_hi_bytes = 8 * kMB;
  html.alpha = 0.58;
  html.beta = 0.80;
  html.correlation_probability = 0.40;
  html.modification_probability = 0.015;
  html.interrupt_probability = 0.004;

  ClassProfile multimedia;
  multimedia.doc_class = DocumentClass::kMultiMedia;
  multimedia.distinct_fraction = 0.0041;
  multimedia.request_fraction = 0.0033;
  multimedia.size_mean_bytes = 700.0 * kKB;
  multimedia.size_median_bytes = 240.0 * kKB;
  multimedia.tail_fraction = 0.04;
  multimedia.tail_shape = 1.1;
  multimedia.tail_lo_bytes = 4 * kMB;
  multimedia.tail_hi_bytes = 64 * kMB;
  multimedia.alpha = 0.42;
  multimedia.beta = 1.10;
  multimedia.correlation_probability = 0.60;
  multimedia.modification_probability = 0.0005;
  multimedia.interrupt_probability = 0.20;

  ClassProfile application;
  application.doc_class = DocumentClass::kApplication;
  application.distinct_fraction = 0.0160;
  application.request_fraction = 0.0165;
  application.size_mean_bytes = 115.0 * kKB;
  application.size_median_bytes = 11.0 * kKB;
  application.tail_fraction = 0.02;
  application.tail_shape = 1.15;
  application.tail_lo_bytes = 2 * kMB;
  application.tail_hi_bytes = 48 * kMB;
  application.alpha = 0.46;
  application.beta = 1.00;
  application.correlation_probability = 0.55;
  application.modification_probability = 0.001;
  application.interrupt_probability = 0.12;

  ClassProfile other;
  other.doc_class = DocumentClass::kOther;
  other.distinct_fraction = 1.0 - (0.640 + 0.310 + 0.0041 + 0.0160);
  other.request_fraction = 1.0 - (0.478 + 0.442 + 0.0033 + 0.0165);
  other.size_mean_bytes = 15.2 * kKB;
  other.size_median_bytes = 4.5 * kKB;
  other.alpha = 0.55;
  other.beta = 0.60;
  other.correlation_probability = 0.25;
  other.modification_probability = 0.002;
  other.interrupt_probability = 0.01;

  p.of(DocumentClass::kImage) = images;
  p.of(DocumentClass::kHtml) = html;
  p.of(DocumentClass::kMultiMedia) = multimedia;
  p.of(DocumentClass::kApplication) = application;
  p.of(DocumentClass::kOther) = other;
  p.validate();
  return p;
}

}  // namespace webcache::synth
