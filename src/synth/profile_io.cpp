#include "synth/profile_io.hpp"

#include <cstdio>
#include <fstream>
#include <istream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace webcache::synth {

namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

/// Full-precision double rendering that round-trips through stod.
std::string render(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

trace::DocumentClass class_by_name(const std::string& name, int line) {
  for (const auto cls : trace::kAllDocumentClasses) {
    if (name == std::string(trace::to_string(cls))) return cls;
  }
  throw std::runtime_error("profile: unknown class section [" + name +
                           "] at line " + std::to_string(line));
}

using FieldSetter = void (*)(ClassProfile&, double);

const std::map<std::string, FieldSetter>& class_fields() {
  static const std::map<std::string, FieldSetter> fields = {
      {"distinct_fraction",
       [](ClassProfile& c, double v) { c.distinct_fraction = v; }},
      {"request_fraction",
       [](ClassProfile& c, double v) { c.request_fraction = v; }},
      {"size_mean_bytes",
       [](ClassProfile& c, double v) { c.size_mean_bytes = v; }},
      {"size_median_bytes",
       [](ClassProfile& c, double v) { c.size_median_bytes = v; }},
      {"tail_fraction", [](ClassProfile& c, double v) { c.tail_fraction = v; }},
      {"tail_shape", [](ClassProfile& c, double v) { c.tail_shape = v; }},
      {"tail_lo_bytes", [](ClassProfile& c, double v) { c.tail_lo_bytes = v; }},
      {"tail_hi_bytes", [](ClassProfile& c, double v) { c.tail_hi_bytes = v; }},
      {"alpha", [](ClassProfile& c, double v) { c.alpha = v; }},
      {"beta", [](ClassProfile& c, double v) { c.beta = v; }},
      {"correlation_probability",
       [](ClassProfile& c, double v) { c.correlation_probability = v; }},
      {"modification_probability",
       [](ClassProfile& c, double v) { c.modification_probability = v; }},
      {"interrupt_probability",
       [](ClassProfile& c, double v) { c.interrupt_probability = v; }},
  };
  return fields;
}

}  // namespace

std::string profile_to_text(const WorkloadProfile& profile) {
  std::ostringstream out;
  out << "# webcache workload profile\n";
  out << "name = " << profile.name << "\n";
  out << "distinct_documents = " << profile.distinct_documents << "\n";
  out << "total_requests = " << profile.total_requests << "\n";
  out << "mean_interarrival_ms = " << render(profile.mean_interarrival_ms)
      << "\n";
  for (const auto cls : trace::kAllDocumentClasses) {
    const ClassProfile& c = profile.of(cls);
    out << "\n[" << trace::to_string(cls) << "]\n";
    out << "distinct_fraction = " << render(c.distinct_fraction) << "\n";
    out << "request_fraction = " << render(c.request_fraction) << "\n";
    out << "size_mean_bytes = " << render(c.size_mean_bytes) << "\n";
    out << "size_median_bytes = " << render(c.size_median_bytes) << "\n";
    out << "tail_fraction = " << render(c.tail_fraction) << "\n";
    out << "tail_shape = " << render(c.tail_shape) << "\n";
    out << "tail_lo_bytes = " << render(c.tail_lo_bytes) << "\n";
    out << "tail_hi_bytes = " << render(c.tail_hi_bytes) << "\n";
    out << "alpha = " << render(c.alpha) << "\n";
    out << "beta = " << render(c.beta) << "\n";
    out << "correlation_probability = " << render(c.correlation_probability)
        << "\n";
    out << "modification_probability = " << render(c.modification_probability)
        << "\n";
    out << "interrupt_probability = " << render(c.interrupt_probability)
        << "\n";
  }
  return out.str();
}

void save_profile_file(const std::string& path,
                       const WorkloadProfile& profile) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("profile: cannot open " + path);
  out << profile_to_text(profile);
  if (!out) throw std::runtime_error("profile: write failed for " + path);
}

WorkloadProfile profile_from_text(std::istream& in) {
  WorkloadProfile profile;
  // Start from an all-zero profile with correct class tags.
  for (std::size_t c = 0; c < trace::kDocumentClassCount; ++c) {
    profile.classes[c] = ClassProfile{};
    profile.classes[c].doc_class = static_cast<trace::DocumentClass>(c);
  }

  ClassProfile* section = nullptr;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const auto comment = line.find('#');
    if (comment != std::string::npos) line = line.substr(0, comment);
    line = trim(line);
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']') {
        throw std::runtime_error("profile: unterminated section at line " +
                                 std::to_string(line_number));
      }
      const trace::DocumentClass cls =
          class_by_name(trim(line.substr(1, line.size() - 2)), line_number);
      section = &profile.of(cls);
      continue;
    }

    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("profile: expected key = value at line " +
                               std::to_string(line_number));
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));

    try {
      if (section == nullptr) {
        if (key == "name") {
          profile.name = value;
        } else if (key == "distinct_documents") {
          profile.distinct_documents = std::stoull(value);
        } else if (key == "total_requests") {
          profile.total_requests = std::stoull(value);
        } else if (key == "mean_interarrival_ms") {
          profile.mean_interarrival_ms = std::stod(value);
        } else {
          throw std::runtime_error("profile: unknown top-level key '" + key +
                                   "' at line " + std::to_string(line_number));
        }
      } else {
        const auto it = class_fields().find(key);
        if (it == class_fields().end()) {
          throw std::runtime_error("profile: unknown class key '" + key +
                                   "' at line " + std::to_string(line_number));
        }
        it->second(*section, std::stod(value));
      }
    } catch (const std::invalid_argument&) {
      throw std::runtime_error("profile: bad number '" + value +
                               "' at line " + std::to_string(line_number));
    } catch (const std::out_of_range&) {
      throw std::runtime_error("profile: number out of range at line " +
                               std::to_string(line_number));
    }
  }

  profile.validate();
  return profile;
}

WorkloadProfile load_profile_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("profile: cannot open " + path);
  return profile_from_text(in);
}

}  // namespace webcache::synth
