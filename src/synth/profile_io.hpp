// Workload-profile serialization: a small INI-style text format so users
// can define their own workloads for the CLI (and persist tweaked presets)
// without recompiling.
//
//   # comment
//   name = MyProxy
//   distinct_documents = 1000000
//   total_requests = 2250000
//   mean_interarrival_ms = 400
//
//   [Images]                 # one section per document class, paper names
//   distinct_fraction = 0.72
//   request_fraction = 0.725
//   size_mean_bytes = 7987
//   size_median_bytes = 3072
//   tail_fraction = 0.004    # optional Pareto tail (0 disables)
//   tail_shape = 1.3
//   tail_lo_bytes = 65536
//   tail_hi_bytes = 4194304
//   alpha = 0.86
//   beta = 0.38
//   correlation_probability = 0.12
//   modification_probability = 0.001
//   interrupt_probability = 0.004
//
// Unknown keys and malformed lines raise std::runtime_error with the line
// number. The emitted text round-trips bit-exactly through the parser.
#pragma once

#include <iosfwd>
#include <string>

#include "synth/profile.hpp"

namespace webcache::synth {

/// Serializes the profile in the format above.
std::string profile_to_text(const WorkloadProfile& profile);
void save_profile_file(const std::string& path,
                       const WorkloadProfile& profile);

/// Parses and validates. Missing class sections keep zero shares (the
/// validator then demands the remaining shares sum to one).
WorkloadProfile profile_from_text(std::istream& in);
WorkloadProfile load_profile_file(const std::string& path);

}  // namespace webcache::synth
