#include "trace/binary_trace.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace webcache::trace {

namespace {

constexpr std::size_t kRecordBytesV1 = 8 + 8 + 1 + 2 + 8 + 8;
constexpr std::size_t kRecordBytesV2 = 8 + 8 + 4 + 1 + 2 + 8 + 8;

class Checksum {
 public:
  void update(const char* data, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= static_cast<unsigned char>(data[i]);
      h_ *= 1099511628211ULL;
    }
  }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 1469598103934665603ULL;
};

template <typename T>
void encode(char*& p, T value) {
  std::memcpy(p, &value, sizeof(T));
  p += sizeof(T);
}

template <typename T>
void decode(const char*& p, T& value) {
  std::memcpy(&value, p, sizeof(T));
  p += sizeof(T);
}

}  // namespace

void write_binary_trace(std::ostream& out, const Trace& trace) {
  out.write(kTraceMagic, 4);
  const std::uint32_t version = kTraceVersion;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  const std::uint64_t count = trace.requests.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));

  Checksum checksum;
  char buf[kRecordBytesV2];
  for (const Request& r : trace.requests) {
    char* p = buf;
    encode(p, r.timestamp_ms);
    encode(p, r.document);
    encode(p, r.client);
    encode(p, static_cast<std::uint8_t>(r.doc_class));
    encode(p, r.status);
    encode(p, r.document_size);
    encode(p, r.transfer_size);
    out.write(buf, kRecordBytesV2);
    checksum.update(buf, kRecordBytesV2);
  }
  const std::uint64_t digest = checksum.value();
  out.write(reinterpret_cast<const char*>(&digest), sizeof(digest));
  if (!out) throw std::runtime_error("binary trace: write failed");
}

void write_binary_trace_file(const std::string& path, const Trace& trace) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("binary trace: cannot open " + path);
  write_binary_trace(out, trace);
}

Trace read_binary_trace(std::istream& in) {
  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kTraceMagic, 4) != 0) {
    throw std::runtime_error("binary trace: bad magic");
  }
  std::uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in || (version != 1 && version != 2)) {
    throw std::runtime_error("binary trace: unsupported version");
  }
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in) throw std::runtime_error("binary trace: truncated header");

  const std::size_t record_bytes =
      version == 1 ? kRecordBytesV1 : kRecordBytesV2;
  Trace trace;
  trace.requests.reserve(count);
  Checksum checksum;
  char buf[kRecordBytesV2];
  for (std::uint64_t i = 0; i < count; ++i) {
    in.read(buf, static_cast<std::streamsize>(record_bytes));
    if (!in) throw std::runtime_error("binary trace: truncated records");
    checksum.update(buf, record_bytes);
    const char* p = buf;
    Request r;
    std::uint8_t cls = 0;
    decode(p, r.timestamp_ms);
    decode(p, r.document);
    if (version >= 2) decode(p, r.client);
    decode(p, cls);
    decode(p, r.status);
    decode(p, r.document_size);
    decode(p, r.transfer_size);
    if (cls >= kDocumentClassCount) {
      throw std::runtime_error("binary trace: invalid document class");
    }
    r.doc_class = static_cast<DocumentClass>(cls);
    trace.requests.push_back(r);
  }
  std::uint64_t digest = 0;
  in.read(reinterpret_cast<char*>(&digest), sizeof(digest));
  if (!in || digest != checksum.value()) {
    throw std::runtime_error("binary trace: checksum mismatch");
  }
  return trace;
}

Trace read_binary_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("binary trace: cannot open " + path);
  return read_binary_trace(in);
}

// --------------------------------------------------- Trace aggregates

std::uint64_t Trace::requested_bytes() const {
  std::uint64_t total = 0;
  for (const Request& r : requests) total += r.transfer_size;
  return total;
}

std::uint64_t Trace::distinct_documents() const {
  std::unordered_set<DocumentId> seen;
  seen.reserve(requests.size());
  for (const Request& r : requests) seen.insert(r.document);
  return seen.size();
}

std::uint64_t Trace::overall_size_bytes() const {
  std::unordered_map<DocumentId, std::uint64_t> last_size;
  last_size.reserve(requests.size());
  for (const Request& r : requests) last_size[r.document] = r.document_size;
  std::uint64_t total = 0;
  for (const auto& [id, size] : last_size) total += size;
  return total;
}

}  // namespace webcache::trace
