#include "trace/binary_trace.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "trace/binary_trace_detail.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define WEBCACHE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace webcache::trace {

namespace detail {

[[noreturn]] void read_fail(const std::string& what, std::uint64_t offset) {
  throw std::runtime_error("binary trace: " + what + " (byte offset " +
                           std::to_string(offset) + ")");
}

[[noreturn]] void record_fail(const std::string& what, std::uint64_t index,
                              std::uint64_t count, std::size_t record_bytes) {
  read_fail(what + " at record " + std::to_string(index) + " of " +
                std::to_string(count),
            kHeaderBytes + index * record_bytes);
}

std::uint8_t decode_record(const char* buf, std::uint32_t version,
                           Request& r) {
  const char* p = buf;
  std::uint8_t cls = 0;
  decode(p, r.timestamp_ms);
  decode(p, r.document);
  if (version >= 2) decode(p, r.client);
  decode(p, cls);
  decode(p, r.status);
  decode(p, r.document_size);
  decode(p, r.transfer_size);
  return cls;
}

}  // namespace detail

namespace {

using detail::Checksum;
using detail::decode_record;
using detail::encode;
using detail::kHeaderBytes;
using detail::kRecordBytesV1;
using detail::kRecordBytesV2;
using detail::read_fail;
using detail::record_fail;

}  // namespace

void write_binary_trace(std::ostream& out, const Trace& trace) {
  out.write(kTraceMagic, 4);
  const std::uint32_t version = kTraceVersion;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  const std::uint64_t count = trace.requests.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));

  Checksum checksum;
  char buf[kRecordBytesV2];
  for (const Request& r : trace.requests) {
    char* p = buf;
    encode(p, r.timestamp_ms);
    encode(p, r.document);
    encode(p, r.client);
    encode(p, static_cast<std::uint8_t>(r.doc_class));
    encode(p, r.status);
    encode(p, r.document_size);
    encode(p, r.transfer_size);
    out.write(buf, kRecordBytesV2);
    checksum.update(buf, kRecordBytesV2);
  }
  const std::uint64_t digest = checksum.value();
  out.write(reinterpret_cast<const char*>(&digest), sizeof(digest));
  if (!out) throw std::runtime_error("binary trace: write failed");
}

void write_binary_trace_file(const std::string& path, const Trace& trace) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("binary trace: cannot open " + path);
  write_binary_trace(out, trace);
}

namespace {

// One-shot decoder over a complete in-memory image of the file. Emits the
// same diagnostics (message, record index, byte offset) as the streaming
// reader — every truncation point is computable from the image size — but
// touches each byte exactly once instead of issuing one read per record.
Trace decode_binary_trace(const char* data, std::size_t size) {
  if (size < 4 || std::memcmp(data, kTraceMagic, 4) != 0) {
    read_fail("bad magic", 0);
  }
  std::uint32_t version = 0;
  if (size >= 8) std::memcpy(&version, data + 4, sizeof(version));
  if (size < 8 || (version != 1 && version != 2)) {
    read_fail("unsupported version " + std::to_string(version), 4);
  }
  if (size < kHeaderBytes) read_fail("truncated header", 8);
  std::uint64_t count = 0;
  std::memcpy(&count, data + 8, sizeof(count));

  const std::size_t record_bytes =
      version == 1 ? kRecordBytesV1 : kRecordBytesV2;
  // Divide instead of multiplying so a corrupt (astronomical) count cannot
  // overflow — or drive a huge reserve() — before the truncation check.
  const std::uint64_t payload = size - kHeaderBytes;
  if (payload / record_bytes < count) {
    record_fail("truncated", payload / record_bytes, count, record_bytes);
  }
  const std::uint64_t trailer_offset = kHeaderBytes + count * record_bytes;
  if (size < trailer_offset + sizeof(std::uint64_t)) {
    read_fail("truncated checksum trailer", trailer_offset);
  }

  Trace trace;
  trace.requests.reserve(count);
  const char* p = data + kHeaderBytes;
  for (std::uint64_t i = 0; i < count; ++i, p += record_bytes) {
    Request r;
    const std::uint8_t cls = decode_record(p, version, r);
    if (cls >= kDocumentClassCount) {
      record_fail("invalid document class " + std::to_string(cls), i, count,
                  record_bytes);
    }
    r.doc_class = static_cast<DocumentClass>(cls);
    trace.requests.push_back(r);
  }

  Checksum checksum;
  checksum.update(data + kHeaderBytes, count * record_bytes);
  std::uint64_t digest = 0;
  std::memcpy(&digest, data + trailer_offset, sizeof(digest));
  if (digest != checksum.value()) {
    read_fail("checksum mismatch over " + std::to_string(count) + " records",
              trailer_offset);
  }
  return trace;
}

}  // namespace

Trace read_binary_trace(std::istream& in) {
  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kTraceMagic, 4) != 0) {
    read_fail("bad magic", 0);
  }
  std::uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in || (version != 1 && version != 2)) {
    read_fail("unsupported version " + std::to_string(version), 4);
  }
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in) read_fail("truncated header", 8);

  const std::size_t record_bytes =
      version == 1 ? kRecordBytesV1 : kRecordBytesV2;
  Trace trace;
  trace.requests.reserve(count);
  Checksum checksum;
  char buf[kRecordBytesV2];
  for (std::uint64_t i = 0; i < count; ++i) {
    in.read(buf, static_cast<std::streamsize>(record_bytes));
    if (!in) {
      record_fail("truncated", i, count, record_bytes);
    }
    checksum.update(buf, record_bytes);
    Request r;
    const std::uint8_t cls = decode_record(buf, version, r);
    if (cls >= kDocumentClassCount) {
      record_fail("invalid document class " + std::to_string(cls), i, count,
                  record_bytes);
    }
    r.doc_class = static_cast<DocumentClass>(cls);
    trace.requests.push_back(r);
  }
  const std::uint64_t trailer_offset = kHeaderBytes + count * record_bytes;
  std::uint64_t digest = 0;
  in.read(reinterpret_cast<char*>(&digest), sizeof(digest));
  if (!in) read_fail("truncated checksum trailer", trailer_offset);
  if (digest != checksum.value()) {
    read_fail("checksum mismatch over " + std::to_string(count) + " records",
              trailer_offset);
  }
  return trace;
}

namespace {

// Fallback file loader: one seek to size the buffer, one read() for the
// whole image. Still a single pass over the bytes.
Trace read_buffered_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("binary trace: cannot open " + path);
  const std::streamoff size = in.tellg();
  if (size < 0) throw std::runtime_error("binary trace: cannot open " + path);
  std::vector<char> data(static_cast<std::size_t>(size));
  in.seekg(0);
  if (!data.empty()) in.read(data.data(), size);
  if (!in) {
    throw std::runtime_error("binary trace: short read loading " + path);
  }
  return decode_binary_trace(data.data(), data.size());
}

// Permissive decode over a complete image. Shares the header validation
// (and its exceptions) with the strict decoder; past the header, damage is
// reported instead of thrown.
Trace decode_binary_trace_recovering(const char* data, std::size_t size,
                                     RecoveryReport& report) {
  if (size < 4 || std::memcmp(data, kTraceMagic, 4) != 0) {
    read_fail("bad magic", 0);
  }
  std::uint32_t version = 0;
  if (size >= 8) std::memcpy(&version, data + 4, sizeof(version));
  if (size < 8 || (version != 1 && version != 2)) {
    read_fail("unsupported version " + std::to_string(version), 4);
  }
  if (size < kHeaderBytes) read_fail("truncated header", 8);
  std::uint64_t count = 0;
  std::memcpy(&count, data + 8, sizeof(count));

  const std::size_t record_bytes =
      version == 1 ? kRecordBytesV1 : kRecordBytesV2;
  const std::uint64_t payload = size - kHeaderBytes;
  const std::uint64_t complete = std::min<std::uint64_t>(
      count, payload / record_bytes);  // records actually present
  if (complete < count) {
    report.truncated_records = count - complete;
    report.missing_trailer = true;
    if (report.first_errors.size() < RecoveryReport::kMaxErrors) {
      report.first_errors.push_back(
          "truncated at record " + std::to_string(complete) + " of " +
          std::to_string(count) + " (byte offset " +
          std::to_string(kHeaderBytes + complete * record_bytes) + ")");
    }
  }

  Trace trace;
  trace.requests.reserve(complete);
  Checksum checksum;
  const char* p = data + kHeaderBytes;
  for (std::uint64_t i = 0; i < complete; ++i, p += record_bytes) {
    checksum.update(p, record_bytes);
    Request r;
    const std::uint8_t cls = decode_record(p, version, r);
    if (cls >= kDocumentClassCount) {
      ++report.skipped;
      if (report.first_errors.size() < RecoveryReport::kMaxErrors) {
        report.first_errors.push_back(
            "skipped record " + std::to_string(i) + " of " +
            std::to_string(count) + ": invalid document class " +
            std::to_string(cls) + " (byte offset " +
            std::to_string(kHeaderBytes + i * record_bytes) + ")");
      }
      continue;
    }
    r.doc_class = static_cast<DocumentClass>(cls);
    trace.requests.push_back(r);
  }
  report.recovered = trace.requests.size();

  if (complete == count) {
    const std::uint64_t trailer_offset = kHeaderBytes + count * record_bytes;
    if (size < trailer_offset + sizeof(std::uint64_t)) {
      report.missing_trailer = true;
    } else {
      std::uint64_t digest = 0;
      std::memcpy(&digest, data + trailer_offset, sizeof(digest));
      if (digest != checksum.value()) report.checksum_mismatch = true;
    }
  }
  return trace;
}

}  // namespace

Trace read_binary_trace_file_recovering(const std::string& path,
                                        RecoveryReport& report) {
  report = RecoveryReport{};
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("binary trace: cannot open " + path);
  const std::streamoff size = in.tellg();
  if (size < 0) throw std::runtime_error("binary trace: cannot open " + path);
  std::vector<char> data(static_cast<std::size_t>(size));
  in.seekg(0);
  if (!data.empty()) in.read(data.data(), size);
  if (!in) {
    throw std::runtime_error("binary trace: short read loading " + path);
  }
  return decode_binary_trace_recovering(data.data(), data.size(), report);
}

Trace read_binary_trace_file(const std::string& path) {
#ifdef WEBCACHE_HAVE_MMAP
  // mmap the file and decode straight out of the page cache: no copy into a
  // userspace buffer and no per-record read() calls. Any mapping failure
  // falls back to the buffered single-read loader; both decode through
  // decode_binary_trace, so diagnostics are identical.
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw std::runtime_error("binary trace: cannot open " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode) || st.st_size <= 0) {
    ::close(fd);
    return read_buffered_trace_file(path);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (map == MAP_FAILED) return read_buffered_trace_file(path);
#ifdef POSIX_MADV_SEQUENTIAL
  ::posix_madvise(map, size, POSIX_MADV_SEQUENTIAL);
#endif
  try {
    Trace trace = decode_binary_trace(static_cast<const char*>(map), size);
    ::munmap(map, size);
    return trace;
  } catch (...) {
    ::munmap(map, size);
    throw;
  }
#else
  return read_buffered_trace_file(path);
#endif
}

// --------------------------------------------------- Trace aggregates

std::uint64_t Trace::requested_bytes() const {
  std::uint64_t total = 0;
  for (const Request& r : requests) total += r.transfer_size;
  return total;
}

std::uint64_t Trace::distinct_documents() const {
  std::unordered_set<DocumentId> seen;
  seen.reserve(requests.size());
  for (const Request& r : requests) seen.insert(r.document);
  return seen.size();
}

std::uint64_t Trace::overall_size_bytes() const {
  std::unordered_map<DocumentId, std::uint64_t> last_size;
  last_size.reserve(requests.size());
  for (const Request& r : requests) last_size[r.document] = r.document_size;
  std::uint64_t total = 0;
  for (const auto& [id, size] : last_size) total += size;
  return total;
}

}  // namespace webcache::trace
