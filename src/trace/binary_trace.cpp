#include "trace/binary_trace.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace webcache::trace {

namespace {

constexpr std::size_t kRecordBytesV1 = 8 + 8 + 1 + 2 + 8 + 8;
constexpr std::size_t kRecordBytesV2 = 8 + 8 + 4 + 1 + 2 + 8 + 8;

class Checksum {
 public:
  void update(const char* data, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= static_cast<unsigned char>(data[i]);
      h_ *= 1099511628211ULL;
    }
  }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 1469598103934665603ULL;
};

template <typename T>
void encode(char*& p, T value) {
  std::memcpy(p, &value, sizeof(T));
  p += sizeof(T);
}

template <typename T>
void decode(const char*& p, T& value) {
  std::memcpy(&value, p, sizeof(T));
  p += sizeof(T);
}

}  // namespace

void write_binary_trace(std::ostream& out, const Trace& trace) {
  out.write(kTraceMagic, 4);
  const std::uint32_t version = kTraceVersion;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  const std::uint64_t count = trace.requests.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));

  Checksum checksum;
  char buf[kRecordBytesV2];
  for (const Request& r : trace.requests) {
    char* p = buf;
    encode(p, r.timestamp_ms);
    encode(p, r.document);
    encode(p, r.client);
    encode(p, static_cast<std::uint8_t>(r.doc_class));
    encode(p, r.status);
    encode(p, r.document_size);
    encode(p, r.transfer_size);
    out.write(buf, kRecordBytesV2);
    checksum.update(buf, kRecordBytesV2);
  }
  const std::uint64_t digest = checksum.value();
  out.write(reinterpret_cast<const char*>(&digest), sizeof(digest));
  if (!out) throw std::runtime_error("binary trace: write failed");
}

void write_binary_trace_file(const std::string& path, const Trace& trace) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("binary trace: cannot open " + path);
  write_binary_trace(out, trace);
}

namespace {

// Header layout: 4 magic + 4 version + 8 count.
constexpr std::uint64_t kHeaderBytes = 16;

[[noreturn]] void read_fail(const std::string& what, std::uint64_t offset) {
  throw std::runtime_error("binary trace: " + what + " (byte offset " +
                           std::to_string(offset) + ")");
}

[[noreturn]] void record_fail(const std::string& what, std::uint64_t index,
                              std::uint64_t count, std::size_t record_bytes) {
  // The offset names where the failing record starts, so a corrupted file
  // can be inspected with a hex dump directly.
  read_fail(what + " at record " + std::to_string(index) + " of " +
                std::to_string(count),
            kHeaderBytes + index * record_bytes);
}

}  // namespace

Trace read_binary_trace(std::istream& in) {
  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kTraceMagic, 4) != 0) {
    read_fail("bad magic", 0);
  }
  std::uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in || (version != 1 && version != 2)) {
    read_fail("unsupported version " + std::to_string(version), 4);
  }
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in) read_fail("truncated header", 8);

  const std::size_t record_bytes =
      version == 1 ? kRecordBytesV1 : kRecordBytesV2;
  Trace trace;
  trace.requests.reserve(count);
  Checksum checksum;
  char buf[kRecordBytesV2];
  for (std::uint64_t i = 0; i < count; ++i) {
    in.read(buf, static_cast<std::streamsize>(record_bytes));
    if (!in) {
      record_fail("truncated", i, count, record_bytes);
    }
    checksum.update(buf, record_bytes);
    const char* p = buf;
    Request r;
    std::uint8_t cls = 0;
    decode(p, r.timestamp_ms);
    decode(p, r.document);
    if (version >= 2) decode(p, r.client);
    decode(p, cls);
    decode(p, r.status);
    decode(p, r.document_size);
    decode(p, r.transfer_size);
    if (cls >= kDocumentClassCount) {
      record_fail("invalid document class " + std::to_string(cls), i, count,
                  record_bytes);
    }
    r.doc_class = static_cast<DocumentClass>(cls);
    trace.requests.push_back(r);
  }
  const std::uint64_t trailer_offset = kHeaderBytes + count * record_bytes;
  std::uint64_t digest = 0;
  in.read(reinterpret_cast<char*>(&digest), sizeof(digest));
  if (!in) read_fail("truncated checksum trailer", trailer_offset);
  if (digest != checksum.value()) {
    read_fail("checksum mismatch over " + std::to_string(count) + " records",
              trailer_offset);
  }
  return trace;
}

Trace read_binary_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("binary trace: cannot open " + path);
  return read_binary_trace(in);
}

// --------------------------------------------------- Trace aggregates

std::uint64_t Trace::requested_bytes() const {
  std::uint64_t total = 0;
  for (const Request& r : requests) total += r.transfer_size;
  return total;
}

std::uint64_t Trace::distinct_documents() const {
  std::unordered_set<DocumentId> seen;
  seen.reserve(requests.size());
  for (const Request& r : requests) seen.insert(r.document);
  return seen.size();
}

std::uint64_t Trace::overall_size_bytes() const {
  std::unordered_map<DocumentId, std::uint64_t> last_size;
  last_size.reserve(requests.size());
  for (const Request& r : requests) last_size[r.document] = r.document_size;
  std::uint64_t total = 0;
  for (const auto& [id, size] : last_size) total += size;
  return total;
}

}  // namespace webcache::trace
