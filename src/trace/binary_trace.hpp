// Compact binary trace format.
//
// Preprocessing a multi-GB access log is much slower than simulating it, so
// (like every serious proxy-cache study) we preprocess once and persist the
// request stream in a compact binary file that replays at memory speed.
//
// Layout (little-endian):
//   header:  magic "WCT1" | u32 version | u64 record count
//   records (v2): u64 timestamp_ms | u64 document | u32 client | u8 class |
//                 u16 status | u64 document_size | u64 transfer_size
//   records (v1): as v2 without the client field (read-compatible;
//                 client = 0)
//   trailer: u64 FNV-1a checksum over all record bytes
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/request.hpp"

namespace webcache::trace {

inline constexpr char kTraceMagic[4] = {'W', 'C', 'T', '1'};
/// Current writer version. The reader also accepts version-1 files (written
/// before the client field existed).
inline constexpr std::uint32_t kTraceVersion = 2;

/// Writes a trace; throws std::runtime_error on I/O failure.
void write_binary_trace(std::ostream& out, const Trace& trace);
void write_binary_trace_file(const std::string& path, const Trace& trace);

/// Reads a trace; throws std::runtime_error on corrupt or truncated input
/// (bad magic, version mismatch, checksum mismatch, short read). The
/// diagnostics name the failing record index and byte offset. The stream
/// overload decodes record by record (works on any istream, including
/// non-seekable ones); the file overload mmaps the file (falling back to a
/// single buffered read) and decodes the whole image in one pass — same
/// results, same diagnostics, much faster loads.
Trace read_binary_trace(std::istream& in);
Trace read_binary_trace_file(const std::string& path);

/// Damage summary produced by the permissive (--recover) loader.
struct RecoveryReport {
  /// Records decoded and kept.
  std::uint64_t recovered = 0;
  /// Records present in the file but dropped (invalid document class).
  std::uint64_t skipped = 0;
  /// Records the header promised but the file no longer holds (truncation).
  std::uint64_t truncated_records = 0;
  /// Checksum trailer disagreed with the record bytes actually read.
  bool checksum_mismatch = false;
  /// File ends before the checksum trailer (implies truncation damage).
  bool missing_trailer = false;
  /// Per-record diagnostics (record index + byte offset), capped at
  /// kMaxErrors so a thoroughly shredded file cannot flood memory.
  std::vector<std::string> first_errors;
  static constexpr std::size_t kMaxErrors = 8;

  /// True when the file was pristine (the strict loader would also accept
  /// it).
  bool clean() const {
    return skipped == 0 && truncated_records == 0 && !checksum_mismatch &&
           !missing_trailer;
  }
};

/// Permissive loader for damaged WCT1 files: undecodable records are
/// skipped, a truncated tail is dropped, and a checksum mismatch is
/// reported instead of thrown — every incident lands in `report` with the
/// record index and byte offset. The header (magic, version, count field)
/// must still be intact; without it there is no format to recover, and the
/// loader throws exactly like the strict one. A clean file yields the same
/// Trace as read_binary_trace_file.
Trace read_binary_trace_file_recovering(const std::string& path,
                                        RecoveryReport& report);

}  // namespace webcache::trace
