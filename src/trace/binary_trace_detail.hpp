// Shared decode internals of the WCT1 binary trace format.
//
// The materialized loaders (`read_binary_trace`, `read_binary_trace_file`)
// and the chunked `StreamingTraceReader` must agree byte-for-byte on record
// layout, checksum accumulation and — just as importantly — on diagnostics:
// a truncated final chunk has to name the same record index and byte offset
// no matter which loader hit it. Keeping the decoder and the failure
// helpers here is what makes that a structural guarantee instead of three
// copies drifting apart.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

#include "trace/request.hpp"

namespace webcache::trace::detail {

inline constexpr std::size_t kRecordBytesV1 = 8 + 8 + 1 + 2 + 8 + 8;
inline constexpr std::size_t kRecordBytesV2 = 8 + 8 + 4 + 1 + 2 + 8 + 8;

// Header layout: 4 magic + 4 version + 8 count.
inline constexpr std::uint64_t kHeaderBytes = 16;

inline constexpr std::size_t record_bytes_for(std::uint32_t version) {
  return version == 1 ? kRecordBytesV1 : kRecordBytesV2;
}

/// FNV-1a over the record payload; the trailer stores the digest.
class Checksum {
 public:
  void update(const char* data, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= static_cast<unsigned char>(data[i]);
      h_ *= 1099511628211ULL;
    }
  }
  std::uint64_t value() const { return h_; }
  void reset() { h_ = 1469598103934665603ULL; }

 private:
  std::uint64_t h_ = 1469598103934665603ULL;
};

template <typename T>
void encode(char*& p, T value) {
  std::memcpy(p, &value, sizeof(T));
  p += sizeof(T);
}

template <typename T>
void decode(const char*& p, T& value) {
  std::memcpy(&value, p, sizeof(T));
  p += sizeof(T);
}

[[noreturn]] void read_fail(const std::string& what, std::uint64_t offset);

/// Names the failing record index and the byte offset where that record
/// starts, so a corrupted file can be inspected with a hex dump directly.
[[noreturn]] void record_fail(const std::string& what, std::uint64_t index,
                              std::uint64_t count, std::size_t record_bytes);

/// Decodes one record's fields (shared between every loader); returns the
/// raw class byte for the caller to validate.
std::uint8_t decode_record(const char* buf, std::uint32_t version, Request& r);

}  // namespace webcache::trace::detail
