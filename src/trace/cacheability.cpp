#include "trace/cacheability.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <string>

namespace webcache::trace {

bool is_cacheable_status(std::uint16_t status) {
  // Exactly the set listed in Section 2 of the paper.
  static constexpr std::array<std::uint16_t, 7> kCacheable = {
      200, 203, 206, 300, 301, 302, 304};
  return std::find(kCacheable.begin(), kCacheable.end(), status) !=
         kCacheable.end();
}

bool is_dynamic_url(std::string_view url) {
  if (url.find('?') != std::string_view::npos) return true;
  if (url.find(';') != std::string_view::npos) return true;
  // Case-insensitive "cgi" substring (covers /cgi-bin/, .cgi, ...).
  if (url.size() >= 3) {
    for (std::size_t i = 0; i + 3 <= url.size(); ++i) {
      if (std::tolower(static_cast<unsigned char>(url[i])) == 'c' &&
          std::tolower(static_cast<unsigned char>(url[i + 1])) == 'g' &&
          std::tolower(static_cast<unsigned char>(url[i + 2])) == 'i') {
        return true;
      }
    }
  }
  return false;
}

bool is_cacheable_method(std::string_view method) {
  std::string upper(method);
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return upper == "GET";
}

bool is_cacheable(std::string_view method, std::string_view url,
                  std::uint16_t status) {
  return is_cacheable_method(method) && !is_dynamic_url(url) &&
         is_cacheable_status(status);
}

}  // namespace webcache::trace
