// Preprocessing filters (paper, Section 2).
//
// "Preprocessing the traces, we exclude uncacheable documents by commonly
//  known heuristics, e.g. by looking for string cgi or ? in the requested
//  URL. From the remaining requests, we consider responses with HTTP status
//  codes 200 (OK), 203 (Non Authoritative Information), 206 (Partial
//  Content), 300 (Multiple Choices), 301 (Moved Permanently), 302 (Found),
//  and 304 (Not Modified) as cacheable."
#pragma once

#include <cstdint>
#include <string_view>

namespace webcache::trace {

/// True for the HTTP status codes the paper treats as cacheable.
bool is_cacheable_status(std::uint16_t status);

/// True when the URL matches a dynamic-content heuristic ("cgi" substring,
/// '?' query marker, or a ';' path parameter) and must be excluded.
bool is_dynamic_url(std::string_view url);

/// True for request methods whose responses are cacheable (GET only; HEAD
/// transfers no body and POST/PUT/... are uncacheable).
bool is_cacheable_method(std::string_view method);

/// Combined predicate used by the preprocessing pipeline.
bool is_cacheable(std::string_view method, std::string_view url,
                  std::uint16_t status);

}  // namespace webcache::trace
