#include "trace/dense_trace.hpp"

#include <unordered_map>
#include <utility>

namespace webcache::trace {

namespace {

DenseTrace densify_in_place(Trace&& source) {
  DenseTrace dense;
  std::unordered_map<DocumentId, DocumentId> remap;
  remap.reserve(source.requests.size() / 4 + 16);
  for (Request& r : source.requests) {
    const auto [it, inserted] =
        remap.emplace(r.document, dense.original_ids.size());
    if (inserted) dense.original_ids.push_back(r.document);
    r.document = it->second;
  }
  dense.trace = std::move(source);
  return dense;
}

}  // namespace

DenseTrace densify(const Trace& source) {
  Trace copy = source;
  return densify_in_place(std::move(copy));
}

DenseTrace densify(Trace&& source) {
  return densify_in_place(std::move(source));
}

}  // namespace webcache::trace
