// Dense document-id remapping.
//
// Real traces identify documents by 64-bit URL hashes, so every per-request
// container in the simulator (object table, LRU index, heap slot index,
// last-size map) has to be an unordered_map keyed by a sparse id. Replaying
// a multi-million-request trace then pays a hash probe — and usually a
// cache miss — per request per container.
//
// densify() makes one pass over a Trace and renumbers documents into the
// compact range [0, distinct_documents), in order of first appearance, while
// keeping a table mapping each dense id back to the original DocumentId.
// Every downstream structure can then be a flat array indexed by document
// id. Remapping changes nothing observable: document identity is only ever
// compared for equality, and policies break ties by insertion sequence, so
// simulation results are bit-identical to the sparse-id path (covered by
// tests/sim/dense_equivalence_test.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "trace/request.hpp"

namespace webcache::trace {

/// A Trace whose Request::document fields have been renumbered to the dense
/// range [0, document_count()), plus the table to translate back.
struct DenseTrace {
  /// The remapped trace; safe to pass anywhere a Trace is accepted. The
  /// dense simulate()/run_sweep() overloads additionally exploit the bound.
  Trace trace;

  /// original_ids[dense_id] = the DocumentId the source trace used.
  std::vector<DocumentId> original_ids;

  /// Number of distinct documents == the exclusive upper bound on every
  /// Request::document in `trace`.
  std::uint64_t document_count() const { return original_ids.size(); }

  DocumentId original_id(DocumentId dense_id) const {
    return original_ids[dense_id];
  }
};

/// One-pass remap (first appearance order). The copying overload leaves the
/// source untouched; the rvalue overload renumbers in place.
DenseTrace densify(const Trace& source);
DenseTrace densify(Trace&& source);

}  // namespace webcache::trace
