#include "trace/document_class.hpp"

#include <algorithm>
#include <cctype>
#include <unordered_map>
#include <unordered_set>

namespace webcache::trace {

namespace {

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

// Extensions per the paper's examples, extended with the common companions
// found in the traces of Arlitt et al. and Mahanti et al.
const std::unordered_map<std::string, DocumentClass>& extension_map() {
  static const auto* map = new std::unordered_map<std::string, DocumentClass>{
      // Images.
      {"gif", DocumentClass::kImage},
      {"jpg", DocumentClass::kImage},
      {"jpeg", DocumentClass::kImage},
      {"jpe", DocumentClass::kImage},
      {"png", DocumentClass::kImage},
      {"bmp", DocumentClass::kImage},
      {"ico", DocumentClass::kImage},
      {"tif", DocumentClass::kImage},
      {"tiff", DocumentClass::kImage},
      {"xbm", DocumentClass::kImage},
      // HTML / text (the paper folds plain text into the HTML class).
      {"html", DocumentClass::kHtml},
      {"htm", DocumentClass::kHtml},
      {"shtml", DocumentClass::kHtml},
      {"txt", DocumentClass::kHtml},
      {"text", DocumentClass::kHtml},
      {"tex", DocumentClass::kHtml},
      {"java", DocumentClass::kHtml},
      {"c", DocumentClass::kHtml},
      {"h", DocumentClass::kHtml},
      {"css", DocumentClass::kHtml},
      {"xml", DocumentClass::kHtml},
      // Multi media (audio + video).
      {"mp3", DocumentClass::kMultiMedia},
      {"mp2", DocumentClass::kMultiMedia},
      {"mpg", DocumentClass::kMultiMedia},
      {"mpeg", DocumentClass::kMultiMedia},
      {"mpe", DocumentClass::kMultiMedia},
      {"mov", DocumentClass::kMultiMedia},
      {"qt", DocumentClass::kMultiMedia},
      {"avi", DocumentClass::kMultiMedia},
      {"ram", DocumentClass::kMultiMedia},
      {"ra", DocumentClass::kMultiMedia},
      {"rm", DocumentClass::kMultiMedia},
      {"wav", DocumentClass::kMultiMedia},
      {"au", DocumentClass::kMultiMedia},
      {"mid", DocumentClass::kMultiMedia},
      {"asf", DocumentClass::kMultiMedia},
      {"wmv", DocumentClass::kMultiMedia},
      // Application documents.
      {"ps", DocumentClass::kApplication},
      {"eps", DocumentClass::kApplication},
      {"pdf", DocumentClass::kApplication},
      {"zip", DocumentClass::kApplication},
      {"gz", DocumentClass::kApplication},
      {"tgz", DocumentClass::kApplication},
      {"tar", DocumentClass::kApplication},
      {"exe", DocumentClass::kApplication},
      {"doc", DocumentClass::kApplication},
      {"xls", DocumentClass::kApplication},
      {"ppt", DocumentClass::kApplication},
      {"rpm", DocumentClass::kApplication},
      {"deb", DocumentClass::kApplication},
      {"dvi", DocumentClass::kApplication},
      {"hqx", DocumentClass::kApplication},
      {"sit", DocumentClass::kApplication},
      {"jar", DocumentClass::kApplication},
      {"swf", DocumentClass::kApplication},
  };
  return *map;
}

}  // namespace

std::string_view to_string(DocumentClass c) {
  switch (c) {
    case DocumentClass::kImage:
      return "Images";
    case DocumentClass::kHtml:
      return "HTML";
    case DocumentClass::kMultiMedia:
      return "Multi Media";
    case DocumentClass::kApplication:
      return "Application";
    case DocumentClass::kOther:
      return "Other";
  }
  return "Unknown";
}

DocumentClass classify_content_type(std::string_view content_type) {
  if (content_type.empty()) return DocumentClass::kOther;
  const std::string lower = to_lower(content_type);
  // Strip parameters: "text/html; charset=..." -> "text/html".
  const std::string mime = lower.substr(0, lower.find(';'));

  auto has_prefix = [&](std::string_view p) { return mime.rfind(p, 0) == 0; };

  if (has_prefix("image/")) return DocumentClass::kImage;
  if (has_prefix("text/")) return DocumentClass::kHtml;
  if (has_prefix("audio/") || has_prefix("video/")) {
    return DocumentClass::kMultiMedia;
  }
  if (has_prefix("application/")) {
    // A few application/* types are really multimedia streams or markup.
    if (mime == "application/x-shockwave-flash") {
      return DocumentClass::kApplication;
    }
    if (mime == "application/xhtml+xml" || mime == "application/xml") {
      return DocumentClass::kHtml;
    }
    if (mime == "application/ogg" || mime == "application/vnd.rn-realmedia") {
      return DocumentClass::kMultiMedia;
    }
    return DocumentClass::kApplication;
  }
  return DocumentClass::kOther;
}

DocumentClass classify_extension(std::string_view url) {
  // Cut query string / fragment.
  const auto cut = url.find_first_of("?#");
  std::string_view path = url.substr(0, cut);
  // Isolate the last path segment.
  const auto slash = path.find_last_of('/');
  if (slash != std::string_view::npos) path = path.substr(slash + 1);
  const auto dot = path.find_last_of('.');
  if (dot == std::string_view::npos || dot + 1 >= path.size()) {
    return DocumentClass::kOther;
  }
  const std::string ext = to_lower(path.substr(dot + 1));
  const auto& map = extension_map();
  const auto it = map.find(ext);
  return it == map.end() ? DocumentClass::kOther : it->second;
}

DocumentClass classify(std::string_view content_type, std::string_view url) {
  const DocumentClass by_type = classify_content_type(content_type);
  if (by_type != DocumentClass::kOther) return by_type;
  return classify_extension(url);
}

}  // namespace webcache::trace
