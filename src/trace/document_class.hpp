// Document-type classification (paper, Section 2).
//
// "We break down the request stream of documents according to their content
//  type as specified in the HTTP header. If no content type entry is
//  specified, we guess the document type using the file extension. We
//  distinguish between four main classes of web documents: Text documents
//  (e.g., .html, .htm), image documents (e.g., .gif, .jpeg), multi media
//  documents (e.g., .mp3, .ram, .mpeg, .mov), and application documents
//  (e.g., .ps, .pdf, .zip). Text files (e.g. .tex, .java) are added to the
//  class of HTML documents."
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace webcache::trace {

enum class DocumentClass : std::uint8_t {
  kImage = 0,
  kHtml = 1,
  kMultiMedia = 2,
  kApplication = 3,
  kOther = 4,
};

inline constexpr std::size_t kDocumentClassCount = 5;

inline constexpr std::array<DocumentClass, kDocumentClassCount>
    kAllDocumentClasses = {DocumentClass::kImage, DocumentClass::kHtml,
                           DocumentClass::kMultiMedia,
                           DocumentClass::kApplication, DocumentClass::kOther};

/// Display name matching the paper's table headings.
std::string_view to_string(DocumentClass c);

/// Classifies from an HTTP Content-Type header value (e.g. "image/gif",
/// "text/html; charset=iso-8859-1"). Returns kOther when unrecognized and
/// for the empty string.
DocumentClass classify_content_type(std::string_view content_type);

/// Classifies from a URL's file extension (the paper's fallback when no
/// content type is recorded). The argument may be a full URL; query strings
/// and fragments are ignored.
DocumentClass classify_extension(std::string_view url);

/// Combined classifier: content type if informative, extension otherwise.
DocumentClass classify(std::string_view content_type, std::string_view url);

}  // namespace webcache::trace
