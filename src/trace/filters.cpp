#include "trace/filters.hpp"

#include <algorithm>
#include <stdexcept>

namespace webcache::trace {

Trace filter_requests(const Trace& trace,
                      const std::function<bool(const Request&)>& keep) {
  Trace out;
  out.requests.reserve(trace.requests.size());
  for (const Request& r : trace.requests) {
    if (keep(r)) out.requests.push_back(r);
  }
  return out;
}

Trace filter_by_class(const Trace& trace, DocumentClass doc_class) {
  return filter_requests(
      trace, [doc_class](const Request& r) { return r.doc_class == doc_class; });
}

Trace sample_every_nth(const Trace& trace, std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("sample_every_nth: n must be >= 1");
  Trace out;
  out.requests.reserve(trace.requests.size() / n + 1);
  for (std::size_t i = 0; i < trace.requests.size(); i += n) {
    out.requests.push_back(trace.requests[i]);
  }
  return out;
}

Trace truncate(const Trace& trace, std::uint64_t count) {
  Trace out;
  const std::size_t n =
      std::min<std::size_t>(trace.requests.size(), count);
  out.requests.assign(trace.requests.begin(),
                      trace.requests.begin() + static_cast<std::ptrdiff_t>(n));
  return out;
}

Trace merge_traces(const Trace& a, const Trace& b) {
  // Remap b's document ids by flipping the top bit (bijective, so b's
  // internal re-reference structure is preserved exactly). Generator-built
  // ids never have the top bit set, so synthetic-trace merges are
  // guaranteed disjoint; for hashed real-trace ids the collision odds are
  // the usual negligible 64-bit birthday bound.
  constexpr DocumentId kMask = 0x8000000000000000ULL;

  Trace out;
  out.requests.reserve(a.requests.size() + b.requests.size());
  std::size_t ia = 0, ib = 0;
  while (ia < a.requests.size() || ib < b.requests.size()) {
    const bool take_a =
        ib >= b.requests.size() ||
        (ia < a.requests.size() &&
         a.requests[ia].timestamp_ms <= b.requests[ib].timestamp_ms);
    if (take_a) {
      out.requests.push_back(a.requests[ia++]);
    } else {
      Request r = b.requests[ib++];
      r.document ^= kMask;
      out.requests.push_back(r);
    }
  }
  return out;
}

}  // namespace webcache::trace
