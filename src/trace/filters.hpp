// Trace transforms: slicing, filtering and mixing request streams.
//
// Useful both as library utilities (study one document class in isolation,
// subsample an oversized log, splice workloads to model a proxy serving
// two user populations) and for constructing controlled experiment inputs.
// Every transform returns a new Trace and leaves its input untouched.
#pragma once

#include <cstdint>
#include <functional>

#include "trace/request.hpp"

namespace webcache::trace {

/// Keeps requests matching the predicate.
Trace filter_requests(const Trace& trace,
                      const std::function<bool(const Request&)>& keep);

/// Keeps only requests to the given document class.
Trace filter_by_class(const Trace& trace, DocumentClass doc_class);

/// Keeps every n-th request (n >= 1), starting with the first. Note:
/// systematic sampling thins re-reference chains, so locality statistics of
/// the sample differ from the original — it bounds memory, not bias.
Trace sample_every_nth(const Trace& trace, std::uint64_t n);

/// The first `count` requests (or all of them).
Trace truncate(const Trace& trace, std::uint64_t count);

/// Merges two traces by timestamp (stable: ties keep `a` first), remapping
/// document ids of `b` so the two document populations stay disjoint —
/// modeling two independent user communities behind one proxy.
Trace merge_traces(const Trace& a, const Trace& b);

}  // namespace webcache::trace
