#include "trace/online_densify.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "util/state_io.hpp"

namespace webcache::trace {

namespace {

// Pending mappings are sorted into a run once this many accumulate. Small
// enough that the flush sort stays cache-resident, large enough that run
// counts grow slowly.
constexpr std::size_t kFlushThreshold = 4096;

}  // namespace

OnlineDensifier::OnlineDensifier(Options options) : options_(options) {
  if (options_.hot_capacity == 0) options_.hot_capacity = 1;
  const std::size_t reserve =
      std::min<std::size_t>(options_.hot_capacity, 1 << 20);
  slab_.reserve(reserve);
  hot_map_.reserve(reserve);
}

DocumentId OnlineDensifier::densify(DocumentId original) {
  if (auto it = hot_map_.find(original); it != hot_map_.end()) {
    touch(it->second);
    return slab_[it->second].dense;
  }
  DocumentId dense = 0;
  if (cold_lookup(original, dense)) {
    ++cold_hits_;
    insert_hot(original, dense);  // promote: likely to be referenced again
    return dense;
  }
  dense = next_dense_++;
  insert_hot(original, dense);
  return dense;
}

void OnlineDensifier::touch(std::uint32_t idx) {
  if (lru_head_ == idx) return;
  HotEntry& e = slab_[idx];
  // Unlink.
  if (e.prev != kNil) slab_[e.prev].next = e.next;
  if (e.next != kNil) slab_[e.next].prev = e.prev;
  if (lru_tail_ == idx) lru_tail_ = e.prev;
  // Relink at head.
  e.prev = kNil;
  e.next = lru_head_;
  if (lru_head_ != kNil) slab_[lru_head_].prev = idx;
  lru_head_ = idx;
  if (lru_tail_ == kNil) lru_tail_ = idx;
}

void OnlineDensifier::insert_hot(DocumentId original, DocumentId dense) {
  if (hot_map_.size() >= options_.hot_capacity) {
    // Evict the least recently used mapping to the cold tier.
    const std::uint32_t victim = lru_tail_;
    assert(victim != kNil);
    HotEntry& v = slab_[victim];
    pending_.emplace(v.original, v.dense);
    ++spills_;
    if (pending_.size() >= kFlushThreshold) flush_pending();
    hot_map_.erase(v.original);
    lru_tail_ = v.prev;
    if (lru_tail_ != kNil) slab_[lru_tail_].next = kNil;
    if (lru_head_ == victim) lru_head_ = kNil;
    free_.push_back(victim);
  }
  std::uint32_t idx;
  if (!free_.empty()) {
    idx = free_.back();
    free_.pop_back();
  } else {
    idx = static_cast<std::uint32_t>(slab_.size());
    slab_.emplace_back();
  }
  HotEntry& e = slab_[idx];
  e.original = original;
  e.dense = dense;
  e.prev = kNil;
  e.next = lru_head_;
  if (lru_head_ != kNil) slab_[lru_head_].prev = idx;
  lru_head_ = idx;
  if (lru_tail_ == kNil) lru_tail_ = idx;
  hot_map_.emplace(original, idx);
}

bool OnlineDensifier::cold_lookup(DocumentId original,
                                  DocumentId& dense) const {
  // A document's dense id never changes once assigned, so any tier that
  // holds the mapping returns the same answer — search order is a matter of
  // cost only.
  if (auto it = pending_.find(original); it != pending_.end()) {
    dense = it->second;
    return true;
  }
  for (auto rit = runs_.rbegin(); rit != runs_.rend(); ++rit) {
    const auto& run = *rit;
    auto it = std::lower_bound(run.begin(), run.end(), original,
                               [](const Mapping& m, DocumentId id) {
                                 return m.original < id;
                               });
    if (it != run.end() && it->original == original) {
      dense = it->dense;
      return true;
    }
  }
  return false;
}

void OnlineDensifier::flush_pending() {
  if (pending_.empty()) return;
  std::vector<Mapping> run;
  run.reserve(pending_.size());
  for (const auto& [original, dense] : pending_) {
    run.push_back({original, dense});
  }
  pending_.clear();
  std::sort(run.begin(), run.end(), [](const Mapping& a, const Mapping& b) {
    return a.original < b.original;
  });
  runs_.push_back(std::move(run));
  // Geometric merging: collapse the newest runs while they are within 2x of
  // the run below, keeping the run count logarithmic in total spills.
  while (runs_.size() >= 2) {
    const auto& a = runs_[runs_.size() - 2];
    const auto& b = runs_.back();
    if (b.size() * 2 < a.size()) break;
    std::vector<Mapping> merged;
    merged.reserve(a.size() + b.size());
    auto ai = a.begin();
    auto bi = b.begin();
    while (ai != a.end() && bi != b.end()) {
      if (ai->original < bi->original) {
        merged.push_back(*ai++);
      } else if (bi->original < ai->original) {
        merged.push_back(*bi++);
      } else {
        assert(ai->dense == bi->dense);
        merged.push_back(*ai++);
        ++bi;
      }
    }
    merged.insert(merged.end(), ai, a.end());
    merged.insert(merged.end(), bi, b.end());
    runs_.pop_back();
    runs_.pop_back();
    runs_.push_back(std::move(merged));
  }
}

void OnlineDensifier::save_state(util::StateWriter& w) const {
  // Collect every assigned mapping from all three tiers. A promoted
  // document lives in the hot tier AND still in pending/runs (promotion
  // copies, it does not remove), so the union can hold duplicates — but a
  // dense id is assigned to exactly one original, so deduping by dense id
  // after the sort leaves exactly the next_dense_ assignments.
  std::vector<Mapping> all;
  all.reserve(static_cast<std::size_t>(next_dense_));
  for (const auto& [original, idx] : hot_map_) {
    all.push_back({original, slab_[idx].dense});
  }
  for (const auto& [original, dense] : pending_) {
    all.push_back({original, dense});
  }
  for (const auto& run : runs_) {
    all.insert(all.end(), run.begin(), run.end());
  }
  std::sort(all.begin(), all.end(), [](const Mapping& a, const Mapping& b) {
    return a.dense < b.dense;
  });
  all.erase(std::unique(all.begin(), all.end(),
                        [](const Mapping& a, const Mapping& b) {
                          return a.dense == b.dense;
                        }),
            all.end());
  assert(all.size() == next_dense_);
  w.put_u64(all.size());
  for (const Mapping& m : all) w.put_u64(m.original);
}

void OnlineDensifier::restore_state(util::StateReader& r) {
  if (next_dense_ != 0) {
    throw std::logic_error(
        "OnlineDensifier::restore_state: instance already assigned ids");
  }
  const std::uint64_t n = r.take_u64();
  for (std::uint64_t dense = 0; dense < n; ++dense) {
    const DocumentId original = r.take_u64();
    if (densify(original) != dense) {
      r.fail("duplicate original id in densifier mapping");
    }
  }
}

}  // namespace webcache::trace
