// Bounded-memory online document-id densification.
//
// trace::densify() needs the whole trace in memory plus an unordered_map
// over every distinct document. Streaming replay can afford neither, but
// the dense fast path (flat arrays indexed by document id) is exactly what
// makes billion-request replays feasible — so the renumbering itself has to
// go online and bounded.
//
// OnlineDensifier assigns dense ids in first-appearance order, identical to
// trace::densify() on the same request sequence. Lookups are answered by a
// bounded hot tier (hash map + intrusive LRU over at most `hot_capacity`
// entries); evicted mappings spill to a compact cold tier of sorted
// (original, dense) runs merged LSM-style, costing 16 bytes per distinct
// document instead of an unordered_map node. Dense ids are allocated
// monotonically and never reassigned, so two distinct original ids can
// never alias the same dense id — the cold tier only ever stores the one
// mapping a document was given at first sight.
#pragma once

#include <cstdint>
#include <vector>

#include <unordered_map>

#include "trace/request.hpp"

namespace webcache::util {
class StateWriter;
class StateReader;
}  // namespace webcache::util

namespace webcache::trace {

class OnlineDensifier {
 public:
  struct Options {
    /// Maximum entries held in the exact hot tier before spilling. Tiny
    /// values (the fuzz tests use 2) stay correct — only slower.
    std::size_t hot_capacity = 1 << 20;
  };

  OnlineDensifier() : OnlineDensifier(Options{}) {}
  explicit OnlineDensifier(Options options);

  /// Dense id for `original`: the id assigned at the document's first
  /// appearance (new documents get the next unused id). Equal to what
  /// trace::densify() would produce over the same sequence.
  DocumentId densify(DocumentId original);

  /// Distinct documents seen so far == exclusive upper bound on every dense
  /// id handed out.
  std::uint64_t document_count() const { return next_dense_; }

  /// Hot-tier evictions (mappings pushed to the cold tier).
  std::uint64_t spills() const { return spills_; }

  /// Lookups answered by the cold tier (spilled documents seen again).
  std::uint64_t cold_hits() const { return cold_hits_; }

  std::size_t hot_size() const { return hot_map_.size(); }

  /// Checkpointing: serializes the assigned mapping as original ids in
  /// dense-id order (dense ids are implicit: 0, 1, 2, ...). restore_state
  /// rebuilds a fresh instance by replaying the first appearances through
  /// densify(), which reassigns the identical ids. The hot/cold tier layout
  /// after restore may differ from the saved instance, but tier placement
  /// only affects lookup cost — the assigned ids, the densifier's only
  /// observable output, are bit-identical. Restore is only legal on an
  /// instance that has densified nothing yet (std::logic_error otherwise).
  void save_state(util::StateWriter& w) const;
  void restore_state(util::StateReader& r);

 private:
  struct HotEntry {
    DocumentId original = 0;
    DocumentId dense = 0;
    // Intrusive LRU links into slab_ (kNil = end).
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
  };
  static constexpr std::uint32_t kNil = 0xffffffffu;

  struct Mapping {
    DocumentId original;
    DocumentId dense;
  };

  void touch(std::uint32_t idx);
  void insert_hot(DocumentId original, DocumentId dense);
  bool cold_lookup(DocumentId original, DocumentId& dense) const;
  void flush_pending();

  Options options_;
  DocumentId next_dense_ = 0;
  std::uint64_t spills_ = 0;
  std::uint64_t cold_hits_ = 0;

  // Hot tier: slab + free list + intrusive LRU + index map.
  std::vector<HotEntry> slab_;
  std::vector<std::uint32_t> free_;
  std::unordered_map<DocumentId, std::uint32_t> hot_map_;
  std::uint32_t lru_head_ = kNil;  // most recently used
  std::uint32_t lru_tail_ = kNil;  // least recently used

  // Cold tier: bounded O(1)-lookup pending buffer + sorted runs (each
  // ascending by original id, geometrically merged so lookups scan
  // O(log spills) runs).
  std::unordered_map<DocumentId, DocumentId> pending_;
  std::vector<std::vector<Mapping>> runs_;
};

}  // namespace webcache::trace
