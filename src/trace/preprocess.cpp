#include "trace/preprocess.hpp"

#include "trace/cacheability.hpp"

namespace webcache::trace {

std::optional<Request> Preprocessor::process(const LogEntry& entry) {
  ++stats_.total_entries;
  if (!is_cacheable_method(entry.method)) {
    ++stats_.rejected_method;
    return std::nullopt;
  }
  if (is_dynamic_url(entry.url)) {
    ++stats_.rejected_dynamic_url;
    return std::nullopt;
  }
  if (!is_cacheable_status(entry.status)) {
    ++stats_.rejected_status;
    return std::nullopt;
  }
  ++stats_.accepted;

  if (!base_timestamp_ms_) base_timestamp_ms_ = entry.timestamp_ms;

  Request r;
  r.timestamp_ms = entry.timestamp_ms >= *base_timestamp_ms_
                       ? entry.timestamp_ms - *base_timestamp_ms_
                       : 0;
  r.document = url_to_document_id(entry.url);
  // Clients are identified only up to a stable hash (sufficient for
  // attaching requests to edge proxies; never reversed to an address).
  if (!entry.client.empty() && entry.client != "-") {
    r.client =
        static_cast<std::uint32_t>(url_to_document_id(entry.client) >> 16) |
        1u;  // never 0, which means "unknown"
  }
  r.doc_class = classify(entry.content_type, entry.url);
  r.status = entry.status;
  // Access logs record only the delivered byte count; without origin
  // metadata the full document size is indistinguishable from the transfer,
  // so both are set to the logged size (no interruption information).
  r.document_size = entry.size;
  r.transfer_size = entry.size;
  return r;
}

Trace preprocess_squid_log(std::istream& in, PreprocessStats* stats,
                           ParseReport* report, bool strict) {
  SquidLogParser parser(in, strict);
  Preprocessor pre;
  Trace trace;
  while (auto entry = parser.next()) {
    if (auto request = pre.process(*entry)) {
      trace.requests.push_back(*request);
    }
  }
  if (stats != nullptr) *stats = pre.stats();
  if (report != nullptr) *report = parser.report();
  return trace;
}

}  // namespace webcache::trace
