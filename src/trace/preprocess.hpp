// Preprocessing pipeline: raw access-log entries -> cacheable Request stream
// (paper, Section 2). Applies the method/URL/status filters, classifies each
// entry, and hashes URLs into stable DocumentIds.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>

#include "trace/request.hpp"
#include "trace/squid_log.hpp"

namespace webcache::trace {

/// Counters describing what preprocessing kept and dropped.
struct PreprocessStats {
  std::uint64_t total_entries = 0;
  std::uint64_t rejected_method = 0;
  std::uint64_t rejected_dynamic_url = 0;
  std::uint64_t rejected_status = 0;
  std::uint64_t accepted = 0;
};

class Preprocessor {
 public:
  /// Converts one log entry; nullopt when the entry is filtered out.
  /// Timestamps are rebased so that the first accepted entry is at t = 0.
  std::optional<Request> process(const LogEntry& entry);

  const PreprocessStats& stats() const { return stats_; }

 private:
  PreprocessStats stats_;
  std::optional<std::uint64_t> base_timestamp_ms_;
};

/// Convenience: parse + preprocess an entire access log from a stream.
/// In strict mode the first malformed log line aborts with
/// std::runtime_error naming the line and reason (SquidLogParser's strict
/// contract); otherwise malformed lines are skipped, counted, and
/// classified in `report` (when non-null).
Trace preprocess_squid_log(std::istream& in, PreprocessStats* stats = nullptr,
                           ParseReport* report = nullptr,
                           bool strict = false);

}  // namespace webcache::trace
