// The canonical trace record.
//
// Every data source — the Squid access-log parser, the binary trace reader,
// and the synthetic generator — produces a stream of Request records, so the
// characterizer, simulator, and benchmarks are agnostic to where a workload
// came from.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/document_class.hpp"

namespace webcache::trace {

/// Stable identity of a web document (in real traces: a hash of the
/// canonicalized URL; in synthetic traces: the generator's document index).
using DocumentId = std::uint64_t;

/// One client request as seen by the proxy, after preprocessing.
struct Request {
  /// Arrival time in milliseconds since trace start. Monotone non-strictly
  /// increasing within a trace.
  std::uint64_t timestamp_ms = 0;

  DocumentId document = 0;

  /// Client identity (hash of the client address in real traces, generator
  /// index in synthetic ones). 0 = unknown; used by the hierarchy simulator
  /// to attach requests to edge proxies.
  std::uint32_t client = 0;

  DocumentClass doc_class = DocumentClass::kOther;

  /// HTTP response status (e.g. 200, 304). Synthetic traces use 200.
  std::uint16_t status = 200;

  /// Full size of the document in bytes, as currently served by the origin.
  std::uint64_t document_size = 0;

  /// Bytes actually transferred to the client. Smaller than document_size
  /// when the client interrupted the transfer (paper, Section 4.1).
  std::uint64_t transfer_size = 0;

  bool interrupted() const { return transfer_size < document_size; }
};

/// A materialized trace plus the identity of the workload it models.
struct Trace {
  std::vector<Request> requests;

  std::uint64_t total_requests() const { return requests.size(); }

  /// Sum of transfer sizes, i.e. the paper's "Requested Data".
  std::uint64_t requested_bytes() const;

  /// Number of distinct documents referenced.
  std::uint64_t distinct_documents() const;

  /// Sum of document sizes over distinct documents (last seen size), i.e.
  /// the paper's "Overall Size".
  std::uint64_t overall_size_bytes() const;
};

}  // namespace webcache::trace
