// Chunked pull interface over a request sequence.
//
// A RequestStream hands out bounded windows of requests instead of a
// materialized Trace, so replay engines can process workloads far larger
// than memory (file-backed traces via StreamingTraceReader, 10^9-request
// synthetic workloads via TraceGenerator::stream). Consumers drain it with
//
//   for (auto chunk = s.next_chunk(); !chunk.empty(); chunk = s.next_chunk())
//     for (const Request& r : chunk) ...
//
// The span is valid only until the next call to next_chunk() or reset().
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>

#include "trace/request.hpp"

namespace webcache::trace {

class RequestStream {
 public:
  virtual ~RequestStream() = default;

  /// Total number of requests the stream will yield (known up front — the
  /// binary format stores the count in its header, the generator derives it
  /// from the profile). Replay needs it before the first request to place
  /// the warm-up boundary exactly where a materialized run would.
  virtual std::uint64_t total_requests() const = 0;

  /// Next window of requests; an empty span signals end of stream. The
  /// returned storage is owned by the stream and is invalidated by the next
  /// next_chunk()/reset() call.
  virtual std::span<const Request> next_chunk() = 0;

  /// Rewinds to the first request so the stream can be replayed again.
  virtual void reset() = 0;
};

/// Adapts a materialized Trace to the stream interface (windowed views into
/// the vector, no copies). Lets every streaming engine run on in-memory
/// traces — which is also how the equivalence suite drives chunk sizes 1,
/// 7, 4096 and whole-trace against the same data.
class MemoryRequestStream final : public RequestStream {
 public:
  /// `chunk_records == 0` yields the whole trace as a single chunk. The
  /// referenced trace must outlive the stream.
  explicit MemoryRequestStream(const Trace& trace,
                               std::size_t chunk_records = 0)
      : trace_(&trace), chunk_records_(chunk_records) {}

  std::uint64_t total_requests() const override {
    return trace_->requests.size();
  }

  std::span<const Request> next_chunk() override {
    const std::size_t total = trace_->requests.size();
    if (next_ >= total) return {};
    const std::size_t n = chunk_records_ == 0
                              ? total - next_
                              : std::min(chunk_records_, total - next_);
    std::span<const Request> chunk(trace_->requests.data() + next_, n);
    next_ += n;
    return chunk;
  }

  void reset() override { next_ = 0; }

 private:
  const Trace* trace_;
  std::size_t chunk_records_;
  std::size_t next_ = 0;
};

}  // namespace webcache::trace
