#include "trace/squid_log.hpp"

#include <cmath>
#include <cstdlib>
#include <istream>
#include <stdexcept>
#include <vector>

namespace webcache::trace {

namespace {

std::vector<std::string_view> split_fields(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    const std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) fields.push_back(line.substr(start, i - start));
  }
  return fields;
}

bool parse_u64(std::string_view s, std::uint64_t& out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = v;
  return true;
}

}  // namespace

const char* to_string(ParseRejectReason reason) {
  switch (reason) {
    case ParseRejectReason::kEmpty:
      return "empty line";
    case ParseRejectReason::kFieldCount:
      return "field count";
    case ParseRejectReason::kBadTimestamp:
      return "bad timestamp";
    case ParseRejectReason::kBadElapsed:
      return "bad elapsed time";
    case ParseRejectReason::kBadAction:
      return "bad action field";
    case ParseRejectReason::kBadStatus:
      return "bad status code";
    case ParseRejectReason::kBadSize:
      return "bad size";
  }
  return "?";
}

std::uint64_t ParseReport::total_rejected() const {
  std::uint64_t total = 0;
  for (const std::uint64_t n : rejected) total += n;
  return total;
}

std::string ParseReport::summary() const {
  if (total_rejected() == 0) return std::string();
  std::string out = std::to_string(total_rejected()) + " lines rejected (";
  bool first = true;
  for (std::size_t i = 0; i < kParseRejectReasonCount; ++i) {
    if (rejected[i] == 0) continue;
    if (!first) out += ", ";
    out += std::to_string(rejected[i]);
    out += ' ';
    out += to_string(static_cast<ParseRejectReason>(i));
    first = false;
  }
  out += ')';
  return out;
}

namespace {

std::optional<LogEntry> reject(ParseRejectReason why,
                               ParseRejectReason* reason) {
  if (reason != nullptr) *reason = why;
  return std::nullopt;
}

}  // namespace

std::optional<LogEntry> parse_squid_line(std::string_view line,
                                         ParseRejectReason* reason) {
  const auto fields = split_fields(line);
  if (fields.empty()) return reject(ParseRejectReason::kEmpty, reason);
  // Native format has 10 fields; the content-type field is sometimes absent
  // in older logs, so accept 9.
  if (fields.size() < 9) return reject(ParseRejectReason::kFieldCount, reason);

  LogEntry entry;

  // Field 0: "981173030.531" — seconds.milliseconds.
  {
    const std::string_view ts = fields[0];
    const auto dot = ts.find('.');
    std::uint64_t secs = 0, millis = 0;
    if (!parse_u64(ts.substr(0, dot), secs)) {
      return reject(ParseRejectReason::kBadTimestamp, reason);
    }
    if (dot != std::string_view::npos) {
      std::string_view frac = ts.substr(dot + 1);
      if (frac.size() > 3) frac = frac.substr(0, 3);
      if (!parse_u64(frac, millis)) {
        return reject(ParseRejectReason::kBadTimestamp, reason);
      }
      for (std::size_t i = frac.size(); i < 3; ++i) millis *= 10;
    }
    entry.timestamp_ms = secs * 1000 + millis;
  }

  // Field 1: elapsed milliseconds.
  {
    std::uint64_t elapsed = 0;
    if (!parse_u64(fields[1], elapsed)) {
      return reject(ParseRejectReason::kBadElapsed, reason);
    }
    entry.elapsed_ms = static_cast<std::uint32_t>(elapsed);
  }

  entry.client = std::string(fields[2]);

  // Field 3: "TCP_MISS/200".
  {
    const std::string_view as = fields[3];
    const auto slash = as.find('/');
    if (slash == std::string_view::npos) {
      return reject(ParseRejectReason::kBadAction, reason);
    }
    entry.action = std::string(as.substr(0, slash));
    std::uint64_t status = 0;
    if (!parse_u64(as.substr(slash + 1), status) || status > 999) {
      return reject(ParseRejectReason::kBadStatus, reason);
    }
    entry.status = static_cast<std::uint16_t>(status);
  }

  if (!parse_u64(fields[4], entry.size)) {
    return reject(ParseRejectReason::kBadSize, reason);
  }
  entry.method = std::string(fields[5]);
  entry.url = std::string(fields[6]);

  if (fields.size() >= 10 && fields[9] != "-") {
    entry.content_type = std::string(fields[9]);
  }
  return entry;
}

std::optional<LogEntry> SquidLogParser::next() {
  std::string line;
  while (std::getline(in_, line)) {
    ++report_.lines_read;
    ParseRejectReason reason = ParseRejectReason::kEmpty;
    auto entry = parse_squid_line(line, &reason);
    if (entry) {
      ++report_.accepted;
      return entry;
    }
    if (strict_) {
      throw std::runtime_error(
          "squid log line " + std::to_string(report_.lines_read) + ": " +
          to_string(reason));
    }
    ++report_.rejected[static_cast<std::size_t>(reason)];
  }
  return std::nullopt;
}

std::uint64_t url_to_document_id(std::string_view url) {
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : url) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace webcache::trace
