// Parser for Squid's native access.log format, the format of the NLANR and
// DFN proxy logs the paper is based on:
//
//   timestamp elapsed client action/status size method URL ident peer type
//
// e.g.
//   981173030.531 120 10.0.0.1 TCP_MISS/200 4316 GET http://a/b.gif - DIRECT/x image/gif
//
// The parser is tolerant: malformed lines are reported, not fatal, because
// multi-month proxy logs invariably contain a few.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

namespace webcache::trace {

/// One parsed access-log line, before preprocessing.
struct LogEntry {
  std::uint64_t timestamp_ms = 0;   // epoch milliseconds
  std::uint32_t elapsed_ms = 0;     // service time
  std::string client;
  std::string action;               // e.g. TCP_MISS, TCP_HIT
  std::uint16_t status = 0;
  std::uint64_t size = 0;           // bytes delivered to the client
  std::string method;
  std::string url;
  std::string content_type;         // "-" in the log maps to empty
};

/// Parses a single line. Returns nullopt for malformed lines (wrong field
/// count, non-numeric fields).
std::optional<LogEntry> parse_squid_line(std::string_view line);

/// Streaming parser over an istream of access-log lines.
class SquidLogParser {
 public:
  explicit SquidLogParser(std::istream& in) : in_(in) {}

  /// Reads until the next well-formed line; nullopt at end of stream.
  std::optional<LogEntry> next();

  std::uint64_t lines_read() const { return lines_read_; }
  std::uint64_t lines_rejected() const { return lines_rejected_; }

 private:
  std::istream& in_;
  std::uint64_t lines_read_ = 0;
  std::uint64_t lines_rejected_ = 0;
};

/// Stable 64-bit identity for a URL (FNV-1a). Used as DocumentId for real
/// traces; collisions at proxy-trace scale (~10^7 URLs) are negligible
/// (expected < 0.01 colliding pairs).
std::uint64_t url_to_document_id(std::string_view url);

}  // namespace webcache::trace
