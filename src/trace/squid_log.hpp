// Parser for Squid's native access.log format, the format of the NLANR and
// DFN proxy logs the paper is based on:
//
//   timestamp elapsed client action/status size method URL ident peer type
//
// e.g.
//   981173030.531 120 10.0.0.1 TCP_MISS/200 4316 GET http://a/b.gif - DIRECT/x image/gif
//
// The parser is tolerant: malformed lines are reported, not fatal, because
// multi-month proxy logs invariably contain a few.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

namespace webcache::trace {

/// One parsed access-log line, before preprocessing.
struct LogEntry {
  std::uint64_t timestamp_ms = 0;   // epoch milliseconds
  std::uint32_t elapsed_ms = 0;     // service time
  std::string client;
  std::string action;               // e.g. TCP_MISS, TCP_HIT
  std::uint16_t status = 0;
  std::uint64_t size = 0;           // bytes delivered to the client
  std::string method;
  std::string url;
  std::string content_type;         // "-" in the log maps to empty
};

/// Why a line was rejected — the first check that failed, in field order.
enum class ParseRejectReason : std::uint8_t {
  kEmpty,        // blank line
  kFieldCount,   // fewer than 9 whitespace-separated fields
  kBadTimestamp, // field 0 not seconds[.millis]
  kBadElapsed,   // field 1 not a non-negative integer
  kBadAction,    // field 3 has no ACTION/STATUS slash
  kBadStatus,    // status after the slash not numeric or > 999
  kBadSize,      // field 4 not a non-negative integer
};
inline constexpr std::size_t kParseRejectReasonCount = 7;

/// Human-readable reason ("bad timestamp", ...).
const char* to_string(ParseRejectReason reason);

/// Line-level accounting for one parsed log: how many lines were read and,
/// for every rejected line, why. accepted + total_rejected() == lines_read.
struct ParseReport {
  std::uint64_t lines_read = 0;
  std::uint64_t accepted = 0;
  std::array<std::uint64_t, kParseRejectReasonCount> rejected{};

  std::uint64_t total_rejected() const;
  std::uint64_t rejected_for(ParseRejectReason reason) const {
    return rejected[static_cast<std::size_t>(reason)];
  }
  /// One-line summary of the rejects, e.g.
  /// "3 lines rejected (2 bad timestamp, 1 field count)"; empty when none.
  std::string summary() const;
};

/// Parses a single line. Returns nullopt for malformed lines (wrong field
/// count, non-numeric fields); when `reason` is non-null it receives the
/// classification of the failure.
std::optional<LogEntry> parse_squid_line(std::string_view line,
                                         ParseRejectReason* reason = nullptr);

/// Streaming parser over an istream of access-log lines. In strict mode
/// the first malformed line throws std::runtime_error naming the 1-based
/// line number and the reject reason; the default tolerant mode counts and
/// classifies rejects in report() and skips them.
class SquidLogParser {
 public:
  explicit SquidLogParser(std::istream& in, bool strict = false)
      : in_(in), strict_(strict) {}

  /// Reads until the next well-formed line; nullopt at end of stream.
  std::optional<LogEntry> next();

  const ParseReport& report() const { return report_; }
  std::uint64_t lines_read() const { return report_.lines_read; }
  std::uint64_t lines_rejected() const { return report_.total_rejected(); }

 private:
  std::istream& in_;
  bool strict_;
  ParseReport report_;
};

/// Stable 64-bit identity for a URL (FNV-1a). Used as DocumentId for real
/// traces; collisions at proxy-trace scale (~10^7 URLs) are negligible
/// (expected < 0.01 colliding pairs).
std::uint64_t url_to_document_id(std::string_view url);

}  // namespace webcache::trace
