#include "trace/squid_log_writer.hpp"

#include <ostream>
#include <sstream>

namespace webcache::trace {

namespace {

std::string_view extension_for_class(DocumentClass doc_class) {
  switch (doc_class) {
    case DocumentClass::kImage:
      return ".gif";
    case DocumentClass::kHtml:
      return ".html";
    case DocumentClass::kMultiMedia:
      return ".mpeg";
    case DocumentClass::kApplication:
      return ".pdf";
    case DocumentClass::kOther:
      return "";
  }
  return "";
}

}  // namespace

std::string synthetic_url(DocumentId id, DocumentClass doc_class,
                          const std::string& host) {
  std::ostringstream url;
  url << "http://" << host << "/doc/" << std::hex << id
      << extension_for_class(doc_class);
  return url.str();
}

std::string_view mime_for_class(DocumentClass doc_class) {
  switch (doc_class) {
    case DocumentClass::kImage:
      return "image/gif";
    case DocumentClass::kHtml:
      return "text/html";
    case DocumentClass::kMultiMedia:
      return "video/mpeg";
    case DocumentClass::kApplication:
      return "application/pdf";
    case DocumentClass::kOther:
      return "";
  }
  return "";
}

std::string to_squid_line(const Request& request,
                          const SquidLogWriterOptions& options) {
  std::ostringstream line;
  const std::uint64_t seconds =
      options.epoch_seconds + request.timestamp_ms / 1000;
  const std::uint64_t millis = request.timestamp_ms % 1000;
  char frac[8];
  std::snprintf(frac, sizeof(frac), "%03llu",
                static_cast<unsigned long long>(millis));
  // Requests carrying a client id are rendered as a synthetic dotted quad
  // so the client partition survives a parse round trip.
  std::string client = options.client;
  if (request.client != 0) {
    char quad[20];
    std::snprintf(quad, sizeof(quad), "10.%u.%u.%u",
                  (request.client >> 16) & 0xFF, (request.client >> 8) & 0xFF,
                  request.client & 0xFF);
    client = quad;
  }
  line << seconds << '.' << frac << " 0 " << client << " TCP_MISS/"
       << request.status << ' ' << request.transfer_size << " GET "
       << synthetic_url(request.document, request.doc_class, options.host)
       << " - DIRECT/origin ";
  const std::string_view mime = mime_for_class(request.doc_class);
  line << (mime.empty() ? "-" : mime);
  return line.str();
}

std::uint64_t write_squid_log(std::ostream& out, const Trace& trace,
                              const SquidLogWriterOptions& options) {
  std::uint64_t lines = 0;
  for (const Request& r : trace.requests) {
    out << to_squid_line(r, options) << '\n';
    ++lines;
  }
  return lines;
}

}  // namespace webcache::trace
