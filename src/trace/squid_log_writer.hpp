// Squid access.log writer: renders a Request stream back into the native
// Squid format the parser consumes. Round-tripping synthetic traces through
// the real-log pipeline lets users test their own tooling against traces
// with known ground truth, and lets this library's parser/preprocessor be
// validated end-to-end.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "trace/request.hpp"

namespace webcache::trace {

struct SquidLogWriterOptions {
  /// Epoch offset added to the trace-relative timestamps (seconds).
  std::uint64_t epoch_seconds = 981000000;  // early Feb 2001, like RTP
  /// Host used in the generated URLs.
  std::string host = "synth.example";
  std::string client = "10.0.0.1";
};

/// Deterministic URL for a document id, with an extension matching its
/// class so that extension-based re-classification agrees.
std::string synthetic_url(DocumentId id, DocumentClass doc_class,
                          const std::string& host);

/// MIME type emitted for a class (empty for kOther, which forces the
/// parser's extension fallback).
std::string_view mime_for_class(DocumentClass doc_class);

/// Renders one request as a native-format log line (no trailing newline).
std::string to_squid_line(const Request& request,
                          const SquidLogWriterOptions& options = {});

/// Writes the whole trace; returns the number of lines written.
std::uint64_t write_squid_log(std::ostream& out, const Trace& trace,
                              const SquidLogWriterOptions& options = {});

}  // namespace webcache::trace
