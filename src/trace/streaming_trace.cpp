#include "trace/streaming_trace.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "trace/binary_trace.hpp"

namespace webcache::trace {

using detail::kHeaderBytes;
using detail::read_fail;
using detail::record_fail;

StreamingTraceReader::StreamingTraceReader(std::string path,
                                           std::size_t chunk_records)
    : path_(std::move(path)),
      chunk_records_(std::max<std::size_t>(1, chunk_records)) {
  in_.open(path_, std::ios::binary);
  if (!in_) throw std::runtime_error("binary trace: cannot open " + path_);

  char magic[4];
  in_.read(magic, 4);
  if (!in_ || std::memcmp(magic, kTraceMagic, 4) != 0) {
    read_fail("bad magic", 0);
  }
  in_.read(reinterpret_cast<char*>(&version_), sizeof(version_));
  // A short header reads as version 0, like the one-shot image decoder,
  // which only copies the field when all four bytes are present.
  if (!in_) version_ = 0;
  if (version_ != 1 && version_ != 2) {
    read_fail("unsupported version " + std::to_string(version_), 4);
  }
  in_.read(reinterpret_cast<char*>(&count_), sizeof(count_));
  if (!in_) read_fail("truncated header", 8);
  record_bytes_ = detail::record_bytes_for(version_);
}

std::span<const Request> StreamingTraceReader::next_chunk() {
  if (next_record_ >= count_) {
    // All records delivered: validate the trailer once, then keep
    // signalling end of stream.
    if (!trailer_checked_) validate_trailer();
    return {};
  }

  const std::uint64_t remaining = count_ - next_record_;
  const std::size_t n = static_cast<std::size_t>(
      std::min<std::uint64_t>(chunk_records_, remaining));
  buffer_.resize(n * record_bytes_);
  in_.read(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
  if (!in_) {
    // The first record the read could not complete is where the file is
    // truncated — the same index the one-shot loaders compute from the
    // image size.
    const auto got = static_cast<std::uint64_t>(std::max<std::streamsize>(
        0, in_.gcount()));
    record_fail("truncated", next_record_ + got / record_bytes_, count_,
                record_bytes_);
  }
  checksum_.update(buffer_.data(), buffer_.size());

  chunk_.clear();
  chunk_.reserve(n);
  const char* p = buffer_.data();
  for (std::size_t i = 0; i < n; ++i, p += record_bytes_) {
    Request r;
    const std::uint8_t cls = detail::decode_record(p, version_, r);
    if (cls >= kDocumentClassCount) {
      record_fail("invalid document class " + std::to_string(cls),
                  next_record_ + i, count_, record_bytes_);
    }
    r.doc_class = static_cast<DocumentClass>(cls);
    chunk_.push_back(r);
  }
  next_record_ += n;
  return {chunk_.data(), chunk_.size()};
}

void StreamingTraceReader::validate_trailer() {
  const std::uint64_t trailer_offset = kHeaderBytes + count_ * record_bytes_;
  std::uint64_t digest = 0;
  in_.read(reinterpret_cast<char*>(&digest), sizeof(digest));
  if (!in_) read_fail("truncated checksum trailer", trailer_offset);
  if (digest != checksum_.value()) {
    read_fail("checksum mismatch over " + std::to_string(count_) + " records",
              trailer_offset);
  }
  trailer_checked_ = true;
}

void StreamingTraceReader::reset() {
  in_.clear();
  in_.seekg(static_cast<std::streamoff>(kHeaderBytes));
  if (!in_) throw std::runtime_error("binary trace: cannot rewind " + path_);
  next_record_ = 0;
  trailer_checked_ = false;
  checksum_.reset();
  chunk_.clear();
}

}  // namespace webcache::trace
