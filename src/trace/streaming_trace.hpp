// Chunked reader over the WCT1 binary trace format.
//
// Where read_binary_trace_file materializes the whole trace (mmap + one
// decode pass), StreamingTraceReader pulls bounded windows: memory use is
// O(chunk_records), independent of the file size, so multi-GB traces replay
// without fitting in RAM. It shares the materialized loaders' decoder and
// failure helpers (trace/binary_trace_detail.hpp), so a corrupt or
// truncated file produces the identical diagnostic — same message, same
// record index, same byte offset — whichever loader hits it. The FNV-1a
// checksum is accumulated across chunks and validated against the trailer
// after the final record, exactly like the one-shot loaders.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "trace/binary_trace_detail.hpp"
#include "trace/request_stream.hpp"

namespace webcache::trace {

class StreamingTraceReader final : public RequestStream {
 public:
  /// Opens the file and validates the header; throws std::runtime_error
  /// with the same diagnostics as read_binary_trace_file on a bad magic,
  /// unsupported version or truncated header. `chunk_records` bounds the
  /// window size (and thus the reader's memory footprint).
  explicit StreamingTraceReader(std::string path,
                                std::size_t chunk_records = 1 << 16);

  std::uint64_t total_requests() const override { return count_; }
  std::span<const Request> next_chunk() override;
  void reset() override;

  std::uint32_t version() const { return version_; }
  const std::string& path() const { return path_; }

 private:
  void validate_trailer();

  std::string path_;
  std::size_t chunk_records_;
  std::ifstream in_;
  std::uint32_t version_ = 0;
  std::uint64_t count_ = 0;
  std::size_t record_bytes_ = 0;
  std::uint64_t next_record_ = 0;
  bool trailer_checked_ = false;
  detail::Checksum checksum_;
  std::vector<char> buffer_;
  std::vector<Request> chunk_;
};

}  // namespace webcache::trace
