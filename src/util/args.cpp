#include "util/args.hpp"

#include <stdexcept>

namespace webcache::util {

Args::Args(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq == std::string::npos) {
      values_[body] = "true";
    } else {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    }
  }
}

bool Args::has(const std::string& key) const { return values_.count(key) > 0; }

std::string Args::get(const std::string& key, const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Args::get_int(const std::string& key, std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::stoll(it->second);
}

std::uint64_t Args::get_uint(const std::string& key,
                             std::uint64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::stoull(it->second);
}

double Args::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::stod(it->second);
}

bool Args::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::invalid_argument("Args: boolean flag --" + key +
                              " has non-boolean value '" + v + "'");
}

}  // namespace webcache::util
