// Minimal command-line argument parsing for the bench/example binaries.
//
// Supports --key=value and --flag forms. Anything else is collected as a
// positional argument. Unknown keys are tolerated (benchmark runners pass
// their own flags through).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace webcache::util {

class Args {
 public:
  Args(int argc, const char* const* argv);

  bool has(const std::string& key) const;

  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  std::uint64_t get_uint(const std::string& key, std::uint64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace webcache::util
