#include "util/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace webcache::util {

namespace {

// Binary search for the first CDF entry >= u; returns its index.
std::size_t cdf_lookup(const std::vector<double>& cdf, double u) {
  const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
  if (it == cdf.end()) return cdf.size() - 1;
  return static_cast<std::size_t>(it - cdf.begin());
}

std::vector<double> power_law_cdf(std::uint64_t n, double exponent) {
  std::vector<double> cdf(n);
  double total = 0.0;
  for (std::uint64_t i = 0; i < n; ++i) {
    total += std::pow(static_cast<double>(i + 1), -exponent);
    cdf[i] = total;
  }
  for (auto& v : cdf) v /= total;
  cdf.back() = 1.0;
  return cdf;
}

}  // namespace

// ---------------------------------------------------------------- Zipf

ZipfDistribution::ZipfDistribution(std::uint64_t n, double alpha)
    : n_(n), alpha_(alpha) {
  if (n == 0) throw std::invalid_argument("ZipfDistribution: n must be > 0");
  if (alpha < 0.0) throw std::invalid_argument("ZipfDistribution: alpha must be >= 0");
  cdf_ = power_law_cdf(n, alpha);
}

std::uint64_t ZipfDistribution::sample(Rng& rng) const {
  return cdf_lookup(cdf_, rng.uniform()) + 1;
}

double ZipfDistribution::pmf(std::uint64_t rank) const {
  if (rank < 1 || rank > n_) return 0.0;
  const double lo = rank == 1 ? 0.0 : cdf_[rank - 2];
  return cdf_[rank - 1] - lo;
}

// ----------------------------------------------------------- Lognormal

LognormalSizeDistribution::LognormalSizeDistribution(double mean, double median) {
  if (median <= 0.0) {
    throw std::invalid_argument("LognormalSizeDistribution: median must be > 0");
  }
  if (mean < median) {
    throw std::invalid_argument(
        "LognormalSizeDistribution: mean must be >= median (right-skewed)");
  }
  mu_ = std::log(median);
  sigma_ = std::sqrt(2.0 * std::log(mean / median));
}

double LognormalSizeDistribution::sample(Rng& rng) const {
  return std::exp(mu_ + sigma_ * rng.gaussian());
}

double LognormalSizeDistribution::mean() const {
  return std::exp(mu_ + sigma_ * sigma_ / 2.0);
}

double LognormalSizeDistribution::median() const { return std::exp(mu_); }

double LognormalSizeDistribution::cov() const {
  // CoV of a lognormal: sqrt(exp(sigma^2) - 1).
  return std::sqrt(std::exp(sigma_ * sigma_) - 1.0);
}

// ------------------------------------------------------ Bounded Pareto

BoundedParetoDistribution::BoundedParetoDistribution(double shape, double lo,
                                                     double hi)
    : shape_(shape), lo_(lo), hi_(hi) {
  if (shape <= 0.0) {
    throw std::invalid_argument("BoundedParetoDistribution: shape must be > 0");
  }
  if (!(0.0 < lo && lo < hi)) {
    throw std::invalid_argument("BoundedParetoDistribution: need 0 < lo < hi");
  }
}

double BoundedParetoDistribution::sample(Rng& rng) const {
  // Inverse-CDF of the bounded Pareto.
  const double u = rng.uniform();
  const double la = std::pow(lo_, shape_);
  const double ha = std::pow(hi_, shape_);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / shape_);
}

double BoundedParetoDistribution::mean() const {
  const double a = shape_;
  if (a == 1.0) {
    return (std::log(hi_) - std::log(lo_)) * lo_ * hi_ / (hi_ - lo_);
  }
  const double la = std::pow(lo_, a);
  return la / (1.0 - std::pow(lo_ / hi_, a)) * (a / (a - 1.0)) *
         (std::pow(lo_, 1.0 - a) - std::pow(hi_, 1.0 - a));
}

// ------------------------------------------------------ Power-law gaps

PowerLawGapDistribution::PowerLawGapDistribution(std::uint64_t max_gap,
                                                 double beta)
    : max_gap_(max_gap), beta_(beta) {
  if (max_gap == 0) {
    throw std::invalid_argument("PowerLawGapDistribution: max_gap must be > 0");
  }
  if (beta < 0.0) {
    throw std::invalid_argument("PowerLawGapDistribution: beta must be >= 0");
  }
  cdf_ = power_law_cdf(max_gap, beta);
}

std::uint64_t PowerLawGapDistribution::sample(Rng& rng) const {
  return cdf_lookup(cdf_, rng.uniform()) + 1;
}

double PowerLawGapDistribution::pmf(std::uint64_t gap) const {
  if (gap < 1 || gap > max_gap_) return 0.0;
  const double lo = gap == 1 ? 0.0 : cdf_[gap - 2];
  return cdf_[gap - 1] - lo;
}

// ------------------------------------------------------------ Discrete

DiscreteDistribution::DiscreteDistribution(std::vector<double> weights)
    : weights_(std::move(weights)) {
  if (weights_.empty()) {
    throw std::invalid_argument("DiscreteDistribution: no weights");
  }
  double total = 0.0;
  for (double w : weights_) {
    if (w < 0.0) {
      throw std::invalid_argument("DiscreteDistribution: negative weight");
    }
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("DiscreteDistribution: all weights zero");
  }
  cdf_.resize(weights_.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    weights_[i] /= total;
    acc += weights_[i];
    cdf_[i] = acc;
  }
  cdf_.back() = 1.0;
}

std::size_t DiscreteDistribution::sample(Rng& rng) const {
  return cdf_lookup(cdf_, rng.uniform());
}

double DiscreteDistribution::probability(std::size_t index) const {
  return index < weights_.size() ? weights_[index] : 0.0;
}

}  // namespace webcache::util
