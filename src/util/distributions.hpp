// Random distributions used by the synthetic workload generator.
//
// The web-caching literature (Breslau et al., Arlitt & Williamson, Jin &
// Bestavros) models document popularity as Zipf-like with exponent alpha < 1,
// document sizes as lognormal with a heavy (Pareto) tail, and temporal
// correlation gaps as a truncated power law with exponent beta. This header
// provides exactly those building blocks, each seedable via util::Rng.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace webcache::util {

/// Zipf-like distribution over ranks 1..n: P(rank = r) proportional to
/// r^-alpha. Supports alpha in [0, ~2]; alpha = 0 degenerates to uniform.
///
/// Sampling uses inverted CDF lookup over precomputed cumulative weights
/// (O(log n) per draw, O(n) memory). For the population sizes used here
/// (<= a few million) this is both exact and fast.
class ZipfDistribution {
 public:
  ZipfDistribution(std::uint64_t n, double alpha);

  /// Draws a rank in [1, n].
  std::uint64_t sample(Rng& rng) const;

  /// Probability mass of the given rank (1-based).
  double pmf(std::uint64_t rank) const;

  std::uint64_t size() const { return n_; }
  double alpha() const { return alpha_; }

 private:
  std::uint64_t n_;
  double alpha_;
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i + 1), cdf_.back() == 1
};

/// Lognormal distribution parameterized the way workload tables report
/// sizes: by mean and median. For LogNormal(mu, sigma):
///   median = exp(mu), mean = exp(mu + sigma^2 / 2)
/// so   mu = ln(median), sigma = sqrt(2 ln(mean / median)).
/// Requires mean >= median > 0.
class LognormalSizeDistribution {
 public:
  LognormalSizeDistribution(double mean, double median);

  double sample(Rng& rng) const;

  double mu() const { return mu_; }
  double sigma() const { return sigma_; }
  double mean() const;
  double median() const;
  /// Coefficient of variation implied by the parameters.
  double cov() const;

 private:
  double mu_;
  double sigma_;
};

/// Bounded Pareto distribution on [lo, hi] with shape a > 0. Used for the
/// heavy tail of multi-media / application document sizes, where a plain
/// lognormal underestimates the coefficient of variation.
class BoundedParetoDistribution {
 public:
  BoundedParetoDistribution(double shape, double lo, double hi);

  double sample(Rng& rng) const;

  double shape() const { return shape_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double mean() const;

 private:
  double shape_;
  double lo_;
  double hi_;
};

/// Truncated discrete power law over {1, ..., max_gap}:
/// P(g) proportional to g^-beta. Models the temporal-correlation gap
/// distribution of Jin & Bestavros: the probability that a document is
/// re-referenced n requests after its previous reference decays as n^-beta.
class PowerLawGapDistribution {
 public:
  PowerLawGapDistribution(std::uint64_t max_gap, double beta);

  std::uint64_t sample(Rng& rng) const;
  double pmf(std::uint64_t gap) const;

  std::uint64_t max_gap() const { return max_gap_; }
  double beta() const { return beta_; }

 private:
  std::uint64_t max_gap_;
  double beta_;
  std::vector<double> cdf_;
};

/// General discrete distribution over indices 0..k-1 given non-negative
/// weights. Used for the per-request document-class mix.
class DiscreteDistribution {
 public:
  explicit DiscreteDistribution(std::vector<double> weights);

  std::size_t sample(Rng& rng) const;
  double probability(std::size_t index) const;
  std::size_t size() const { return weights_.size(); }

 private:
  std::vector<double> weights_;  // normalized
  std::vector<double> cdf_;
};

}  // namespace webcache::util
