// Fenwick (binary indexed) tree over non-negative weights with prefix-sum
// sampling. The synthetic generator uses it to draw documents proportionally
// to their *remaining* reference counts — weighted sampling without
// replacement over millions of documents at O(log n) per draw/update.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace webcache::util {

class FenwickTree {
 public:
  explicit FenwickTree(std::size_t n) : tree_(n + 1, 0.0), size_(n) {}

  /// Builds from initial weights in O(n).
  explicit FenwickTree(const std::vector<double>& weights)
      : FenwickTree(weights.size()) {
    for (std::size_t i = 0; i < weights.size(); ++i) add(i, weights[i]);
  }

  std::size_t size() const { return size_; }
  double total() const { return prefix_sum(size_); }

  /// Adds delta to index i (may be negative; caller keeps weights >= 0).
  void add(std::size_t i, double delta) {
    for (std::size_t j = i + 1; j <= size_; j += j & (~j + 1)) {
      tree_[j] += delta;
    }
  }

  /// Sum of weights [0, i).
  double prefix_sum(std::size_t i) const {
    double s = 0.0;
    for (std::size_t j = i; j > 0; j -= j & (~j + 1)) s += tree_[j];
    return s;
  }

  /// Weight of a single index.
  double weight(std::size_t i) const {
    return prefix_sum(i + 1) - prefix_sum(i);
  }

  /// Largest index such that prefix_sum(index) <= target, i.e. the index
  /// selected by a cumulative draw with value `target` in [0, total()).
  /// Requires total() > 0.
  std::size_t find(double target) const {
    if (total() <= 0.0) {
      throw std::logic_error("FenwickTree: sampling from empty tree");
    }
    std::size_t pos = 0;
    // Highest power of two <= size_.
    std::size_t step = 1;
    while ((step << 1) <= size_) step <<= 1;
    for (; step > 0; step >>= 1) {
      const std::size_t next = pos + step;
      if (next <= size_ && tree_[next] <= target) {
        target -= tree_[next];
        pos = next;
      }
    }
    // pos is the count of complete prefix; clamp for fp edge cases.
    return pos < size_ ? pos : size_ - 1;
  }

 private:
  std::vector<double> tree_;
  std::size_t size_;
};

}  // namespace webcache::util
