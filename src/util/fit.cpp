#include "util/fit.hpp"

#include <cmath>

namespace webcache::util {

LineFit fit_line(const std::vector<std::pair<double, double>>& points) {
  LineFit fit;
  fit.points = points.size();
  if (points.size() < 2) return fit;

  double sx = 0, sy = 0;
  for (const auto& [x, y] : points) {
    sx += x;
    sy += y;
  }
  const double n = static_cast<double>(points.size());
  const double mx = sx / n;
  const double my = sy / n;

  double sxx = 0, sxy = 0, syy = 0;
  for (const auto& [x, y] : points) {
    const double dx = x - mx;
    const double dy = y - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0) return fit;  // vertical line; slope undefined

  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = syy == 0.0 ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

LineFit fit_loglog(const std::vector<std::pair<double, double>>& points) {
  std::vector<std::pair<double, double>> logged;
  logged.reserve(points.size());
  for (const auto& [x, y] : points) {
    if (x > 0.0 && y > 0.0) logged.emplace_back(std::log(x), std::log(y));
  }
  return fit_line(logged);
}

}  // namespace webcache::util
