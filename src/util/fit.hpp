// Least-squares fitting.
//
// The paper determines the popularity index alpha as "the slope of the
// log/log scale plot for the number of references to a web document as
// function of its popularity rank", and the temporal-correlation exponent
// beta analogously from the inter-reference-gap distribution. Both reduce to
// an ordinary least-squares line through (log x, log y) points.
#pragma once

#include <utility>
#include <vector>

namespace webcache::util {

/// Result of an ordinary least-squares line fit y = slope * x + intercept.
struct LineFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination in [0, 1]; 0 when undefined.
  double r_squared = 0.0;
  std::size_t points = 0;

  bool valid() const { return points >= 2; }
};

/// Fits a straight line through the given (x, y) points.
LineFit fit_line(const std::vector<std::pair<double, double>>& points);

/// Fits a power law y = C * x^slope by linear regression in log-log space.
/// Points with non-positive x or y are skipped. The returned slope is the
/// power-law exponent (negative for decaying laws).
LineFit fit_loglog(const std::vector<std::pair<double, double>>& points);

}  // namespace webcache::util
