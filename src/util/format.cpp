#include "util/format.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace webcache::util {

std::string fmt_fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string fmt_percent(double fraction, int digits) {
  return fmt_fixed(fraction * 100.0, digits);
}

std::string fmt_count(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int since_sep = static_cast<int>(digits.size() % 3);
  if (since_sep == 0) since_sep = 3;
  for (char c : digits) {
    if (since_sep == 0) {
      out += ',';
      since_sep = 3;
    }
    out += c;
    --since_sep;
  }
  return out;
}

std::string fmt_bytes(double bytes, int digits) {
  static constexpr std::array<const char*, 6> kUnits = {"B",  "KB", "MB",
                                                        "GB", "TB", "PB"};
  double v = bytes;
  std::size_t unit = 0;
  while (std::abs(v) >= 1000.0 && unit + 1 < kUnits.size()) {
    v /= 1000.0;
    ++unit;
  }
  return fmt_fixed(v, unit == 0 ? 0 : digits) + " " + kUnits[unit];
}

}  // namespace webcache::util
