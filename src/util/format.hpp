// Small formatting helpers shared by reporters and benchmark binaries.
#pragma once

#include <cstdint>
#include <string>

namespace webcache::util {

/// Fixed-point decimal with the given number of fraction digits.
std::string fmt_fixed(double value, int digits = 2);

/// Percentage with the given number of fraction digits (value 0.123 -> "12.3").
std::string fmt_percent(double fraction, int digits = 1);

/// Thousands-separated integer ("6,718,210").
std::string fmt_count(std::uint64_t value);

/// Human-readable byte count ("1.5 GB"); decimal units as in the paper.
std::string fmt_bytes(double bytes, int digits = 1);

}  // namespace webcache::util
