#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace webcache::util {

LogHistogram::LogHistogram(double base, std::size_t max_buckets)
    : base_(base), log_base_(std::log(base)), max_buckets_(max_buckets) {
  if (base <= 1.0) throw std::invalid_argument("LogHistogram: base must be > 1");
  if (max_buckets == 0) {
    throw std::invalid_argument("LogHistogram: max_buckets must be > 0");
  }
}

std::size_t LogHistogram::bucket_index(double value) const {
  if (value < 1.0) return 0;
  const auto idx = static_cast<std::size_t>(std::log(value) / log_base_);
  return std::min(idx, max_buckets_ - 1);
}

void LogHistogram::add(double value, double weight) {
  const std::size_t i = bucket_index(value);
  if (counts_.size() <= i) counts_.resize(i + 1, 0.0);
  counts_[i] += weight;
  total_ += weight;
}

double LogHistogram::bucket_lo(std::size_t i) const {
  return std::pow(base_, static_cast<double>(i));
}

double LogHistogram::bucket_hi(std::size_t i) const {
  return std::pow(base_, static_cast<double>(i + 1));
}

double LogHistogram::bucket_center(std::size_t i) const {
  return std::sqrt(bucket_lo(i) * bucket_hi(i));
}

double LogHistogram::bucket_weight(std::size_t i) const {
  return i < counts_.size() ? counts_[i] : 0.0;
}

std::vector<std::pair<double, double>> LogHistogram::density_points() const {
  std::vector<std::pair<double, double>> points;
  points.reserve(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] <= 0.0) continue;
    const double width = bucket_hi(i) - bucket_lo(i);
    points.emplace_back(bucket_center(i), counts_[i] / width);
  }
  return points;
}

std::vector<std::pair<double, double>> LogHistogram::mass_points() const {
  std::vector<std::pair<double, double>> points;
  points.reserve(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] <= 0.0) continue;
    points.emplace_back(bucket_center(i), counts_[i]);
  }
  return points;
}

void LogHistogram::scale(double factor) {
  for (auto& c : counts_) c *= factor;
  total_ *= factor;
}

void LogHistogram::clear() {
  counts_.clear();
  total_ = 0.0;
}

LinearHistogram::LinearHistogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0.0) {
  if (!(hi > lo)) throw std::invalid_argument("LinearHistogram: hi must be > lo");
  if (buckets == 0) {
    throw std::invalid_argument("LinearHistogram: buckets must be > 0");
  }
}

void LinearHistogram::add(double value, double weight) {
  auto idx = static_cast<std::int64_t>((value - lo_) / width_);
  idx = std::clamp<std::int64_t>(idx, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(idx)] += weight;
  total_ += weight;
}

double LinearHistogram::bucket_weight(std::size_t i) const {
  return i < counts_.size() ? counts_[i] : 0.0;
}

double LinearHistogram::bucket_center(std::size_t i) const {
  return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

}  // namespace webcache::util
