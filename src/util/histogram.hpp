// Histograms for power-law estimation.
//
// Both the popularity index alpha and the temporal-correlation exponent beta
// are measured in the paper as slopes of log-log plots. Binning the raw
// samples into logarithmically spaced buckets before fitting (as is standard
// for power-law data) removes the bias from the noisy tail.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace webcache::util {

/// Histogram with logarithmically spaced buckets over positive values.
/// Bucket i covers [base^i, base^(i+1)).
class LogHistogram {
 public:
  /// base must be > 1; common choice is 2.0 (doubling buckets).
  explicit LogHistogram(double base = 2.0, std::size_t max_buckets = 64);

  void add(double value, double weight = 1.0);

  std::size_t bucket_index(double value) const;
  /// Geometric midpoint of bucket i.
  double bucket_center(std::size_t i) const;
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;
  double bucket_weight(std::size_t i) const;
  std::size_t bucket_count() const { return counts_.size(); }
  double total_weight() const { return total_; }

  /// (bucket center, density) pairs for non-empty buckets, where density is
  /// the bucket weight divided by the bucket width. Suitable input for a
  /// log-log least-squares fit.
  std::vector<std::pair<double, double>> density_points() const;

  /// (bucket center, weight) pairs for non-empty buckets.
  std::vector<std::pair<double, double>> mass_points() const;

  /// Multiplies every bucket weight by factor (exponential forgetting).
  void scale(double factor);

  void clear();

  /// Checkpoint support: raw bucket weights (counts_ grows lazily, so the
  /// vector length is part of the state) and the running total.
  const std::vector<double>& raw_counts() const { return counts_; }
  void restore_counts(std::vector<double> counts, double total) {
    counts_ = std::move(counts);
    total_ = total;
  }

 private:
  double base_;
  double log_base_;
  std::size_t max_buckets_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

/// Fixed-width linear histogram over [lo, hi); values outside are clamped
/// into the first/last bucket. Used for occupancy time series bucketing.
class LinearHistogram {
 public:
  LinearHistogram(double lo, double hi, std::size_t buckets);

  void add(double value, double weight = 1.0);
  double bucket_weight(std::size_t i) const;
  double bucket_center(std::size_t i) const;
  std::size_t bucket_count() const { return counts_.size(); }
  double total_weight() const { return total_; }

 private:
  double lo_;
  double width_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

}  // namespace webcache::util
