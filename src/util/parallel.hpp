// Minimal fork-join helper shared by the parallel drivers (the sweep grid,
// the sharded replay engine's annotate/account stages).
//
// parallel_for(n, threads, fn) invokes fn(i) exactly once for every
// i in [0, n), either inline (threads <= 1 or n <= 1) or on a freshly
// spawned worker pool that pulls indices from one atomic counter. Workers
// never let an exception escape (that would std::terminate); the first
// captured failure is rethrown on the calling thread after the join, and
// the remaining indices are drained so sibling workers finish promptly.
//
// The helper makes no fairness or ordering promise — callers must only
// depend on "each index runs exactly once, on some thread". Determinism is
// the caller's job: every fn(i) writes to its own disjoint state.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace webcache::util {

/// 0 -> std::thread::hardware_concurrency() (at least 1), else `requested`.
inline std::uint32_t resolve_threads(std::uint32_t requested) {
  if (requested != 0) return requested;
  return std::max(1u, std::thread::hardware_concurrency());
}

template <typename Fn>
void parallel_for(std::size_t task_count, std::uint32_t threads, Fn&& fn) {
  threads = static_cast<std::uint32_t>(std::min<std::size_t>(
      resolve_threads(threads), task_count));
  if (threads <= 1) {
    for (std::size_t i = 0; i < task_count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr failure;
  std::mutex failure_mutex;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::uint32_t w = 0; w < threads; ++w) {
    workers.emplace_back([&] {
      try {
        for (std::size_t i = next.fetch_add(1); i < task_count;
             i = next.fetch_add(1)) {
          fn(i);
        }
      } catch (...) {
        const std::lock_guard<std::mutex> lock(failure_mutex);
        if (!failure) failure = std::current_exception();
        next.store(task_count);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  if (failure) std::rethrow_exception(failure);
}

}  // namespace webcache::util
