#include "util/rng.hpp"

#include <algorithm>
#include <cmath>

namespace webcache::util {

namespace {

// FNV-1a over a byte string; used to turn fork tags into seed perturbations.
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

std::uint64_t Rng::mix(std::uint64_t x) {
  // SplitMix64 finalizer: decorrelates nearby seeds.
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Rng Rng::fork(std::string_view tag) {
  const std::uint64_t child_seed = next_u64() ^ fnv1a(tag);
  return Rng(child_seed);
}

double Rng::uniform() {
  // 53 random bits -> double in [0, 1).
  return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::below(std::uint64_t n) {
  std::uniform_int_distribution<std::uint64_t> dist(0, n - 1);
  return dist(engine_);
}

std::int64_t Rng::between(std::int64_t lo, std::int64_t hi) {
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::gaussian() {
  std::normal_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

double Rng::exponential(double rate) {
  std::exponential_distribution<double> dist(rate);
  return dist(engine_);
}

}  // namespace webcache::util
