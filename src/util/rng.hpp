// Seeded random-number generation with reproducible substreams.
//
// Every stochastic component in this library draws from an Rng that is
// derived, directly or via fork(), from a single user-supplied seed, so a
// whole experiment is reproducible from one integer.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>

namespace webcache::util {

/// Deterministic pseudo-random source.
///
/// Thin wrapper over std::mt19937_64 adding:
///  - substream forking (`fork`), so independent components can draw from
///    statistically independent streams derived from one master seed, and
///  - convenience draws used throughout the library.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(mix(seed)) {}

  /// Creates an independent substream. Forks with distinct tags (or in a
  /// distinct order) from the same parent produce distinct streams.
  Rng fork(std::string_view tag);

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n-1]. Requires n > 0.
  std::uint64_t below(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t between(std::int64_t lo, std::int64_t hi);

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool chance(double p);

  /// Standard normal draw.
  double gaussian();

  /// Exponential draw with the given rate (> 0).
  double exponential(double rate);

  /// Raw 64-bit draw; exposed for distribution classes.
  std::uint64_t next_u64() { return engine_(); }

  /// The wrapped engine, for interoperating with <random> distributions.
  std::mt19937_64& engine() { return engine_; }
  const std::mt19937_64& engine() const { return engine_; }

 private:
  static std::uint64_t mix(std::uint64_t x);

  std::mt19937_64 engine_;
};

}  // namespace webcache::util
