#include "util/state_io.hpp"

#include <array>
#include <cstring>

namespace webcache::util {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void StateWriter::put_double(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(bits);
}

void StateWriter::put_string(const std::string& s) {
  put_u64(s.size());
  put_bytes(s.data(), s.size());
}

void StateWriter::put_bytes(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  bytes_.insert(bytes_.end(), p, p + n);
}

void StateReader::need(std::size_t n) const {
  if (size_ - pos_ < n) {
    throw StateError(section_, "truncated state stream (need " +
                                   std::to_string(n) + " byte(s), have " +
                                   std::to_string(size_ - pos_) + ")");
  }
}

std::uint8_t StateReader::take_u8() {
  need(1);
  return data_[pos_++];
}

std::uint32_t StateReader::take_u32() {
  need(4);
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t StateReader::take_u64() {
  need(8);
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

bool StateReader::take_bool() {
  const std::uint8_t v = take_u8();
  if (v > 1) fail("boolean byte out of range");
  return v == 1;
}

double StateReader::take_double() {
  const std::uint64_t bits = take_u64();
  double v = 0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string StateReader::take_string() {
  const std::uint64_t n = take_u64();
  if (n > remaining()) fail("string length exceeds stream");
  std::string s(reinterpret_cast<const char*>(data_ + pos_),
                static_cast<std::size_t>(n));
  pos_ += static_cast<std::size_t>(n);
  return s;
}

void StateReader::expect_end() const {
  if (!exhausted()) {
    throw StateError(section_, std::to_string(remaining()) +
                                   " trailing byte(s) after decode");
  }
}

}  // namespace webcache::util
