// Byte-stream serialization primitives for checkpointing.
//
// Every stateful layer that participates in crash-safe checkpoints
// (policies, caches, the densifier, the metrics sink, the replay core)
// encodes itself through a StateWriter and decodes through a StateReader.
// The wire format is deliberately dumb: fixed-width little-endian
// integers, doubles as IEEE-754 bit patterns (so restored latency sums
// are bit-identical, not merely close), and length-prefixed strings.
// Readers are bounds-checked and every decode failure throws a
// StateError naming the checkpoint section it happened in — a corrupted
// checkpoint must always die with a diagnostic, never with UB.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace webcache::util {

/// Malformed checkpoint bytes. `section` names the checkpoint section
/// (or data structure) whose decode failed; the what() string embeds it.
class StateError : public std::runtime_error {
 public:
  StateError(std::string section, const std::string& what)
      : std::runtime_error("checkpoint section '" + section + "': " + what),
        section_(std::move(section)) {}

  const std::string& section() const { return section_; }

 private:
  std::string section_;
};

/// CRC-32 (IEEE, reflected polynomial 0xEDB88320) over a byte span.
/// Pass a previous return value as `seed` to continue a running digest.
std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed = 0);

class StateWriter {
 public:
  void put_u8(std::uint8_t v) { bytes_.push_back(v); }
  void put_u32(std::uint32_t v) { put_le(v); }
  void put_u64(std::uint64_t v) { put_le(v); }
  void put_i32(std::int32_t v) { put_le(static_cast<std::uint32_t>(v)); }
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  /// IEEE-754 bit pattern; round-trips every double exactly (incl. NaN).
  void put_double(double v);
  void put_string(const std::string& s);
  void put_bytes(const void* data, std::size_t n);

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }
  std::size_t size() const { return bytes_.size(); }

 private:
  template <typename T>
  void put_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t> bytes_;
};

class StateReader {
 public:
  /// The reader does not own the bytes; `section` labels every error.
  StateReader(const std::uint8_t* data, std::size_t size, std::string section)
      : data_(data), size_(size), section_(std::move(section)) {}

  std::uint8_t take_u8();
  std::uint32_t take_u32();
  std::uint64_t take_u64();
  std::int32_t take_i32() { return static_cast<std::int32_t>(take_u32()); }
  bool take_bool();
  double take_double();
  std::string take_string();

  /// Bytes not yet consumed.
  std::size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ == size_; }
  /// Throws StateError when trailing bytes remain — catches encoder/decoder
  /// drift the moment it happens instead of silently ignoring state.
  void expect_end() const;

  const std::string& section() const { return section_; }
  [[noreturn]] void fail(const std::string& what) const {
    throw StateError(section_, what);
  }

 private:
  void need(std::size_t n) const;

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  std::string section_;
};

}  // namespace webcache::util
