#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace webcache::util {

// -------------------------------------------------------- StreamingStats

void StreamingStats::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double StreamingStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double StreamingStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

double StreamingStats::cov() const {
  const double m = mean();
  return m == 0.0 ? 0.0 : stddev() / m;
}

void StreamingStats::merge(const StreamingStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

// ------------------------------------------------------------ P2Quantile

P2Quantile::P2Quantile(double quantile) : quantile_(quantile) {
  if (!(quantile > 0.0 && quantile < 1.0)) {
    throw std::invalid_argument("P2Quantile: quantile must be in (0, 1)");
  }
  warmup_.reserve(5);
}

void P2Quantile::add(double x) {
  ++count_;
  if (warmup_.size() < 5) {
    warmup_.push_back(x);
    if (warmup_.size() == 5) {
      std::sort(warmup_.begin(), warmup_.end());
      for (int i = 0; i < 5; ++i) {
        heights_[i] = warmup_[i];
        positions_[i] = i + 1;
      }
      desired_[0] = 1;
      desired_[1] = 1 + 2 * quantile_;
      desired_[2] = 1 + 4 * quantile_;
      desired_[3] = 3 + 2 * quantile_;
      desired_[4] = 5;
      increments_[0] = 0;
      increments_[1] = quantile_ / 2;
      increments_[2] = quantile_;
      increments_[3] = (1 + quantile_) / 2;
      increments_[4] = 1;
    }
    return;
  }

  // Locate the cell containing x and clamp the extreme markers.
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }

  for (int i = k + 1; i < 5; ++i) positions_[i] += 1;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];

  // Adjust interior markers toward their desired positions.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double right_gap = positions_[i + 1] - positions_[i];
    const double left_gap = positions_[i - 1] - positions_[i];
    if ((d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0)) {
      const double s = d >= 0 ? 1.0 : -1.0;
      // Piecewise-parabolic prediction.
      const double qp =
          heights_[i] +
          s / (positions_[i + 1] - positions_[i - 1]) *
              ((positions_[i] - positions_[i - 1] + s) *
                   (heights_[i + 1] - heights_[i]) / right_gap +
               (positions_[i + 1] - positions_[i] - s) *
                   (heights_[i] - heights_[i - 1]) / (-left_gap));
      if (heights_[i - 1] < qp && qp < heights_[i + 1]) {
        heights_[i] = qp;
      } else {
        // Fall back to linear prediction.
        const int j = i + static_cast<int>(s);
        heights_[i] += s * (heights_[j] - heights_[i]) /
                       (positions_[j] - positions_[i]);
      }
      positions_[i] += s;
    }
  }
}

double P2Quantile::value() const {
  if (count_ == 0) return std::nan("");
  if (warmup_.size() < 5 || count_ <= 5) {
    std::vector<double> v = warmup_;
    std::sort(v.begin(), v.end());
    const double idx = quantile_ * static_cast<double>(v.size() - 1);
    const auto lo = static_cast<std::size_t>(idx);
    const std::size_t hi = std::min(lo + 1, v.size() - 1);
    const double frac = idx - static_cast<double>(lo);
    return v[lo] * (1.0 - frac) + v[hi] * frac;
  }
  return heights_[2];
}

double exact_median(std::vector<double>& values) {
  if (values.empty()) return std::nan("");
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  double hi = values[mid];
  if (values.size() % 2 == 1) return hi;
  const double lo = *std::max_element(values.begin(), values.begin() + mid);
  return (lo + hi) / 2.0;
}

}  // namespace webcache::util
